//! Examples 2.3 / 2.4: the Person / Professor / Student / Assistant-
//! Professor hierarchy, indexed by income.
//!
//! Compares all four class-indexing strategies on the paper's own queries
//! ("all people in class Professor with income between 50K and 60K", …),
//! reporting answers and I/O costs side by side.
//!
//! Run with: `cargo run --release --example oodb_people`

use ccix::class::{
    ClassIndex, FullExtentBaseline, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex,
    SingleIndexBaseline,
};
use ccix::extmem::{Geometry, IoCounter};

fn main() {
    let (hierarchy, [person, professor, student, asst_prof]) = Hierarchy::example_people();
    let geo = Geometry::new(16);

    // Populate: incomes in dollars; many students, fewer professors.
    let mut rng: u64 = 42;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut objects = Vec::new();
    for id in 0..200_000u64 {
        let (class, base, spread) = match next() % 10 {
            0..=4 => (student, 8_000, 30_000),    // 50%
            5..=6 => (person, 20_000, 80_000),    // 20%
            7..=8 => (professor, 60_000, 90_000), // 20%
            _ => (asst_prof, 50_000, 40_000),     // 10%
        };
        let income = base + (next() % spread) as i64;
        objects.push(Object::new(class, income, id));
    }

    let counters: Vec<IoCounter> = (0..4).map(|_| IoCounter::new()).collect();
    let mut strategies: Vec<Box<dyn ClassIndex>> = vec![
        Box::new(SingleIndexBaseline::new(
            hierarchy.clone(),
            geo,
            counters[0].clone(),
        )),
        Box::new(FullExtentBaseline::new(
            hierarchy.clone(),
            geo,
            counters[1].clone(),
        )),
        Box::new(RangeTreeClassIndex::new(
            hierarchy.clone(),
            geo,
            counters[2].clone(),
        )),
        Box::new(RakeClassIndex::new(
            hierarchy.clone(),
            geo,
            counters[3].clone(),
        )),
    ];

    for (s, counter) in strategies.iter_mut().zip(&counters) {
        let before = counter.snapshot();
        for o in &objects {
            s.insert(*o);
        }
        let cost = counter.since(before);
        println!(
            "{:>22}: loaded {} objects, {:.1} I/Os/insert, {} pages",
            s.name(),
            objects.len(),
            cost.total() as f64 / objects.len() as f64,
            s.space_pages()
        );
    }
    println!();

    // The paper's queries (scaled): professors earning 50K–60K; everyone
    // earning 100K–200K; a narrow asst-prof band.
    let queries = [
        ("Professor, 50K..60K", professor, 50_000, 60_000),
        ("Person, 100K..200K", person, 100_000, 200_000),
        ("AsstProf, 55K..56K", asst_prof, 55_000, 56_000),
        ("Student, 10K..12K", student, 10_000, 12_000),
    ];
    for (label, class, a1, a2) in queries {
        println!("query: {label}");
        let mut reference: Option<Vec<u64>> = None;
        for (s, counter) in strategies.iter().zip(&counters) {
            let before = counter.snapshot();
            let mut got = s.query(class, a1, a2);
            let cost = counter.since(before);
            got.sort_unstable();
            match &reference {
                None => reference = Some(got.clone()),
                Some(r) => assert_eq!(r, &got, "strategies disagree on {label}"),
            }
            println!(
                "  {:>22}: {:>6} objects in {:>6} read I/Os",
                s.name(),
                got.len(),
                cost.reads
            );
        }
        println!();
    }
    println!("all strategies returned identical answers");
}
