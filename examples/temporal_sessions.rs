//! Temporal workload: live-session lookups over an append-only log.
//!
//! Sessions `[login, logout]` arrive in (roughly) login order — the
//! adversarial pattern for amortised structures, since every insert lands
//! at the current right edge. The example streams a day of sessions into
//! the interval index, interleaving "who was online at time T?" queries,
//! and prints the running amortised costs — Theorem 3.7 live.
//!
//! Run with: `cargo run --release --example temporal_sessions`

use ccix::extmem::{Geometry, IoCounter};
use ccix::interval::{IndexBuilder, NaiveIntervalStore};

fn main() {
    let geo = Geometry::new(32);
    let counter = IoCounter::new();
    let mut index = IndexBuilder::new(geo).open(counter.clone());
    let naive_counter = IoCounter::new();
    let mut naive = NaiveIntervalStore::new(geo, naive_counter.clone());

    let mut rng: u64 = 0xDA7E;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    // One simulated day at one login/second; sessions last 1s..4h.
    let day = 86_400i64;
    let mut inserted = 0u64;
    let mut insert_io = 0u64;
    let mut query_io_index = 0u64;
    let mut query_io_naive = 0u64;
    let mut queries = 0u64;

    for t in 0..day {
        let login = t;
        let dur = 1 + (next() % 14_400) as i64;
        let before = counter.snapshot();
        index.insert(login, login + dur, inserted);
        insert_io += counter.since(before).total();
        naive.insert(login, login + dur, inserted);
        inserted += 1;

        // Every 10 minutes, ask who is online right now.
        if t % 600 == 599 {
            let before = counter.snapshot();
            let online = index.stabbing(t);
            query_io_index += counter.since(before).reads;
            let before = naive_counter.snapshot();
            let mut check = naive.stabbing(t);
            query_io_naive += naive_counter.since(before).reads;

            let mut online_sorted = online;
            online_sorted.sort_unstable();
            check.sort_unstable();
            assert_eq!(online_sorted, check, "index and scan disagree at t={t}");
            queries += 1;
            if t % 14_400 == 14_399 {
                println!(
                    "t={t:>6}: {:>5} online; index {:>4.1} I/Os/query vs scan {:>6.1}; \
                     inserts {:>4.1} I/Os each",
                    online_sorted.len(),
                    query_io_index as f64 / queries as f64,
                    query_io_naive as f64 / queries as f64,
                    insert_io as f64 / inserted as f64,
                );
            }
        }
    }

    println!();
    println!(
        "day complete: {} sessions, {} spot queries",
        inserted, queries
    );
    println!(
        "amortised insert: {:.2} I/Os (bound: O(log_B n + log_B^2 n / B))",
        insert_io as f64 / inserted as f64
    );
    println!(
        "mean stabbing query: {:.2} I/Os indexed vs {:.2} scanning",
        query_io_index as f64 / queries as f64,
        query_io_naive as f64 / queries as f64
    );
    println!(
        "index: {} pages; heap file: {} pages",
        index.space_pages(),
        naive.space_pages()
    );
}
