//! Quickstart: index intervals, ask stabbing and intersection queries, and
//! watch the I/O counters — the paper's headline reduction in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ccix::extmem::{Geometry, IoCounter};
use ccix::interval::IndexBuilder;

fn main() {
    // The external-memory model: pages hold B records; one transfer = 1 I/O.
    let geo = Geometry::new(16);
    let counter = IoCounter::new();

    // Index 100k random intervals (e.g. projections of generalized tuples
    // onto an attribute, or validity spans of versioned records).
    let mut rng: u64 = 0x5EED;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let intervals: Vec<ccix::interval::Interval> = (0..100_000)
        .map(|i| {
            let lo = (next() % 1_000_000) as i64;
            let len = (next() % 2_000) as i64;
            ccix::interval::Interval::new(lo, lo + len, i as u64)
        })
        .collect();

    let build_start = counter.snapshot();
    let mut index = IndexBuilder::new(geo).bulk(counter.clone(), &intervals);
    let build_cost = counter.since(build_start);
    println!(
        "built index over {} intervals: {} pages, {} I/Os",
        index.len(),
        index.space_pages(),
        build_cost.total()
    );

    // A stabbing query: which intervals contain the point q?
    let q = 500_000;
    let before = counter.snapshot();
    let stabbed = index.stabbing(q);
    let cost = counter.since(before);
    println!(
        "stab({q}): {} intervals in {} I/Os (vs {} pages for a full scan)",
        stabbed.len(),
        cost.reads,
        geo.out_blocks(index.len()),
    );

    // An intersection query: which intervals meet [q, q + 10_000]?
    let before = counter.snapshot();
    let hits = index.intersecting(q, q + 10_000);
    let cost = counter.since(before);
    println!(
        "intersect([{q}, {}]): {} intervals in {} I/Os",
        q + 10_000,
        hits.len(),
        cost.reads
    );

    // The structure is fully dynamic: inserts amortise their
    // reorganisation...
    let before = counter.snapshot();
    for i in 0..10_000u64 {
        let lo = (next() % 1_000_000) as i64;
        index.insert(lo, lo + 100, 1_000_000 + i);
    }
    let cost = counter.since(before);
    println!(
        "10k inserts: {:.1} I/Os amortised per insert",
        cost.total() as f64 / 10_000.0
    );

    // ...and so do deletes (the paper's §5 open problem): a tombstone
    // routes to the live copy and the next reorganisation cancels both.
    let before = counter.snapshot();
    for iv in intervals.iter().take(10_000) {
        index.delete(iv.lo, iv.hi, iv.id);
    }
    let cost = counter.since(before);
    println!(
        "10k deletes: {:.1} I/Os amortised per delete ({} tombstones still pending)",
        cost.total() as f64 / 10_000.0,
        index.pending_deletes()
    );
    let before = counter.snapshot();
    let after = index.stabbing(q);
    let cost = counter.since(before);
    println!(
        "stab({q}) after the deletes: {} intervals in {} I/Os",
        after.len(),
        cost.reads
    );
}
