//! Example 2.1: rectangle intersection in a constraint database.
//!
//! Rectangles are stored as generalized tuples of `R'(z, x, y)` — "(x, y)
//! is a point in the rectangle named z" — and *all pairs of distinct
//! intersecting rectangles* are computed with a generalized one-dimensional
//! index on x pruning the candidate pairs, followed by an exact check on
//! the y-projections. The same program, as the paper stresses, would work
//! for any convex shapes expressible in the constraint theory.
//!
//! Run with: `cargo run --release --example spatial_rectangles`

use ccix::constraint::{Atom, GeneralizedIndex, GeneralizedRelation, GeneralizedTuple, Rat};
use ccix::extmem::{Geometry, IoCounter};

/// Build the generalized tuple for rectangle `name` with corners
/// `(a, b)`–`(c, d)`: `z = name ∧ a ≤ x ≤ c ∧ b ≤ y ≤ d`.
fn rectangle(name: i64, a: i64, b: i64, c: i64, d: i64) -> GeneralizedTuple {
    let mut t = GeneralizedTuple::new(3);
    t.and(Atom::var_eq_const(0, Rat::from(name)));
    t.and(Atom::var_ge_const(1, Rat::from(a)));
    t.and(Atom::var_le_const(1, Rat::from(c)));
    t.and(Atom::var_ge_const(2, Rat::from(b)));
    t.and(Atom::var_le_const(2, Rat::from(d)));
    t
}

fn main() {
    let mut rng: u64 = 0xC0FFEE;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    // A few thousand random rectangles in a 10_000 × 10_000 universe.
    let n = 3_000;
    let mut relation = GeneralizedRelation::new(3);
    let mut raw = Vec::new();
    for name in 0..n {
        let a = (next() % 10_000) as i64;
        let b = (next() % 10_000) as i64;
        let w = (next() % 300) as i64 + 1;
        let h = (next() % 300) as i64 + 1;
        relation.add(rectangle(name, a, b, a + w, b + h));
        raw.push((name, a, b, a + w, b + h));
    }

    // Index the x-projection (variable 1). Every tuple's projection is one
    // interval — the CQL is convex — so this is interval management.
    let counter = IoCounter::new();
    let index = GeneralizedIndex::build(&relation, 1, Geometry::new(32), counter.clone())
        .expect("integer endpoints always fit the grid");
    println!(
        "indexed {} rectangles on x: {} pages",
        relation.len(),
        index.space_pages()
    );

    // For each rectangle: x-range search prunes to x-overlapping candidates;
    // the y-check is done on the candidates' tuples. Dedup by name order.
    let before = counter.snapshot();
    let mut pairs = 0u64;
    for &(name, a, b, c, d) in &raw {
        let hits = index.range_search(Rat::from(a), Rat::from(c));
        for t in hits.tuples() {
            // Recover the candidate's name and y-span from its projections.
            let (zlo, _) = t.project(0).expect("satisfiable");
            let other = match zlo {
                ccix::constraint::Bound::Closed(v) => v.num(),
                _ => unreachable!("z is pinned by equality"),
            };
            if other <= name {
                continue; // each unordered pair once; skip self
            }
            let (ylo, yhi) = t.project(2).expect("satisfiable");
            let (ylo, yhi) = (
                ylo.value().expect("bounded rectangle").num(),
                yhi.value().expect("bounded rectangle").num(),
            );
            if ylo <= d && b <= yhi {
                pairs += 1;
            }
        }
    }
    let cost = counter.since(before);
    println!("{pairs} intersecting pairs found in {} I/Os", cost.reads);

    // Cross-check with the obvious quadratic algorithm.
    let mut expect = 0u64;
    for i in 0..raw.len() {
        for j in i + 1..raw.len() {
            let (_, a1, b1, c1, d1) = raw[i];
            let (_, a2, b2, c2, d2) = raw[j];
            if a1 <= c2 && a2 <= c1 && b1 <= d2 && b2 <= d1 {
                expect += 1;
            }
        }
    }
    assert_eq!(
        pairs, expect,
        "index-driven join must agree with brute force"
    );
    println!("verified against brute force ({expect} pairs)");
}
