//! Integration tests across the whole stack: CQL layer → generalized index
//! → interval manager → metablock tree → block store, and the class stack
//! → 3-sided trees → PSTs. These exercise the crates exactly as the
//! examples and experiments do.

use ccix::class::{ClassIndex, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex};
use ccix::constraint::{Atom, GeneralizedIndex, GeneralizedRelation, GeneralizedTuple, Rat};
use ccix::extmem::{Geometry, IoCounter};
use ccix::interval::IndexBuilder;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// The §2.1 reduction end to end: a generalized relation of 1-D segments,
/// indexed, stabbed, and refined — answers must match direct evaluation of
/// the refined DNF formulas.
#[test]
fn cql_range_search_matches_semantics() {
    let mut next = xorshift(0xCE11);
    let mut rel = GeneralizedRelation::new(2);
    let mut spans = Vec::new();
    for _ in 0..500 {
        let lo = (next() % 1_000) as i64;
        let len = (next() % 60) as i64;
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_ge_const(0, Rat::from(lo)));
        t.and(Atom::var_le_const(0, Rat::from(lo + len)));
        // A second attribute rides along, untouched by the index.
        t.and(Atom::var_eq_const(1, Rat::from((next() % 10) as i64)));
        rel.add(t);
        spans.push((lo, lo + len));
    }
    let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();

    for probe in (0..1_100).step_by(37) {
        let result = idx.stab(Rat::from(probe));
        let expected = spans
            .iter()
            .filter(|&&(lo, hi)| lo <= probe && probe <= hi)
            .count();
        assert_eq!(result.len(), expected, "stab({probe})");
        // Every returned disjunct must actually admit x_0 = probe.
        for t in result.tuples() {
            let (lo, hi) = t.project(0).expect("refined tuple satisfiable");
            let lo = lo.value().expect("bounded");
            let hi = hi.value().expect("bounded");
            assert!(lo <= Rat::from(probe) && Rat::from(probe) <= hi);
        }
    }
}

/// One shared counter across the full interval stack: component costs add
/// up and no hidden I/Os bypass the accounting.
#[test]
fn shared_counter_accounts_everything() {
    let counter = IoCounter::new();
    let mut idx = IndexBuilder::new(Geometry::new(8)).open(counter.clone());
    let after_new = counter.snapshot();
    idx.insert(0, 10, 1);
    let after_insert = counter.since(after_new).total();
    assert!(after_insert > 0, "inserts must be charged");
    let _ = idx.stabbing(5);
    assert!(counter.reads() > 0, "queries must be charged");
    // Space accounting is unbilled.
    let before = counter.total();
    let _ = idx.space_pages();
    assert_eq!(counter.total(), before);
}

/// Class indexing over a deep random hierarchy: the Theorem 4.7 index and
/// the Theorem 2.6 index agree under interleaved inserts and queries, and
/// the 4.7 query cost does not scale with c.
#[test]
fn class_stack_interleaved() {
    let mut next = xorshift(0x0DB);
    let c = 200;
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| {
            if i == 0 {
                None
            } else {
                // Skewed: deep chains with occasional branching.
                Some(if next().is_multiple_of(4) {
                    (next() % i as u64) as usize
                } else {
                    i - 1
                })
            }
        })
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let geo = Geometry::new(8);
    let rc = IoCounter::new();
    let mut rake = RakeClassIndex::new(h.clone(), geo, rc.clone());
    let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());

    let mut objects: Vec<Object> = Vec::new();
    for i in 0..4_000u64 {
        let o = Object::new((next() % c as u64) as usize, (next() % 10_000) as i64, i);
        rake.insert(o);
        rtree.insert(o);
        objects.push(o);

        if i % 401 == 0 {
            let class = (next() % c as u64) as usize;
            let a = (next() % 10_000) as i64;
            let mut want: Vec<u64> = objects
                .iter()
                .filter(|ob| h.is_ancestor_or_self(class, ob.class))
                .filter(|ob| ob.attr >= a && ob.attr <= a + 800)
                .map(|ob| ob.id)
                .collect();
            want.sort_unstable();
            let mut got_rake = rake.query(class, a, a + 800);
            got_rake.sort_unstable();
            let mut got_rtree = rtree.query(class, a, a + 800);
            got_rtree.sort_unstable();
            assert_eq!(got_rake, want, "rake i={i}");
            assert_eq!(got_rtree, want, "rtree i={i}");
        }
    }
}

/// The paper's Example 2.4 exactly, through the umbrella crate.
#[test]
fn example_2_4_people_queries() {
    let (h, [person, professor, student, _asst]) = Hierarchy::example_people();
    let mut idx = RakeClassIndex::new(h, Geometry::new(4), IoCounter::new());
    // Incomes in thousands.
    idx.insert(Object::new(professor, 55, 1)); // professor at 55K
    idx.insert(Object::new(student, 55, 2)); // student at 55K
    idx.insert(Object::new(person, 150, 3)); // person at 150K
    idx.insert(Object::new(professor, 150, 4)); // professor at 150K

    // "all people in (the full extent of) class Professor with income
    // between 50K and 60K"
    assert_eq!(idx.query(professor, 50, 60), vec![1]);
    // "all people in (the full extent of) class Person with income between
    // 100K and 200K"
    let mut rich = idx.query(person, 100, 200);
    rich.sort_unstable();
    assert_eq!(rich, vec![3, 4]);
    // "insert a new person with income 10K in the Student class"
    idx.insert(Object::new(student, 10, 5));
    assert_eq!(idx.query(student, 0, 20), vec![5]);
}

/// Mixed-denominator rationals through the index grid.
#[test]
fn rational_grid_round_trip() {
    let mut rel = GeneralizedRelation::new(1);
    for (i, (lo, hi)) in [
        (Rat::new(1, 2), Rat::new(5, 2)),
        (Rat::new(1, 3), Rat::new(2, 3)),
        (Rat::new(-7, 6), Rat::new(1, 6)),
    ]
    .iter()
    .enumerate()
    {
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_ge_const(0, *lo));
        t.and(Atom::var_le_const(0, *hi));
        let _ = i;
        rel.add(t);
    }
    let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(4), IoCounter::new()).unwrap();
    // Grid is sixths; probe on the grid. 1/2 lies in the first two spans
    // only (it exceeds 1/6).
    assert_eq!(idx.stab(Rat::new(1, 2)).len(), 2);
    assert_eq!(idx.stab(Rat::new(2, 3)).len(), 2);
    assert_eq!(idx.stab(Rat::new(-1, 1)).len(), 1);
    assert_eq!(idx.stab(Rat::from(3)).len(), 0);
}
