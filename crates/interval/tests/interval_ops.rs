//! Correctness and bound tests for external dynamic interval management
//! (Proposition 2.2 / §2.1).

use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, NaiveIntervalStore};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

fn random_intervals(n: usize, seed: u64, range: i64, max_len: i64) -> Vec<Interval> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            let lo = (next() % range as u64) as i64;
            let len = (next() % max_len as u64) as i64;
            Interval::new(lo, lo + len, i as u64)
        })
        .collect()
}

fn oracle_stab(ivs: &[Interval], q: i64) -> Vec<u64> {
    let mut v: Vec<u64> = ivs
        .iter()
        .filter(|iv| iv.lo <= q && q <= iv.hi)
        .map(|iv| iv.id)
        .collect();
    v.sort_unstable();
    v
}

fn oracle_intersect(ivs: &[Interval], q1: i64, q2: i64) -> Vec<u64> {
    let mut v: Vec<u64> = ivs
        .iter()
        .filter(|iv| iv.lo <= q2 && q1 <= iv.hi)
        .map(|iv| iv.id)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn empty_index() {
    let idx = IndexBuilder::new(Geometry::new(8)).open(IoCounter::new());
    assert!(idx.is_empty());
    assert!(idx.stabbing(0).is_empty());
    assert!(idx.intersecting(-5, 5).is_empty());
}

#[test]
fn built_index_matches_oracle() {
    for &(n, b) in &[(100usize, 4usize), (2_000, 8), (5_000, 16)] {
        let ivs = random_intervals(n, 0x1D + n as u64, 1_000, 50);
        let idx = IndexBuilder::new(Geometry::new(b)).bulk(IoCounter::new(), &ivs);
        for q in (-10..1_060).step_by(53) {
            let mut got = idx.stabbing(q);
            got.sort_unstable();
            assert_eq!(got, oracle_stab(&ivs, q), "stab n={n} b={b} q={q}");
        }
        for (q1, w) in [(0i64, 10i64), (500, 0), (100, 400), (-20, 2_000)] {
            let mut got = idx.intersecting(q1, q1 + w);
            got.sort_unstable();
            assert_eq!(
                got,
                oracle_intersect(&ivs, q1, q1 + w),
                "intersect n={n} b={b} q=[{q1},{}]",
                q1 + w
            );
        }
    }
}

#[test]
fn incremental_index_matches_oracle() {
    let mut idx = IndexBuilder::new(Geometry::new(4)).open(IoCounter::new());
    let ivs = random_intervals(3_000, 0xF1FE, 500, 30);
    for (i, iv) in ivs.iter().enumerate() {
        idx.insert(iv.lo, iv.hi, iv.id);
        if i % 613 == 0 {
            let q = (i % 500) as i64;
            let mut got = idx.stabbing(q);
            got.sort_unstable();
            assert_eq!(got, oracle_stab(&ivs[..=i], q), "i={i} q={q}");
        }
    }
    for q in (0..530).step_by(19) {
        let mut got = idx.stabbing(q);
        got.sort_unstable();
        assert_eq!(got, oracle_stab(&ivs, q), "final q={q}");
        let mut got = idx.intersecting(q, q + 25);
        got.sort_unstable();
        assert_eq!(
            got,
            oracle_intersect(&ivs, q, q + 25),
            "final [{q},{}]",
            q + 25
        );
    }
}

#[test]
fn full_interval_reporting_preserves_endpoints() {
    let ivs = vec![
        Interval::new(0, 10, 1),
        Interval::new(5, 6, 2),
        Interval::new(8, 20, 3),
    ];
    let idx = IndexBuilder::new(Geometry::new(4)).bulk(IoCounter::new(), &ivs);
    let mut got = idx.intersecting_intervals(6, 9);
    got.sort_unstable_by_key(|iv| iv.id);
    assert_eq!(got, ivs, "full records including right endpoints");
}

#[test]
fn no_duplicates_when_lo_equals_query_start() {
    let ivs = vec![
        Interval::new(5, 10, 1), // lo == q1: must come from stabbing only
        Interval::new(5, 5, 2),
        Interval::new(6, 7, 3),
    ];
    let idx = IndexBuilder::new(Geometry::new(4)).bulk(IoCounter::new(), &ivs);
    let mut got = idx.intersecting(5, 7);
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3]);
}

/// Theorem 3.7 through the reduction: stabbing and intersection queries cost
/// `O(log_B n + t/B)` I/Os.
#[test]
fn query_io_bound() {
    let b = 16;
    let geo = Geometry::new(b);
    let n = 40_000;
    let ivs = random_intervals(n, 0xB0B0, 200_000, 1_000);
    let counter = IoCounter::new();
    let idx = IndexBuilder::new(geo).bulk(counter.clone(), &ivs);
    for q in (0..200_000).step_by(7_919) {
        let before = counter.snapshot();
        let got = idx.intersecting(q, q + 500);
        let cost = counter.since(before);
        let bound = 12 * geo.log_b(n) + 5 * geo.out_blocks(got.len()) + 14;
        assert!(
            cost.reads <= bound as u64,
            "q={q}: {} reads > {bound} (t={})",
            cost.reads,
            got.len()
        );
        assert_eq!(cost.writes, 0);
    }
}

/// Space is `O(n/B)` pages across both component structures.
#[test]
fn space_bound() {
    let b = 16;
    let geo = Geometry::new(b);
    let n = 40_000;
    let ivs = random_intervals(n, 3, 1_000_000, 500);
    let idx = IndexBuilder::new(geo).bulk(IoCounter::new(), &ivs);
    let budget = 12 * geo.out_blocks(n) + 30;
    assert!(
        idx.space_pages() <= budget,
        "{} pages > {budget}",
        idx.space_pages()
    );
}

/// E9 sanity: the index beats the naive scan for point queries once n is
/// large, and the naive store wins on raw insert cost.
#[test]
fn naive_crossover_direction() {
    let geo = Geometry::new(16);
    let n = 20_000;
    let ivs = random_intervals(n, 0xE9, 100_000, 100);

    let idx_counter = IoCounter::new();
    let idx = IndexBuilder::new(geo).bulk(idx_counter.clone(), &ivs);
    let naive_counter = IoCounter::new();
    let mut naive = NaiveIntervalStore::new(geo, naive_counter.clone());
    for iv in &ivs {
        naive.insert(iv.lo, iv.hi, iv.id);
    }

    let before = idx_counter.snapshot();
    let a = idx.stabbing(50_000);
    let idx_cost = idx_counter.since(before).reads;
    let before = naive_counter.snapshot();
    let mut b = naive.stabbing(50_000);
    let naive_cost = naive_counter.since(before).reads;

    let mut a_sorted = a;
    a_sorted.sort_unstable();
    b.sort_unstable();
    assert_eq!(a_sorted, b, "answers agree");
    assert!(
        10 * idx_cost < naive_cost,
        "index ({idx_cost}) should beat scan ({naive_cost}) by ≥10x at n={n}"
    );
}
