//! The generalized one-dimensional index of §2.1, realised as a B+-tree on
//! left endpoints plus a metablock tree for stabbing queries.

use ccix_bptree::{BPlusTree, Entry};
use ccix_core::MetablockTree;
use ccix_extmem::{Disk, Geometry, IoCounter, Point};

/// A closed interval with an application id (a *generalized key*: the
/// projection of a generalized tuple on the indexed attribute).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Left endpoint.
    pub lo: i64,
    /// Right endpoint (`hi ≥ lo`).
    pub hi: i64,
    /// Application id (e.g. the generalized tuple it projects from).
    pub id: u64,
}

impl Interval {
    /// Construct an interval.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn new(lo: i64, hi: i64, id: u64) -> Self {
        assert!(hi >= lo, "interval endpoints out of order");
        Self { lo, hi, id }
    }

    /// The point `(lo, hi)` above the diagonal (Fig. 3's mapping).
    fn point(&self) -> Point {
        Point::new(self.lo, self.hi, self.id)
    }
}

/// External dynamic interval management (Proposition 2.2 + Theorem 3.7).
///
/// Semi-dynamic: supports insertion; deletion is the paper's open problem
/// (§5) and is unsupported here too.
#[derive(Debug)]
pub struct IntervalIndex {
    geo: Geometry,
    counter: IoCounter,
    disk: Disk,
    endpoints: BPlusTree,
    stab: MetablockTree,
    len: usize,
}

impl IntervalIndex {
    /// Page size (bytes) giving the endpoint B+-tree the same record-per-
    /// block budget as the typed stores: `B` 24-byte entries plus header.
    fn page_size(geo: Geometry) -> usize {
        (24 * geo.b + 7).max(103)
    }

    /// Create an empty index.
    pub fn new(geo: Geometry, counter: IoCounter) -> Self {
        let mut disk = Disk::new(Self::page_size(geo), counter.clone());
        let endpoints = BPlusTree::new(&mut disk);
        let stab = MetablockTree::new(geo, counter.clone());
        Self {
            geo,
            counter,
            disk,
            endpoints,
            stab,
            len: 0,
        }
    }

    /// Bulk-build from a set of intervals (ids must be unique).
    pub fn build(geo: Geometry, counter: IoCounter, intervals: &[Interval]) -> Self {
        let mut disk = Disk::new(Self::page_size(geo), counter.clone());
        let mut entries: Vec<Entry> = intervals
            .iter()
            .map(|iv| Entry::with_aux(iv.lo, iv.id, iv.hi as u64))
            .collect();
        entries.sort_unstable();
        let endpoints = BPlusTree::bulk_load(&mut disk, &entries);
        let points: Vec<Point> = intervals.iter().map(Interval::point).collect();
        let stab = MetablockTree::build(geo, counter.clone(), points);
        Self {
            geo,
            counter,
            disk,
            endpoints,
            stab,
            len: intervals.len(),
        }
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The shared I/O counter (covers both component structures).
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Disk blocks occupied by both structures.
    pub fn space_pages(&self) -> usize {
        self.disk.pages_in_use() + self.stab.space_pages()
    }

    /// Insert `[lo, hi]` with `id`. Amortised
    /// `O(log_B n + (log_B n)²/B)` I/Os.
    pub fn insert(&mut self, lo: i64, hi: i64, id: u64) {
        let iv = Interval::new(lo, hi, id);
        self.endpoints
            .insert_entry(&mut self.disk, Entry::with_aux(iv.lo, iv.id, iv.hi as u64));
        self.stab.insert(iv.point());
        self.len += 1;
    }

    /// Ids of all intervals containing `q` (stabbing query).
    /// `O(log_B n + t/B)` I/Os.
    pub fn stabbing(&self, q: i64) -> Vec<u64> {
        self.stabbing_intervals(q).iter().map(|iv| iv.id).collect()
    }

    /// As [`IntervalIndex::stabbing`], returning full intervals.
    pub fn stabbing_intervals(&self, q: i64) -> Vec<Interval> {
        let mut pts = Vec::new();
        self.stab.query_into(q, &mut pts);
        pts.into_iter()
            .map(|p| Interval::new(p.x, p.y, p.id))
            .collect()
    }

    /// Ids of all intervals intersecting `[q1, q2]`.
    /// `O(log_B n + t/B)` I/Os; no interval is reported twice.
    pub fn intersecting(&self, q1: i64, q2: i64) -> Vec<u64> {
        self.intersecting_intervals(q1, q2)
            .iter()
            .map(|iv| iv.id)
            .collect()
    }

    /// As [`IntervalIndex::intersecting`], returning full intervals.
    pub fn intersecting_intervals(&self, q1: i64, q2: i64) -> Vec<Interval> {
        assert!(q1 <= q2, "query interval endpoints out of order");
        // Types 3/4: intervals containing q1.
        let mut out = self.stabbing_intervals(q1);
        // Types 1/2: left endpoint strictly inside (q1, q2]. Strictness
        // avoids double-reporting intervals with lo == q1, which the
        // stabbing query already returned.
        if q1 < q2 {
            for e in self.endpoints.range_entries(&self.disk, q1 + 1, q2) {
                // The leaf entry is a covering record: key = lo, value = id,
                // aux = hi, so full intervals are reported with no extra I/O.
                out.push(Interval::new(e.key, e.aux as i64, e.value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_validation() {
        let iv = Interval::new(2, 5, 1);
        assert_eq!(iv.point(), Point::new(2, 5, 1));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_interval_rejected() {
        let _ = Interval::new(5, 2, 1);
    }
}
