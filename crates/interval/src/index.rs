//! The generalized one-dimensional index of §2.1.
//!
//! Stabbing queries are answered by a metablock tree over the points
//! `(lo, hi)` (Proposition 2.2's reduction). For the left-endpoint range of
//! an intersection query there are two endpoint modes:
//!
//! * [`EndpointMode::Slab`] (default) answers it from the metablock tree
//!   itself — the slab decomposition is x-ordered, so
//!   [`ccix_core::MetablockTree::x_range_into`] reports left endpoints in
//!   `O(log_B n + t/B)` I/Os with **no second copy of the data**. This cuts
//!   both the index's space (the B+-tree was a full extra `n/B`-page copy)
//!   and its insert cost (one structure to maintain instead of two).
//! * [`EndpointMode::BTree`] keeps the paper's §2.1 layout: a B+-tree on
//!   left endpoints with covering `(lo, id, hi)` records, bulk-loaded at a
//!   tunable leaf fill factor.

use ccix_bptree::{BPlusTree, Entry};
use ccix_core::{MetablockTree, Op, Tuning};
use ccix_extmem::{BackendSpec, Disk, FixedBytes, Geometry, IoCounter, Point};

/// A closed interval with an application id (a *generalized key*: the
/// projection of a generalized tuple on the indexed attribute).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Left endpoint.
    pub lo: i64,
    /// Right endpoint (`hi ≥ lo`).
    pub hi: i64,
    /// Application id (e.g. the generalized tuple it projects from).
    pub id: u64,
}

impl Interval {
    /// Construct an interval.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn new(lo: i64, hi: i64, id: u64) -> Self {
        assert!(hi >= lo, "interval endpoints out of order");
        Self { lo, hi, id }
    }

    /// The point `(lo, hi)` above the diagonal (Fig. 3's mapping).
    fn point(&self) -> Point {
        Point::new(self.lo, self.hi, self.id)
    }
}

/// Same wire layout as the [`Point`] an interval maps to — `lo`, `hi`, `id`
/// little-endian — so an interval checkpoint page and the stabbing
/// structure's point page for the same records are byte-identical. Unlike
/// the integer records, decoding can fail: `hi < lo` is not a valid
/// interval, so a corrupt page is rejected rather than resurrected as a
/// reversed interval.
impl FixedBytes for Interval {
    const SIZE: usize = 24;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.lo.to_le_bytes());
        out.extend_from_slice(&self.hi.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        let lo = i64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let hi = i64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let id = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        if hi < lo {
            return None;
        }
        Some(Self { lo, hi, id })
    }
}

/// One operation of a mixed batch (see [`IntervalIndex::apply_batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalOp {
    /// Insert the interval.
    Insert(Interval),
    /// Delete a previously inserted interval.
    Delete(Interval),
}

/// How the index answers left-endpoint range queries (the Type 1/2 part of
/// an intersection query).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EndpointMode {
    /// Answer from the metablock tree's slab order; no endpoint B+-tree.
    #[default]
    Slab,
    /// Keep a B+-tree of covering `(lo, id, hi)` records (§2.1's layout).
    BTree,
}

/// Construction options for [`IntervalIndex`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalOptions {
    /// Endpoint-range strategy.
    pub endpoints: EndpointMode,
    /// Write-path/space tuning for the metablock tree.
    pub tuning: Tuning,
    /// Leaf fill factor (percent, 50–100) for the endpoint B+-tree's bulk
    /// load; ignored in slab mode. `None` packs leaves full.
    pub btree_leaf_fill: Option<usize>,
}

impl IntervalOptions {
    /// The paper's §2.1 layout: endpoint B+-tree plus the paper's buffer
    /// constants.
    pub fn paper() -> Self {
        Self {
            endpoints: EndpointMode::BTree,
            tuning: Tuning::paper(),
            btree_leaf_fill: None,
        }
    }
}

/// External dynamic interval management (Proposition 2.2 + Theorem 3.7).
///
/// Fully dynamic: insertion at the paper's amortised budget, and deletion —
/// the paper's §5 open problem — via the metablock tree's tombstone
/// machinery at the same amortised budget ([`IntervalIndex::delete`]).
/// Deleted intervals disappear from queries immediately; their storage is
/// reclaimed by the reorganisations that annihilate the tombstones and by
/// the occupancy-triggered shrink.
#[derive(Debug)]
pub struct IntervalIndex {
    geo: Geometry,
    counter: IoCounter,
    /// Endpoint B+-tree with its backing disk ([`EndpointMode::BTree`] only).
    endpoints: Option<(Disk, BPlusTree)>,
    stab: MetablockTree,
    len: usize,
    /// The options this index was constructed with, retained so a durable
    /// checkpoint can record them and rebuild an identical layout.
    options: IntervalOptions,
    /// The page backend this index was opened on (snapshot forks are always
    /// model-backed — an epoch is an in-memory publication).
    backend: BackendSpec,
}

impl IntervalIndex {
    /// Page size (bytes) giving the endpoint B+-tree the same record-per-
    /// block budget as the typed stores: `B` 24-byte entries plus header.
    fn page_size(geo: Geometry) -> usize {
        (24 * geo.b + 7).max(103)
    }

    /// Create an empty index with the default (slab-endpoint, tuned) layout.
    #[deprecated(note = "use `IndexBuilder::new(geo).open(counter)`")]
    pub fn new(geo: Geometry, counter: IoCounter) -> Self {
        Self::open_impl(
            &BackendSpec::Model,
            geo,
            counter,
            IntervalOptions::default(),
        )
    }

    /// Create an empty index with explicit options.
    #[deprecated(note = "use `IndexBuilder::new(geo).options(options).open(counter)`")]
    pub fn new_with(geo: Geometry, counter: IoCounter, options: IntervalOptions) -> Self {
        Self::open_impl(&BackendSpec::Model, geo, counter, options)
    }

    pub(crate) fn open_impl(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        options: IntervalOptions,
    ) -> Self {
        let endpoints = match options.endpoints {
            EndpointMode::Slab => None,
            EndpointMode::BTree => {
                let mut disk = Disk::new_on(spec, Self::page_size(geo), counter.clone());
                let tree = BPlusTree::new(&mut disk);
                Some((disk, tree))
            }
        };
        let stab = MetablockTree::new_tuned_on(
            spec,
            geo,
            counter.clone(),
            ccix_core::DiagOptions::default(),
            options.tuning,
        );
        Self {
            geo,
            counter,
            endpoints,
            stab,
            len: 0,
            options,
            backend: spec.clone(),
        }
    }

    /// Bulk-build from a set of intervals (ids must be unique), with the
    /// default layout.
    #[deprecated(note = "use `IndexBuilder::new(geo).bulk(counter, intervals)`")]
    pub fn build(geo: Geometry, counter: IoCounter, intervals: &[Interval]) -> Self {
        Self::bulk_impl(
            &BackendSpec::Model,
            geo,
            counter,
            intervals,
            IntervalOptions::default(),
        )
    }

    /// Bulk-build with explicit options.
    #[deprecated(note = "use `IndexBuilder::new(geo).options(options).bulk(counter, intervals)`")]
    pub fn build_with(
        geo: Geometry,
        counter: IoCounter,
        intervals: &[Interval],
        options: IntervalOptions,
    ) -> Self {
        Self::bulk_impl(&BackendSpec::Model, geo, counter, intervals, options)
    }

    pub(crate) fn bulk_impl(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        intervals: &[Interval],
        options: IntervalOptions,
    ) -> Self {
        let endpoints = match options.endpoints {
            EndpointMode::Slab => None,
            EndpointMode::BTree => {
                let mut disk = Disk::new_on(spec, Self::page_size(geo), counter.clone());
                let mut entries: Vec<Entry> = intervals
                    .iter()
                    .map(|iv| Entry::with_aux(iv.lo, iv.id, iv.hi as u64))
                    .collect();
                entries.sort_unstable();
                let fill = options.btree_leaf_fill.unwrap_or(100);
                let tree = BPlusTree::bulk_load_with_fill(&mut disk, &entries, fill);
                Some((disk, tree))
            }
        };
        let points: Vec<Point> = intervals.iter().map(Interval::point).collect();
        let stab = MetablockTree::build_tuned_on(
            spec,
            geo,
            counter.clone(),
            points,
            ccix_core::DiagOptions::default(),
            options.tuning,
        );
        Self {
            geo,
            counter,
            endpoints,
            stab,
            len: intervals.len(),
            options,
            backend: spec.clone(),
        }
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The shared I/O counter (covers every component structure).
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// The construction options this index was built with (endpoint mode,
    /// tuning, leaf fill). A durable checkpoint records these so recovery
    /// rebuilds the same layout with the same write-path behaviour.
    pub fn options(&self) -> IntervalOptions {
        self.options
    }

    /// Fork a frozen read **snapshot** of the whole index, charging its
    /// I/O to `counter`.
    ///
    /// Every component forks copy-on-write (see
    /// [`ccix_core::MetablockTree::fork_snapshot`]); the snapshot answers
    /// every read — stabbing, batches, intersections — exactly as the live
    /// index would at the moment of the fork, including buffered updates
    /// and pending tombstones. Reads on the snapshot bill `counter`, never
    /// the live index's counter. This is the epoch the `ccix-serve` layer
    /// publishes behind an `Arc` after each group commit.
    pub fn fork_snapshot(&self, counter: IoCounter) -> Self {
        Self {
            geo: self.geo,
            counter: counter.clone(),
            endpoints: self
                .endpoints
                .as_ref()
                .map(|(disk, tree)| (disk.fork(counter.clone()), tree.clone())),
            stab: self.stab.fork_snapshot(counter),
            len: self.len,
            options: self.options,
            backend: BackendSpec::Model,
        }
    }

    /// The page backend this index was opened on. Snapshot forks always
    /// report [`BackendSpec::Model`].
    pub fn backend(&self) -> &BackendSpec {
        &self.backend
    }

    /// Whether this index's stores mirror their pages onto real files.
    pub fn is_file_backed(&self) -> bool {
        self.backend.is_file()
    }

    /// `(cold, warm)` charged-read counts summed over the file backend's
    /// stores — `pread`s that missed the page cache vs. cache hits. `None`
    /// on the model backend.
    pub fn file_stats(&self) -> Option<(u64, u64)> {
        if !self.is_file_backed() {
            return None;
        }
        let (mut cold, mut warm) = self.stab.store_file_stats().unwrap_or((0, 0));
        if let Some((disk, _)) = &self.endpoints {
            if let Some((c, w)) = disk.file_stats() {
                cold += c;
                warm += w;
            }
        }
        Some((cold, warm))
    }

    /// Drop every store's file-backend page cache, so the next charged
    /// read of each page is a cold `pread` (cold-cache measurement). A
    /// no-op on the model backend.
    pub fn clear_file_caches(&self) {
        self.stab.clear_store_file_cache();
        if let Some((disk, _)) = &self.endpoints {
            disk.clear_file_cache();
        }
    }

    /// `(component, page id, bytes)` images of every live **model** page,
    /// in a deterministic order — component 0 is the stabbing structure's
    /// point store (pages encoded via [`FixedBytes`]), component 1 the
    /// endpoint B+-tree's byte device (raw pages). Uncharged; the
    /// differential backend suite compares these across backends.
    pub fn model_page_images(&self) -> Vec<(u32, u32, Vec<u8>)> {
        let mut out: Vec<(u32, u32, Vec<u8>)> = self
            .stab
            .store_page_images()
            .into_iter()
            .map(|(id, bytes)| (0, id, bytes))
            .collect();
        if let Some((disk, _)) = &self.endpoints {
            out.extend(
                disk.live_page_ids()
                    .into_iter()
                    .map(|id| (1, id.0, disk.read_unbilled(id).to_vec())),
            );
        }
        out
    }

    /// As [`IntervalIndex::model_page_images`], but reading each page's
    /// bytes back from the **file** backend (cache bypassed). `None` on
    /// the model backend.
    pub fn file_page_images(&self) -> Option<Vec<(u32, u32, Vec<u8>)>> {
        if !self.is_file_backed() {
            return None;
        }
        let mut out: Vec<(u32, u32, Vec<u8>)> = self
            .stab
            .store_file_page_images()?
            .into_iter()
            .map(|(id, bytes)| (0, id, bytes))
            .collect();
        if let Some((disk, _)) = &self.endpoints {
            for id in disk.live_page_ids() {
                out.push((1, id.0, disk.file_page_bytes(id)?));
            }
        }
        Some(out)
    }

    /// Advance the stabbing structure's deferred reorganisation by one
    /// per-op budget slice (see
    /// [`ccix_core::MetablockTree::pump_reorg_step`]); returns `true`
    /// while work remains. A no-op unless
    /// [`ccix_core::Tuning::reorg_pages_per_op`] is finite.
    pub fn pump_reorg_step(&mut self) -> bool {
        self.stab.pump_reorg_step()
    }

    /// Deferred reorganisation debt in page transfers (see
    /// [`ccix_core::MetablockTree::reorg_debt`]).
    pub fn reorg_debt(&self) -> u64 {
        self.stab.reorg_debt()
    }

    /// Run any in-progress reorganisation to completion and bill all
    /// deferred debt (see [`ccix_core::MetablockTree::flush_reorgs`]).
    pub fn flush_reorgs(&mut self) {
        self.stab.flush_reorgs()
    }

    /// Disk blocks occupied by all component structures.
    pub fn space_pages(&self) -> usize {
        let endpoints = self
            .endpoints
            .as_ref()
            .map_or(0, |(disk, _)| disk.pages_in_use());
        endpoints + self.stab.space_pages()
    }

    /// Insert `[lo, hi]` with `id`. Amortised
    /// `O(log_B n + (log_B n)²/B)` I/Os.
    pub fn insert(&mut self, lo: i64, hi: i64, id: u64) {
        let iv = Interval::new(lo, hi, id);
        if let Some((disk, tree)) = &mut self.endpoints {
            tree.insert_entry(disk, Entry::with_aux(iv.lo, iv.id, iv.hi as u64));
        }
        self.stab.insert(iv.point());
        self.len += 1;
    }

    /// Delete a previously inserted interval — exactly the `(lo, hi, id)`
    /// triple it was inserted with. Amortised within the insert budget,
    /// `O(log_B n + (log_B n)²/B)` I/Os: the metablock tree buffers a
    /// tombstone next to the live copy and annihilates the pair at the
    /// next reorganisation; in [`EndpointMode::BTree`] the endpoint entry
    /// is removed eagerly (`O(log_B n)`, standard rebalancing).
    ///
    /// # Panics
    /// Panics if the index is empty; deleting an interval that is not
    /// stored (or reusing a deleted id) is a contract violation caught by
    /// debug assertions.
    pub fn delete(&mut self, lo: i64, hi: i64, id: u64) {
        let iv = Interval::new(lo, hi, id);
        if let Some((disk, tree)) = &mut self.endpoints {
            let removed = tree.delete(disk, iv.lo, iv.id);
            debug_assert!(removed, "deleted interval has no endpoint entry");
        }
        self.stab.delete(iv.point());
        self.len -= 1;
    }

    /// Delete a batch of intervals as **one batched operation**: the
    /// tombstones are routed in sorted order over a shared pinned read
    /// context ([`ccix_core::MetablockTree::delete_batch`]), so a
    /// correlated delete flood pays the shared descent prefix once per
    /// residency instead of once per delete.
    pub fn delete_batch(&mut self, intervals: &[(i64, i64, u64)]) {
        let pts: Vec<Point> = intervals
            .iter()
            .map(|&(lo, hi, id)| Interval::new(lo, hi, id).point())
            .collect();
        if let Some((disk, tree)) = &mut self.endpoints {
            for &(lo, _, id) in intervals {
                let removed = tree.delete(disk, lo, id);
                debug_assert!(removed, "deleted interval has no endpoint entry");
            }
        }
        self.stab.delete_batch(&pts);
        self.len -= intervals.len();
    }

    /// Apply a mixed batch of inserts and deletes as **one batched
    /// operation**: the stabbing structure routes the whole batch in
    /// sorted order over a shared pinned read context
    /// ([`ccix_core::MetablockTree::apply_batch`]), so a correlated mixed
    /// flood pays the shared descent prefix once per residency instead of
    /// once per op; in [`EndpointMode::BTree`] the endpoint entries are
    /// maintained eagerly, one at a time, exactly as for serial ops.
    ///
    /// Ops must be independent: deleting an interval the same batch
    /// inserts is a contract violation.
    pub fn apply_batch(&mut self, ops: &[IntervalOp]) {
        if let Some((disk, tree)) = &mut self.endpoints {
            for op in ops {
                match *op {
                    IntervalOp::Insert(iv) => {
                        tree.insert_entry(disk, Entry::with_aux(iv.lo, iv.id, iv.hi as u64));
                    }
                    IntervalOp::Delete(iv) => {
                        let removed = tree.delete(disk, iv.lo, iv.id);
                        debug_assert!(removed, "deleted interval has no endpoint entry");
                    }
                }
            }
        }
        let core_ops: Vec<Op> = ops
            .iter()
            .map(|op| match *op {
                IntervalOp::Insert(iv) => Op::Insert(iv.point()),
                IntervalOp::Delete(iv) => Op::Delete(iv.point()),
            })
            .collect();
        self.stab.apply_batch(&core_ops);
        for op in ops {
            match op {
                IntervalOp::Insert(_) => self.len += 1,
                IntervalOp::Delete(_) => self.len -= 1,
            }
        }
    }

    /// Logically deleted intervals whose tombstones are still pending
    /// cancellation inside the stabbing structure (diagnostic).
    pub fn pending_deletes(&self) -> usize {
        self.stab.pending_deletes()
    }

    /// Ids of all intervals containing `q` (stabbing query).
    /// `O(log_B n + t/B)` I/Os.
    pub fn stabbing(&self, q: i64) -> Vec<u64> {
        self.stabbing_intervals(q).iter().map(|iv| iv.id).collect()
    }

    /// Answer a whole flood of stabbing queries as **one batched
    /// operation**: the metablock tree processes the points in sorted order
    /// over a single pinned read context, so every block of the shared
    /// descent prefix is billed once per residency instead of once per
    /// query. Results are in input order.
    ///
    /// `O(log_B n + Σtᵢ/B)` I/Os for a correlated flood; scattered batches
    /// degrade gracefully to per-query cost.
    pub fn stab_batch(&self, qs: &[i64]) -> Vec<Vec<u64>> {
        self.stab_batch_intervals(qs)
            .into_iter()
            .map(|ivs| ivs.into_iter().map(|iv| iv.id).collect())
            .collect()
    }

    /// As [`IntervalIndex::stab_batch`], reusing `outs` for the per-query
    /// result buffers (resized to `qs.len()`, each slot cleared) — the
    /// canonical `_into` shape of the batch surface, see
    /// `docs/architecture.md` § Batched operations.
    pub fn stab_batch_into(&self, qs: &[i64], outs: &mut Vec<Vec<u64>>) {
        outs.truncate(qs.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(qs.len(), Vec::new);
        let mut pts = Vec::new();
        self.stab.query_batch_into(qs, &mut pts);
        for (o, ps) in outs.iter_mut().zip(&pts) {
            o.extend(ps.iter().map(|p| p.id));
        }
    }

    /// As [`IntervalIndex::stab_batch`], returning full intervals.
    pub fn stab_batch_intervals(&self, qs: &[i64]) -> Vec<Vec<Interval>> {
        let mut outs = Vec::new();
        self.stab_batch_intervals_into(qs, &mut outs);
        outs
    }

    /// As [`IntervalIndex::stab_batch_intervals`], reusing `outs` (see
    /// [`IntervalIndex::stab_batch_into`]).
    pub fn stab_batch_intervals_into(&self, qs: &[i64], outs: &mut Vec<Vec<Interval>>) {
        outs.truncate(qs.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(qs.len(), Vec::new);
        let mut pts = Vec::new();
        self.stab.query_batch_into(qs, &mut pts);
        for (o, ps) in outs.iter_mut().zip(&pts) {
            o.extend(ps.iter().map(|p| Interval::new(p.x, p.y, p.id)));
        }
    }

    /// As [`IntervalIndex::stabbing`], returning full intervals.
    pub fn stabbing_intervals(&self, q: i64) -> Vec<Interval> {
        let mut pts = Vec::new();
        self.stab.query_into(q, &mut pts);
        pts.into_iter()
            .map(|p| Interval::new(p.x, p.y, p.id))
            .collect()
    }

    /// Report every stored interval whose **left endpoint** lies in
    /// `[x1, x2]`, in `O(log_B n + t/B)` I/Os — the one-dimensional
    /// x-range that an intersection query composes with a stabbing query
    /// (Proposition 2.2). Answered from the endpoint B+-tree in
    /// [`EndpointMode::BTree`], or the metablock tree's slab order in
    /// [`EndpointMode::Slab`].
    pub fn left_range(&self, x1: i64, x2: i64) -> Vec<Interval> {
        let mut out = Vec::new();
        if x1 > x2 {
            return out;
        }
        match &self.endpoints {
            Some((disk, tree)) => {
                for e in tree.range_entries(disk, x1, x2) {
                    out.push(Interval::new(e.key, e.aux as i64, e.value));
                }
            }
            None => {
                let mut pts = Vec::new();
                self.stab.x_range_into(x1, x2, &mut pts);
                out.extend(pts.into_iter().map(|p| Interval::new(p.x, p.y, p.id)));
            }
        }
        out
    }

    /// Ids of all intervals intersecting `[q1, q2]`.
    /// `O(log_B n + t/B)` I/Os; no interval is reported twice.
    pub fn intersecting(&self, q1: i64, q2: i64) -> Vec<u64> {
        self.intersecting_intervals(q1, q2)
            .iter()
            .map(|iv| iv.id)
            .collect()
    }

    /// As [`IntervalIndex::intersecting`], returning full intervals.
    pub fn intersecting_intervals(&self, q1: i64, q2: i64) -> Vec<Interval> {
        assert!(q1 <= q2, "query interval endpoints out of order");
        // Types 3/4: intervals containing q1.
        let mut out = self.stabbing_intervals(q1);
        // Types 1/2: left endpoint strictly inside (q1, q2]. Strictness
        // avoids double-reporting intervals with lo == q1, which the
        // stabbing query already returned.
        if q1 < q2 {
            match &self.endpoints {
                Some((disk, tree)) => {
                    for e in tree.range_entries(disk, q1 + 1, q2) {
                        // The leaf entry is a covering record: key = lo,
                        // value = id, aux = hi, so full intervals are
                        // reported with no extra I/O.
                        out.push(Interval::new(e.key, e.aux as i64, e.value));
                    }
                }
                None => {
                    let mut pts = Vec::new();
                    self.stab.x_range_into(q1 + 1, q2, &mut pts);
                    out.extend(pts.into_iter().map(|p| Interval::new(p.x, p.y, p.id)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_validation() {
        let iv = Interval::new(2, 5, 1);
        assert_eq!(iv.point(), Point::new(2, 5, 1));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_interval_rejected() {
        let _ = Interval::new(5, 2, 1);
    }

    #[test]
    fn slab_and_btree_modes_agree() {
        let ivs: Vec<Interval> = (0..300)
            .map(|i| {
                let lo = (i * 37) % 500;
                Interval::new(lo, lo + (i * 13) % 90, i as u64)
            })
            .collect();
        let slab = crate::IndexBuilder::new(Geometry::new(8)).bulk(IoCounter::new(), &ivs);
        let btree = crate::IndexBuilder::new(Geometry::new(8))
            .paper()
            .bulk(IoCounter::new(), &ivs);
        assert!(
            slab.space_pages() < btree.space_pages(),
            "slab mode drops a copy"
        );
        for q in (-10..610).step_by(7) {
            let mut a = slab.intersecting(q, q + 25);
            let mut b = btree.intersecting(q, q + 25);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "q={q}");
        }
    }
}
