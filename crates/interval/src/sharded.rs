//! X-range sharding: a routing directory over independent interval indexes.
//!
//! The metablock tree is I/O-optimal but single-threaded on the write path;
//! one structure can only move as fast as one core. [`ShardedIntervalIndex`]
//! takes the classic partition-for-parallelism step: the key space is split
//! by **left endpoint** into `K` contiguous x-ranges at `K−1` split points
//! (chosen from a workload sample, see
//! [`ShardedBuilder::splits_from_sample`]), and each range is served by its
//! own fully independent [`IntervalIndex`] — private pages, private striped
//! [`IoCounter`], private incremental-reorganisation debt.
//!
//! **Routing.** An interval lives in exactly one shard: the one whose
//! x-range contains `lo`. A stabbing query `q` must consult shard
//! `shard_of(q)` and any earlier shard that might store an interval
//! reaching past its right boundary; the directory keeps a per-shard
//! monotone upper bound `max_hi` (raised on insert, never lowered on
//! delete) so those earlier shards are consulted only while
//! `max_hi ≥ q`. The bound is a sound over-approximation — after deletes
//! it may route a query to a shard with no matching interval, costing that
//! shard's `O(log_B n)` descent; this is the *routing overhead* documented
//! in `docs/tuning.md` and is the only I/O a sharded index performs that an
//! unsharded one would not.
//!
//! **Fan-out.** Batched operations (`stab_batch*`, `apply_batch`,
//! [`ShardedIntervalIndex::apply_submissions`], bulk build) partition their
//! work into per-shard sub-batches — each preserving input order — and fan
//! out over [`ccix_core::par::run_parallel`] with the
//! [`Tuning::shard_threads`] budget. Results are gathered in shard order,
//! so output is identical for every thread count; every shard charges its
//! own counter no matter which thread runs it, so I/O totals are
//! thread-invariant too. With one shard (and `shard_threads = 1`) every
//! code path degenerates to the unsharded index: same structure, same
//! bytes, same I/O counts.
//!
//! [`Tuning::shard_threads`]: ccix_core::Tuning::shard_threads

use ccix_core::par::run_parallel;
use ccix_extmem::{Geometry, IoCounter, IoSnapshot};

use crate::builder::IndexBuilder;
use crate::index::{Interval, IntervalIndex, IntervalOp, IntervalOptions};

/// Choose up to `shards − 1` split points as quantiles of a sample of left
/// endpoints (duplicates collapse, so heavily skewed samples may yield
/// fewer shards).
///
/// # Panics
/// Panics if `shards == 0`.
pub fn split_points_from_sample(sample_los: &[i64], shards: usize) -> Vec<i64> {
    assert!(shards > 0, "a sharded index needs at least one shard");
    if shards == 1 || sample_los.is_empty() {
        return Vec::new();
    }
    let mut los = sample_los.to_vec();
    los.sort_unstable();
    let mut splits = Vec::with_capacity(shards - 1);
    for i in 1..shards {
        splits.push(los[i * los.len() / shards]);
    }
    splits.dedup();
    // A split equal to the smallest endpoint would leave shard 0 empty for
    // the sampled workload; drop it.
    if splits.first() == los.first() {
        splits.remove(0);
    }
    splits
}

/// Configures and constructs [`ShardedIntervalIndex`] instances.
///
/// Wraps an [`IndexBuilder`] (every shard uses its geometry, options and
/// page backend) plus the split points of the routing directory. Like
/// [`IndexBuilder`] it is cheap to clone and can stamp out any number of
/// indexes.
///
/// ```
/// use ccix_extmem::Geometry;
/// use ccix_interval::{IndexBuilder, Interval};
///
/// let ivs: Vec<Interval> = (0..100).map(|i| Interval::new(i, i + 5, i as u64)).collect();
/// let idx = IndexBuilder::new(Geometry::new(8))
///     .sharded()
///     .splits(vec![25, 50, 75])
///     .bulk(&ivs);
/// assert_eq!(idx.num_shards(), 4);
/// let mut hit = idx.stabbing(30);
/// hit.sort_unstable();
/// assert_eq!(hit.len(), 6); // intervals [25..=30, …]
/// ```
#[derive(Clone, Debug)]
pub struct ShardedBuilder {
    inner: IndexBuilder,
    splits: Vec<i64>,
}

impl ShardedBuilder {
    /// Shard the layout configured by `inner`. Until
    /// [`ShardedBuilder::splits`] (or
    /// [`ShardedBuilder::splits_from_sample`]) is called the directory has
    /// a single shard.
    pub fn new(inner: IndexBuilder) -> Self {
        Self {
            inner,
            splits: Vec::new(),
        }
    }

    /// Set the split points explicitly: `splits.len() + 1` shards, shard
    /// `i` owning left endpoints in `[splits[i−1], splits[i])` (shard 0
    /// from `−∞`, the last shard to `+∞`).
    ///
    /// # Panics
    /// Panics unless the points are strictly increasing.
    pub fn splits(mut self, splits: Vec<i64>) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly increasing"
        );
        self.splits = splits;
        self
    }

    /// Choose split points from a sample of left endpoints (e.g. the `lo`
    /// values of an existing index's content, or of the expected flood) via
    /// [`split_points_from_sample`].
    pub fn splits_from_sample(self, sample_los: &[i64], shards: usize) -> Self {
        let splits = split_points_from_sample(sample_los, shards);
        self.splits(splits)
    }

    /// The configured split points.
    pub fn configured_splits(&self) -> &[i64] {
        &self.splits
    }

    /// The wrapped per-shard builder.
    pub fn index_builder(&self) -> IndexBuilder {
        self.inner.clone()
    }

    /// Open an empty sharded index. Each shard gets its own fresh
    /// [`IoCounter`].
    pub fn open(&self) -> ShardedIntervalIndex {
        let shards: Vec<IntervalIndex> = (0..=self.splits.len())
            .map(|_| self.inner.open(IoCounter::new()))
            .collect();
        let max_hi = initial_max_hi(shards.len());
        ShardedIntervalIndex {
            splits: self.splits.clone(),
            shards,
            max_hi,
            len: 0,
        }
    }

    /// Bulk-build over `intervals` (ids must be unique): the set is
    /// partitioned by the routing directory and the per-shard builds fan
    /// out over the [`Tuning::shard_threads`] budget, each charging its own
    /// fresh counter.
    ///
    /// [`Tuning::shard_threads`]: ccix_core::Tuning::shard_threads
    pub fn bulk(&self, intervals: &[Interval]) -> ShardedIntervalIndex {
        let k = self.splits.len() + 1;
        let mut parts: Vec<Vec<Interval>> = vec![Vec::new(); k];
        let mut max_hi = initial_max_hi(k);
        for &iv in intervals {
            let s = self.splits.partition_point(|&p| p <= iv.lo);
            max_hi[s] = max_hi[s].max(iv.hi);
            parts[s].push(iv);
        }
        let budget = self
            .inner
            .configured_options()
            .tuning
            .effective_shard_threads();
        let tasks: Vec<_> = parts
            .into_iter()
            .map(|part| {
                // Each shard's build task owns a clone of the builder; a
                // file-backed spec shares its name sequence across clones,
                // so parallel shard builds never collide on file names.
                let builder = self.inner.clone();
                move |_inner: usize| builder.bulk(IoCounter::new(), &part)
            })
            .collect();
        let shards = run_parallel(tasks, budget);
        ShardedIntervalIndex {
            splits: self.splits.clone(),
            shards,
            max_hi,
            len: intervals.len(),
        }
    }
}

impl IndexBuilder {
    /// Shard this layout behind an x-range routing directory (see
    /// [`ShardedBuilder`]).
    pub fn sharded(self) -> ShardedBuilder {
        ShardedBuilder::new(self)
    }
}

/// Per-shard routing bounds at construction. A single-shard directory is a
/// pure pass-through — its bound is pinned at `i64::MAX` so it never
/// prunes, keeping every operation (and every I/O count) identical to the
/// unsharded index it wraps.
fn initial_max_hi(k: usize) -> Vec<i64> {
    if k == 1 {
        vec![i64::MAX]
    } else {
        vec![i64::MIN; k]
    }
}

/// An x-range routing directory over `K` independent [`IntervalIndex`]
/// shards (see the module source docs for routing and fan-out rules).
///
/// The public surface mirrors [`IntervalIndex`] — stabbing and
/// intersection queries, batched `_into` variants, mixed-batch applies,
/// incremental-reorganisation pumping, consistent snapshot forks — plus
/// the group-commit entry point [`ShardedIntervalIndex::apply_submissions`]
/// used by the `ccix-serve` writer thread.
#[derive(Debug)]
pub struct ShardedIntervalIndex {
    /// `K − 1` ascending split keys; shard `i` owns `lo ∈ [splits[i−1],
    /// splits[i])`.
    splits: Vec<i64>,
    shards: Vec<IntervalIndex>,
    /// Per-shard monotone upper bound on stored `hi` (never lowered on
    /// delete; `i64::MIN` while a shard has never held an interval).
    max_hi: Vec<i64>,
    len: usize,
}

impl ShardedIntervalIndex {
    /// Wrap an existing unsharded index as a single-shard directory — the
    /// pass-through the serving engine uses so one writer-thread code path
    /// covers both shapes. Routing never prunes (the bound is `i64::MAX`),
    /// so behaviour and I/O counts are exactly the wrapped index's.
    pub fn from_single(index: IntervalIndex) -> Self {
        Self {
            splits: Vec::new(),
            max_hi: vec![i64::MAX],
            len: index.len(),
            shards: vec![index],
        }
    }

    /// The shard owning left endpoint `lo`.
    fn shard_of(&self, lo: i64) -> usize {
        self.splits.partition_point(|&p| p <= lo)
    }

    /// Shard fan-out thread budget (resolved
    /// [`ccix_core::Tuning::shard_threads`]).
    fn budget(&self) -> usize {
        self.shards[0].options().tuning.effective_shard_threads()
    }

    /// Shards a stabbing query at `q` must consult: every shard whose
    /// x-range starts at or before `q` and whose `max_hi` bound reaches
    /// `q`.
    fn stab_shards(&self, q: i64) -> impl Iterator<Item = usize> + '_ {
        let last = self.shard_of(q);
        (0..=last).filter(move |&s| self.max_hi[s] >= q)
    }

    /// Number of shards (`K`).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing directory's split points (`K − 1` ascending keys).
    pub fn splits(&self) -> &[i64] {
        &self.splits
    }

    /// The shards, in x-range order.
    pub fn shards(&self) -> &[IntervalIndex] {
        &self.shards
    }

    /// Give up the directory and return the shards, in x-range order. The
    /// single-shard case is how `ccix-serve` hands back an unsharded
    /// [`IntervalIndex`] on shutdown.
    pub fn into_shards(self) -> Vec<IntervalIndex> {
        self.shards
    }

    /// Total number of intervals stored across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no shard stores an interval.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block geometry (shared by every shard).
    pub fn geometry(&self) -> Geometry {
        self.shards[0].geometry()
    }

    /// The construction options every shard was built with.
    pub fn options(&self) -> IntervalOptions {
        self.shards[0].options()
    }

    /// Aggregate I/O across the per-shard counters. Shard counters are
    /// independent, so this is exact whenever no fan-out is in flight.
    pub fn io_totals(&self) -> IoSnapshot {
        let mut agg = IoSnapshot::default();
        for s in &self.shards {
            let snap = s.counter().snapshot();
            agg.reads += snap.reads;
            agg.writes += snap.writes;
        }
        agg
    }

    /// Disk blocks occupied, summed over shards.
    pub fn space_pages(&self) -> usize {
        self.shards.iter().map(|s| s.space_pages()).sum()
    }

    /// Whether the shards mirror their pages onto real files.
    pub fn is_file_backed(&self) -> bool {
        self.shards.iter().any(IntervalIndex::is_file_backed)
    }

    /// `(cold, warm)` charged-read counts summed over every shard's file
    /// backend (see [`IntervalIndex::file_stats`]); `None` on the model
    /// backend.
    pub fn file_stats(&self) -> Option<(u64, u64)> {
        if !self.is_file_backed() {
            return None;
        }
        let mut agg = (0, 0);
        for s in &self.shards {
            if let Some((c, w)) = s.file_stats() {
                agg.0 += c;
                agg.1 += w;
            }
        }
        Some(agg)
    }

    /// Drop every shard's file-backend page caches (cold-cache
    /// measurement); no-op on the model backend.
    pub fn clear_file_caches(&self) {
        for s in &self.shards {
            s.clear_file_caches();
        }
    }

    /// Deferred reorganisation debt in page transfers, summed over shards.
    pub fn reorg_debt(&self) -> u64 {
        self.shards.iter().map(|s| s.reorg_debt()).sum()
    }

    /// Pending (uncancelled) tombstones, summed over shards.
    pub fn pending_deletes(&self) -> usize {
        self.shards.iter().map(|s| s.pending_deletes()).sum()
    }

    /// Run every shard's in-progress reorganisation to completion (shards
    /// fan out over the thread budget).
    pub fn flush_reorgs(&mut self) {
        let budget = self.budget();
        let tasks: Vec<_> = self
            .shards
            .iter_mut()
            .map(|shard| move |_inner: usize| shard.flush_reorgs())
            .collect();
        run_parallel(tasks, budget);
    }

    /// Pump up to `slices` incremental-reorganisation steps **per shard**
    /// (shards with debt fan out over the thread budget) and return the
    /// total debt remaining — the writer thread's idle-time bleed.
    pub fn pump_reorg(&mut self, slices: usize) -> u64 {
        let with_debt: Vec<bool> = self.shards.iter().map(|s| s.reorg_debt() > 0).collect();
        let budget = self.budget();
        let tasks: Vec<_> = self
            .shards
            .iter_mut()
            .zip(with_debt)
            .filter(|(_, debt)| *debt)
            .map(|(shard, _)| {
                move |_inner: usize| {
                    for _ in 0..slices {
                        if !shard.pump_reorg_step() {
                            break;
                        }
                    }
                }
            })
            .collect();
        if !tasks.is_empty() {
            run_parallel(tasks, budget);
        }
        self.reorg_debt()
    }

    /// Fork a frozen read snapshot of **all shards at once** — one
    /// consistent epoch, every shard's snapshot charging the same shared
    /// striped `counter` (see [`IntervalIndex::fork_snapshot`]).
    pub fn fork_snapshot(&self, counter: IoCounter) -> Self {
        Self {
            splits: self.splits.clone(),
            shards: self
                .shards
                .iter()
                .map(|s| s.fork_snapshot(counter.clone()))
                .collect(),
            max_hi: self.max_hi.clone(),
            len: self.len,
        }
    }

    /// Insert `[lo, hi]` with `id` into the owning shard.
    pub fn insert(&mut self, lo: i64, hi: i64, id: u64) {
        let s = self.shard_of(lo);
        self.max_hi[s] = self.max_hi[s].max(hi);
        self.shards[s].insert(lo, hi, id);
        self.len += 1;
    }

    /// Delete a previously inserted interval from the owning shard (see
    /// [`IntervalIndex::delete`] for the contract). The routing bound is
    /// deliberately not lowered — see the module source docs.
    pub fn delete(&mut self, lo: i64, hi: i64, id: u64) {
        let s = self.shard_of(lo);
        self.shards[s].delete(lo, hi, id);
        self.len -= 1;
    }

    /// Delete a batch of intervals: partitioned by owning shard (input
    /// order preserved within each sub-batch) and fanned out, each shard
    /// running its own batched tombstone routing
    /// ([`IntervalIndex::delete_batch`]).
    pub fn delete_batch(&mut self, intervals: &[(i64, i64, u64)]) {
        let mut per: Vec<Vec<(i64, i64, u64)>> = vec![Vec::new(); self.shards.len()];
        for &t in intervals {
            per[self.shard_of(t.0)].push(t);
        }
        self.len -= intervals.len();
        let budget = self.budget();
        let tasks: Vec<_> = self
            .shards
            .iter_mut()
            .zip(per)
            .filter(|(_, part)| !part.is_empty())
            .map(|(shard, part)| move |_inner: usize| shard.delete_batch(&part))
            .collect();
        run_parallel(tasks, budget);
    }

    /// Apply a mixed batch of inserts and deletes as one batched operation:
    /// ops are partitioned by owning shard (input order preserved within
    /// each sub-batch, so [`IntervalIndex::apply_batch`]'s independence
    /// contract carries over) and the per-shard applies fan out over the
    /// thread budget.
    pub fn apply_batch(&mut self, ops: &[IntervalOp]) {
        let per = self.route_ops(ops);
        let budget = self.budget();
        let tasks: Vec<_> = self
            .shards
            .iter_mut()
            .zip(per)
            .filter(|(_, part)| !part.is_empty())
            .map(|(shard, part)| move |_inner: usize| shard.apply_batch(&part))
            .collect();
        run_parallel(tasks, budget);
    }

    /// Partition `ops` by owning shard, maintaining `len` and the routing
    /// bounds.
    fn route_ops(&mut self, ops: &[IntervalOp]) -> Vec<Vec<IntervalOp>> {
        let mut per: Vec<Vec<IntervalOp>> = vec![Vec::new(); self.shards.len()];
        for &op in ops {
            let s = match op {
                IntervalOp::Insert(iv) => {
                    let s = self.shard_of(iv.lo);
                    self.max_hi[s] = self.max_hi[s].max(iv.hi);
                    self.len += 1;
                    s
                }
                IntervalOp::Delete(iv) => {
                    self.len -= 1;
                    self.shard_of(iv.lo)
                }
            };
            per[s].push(op);
        }
        per
    }

    /// Apply a **group commit**: a sequence of independent submissions,
    /// each a mixed batch whose ops are independent *within* the submission
    /// but not necessarily across submissions (a later submission may
    /// delete what an earlier one inserted). Each submission is split into
    /// per-shard sub-floods; one worker per shard then applies that shard's
    /// sub-floods in submission order and finishes by pumping up to
    /// `pump_slices` steps of the shard's own incremental-reorganisation
    /// debt — the whole group costs one fan-out barrier, and reorganisation
    /// work that used to serialise inside the writer thread now runs
    /// shard-parallel.
    ///
    /// With one shard this is step-for-step identical to applying each
    /// submission with [`IntervalIndex::apply_batch`] and then pumping
    /// `pump_slices` reorganisation steps.
    pub fn apply_submissions(&mut self, subs: &[Vec<IntervalOp>], pump_slices: usize) {
        let k = self.shards.len();
        let mut per: Vec<Vec<Vec<IntervalOp>>> = vec![Vec::new(); k];
        for sub in subs {
            for (s, part) in self.route_ops(sub).into_iter().enumerate() {
                if !part.is_empty() {
                    per[s].push(part);
                }
            }
        }
        let with_debt: Vec<bool> = self.shards.iter().map(|s| s.reorg_debt() > 0).collect();
        let budget = self.budget();
        let tasks: Vec<_> = self
            .shards
            .iter_mut()
            .zip(per)
            .zip(with_debt)
            .filter(|((_, floods), debt)| !floods.is_empty() || *debt)
            .map(|((shard, floods), _)| {
                move |_inner: usize| {
                    for flood in &floods {
                        shard.apply_batch(flood);
                    }
                    for _ in 0..pump_slices {
                        if !shard.pump_reorg_step() {
                            break;
                        }
                    }
                }
            })
            .collect();
        if !tasks.is_empty() {
            run_parallel(tasks, budget);
        }
    }

    /// Ids of all intervals containing `q`; consults only the shards the
    /// routing directory cannot rule out. `O(Σ_consulted (log_B nᵢ) + t/B)`
    /// I/Os across the consulted shards' counters.
    pub fn stabbing(&self, q: i64) -> Vec<u64> {
        let mut out = Vec::new();
        for s in self.stab_shards(q) {
            out.extend(self.shards[s].stabbing(q));
        }
        out
    }

    /// As [`ShardedIntervalIndex::stabbing`], returning full intervals.
    pub fn stabbing_intervals(&self, q: i64) -> Vec<Interval> {
        let mut out = Vec::new();
        for s in self.stab_shards(q) {
            out.extend(self.shards[s].stabbing_intervals(q));
        }
        out
    }

    /// Answer a flood of stabbing queries as one batched operation: the
    /// flood is split into per-shard sub-batches (input order preserved, so
    /// each shard's batched descent amortisation still applies) which fan
    /// out over the thread budget; per-query results gather contributions
    /// in shard order, so output is identical for every thread count.
    pub fn stab_batch(&self, qs: &[i64]) -> Vec<Vec<u64>> {
        let mut outs = Vec::new();
        self.stab_batch_into(qs, &mut outs);
        outs
    }

    /// As [`ShardedIntervalIndex::stab_batch`], reusing `outs` for the
    /// per-query result buffers.
    pub fn stab_batch_into(&self, qs: &[i64], outs: &mut Vec<Vec<u64>>) {
        outs.truncate(qs.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(qs.len(), Vec::new);
        for (slots, sub) in self.fan_out_stabs(qs) {
            for (slot, ids) in slots.into_iter().zip(sub) {
                outs[slot].extend(ids.iter().map(|iv| iv.id));
            }
        }
    }

    /// As [`ShardedIntervalIndex::stab_batch`], returning full intervals.
    pub fn stab_batch_intervals(&self, qs: &[i64]) -> Vec<Vec<Interval>> {
        let mut outs = Vec::new();
        self.stab_batch_intervals_into(qs, &mut outs);
        outs
    }

    /// As [`ShardedIntervalIndex::stab_batch_intervals`], reusing `outs`.
    pub fn stab_batch_intervals_into(&self, qs: &[i64], outs: &mut Vec<Vec<Interval>>) {
        outs.truncate(qs.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(qs.len(), Vec::new);
        for (slots, sub) in self.fan_out_stabs(qs) {
            for (slot, ivs) in slots.into_iter().zip(sub) {
                outs[slot].extend(ivs);
            }
        }
    }

    /// Split a stab flood into per-shard sub-batches, run them in parallel,
    /// and return `(input slots, per-slot intervals)` per consulted shard,
    /// in shard order.
    fn fan_out_stabs(&self, qs: &[i64]) -> Vec<(Vec<usize>, Vec<Vec<Interval>>)> {
        let k = self.shards.len();
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut subs: Vec<Vec<i64>> = vec![Vec::new(); k];
        for (slot, &q) in qs.iter().enumerate() {
            for s in self.stab_shards(q) {
                slots[s].push(slot);
                subs[s].push(q);
            }
        }
        let budget = self.budget();
        let tasks: Vec<_> = subs
            .into_iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(s, sub)| {
                let shard = &self.shards[s];
                (s, move |_inner: usize| shard.stab_batch_intervals(&sub))
            })
            .collect();
        let (order, tasks): (Vec<usize>, Vec<_>) = tasks.into_iter().unzip();
        let results = run_parallel(tasks, budget);
        order
            .into_iter()
            .zip(results)
            .map(|(s, res)| (std::mem::take(&mut slots[s]), res))
            .collect()
    }

    /// Report every stored interval whose left endpoint lies in `[x1, x2]`
    /// (see [`IntervalIndex::left_range`]); consults exactly the shards
    /// whose x-ranges overlap `[x1, x2]`, in shard order.
    pub fn left_range(&self, x1: i64, x2: i64) -> Vec<Interval> {
        let mut out = Vec::new();
        if x1 > x2 {
            return out;
        }
        for s in self.shard_of(x1)..=self.shard_of(x2) {
            out.extend(self.shards[s].left_range(x1, x2));
        }
        out
    }

    /// Ids of all intervals intersecting `[q1, q2]`; no interval is
    /// reported twice (shards hold disjoint interval sets and each shard's
    /// own intersection query never double-reports).
    pub fn intersecting(&self, q1: i64, q2: i64) -> Vec<u64> {
        self.intersecting_intervals(q1, q2)
            .iter()
            .map(|iv| iv.id)
            .collect()
    }

    /// As [`ShardedIntervalIndex::intersecting`], returning full intervals.
    pub fn intersecting_intervals(&self, q1: i64, q2: i64) -> Vec<Interval> {
        assert!(q1 <= q2, "query interval endpoints out of order");
        let mut out = Vec::new();
        let (first, last) = (self.shard_of(q1), self.shard_of(q2));
        for s in 0..=last {
            // Shards from `first` on overlap `[q1, q2]` in lo-space and
            // always need their left-endpoint range part; shards left of
            // `first` hold only intervals with `lo < q1` and contribute
            // only by stabbing `q1`, which the `max_hi` bound gates.
            if s >= first || self.max_hi[s] >= q1 {
                out.extend(self.shards[s].intersecting_intervals(q1, q2));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveIntervalStore;

    fn workload(n: usize) -> Vec<Interval> {
        (0..n)
            .map(|i| {
                let lo = ((i * 2654435761) % 1000) as i64;
                Interval::new(lo, lo + ((i * 40503) % 120) as i64, i as u64)
            })
            .collect()
    }

    fn sharded(ivs: &[Interval], splits: Vec<i64>, threads: usize) -> ShardedIntervalIndex {
        let tuning = ccix_core::Tuning {
            shard_threads: threads,
            ..ccix_core::Tuning::default()
        };
        IndexBuilder::new(Geometry::new(8))
            .tuning(tuning)
            .sharded()
            .splits(splits)
            .bulk(ivs)
    }

    #[test]
    fn quantile_splits_are_strictly_increasing() {
        let los: Vec<i64> = (0..1000).map(|i| (i * 7) % 400).collect();
        for k in 1..=8 {
            let splits = split_points_from_sample(&los, k);
            assert!(splits.len() < k.max(1));
            assert!(splits.windows(2).all(|w| w[0] < w[1]), "k={k}");
        }
    }

    #[test]
    fn agrees_with_oracle_across_shard_counts() {
        let ivs = workload(600);
        let mut oracle = NaiveIntervalStore::new(Geometry::new(8), IoCounter::new());
        for iv in &ivs {
            oracle.insert(iv.lo, iv.hi, iv.id);
        }
        for splits in [vec![], vec![500], vec![250, 500, 750]] {
            let idx = sharded(&ivs, splits.clone(), 2);
            assert_eq!(idx.len(), ivs.len());
            for q in (-20..1140).step_by(31) {
                let mut got = idx.stabbing(q);
                let mut want = oracle.stabbing(q);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "stab q={q} splits={splits:?}");
                let mut got = idx.intersecting(q, q + 57);
                let mut want = oracle.intersecting(q, q + 57);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "intersect q={q} splits={splits:?}");
            }
        }
    }

    #[test]
    fn batched_results_are_thread_invariant() {
        let ivs = workload(400);
        let qs: Vec<i64> = (0..64).map(|i| (i * 37) % 1100).collect();
        let seq = sharded(&ivs, vec![300, 600], 1);
        let par = sharded(&ivs, vec![300, 600], 4);
        assert_eq!(seq.stab_batch(&qs), par.stab_batch(&qs));
        assert_eq!(
            seq.io_totals(),
            par.io_totals(),
            "per-shard I/O must not depend on the thread budget"
        );
    }

    #[test]
    fn apply_submissions_routes_and_pumps() {
        let ivs = workload(200);
        let mut idx = sharded(&ivs, vec![333, 666], 2);
        let subs = vec![
            vec![
                IntervalOp::Insert(Interval::new(10, 2000, 9001)),
                IntervalOp::Insert(Interval::new(700, 710, 9002)),
            ],
            vec![IntervalOp::Delete(Interval::new(10, 2000, 9001))],
        ];
        idx.apply_submissions(&subs, 4);
        assert_eq!(idx.len(), ivs.len() + 1);
        let mut hit = idx.stabbing(705);
        hit.sort_unstable();
        assert!(hit.contains(&9002));
        assert!(!idx.stabbing(1500).contains(&9001), "delete visible");
    }

    #[test]
    fn single_shard_matches_unsharded_io_exactly() {
        let ivs = workload(300);
        let counter = IoCounter::new();
        let flat = IndexBuilder::new(Geometry::new(8)).bulk(counter.clone(), &ivs);
        let one = IndexBuilder::new(Geometry::new(8)).sharded().bulk(&ivs);
        assert_eq!(one.num_shards(), 1);
        assert_eq!(counter.snapshot(), one.io_totals(), "bulk I/O identical");
        let before_flat = counter.snapshot();
        let before_shard = one.io_totals();
        let qs: Vec<i64> = (0..40).map(|i| i * 29).collect();
        let a = flat.stab_batch(&qs);
        let b = one.stab_batch(&qs);
        assert_eq!(a, b);
        assert_eq!(
            counter.since(before_flat),
            before_shard.delta(one.io_totals()),
            "query I/O identical"
        );
    }
}
