//! # `ccix-interval` — external dynamic interval management
//!
//! Indexing constraints for convex CQLs reduces to dynamic interval
//! management (§2.1): maintain a set of intervals `[lo, hi]` under
//! insertion so that *interval intersection* queries — report every stored
//! interval intersecting a query interval — are I/O-efficient.
//!
//! Proposition 2.2 and Fig. 3 split an intersection query `[x1, x2]` into:
//!
//! * **types 1 and 2** — intervals whose left endpoint lies in `(x1, x2]`:
//!   a one-dimensional range query on a B+-tree over left endpoints;
//! * **types 3 and 4** — intervals containing `x1` (a *stabbing* query):
//!   mapping `[lo, hi]` to the point `(lo, hi)` above the diagonal turns
//!   the stabbing query into a diagonal-corner query at `x1`, answered by
//!   the metablock tree of §3.
//!
//! No interval is reported twice (the two endpoint classes are disjoint).
//! Costs: query `O(log_B n + t/B)`, insert amortised
//! `O(log_B n + (log_B n)²/B)`, space `O(n/B)` — the paper's Theorem 3.7
//! carried through the reduction.
//!
//! ```
//! use ccix_extmem::{Geometry, IoCounter};
//! use ccix_interval::IndexBuilder;
//!
//! let mut idx = IndexBuilder::new(Geometry::new(8)).open(IoCounter::new());
//! idx.insert(1, 4, 10);
//! idx.insert(3, 9, 11);
//! idx.insert(6, 7, 12);
//! let mut stabbed = idx.stabbing(4);
//! stabbed.sort_unstable();
//! assert_eq!(stabbed, vec![10, 11]);
//! let mut hits = idx.intersecting(5, 6);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![11, 12]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod index;
mod naive;
mod sharded;

pub use builder::IndexBuilder;
pub use index::{EndpointMode, Interval, IntervalIndex, IntervalOp, IntervalOptions};
pub use naive::NaiveIntervalStore;
pub use sharded::{split_points_from_sample, ShardedBuilder, ShardedIntervalIndex};
