//! The baseline the paper dismisses in §2.1: a heap file of intervals,
//! scanned linearly per query.
//!
//! "There is a trivial, but inefficient, solution … this involves a linear
//! scan of the generalized relation." Insertions are `O(1)` (append to the
//! last page); every query is `O(n/B)`. Experiment E9 measures the
//! crossover against [`crate::IntervalIndex`].

use ccix_extmem::{Geometry, IoCounter, PageId, TypedStore};

use crate::Interval;

/// An unindexed paged heap of intervals.
#[derive(Debug)]
pub struct NaiveIntervalStore {
    store: TypedStore<Interval>,
    pages: Vec<PageId>,
    last_len: usize,
    len: usize,
}

impl NaiveIntervalStore {
    /// Create an empty store with block size `geo.b`.
    pub fn new(geo: Geometry, counter: IoCounter) -> Self {
        Self {
            store: TypedStore::new(geo.b, counter),
            pages: Vec::new(),
            last_len: 0,
            len: 0,
        }
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Disk blocks occupied.
    pub fn space_pages(&self) -> usize {
        self.store.pages_in_use()
    }

    /// The shared I/O counter.
    pub fn counter(&self) -> &IoCounter {
        self.store.counter()
    }

    /// Append an interval: `O(1)` I/Os (read-modify-write of the tail page).
    pub fn insert(&mut self, lo: i64, hi: i64, id: u64) {
        let iv = Interval::new(lo, hi, id);
        if self.last_len == self.store.capacity() || self.pages.is_empty() {
            let pg = self.store.alloc(vec![iv]);
            self.pages.push(pg);
            self.last_len = 1;
        } else {
            let pg = *self.pages.last().expect("nonempty");
            let mut recs = self.store.read(pg).to_vec();
            recs.push(iv);
            self.store.write(pg, recs);
            self.last_len += 1;
        }
        self.len += 1;
    }

    /// Delete the interval with `id`: a full scan to find it (`O(n/B)`
    /// I/Os, the heap file has no index), then the classic heap-file
    /// compaction — the last record fills the hole, keeping every page
    /// dense. Returns whether the id was present.
    pub fn delete(&mut self, id: u64) -> bool {
        let mut home: Option<(usize, usize)> = None;
        'scan: for (pi, &pg) in self.pages.iter().enumerate() {
            for (ri, iv) in self.store.read(pg).iter().enumerate() {
                if iv.id == id {
                    home = Some((pi, ri));
                    break 'scan;
                }
            }
        }
        let Some((pi, ri)) = home else { return false };
        let last_pg = *self.pages.last().expect("nonempty");
        let mut last = self.store.read(last_pg).to_vec();
        let filler = last.pop().expect("tail page is nonempty");
        if (pi, ri) == (self.pages.len() - 1, last.len()) {
            // The victim was the final record itself.
            self.store.write(last_pg, last);
        } else {
            self.store.write(last_pg, last);
            let pg = self.pages[pi];
            let mut recs = self.store.read(pg).to_vec();
            recs[ri] = filler;
            self.store.write(pg, recs);
        }
        self.last_len -= 1;
        if self.last_len == 0 {
            self.store.free(last_pg);
            self.pages.pop();
            // Pages before the tail are always full, so the new tail (if
            // any) holds exactly `capacity` records.
            self.last_len = if self.pages.is_empty() {
                0
            } else {
                self.store.capacity()
            };
        }
        self.len -= 1;
        true
    }

    /// All intervals containing `q`: a full scan, `O(n/B)` I/Os.
    pub fn stabbing(&self, q: i64) -> Vec<u64> {
        let mut out = Vec::new();
        for &pg in &self.pages {
            for iv in self.store.read(pg) {
                if iv.lo <= q && q <= iv.hi {
                    out.push(iv.id);
                }
            }
        }
        out
    }

    /// All intervals intersecting `[q1, q2]`: a full scan, `O(n/B)` I/Os.
    pub fn intersecting(&self, q1: i64, q2: i64) -> Vec<u64> {
        assert!(q1 <= q2, "query interval endpoints out of order");
        let mut out = Vec::new();
        for &pg in &self.pages {
            for iv in self.store.read(pg) {
                if iv.lo <= q2 && q1 <= iv.hi {
                    out.push(iv.id);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_costs_n_over_b() {
        let counter = IoCounter::new();
        let mut s = NaiveIntervalStore::new(Geometry::new(8), counter.clone());
        for i in 0..800u64 {
            s.insert(i as i64, i as i64 + 5, i);
        }
        assert_eq!(s.space_pages(), 100);
        let before = counter.snapshot();
        let hits = s.stabbing(400);
        assert_eq!(hits.len(), 6);
        assert_eq!(counter.since(before).reads, 100, "full scan");
    }

    #[test]
    fn append_is_constant_io() {
        let counter = IoCounter::new();
        let mut s = NaiveIntervalStore::new(Geometry::new(16), counter.clone());
        s.insert(0, 1, 0);
        let before = counter.snapshot();
        s.insert(1, 2, 1);
        assert!(counter.since(before).total() <= 2);
    }

    #[test]
    fn delete_compacts_the_heap() {
        let counter = IoCounter::new();
        let mut s = NaiveIntervalStore::new(Geometry::new(4), counter);
        for i in 0..10u64 {
            s.insert(i as i64, i as i64 + 3, i);
        }
        assert!(s.delete(4));
        assert!(!s.delete(4), "double delete reports absence");
        assert!(s.delete(9));
        assert_eq!(s.len(), 8);
        assert_eq!(s.space_pages(), 2, "heap stays dense");
        let mut rest = s.stabbing(3);
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 1, 2, 3], "id 4 was deleted; 5+ start after 3");
        for id in [0u64, 1, 2, 3, 5, 6, 7, 8] {
            assert!(s.delete(id));
        }
        assert!(s.is_empty());
        assert_eq!(s.space_pages(), 0);
    }

    #[test]
    fn intersecting_matches_semantics() {
        let counter = IoCounter::new();
        let mut s = NaiveIntervalStore::new(Geometry::new(4), counter);
        s.insert(0, 2, 1);
        s.insert(5, 9, 2);
        s.insert(3, 4, 3);
        let mut hits = s.intersecting(2, 5);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3]);
        assert!(s.intersecting(10, 12).is_empty());
    }
}
