//! The one way to construct an [`IntervalIndex`].
//!
//! Earlier revisions grew four constructors (`new`, `new_with`, `build`,
//! `build_with`) whose cross-product with [`IntervalOptions`] kept
//! expanding. [`IndexBuilder`] collapses them: configure once, then
//! [`IndexBuilder::open`] an empty index or [`IndexBuilder::bulk`]-load
//! one. The old constructors remain as thin deprecated shims.

use std::path::PathBuf;

use ccix_core::Tuning;
use ccix_extmem::{BackendSpec, Geometry, IoCounter};

use crate::index::{EndpointMode, Interval, IntervalIndex, IntervalOptions};

/// Configures and constructs [`IntervalIndex`] instances.
///
/// The builder is cheap to `Clone` and its construction methods take
/// `&self`, so one configured builder can stamp out any number of indexes
/// (the differential test suites open a fresh index per trial from a single
/// builder). It stopped being `Copy` when it grew a [`BackendSpec`]: a
/// file-backed spec carries a directory path and a shared file-name
/// sequence, so stamped-out indexes land in the same directory without
/// colliding.
///
/// ```
/// use ccix_extmem::{Geometry, IoCounter};
/// use ccix_interval::{IndexBuilder, Interval};
///
/// let builder = IndexBuilder::new(Geometry::new(16));
/// let idx = builder.bulk(
///     IoCounter::new(),
///     &[Interval::new(1, 5, 7), Interval::new(4, 9, 8)],
/// );
/// let mut hit = idx.stabbing(2);
/// hit.sort_unstable();
/// assert_eq!(hit, vec![7]);
/// ```
#[derive(Clone, Debug)]
pub struct IndexBuilder {
    geo: Geometry,
    options: IntervalOptions,
    backend: BackendSpec,
}

impl IndexBuilder {
    /// Start from `geo` with the default layout ([`IntervalOptions`]:
    /// slab endpoints, measured default tuning).
    pub fn new(geo: Geometry) -> Self {
        Self {
            geo,
            options: IntervalOptions::default(),
            backend: BackendSpec::Model,
        }
    }

    /// Replace the whole option set at once.
    pub fn options(mut self, options: IntervalOptions) -> Self {
        self.options = options;
        self
    }

    /// Use the paper's §2.1 layout ([`IntervalOptions::paper`]): endpoint
    /// B+-tree plus the paper's buffer constants.
    pub fn paper(mut self) -> Self {
        self.options = IntervalOptions::paper();
        self
    }

    /// Endpoint-range strategy (see [`EndpointMode`]).
    pub fn endpoints(mut self, mode: EndpointMode) -> Self {
        self.options.endpoints = mode;
        self
    }

    /// Write-path/space tuning for the stabbing structure.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.options.tuning = tuning;
        self
    }

    /// Leaf fill factor (percent, 50–100) for the endpoint B+-tree's bulk
    /// load; ignored in slab mode. `None` packs leaves full.
    pub fn btree_leaf_fill(mut self, fill: Option<usize>) -> Self {
        self.options.btree_leaf_fill = fill;
        self
    }

    /// Page backend every store of the index lives on (see
    /// [`BackendSpec`]): the pure in-memory model (default), or a real
    /// page file per store under a [`BackendSpec::File`] directory.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.backend = spec;
        self
    }

    /// Shorthand for [`IndexBuilder::backend`] with a fresh
    /// [`BackendSpec::file`] over `dir`: every store of every index this
    /// builder stamps out becomes a real page file under `dir` (the
    /// directory is created on first use; file names never collide because
    /// the spec carries a shared sequence).
    pub fn file_backed(self, dir: impl Into<PathBuf>) -> Self {
        self.backend(BackendSpec::file(dir))
    }

    /// The configured options.
    pub fn configured_options(&self) -> IntervalOptions {
        self.options
    }

    /// The configured page backend.
    pub fn configured_backend(&self) -> &BackendSpec {
        &self.backend
    }

    /// The configured geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Open an empty index charging I/O to `counter`.
    pub fn open(&self, counter: IoCounter) -> IntervalIndex {
        IntervalIndex::open_impl(&self.backend, self.geo, counter, self.options)
    }

    /// Bulk-build an index over `intervals` (ids must be unique), charging
    /// the build's I/O to `counter`.
    pub fn bulk(&self, counter: IoCounter, intervals: &[Interval]) -> IntervalIndex {
        IntervalIndex::bulk_impl(&self.backend, self.geo, counter, intervals, self.options)
    }
}
