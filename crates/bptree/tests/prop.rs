//! Property-based tests (on the shared testkit harness): the B+-tree
//! behaves exactly like an ordered set of `(key, value)` pairs under
//! arbitrary interleavings of operations.

use ccix_bptree::BPlusTree;
use ccix_extmem::{Disk, IoCounter};
use ccix_testkit::{check, DetRng};
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, u64),
    Delete(i64, u64),
    Get(i64),
    Range(i64, i64),
}

fn random_op(rng: &mut DetRng) -> Op {
    match rng.gen_range(0..4u32) {
        0 => Op::Insert(rng.gen_range(-128i64..128), rng.gen_range(0u64..8)),
        1 => Op::Delete(rng.gen_range(-128i64..128), rng.gen_range(0u64..8)),
        2 => Op::Get(rng.gen_range(-128i64..128)),
        _ => {
            let a = rng.gen_range(-128i64..128);
            let b = rng.gen_range(-128i64..128);
            Op::Range(a.min(b), a.max(b))
        }
    }
}

#[test]
fn matches_btreeset_oracle() {
    check::trials("bptree::matches_btreeset_oracle", 64, 0xB91, |rng| {
        let page_size = *rng.choose(&[128usize, 256, 512]).expect("nonempty");
        let n_ops = rng.gen_range(1..400usize);
        let counter = IoCounter::new();
        let mut disk = Disk::new(page_size, counter);
        let mut tree = BPlusTree::new(&mut disk);
        let mut oracle: BTreeSet<(i64, u64)> = BTreeSet::new();

        for _ in 0..n_ops {
            match random_op(rng) {
                Op::Insert(k, v) => {
                    tree.insert(&mut disk, k, v);
                    oracle.insert((k, v));
                }
                Op::Delete(k, v) => {
                    let removed = tree.delete(&mut disk, k, v);
                    assert_eq!(removed, oracle.remove(&(k, v)));
                }
                Op::Get(k) => {
                    let want = oracle
                        .range((k, u64::MIN)..=(k, u64::MAX))
                        .next()
                        .map(|&(_, v)| v);
                    assert_eq!(tree.get(&disk, k), want);
                }
                Op::Range(lo, hi) => {
                    let want: Vec<u64> = oracle
                        .iter()
                        .filter(|(k, _)| *k >= lo && *k <= hi)
                        .map(|&(_, v)| v)
                        .collect();
                    assert_eq!(tree.range(&disk, lo, hi), want);
                }
            }
            assert_eq!(tree.len(), oracle.len() as u64);
        }
        tree.validate_unbilled(&disk);
    });
}

#[test]
fn bulk_load_matches_oracle() {
    check::trials("bptree::bulk_load_matches_oracle", 64, 0xB92, |rng| {
        let n = rng.gen_range(0..600usize);
        let mut keys: Vec<(i16, u16)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(i16::MIN..i16::MAX),
                    rng.gen_range(0u16..u16::MAX),
                )
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<ccix_bptree::Entry> = keys
            .iter()
            .map(|&(k, v)| ccix_bptree::Entry::new(k as i64, v as u64))
            .collect();
        let counter = IoCounter::new();
        let mut disk = Disk::new(256, counter);
        let tree = BPlusTree::bulk_load(&mut disk, &entries);
        tree.validate_unbilled(&disk);
        let all = tree.range(&disk, i64::MIN, i64::MAX);
        let want: Vec<u64> = entries.iter().map(|e| e.value).collect();
        assert_eq!(all, want);
    });
}
