//! Property-based tests: the B+-tree behaves exactly like an ordered set of
//! `(key, value)` pairs under arbitrary interleavings of operations.

use ccix_bptree::BPlusTree;
use ccix_extmem::{Disk, IoCounter};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, u64),
    Delete(i64, u64),
    Get(i64),
    Range(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i8>(), 0u64..8).prop_map(|(k, v)| Op::Insert(k as i64, v)),
        (any::<i8>(), 0u64..8).prop_map(|(k, v)| Op::Delete(k as i64, v)),
        any::<i8>().prop_map(|k| Op::Get(k as i64)),
        (any::<i8>(), any::<i8>()).prop_map(|(a, b)| {
            let (a, b) = (a as i64, b as i64);
            Op::Range(a.min(b), a.max(b))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreeset_oracle(ops in proptest::collection::vec(op_strategy(), 1..400),
                               page_size in prop_oneof![Just(128usize), Just(256), Just(512)]) {
        let counter = IoCounter::new();
        let mut disk = Disk::new(page_size, counter);
        let mut tree = BPlusTree::new(&mut disk);
        let mut oracle: BTreeSet<(i64, u64)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&mut disk, k, v);
                    oracle.insert((k, v));
                }
                Op::Delete(k, v) => {
                    let removed = tree.delete(&mut disk, k, v);
                    prop_assert_eq!(removed, oracle.remove(&(k, v)));
                }
                Op::Get(k) => {
                    let want = oracle.range((k, u64::MIN)..=(k, u64::MAX)).next().map(|&(_, v)| v);
                    prop_assert_eq!(tree.get(&disk, k), want);
                }
                Op::Range(lo, hi) => {
                    let want: Vec<u64> = oracle
                        .iter()
                        .filter(|(k, _)| *k >= lo && *k <= hi)
                        .map(|&(_, v)| v)
                        .collect();
                    prop_assert_eq!(tree.range(&disk, lo, hi), want);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len() as u64);
        }
        tree.validate_unbilled(&disk);
    }

    #[test]
    fn bulk_load_matches_oracle(mut keys in proptest::collection::vec((any::<i16>(), any::<u16>()), 0..600)) {
        keys.sort_unstable();
        keys.dedup();
        let entries: Vec<ccix_bptree::Entry> = keys
            .iter()
            .map(|&(k, v)| ccix_bptree::Entry::new(k as i64, v as u64))
            .collect();
        let counter = IoCounter::new();
        let mut disk = Disk::new(256, counter);
        let tree = BPlusTree::bulk_load(&mut disk, &entries);
        tree.validate_unbilled(&disk);
        let all = tree.range(&disk, i64::MIN, i64::MAX);
        let want: Vec<u64> = entries.iter().map(|e| e.value).collect();
        prop_assert_eq!(all, want);
    }
}
