//! Behavioural tests for the external B+-tree: correctness against an
//! in-core oracle and conformance to the paper's §1.1 I/O bounds.

use ccix_bptree::{BPlusTree, Entry};
use ccix_extmem::{Disk, Geometry, IoCounter};
use std::collections::BTreeSet;

fn fresh(page_size: usize) -> (Disk, IoCounter) {
    let counter = IoCounter::new();
    (Disk::new(page_size, counter.clone()), counter)
}

#[test]
fn empty_tree_queries() {
    let (mut disk, _) = fresh(256);
    let tree = BPlusTree::new(&mut disk);
    assert!(tree.is_empty());
    assert_eq!(tree.get(&disk, 0), None);
    assert!(tree.range(&disk, i64::MIN, i64::MAX).is_empty());
    tree.validate_unbilled(&disk);
}

#[test]
fn insert_then_get() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    for k in 0..500i64 {
        tree.insert(&mut disk, k * 3, k as u64);
    }
    assert_eq!(tree.len(), 500);
    for k in 0..500i64 {
        assert_eq!(tree.get(&disk, k * 3), Some(k as u64), "key {}", k * 3);
        assert_eq!(tree.get(&disk, k * 3 + 1), None);
    }
    tree.validate_unbilled(&disk);
}

#[test]
fn duplicate_keys_coexist_and_are_returned() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    for v in 0..200u64 {
        tree.insert(&mut disk, 7, v);
    }
    tree.insert(&mut disk, 3, 1);
    tree.insert(&mut disk, 9, 2);
    let hits = tree.range(&disk, 7, 7);
    assert_eq!(hits.len(), 200);
    assert_eq!(hits, (0..200u64).collect::<Vec<_>>());
    tree.validate_unbilled(&disk);
}

#[test]
fn exact_duplicate_pair_is_ignored() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    tree.insert(&mut disk, 1, 1);
    tree.insert(&mut disk, 1, 1);
    assert_eq!(tree.len(), 1);
}

#[test]
fn range_matches_oracle_random() {
    let (mut disk, _) = fresh(512);
    let mut tree = BPlusTree::new(&mut disk);
    let mut oracle: BTreeSet<(i64, u64)> = BTreeSet::new();
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..3000u64 {
        let k = (next() % 1000) as i64 - 500;
        tree.insert(&mut disk, k, i);
        oracle.insert((k, i));
    }
    for _ in 0..50 {
        let a = (next() % 1200) as i64 - 600;
        let b = a + (next() % 300) as i64;
        let got = tree.range(&disk, a, b);
        let want: Vec<u64> = oracle
            .iter()
            .filter(|(k, _)| *k >= a && *k <= b)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(got, want, "range [{a}, {b}]");
    }
    tree.validate_unbilled(&disk);
}

#[test]
fn delete_random_interleaved() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    let mut oracle: BTreeSet<(i64, u64)> = BTreeSet::new();
    let mut x: u64 = 0xDEADBEEF12345678;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..2000u64 {
        let k = (next() % 300) as i64;
        if next() % 3 == 0 {
            // Delete a (possibly absent) pair.
            let v = next() % 50;
            let present = oracle.remove(&(k, v));
            assert_eq!(tree.delete(&mut disk, k, v), present, "delete ({k},{v})");
        } else {
            let v = i % 50;
            tree.insert(&mut disk, k, v);
            oracle.insert((k, v));
        }
        if i % 277 == 0 {
            tree.validate_unbilled(&disk);
        }
    }
    assert_eq!(tree.len(), oracle.len() as u64);
    let got = tree.range(&disk, i64::MIN, i64::MAX);
    let want: Vec<u64> = oracle.iter().map(|&(_, v)| v).collect();
    assert_eq!(got, want);
    tree.validate_unbilled(&disk);
}

#[test]
fn delete_everything_collapses_to_empty_root() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    for k in 0..800i64 {
        tree.insert(&mut disk, k, k as u64);
    }
    for k in 0..800i64 {
        assert!(tree.delete(&mut disk, k, k as u64));
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    assert_eq!(tree.validate_unbilled(&disk), 1, "only the empty root leaf");
}

#[test]
fn bulk_load_equals_incremental() {
    let (mut disk, _) = fresh(512);
    let entries: Vec<Entry> = (0..5000i64)
        .map(|k| Entry::new(k, (k * 2) as u64))
        .collect();
    let bulk = BPlusTree::bulk_load(&mut disk, &entries);
    bulk.validate_unbilled(&disk);

    let (mut disk2, _) = fresh(512);
    let mut inc = BPlusTree::new(&mut disk2);
    for e in &entries {
        inc.insert(&mut disk2, e.key, e.value);
    }
    for probe in [-1i64, 0, 1, 2499, 4999, 5000] {
        assert_eq!(bulk.get(&disk, probe), inc.get(&disk2, probe));
    }
    assert_eq!(bulk.range(&disk, 100, 222), inc.range(&disk2, 100, 222));
}

#[test]
fn bulk_load_empty() {
    let (mut disk, _) = fresh(256);
    let tree = BPlusTree::bulk_load(&mut disk, &[]);
    assert!(tree.is_empty());
    tree.validate_unbilled(&disk);
}

/// Leaf fill factors trade pages for insert headroom without breaking any
/// invariant: every fill in 50..=100 yields a valid tree with the same
/// answers, monotonically more pages as the fill drops, and fewer
/// splits on subsequent inserts than a fully packed load.
#[test]
fn bulk_load_fill_factor() {
    let entries: Vec<Entry> = (0..4000i64).map(|k| Entry::new(k, k as u64)).collect();
    let mut measured: Vec<(usize, usize, u64)> = Vec::new(); // (fill, pages, insert writes)
    for fill in [50usize, 70, 85, 100] {
        let (mut disk, counter) = fresh(512);
        let mut tree = BPlusTree::bulk_load_with_fill(&mut disk, &entries, fill);
        let pages = tree.validate_unbilled(&disk);
        assert_eq!(tree.range(&disk, 500, 777).len(), 278, "fill={fill}");
        // Post-load inserts: under-filled leaves absorb them with fewer
        // page writes (splits) than packed ones.
        let before = counter.snapshot();
        for k in 0..2000i64 {
            tree.insert(&mut disk, k * 2 + 1, 1_000_000 + k as u64);
        }
        let writes = counter.since(before).writes;
        tree.validate_unbilled(&disk);
        measured.push((fill, pages, writes));
    }
    for w in measured.windows(2) {
        assert!(
            w[0].1 >= w[1].1,
            "lower fill must not use fewer pages: {measured:?}"
        );
    }
    let half = measured.first().expect("fill 50 measured");
    let full = measured.last().expect("fill 100 measured");
    assert!(
        half.2 < full.2,
        "half-filled leaves must split less on inserts: {measured:?}"
    );
}

/// §1.1: a range query costs `O(log_B n + t/B)` I/Os. We assert the measured
/// cost against the bound with a small explicit constant.
#[test]
fn range_query_io_bound() {
    let page_size = 1024; // leaf capacity (1024-7)/24 = 42
    let (mut disk, counter) = fresh(page_size);
    let n = 60_000i64;
    let entries: Vec<Entry> = (0..n).map(|k| Entry::new(k, k as u64)).collect();
    let tree = BPlusTree::bulk_load(&mut disk, &entries);
    let b = (page_size - 7) / 24;
    let geo = Geometry::new(b);

    for (lo, hi) in [(0, 0), (17, 17), (100, 5_000), (0, n - 1), (59_000, 59_999)] {
        let before = counter.snapshot();
        let got = tree.range(&disk, lo, hi);
        let cost = counter.since(before);
        let t = got.len();
        assert_eq!(t as i64, hi - lo + 1);
        let bound = 3 * (geo.log_b(n as usize) + geo.out_blocks(t)) + 2;
        assert!(
            cost.reads <= bound as u64,
            "range [{lo},{hi}]: {} reads > bound {bound}",
            cost.reads
        );
        assert_eq!(cost.writes, 0, "queries must not write");
    }
}

/// §1.1: inserts cost `O(log_B n)` I/Os (splits amortise; we assert the
/// worst single insert against height + a split chain).
#[test]
fn insert_io_bound() {
    let (mut disk, counter) = fresh(1024);
    let mut tree = BPlusTree::new(&mut disk);
    let mut worst = 0u64;
    for k in 0..30_000i64 {
        let before = counter.snapshot();
        tree.insert(&mut disk, k, k as u64);
        worst = worst.max(counter.since(before).total());
    }
    // Reads ≤ height; writes ≤ 2·height + 1 on a full split chain.
    let bound = (3 * tree.height() + 2) as u64;
    assert!(worst <= bound, "worst insert {worst} > bound {bound}");
}

/// §1.1: the tree occupies `O(n/B)` pages.
#[test]
fn space_bound() {
    let page_size = 1024;
    let (mut disk, _) = fresh(page_size);
    let n = 50_000i64;
    let entries: Vec<Entry> = (0..n).map(|k| Entry::new(k, k as u64)).collect();
    let tree = BPlusTree::bulk_load(&mut disk, &entries);
    let pages = tree.validate_unbilled(&disk);
    let b = (page_size - 7) / 24;
    let min_pages = (n as usize).div_ceil(b);
    assert!(pages >= min_pages);
    assert!(
        pages <= 3 * min_pages + 3,
        "space {pages} pages exceeds 3·n/B = {}",
        3 * min_pages + 3
    );
}

#[test]
fn get_finds_key_at_leaf_boundary() {
    // Force a key to be the first entry of a right leaf: regression test for
    // the next-leaf probe in `get`.
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    for k in 0..64i64 {
        tree.insert(&mut disk, k * 2, k as u64);
    }
    for k in 0..64i64 {
        assert_eq!(tree.get(&disk, k * 2), Some(k as u64));
    }
}

#[test]
fn scan_and_extrema() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    assert_eq!(tree.first(&disk), None);
    assert_eq!(tree.last(&disk), None);
    assert!(tree.scan(&disk).is_empty());
    for k in [5i64, -3, 9, 0, 12] {
        tree.insert(&mut disk, k, (k + 100) as u64);
    }
    let scan = tree.scan(&disk);
    let keys: Vec<i64> = scan.iter().map(|e| e.key).collect();
    assert_eq!(keys, vec![-3, 0, 5, 9, 12]);
    assert_eq!(tree.first(&disk).unwrap().key, -3);
    assert_eq!(tree.last(&disk).unwrap().key, 12);
}

#[test]
fn extrema_after_heavy_churn() {
    let (mut disk, _) = fresh(256);
    let mut tree = BPlusTree::new(&mut disk);
    for k in 0..1_000i64 {
        tree.insert(&mut disk, k, k as u64);
    }
    for k in 0..500i64 {
        assert!(tree.delete(&mut disk, k, k as u64));
    }
    assert_eq!(tree.first(&disk).unwrap().key, 500);
    assert_eq!(tree.last(&disk).unwrap().key, 999);
    assert_eq!(tree.scan(&disk).len(), 500);
}
