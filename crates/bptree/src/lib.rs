//! # `ccix-bptree` — an external B+-tree
//!
//! The paper's point of reference (§1.1): external dynamic one-dimensional
//! range searching with
//!
//! * space `O(n/B)` disk blocks,
//! * range query `O(log_B n + t/B)` I/Os,
//! * insert / delete `O(log_B n)` I/Os.
//!
//! This crate implements a conventional B+-tree on the byte-level
//! [`ccix_extmem::Disk`]: nodes are serialised to fixed-size pages, data
//! lives only in leaves, and leaves are chained left-to-right so range scans
//! stream at one I/O per `B` results — exactly the structure the paper
//! contrasts every two-dimensional result against.
//!
//! Entries are `(key: i64, value: u64)` pairs ordered lexicographically;
//! duplicate keys are allowed (the class-indexing structures index many
//! objects with equal attribute values), and deletion removes a specific
//! `(key, value)` pair.
//!
//! ```
//! use ccix_bptree::BPlusTree;
//! use ccix_extmem::{Disk, IoCounter};
//!
//! let counter = IoCounter::new();
//! let mut disk = Disk::new(256, counter.clone());
//! let mut tree = BPlusTree::new(&mut disk);
//! for k in 0..100i64 {
//!     tree.insert(&mut disk, k, (k * k) as u64);
//! }
//! let hits = tree.range(&disk, 10, 13);
//! assert_eq!(hits, vec![100, 121, 144, 169]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layout;
mod tree;

pub use layout::{Entry, Node, NodeKind};
pub use tree::BPlusTree;
