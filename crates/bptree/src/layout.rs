//! On-page node layout.
//!
//! Every node occupies exactly one disk page. Layouts (little-endian):
//!
//! ```text
//! leaf page:
//!   [0]      tag = 1
//!   [1..3]   count (u16)
//!   [3..7]   next leaf PageId (u32, u32::MAX = none)
//!   [7..]    count × entry { key: i64, value: u64 }        (16 bytes each)
//!
//! internal page:
//!   [0]      tag = 0
//!   [1..3]   count = number of separator entries (u16)
//!   [3..7]   child[0] PageId (u32)
//!   [7..]    count × { sep: (i64, u64), child: u32 }       (20 bytes each)
//! ```
//!
//! Separators are full `(key, value)` pairs so that duplicate keys route
//! deterministically: child `i` holds entries `e` with
//! `sep[i-1] <= e < sep[i]` in lexicographic order.

use ccix_extmem::{Disk, PageId};

/// Sentinel for "no next leaf".
pub(crate) const NO_PAGE: u32 = u32::MAX;

const LEAF_HDR: usize = 7;
const LEAF_ENTRY: usize = 24;
const INTERNAL_HDR: usize = 7;
const INTERNAL_ENTRY: usize = 20;

/// A `(key, value)` pair stored in a leaf, with an auxiliary payload word.
///
/// Ordering, equality and uniqueness are by `(key, value)` only; `aux` is
/// carried alongside (a covering-index payload — the interval manager keeps
/// the right endpoint there so range scans report full records without
/// extra I/Os). Separators in internal nodes do not store `aux`.
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// Search key (may repeat across entries).
    pub key: i64,
    /// Payload / tiebreaker. `(key, value)` pairs are unique within a tree.
    pub value: u64,
    /// Auxiliary payload, not part of the ordering.
    pub aux: u64,
}

impl Entry {
    /// Construct an entry with no auxiliary payload.
    pub fn new(key: i64, value: u64) -> Self {
        Self { key, value, aux: 0 }
    }

    /// Construct an entry with an auxiliary payload word.
    pub fn with_aux(key: i64, value: u64, aux: u64) -> Self {
        Self { key, value, aux }
    }

    #[inline]
    fn ord_key(&self) -> (i64, u64) {
        (self.key, self.value)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.ord_key() == other.ord_key()
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ord_key().cmp(&other.ord_key())
    }
}

/// Which kind of node a page holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Data-carrying leaf.
    Leaf,
    /// Router node holding separators and child pointers.
    Internal,
}

/// A decoded node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted entries plus a pointer to the next leaf.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<Entry>,
        /// Next leaf in key order, if any.
        next: Option<PageId>,
    },
    /// Internal node: `children.len() == seps.len() + 1`.
    Internal {
        /// Separator entries (lexicographic lower bounds of children 1..).
        seps: Vec<Entry>,
        /// Child page ids.
        children: Vec<PageId>,
    },
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        match self {
            Node::Leaf { .. } => NodeKind::Leaf,
            Node::Internal { .. } => NodeKind::Internal,
        }
    }

    /// Number of entries (leaf) or separators (internal).
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { seps, .. } => seps.len(),
        }
    }

    /// True when the node holds no entries/separators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-tree layout constants derived from the page size.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Layout {
    /// Max entries in a leaf.
    pub leaf_cap: usize,
    /// Max children of an internal node.
    pub fanout: usize,
}

impl Layout {
    pub fn for_page_size(page_size: usize) -> Self {
        let leaf_cap = (page_size - LEAF_HDR) / LEAF_ENTRY;
        let fanout = (page_size - INTERNAL_HDR) / INTERNAL_ENTRY + 1;
        assert!(
            leaf_cap >= 4 && fanout >= 4,
            "page size {page_size} too small for a B+-tree node (need ≥ 4-way nodes)"
        );
        Self { leaf_cap, fanout }
    }
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut [u8], at: usize, v: i64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().unwrap())
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn get_i64(buf: &[u8], at: usize) -> i64 {
    i64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Serialise `node` into a page-sized buffer.
pub(crate) fn encode(node: &Node, page_size: usize) -> Vec<u8> {
    let mut buf = vec![0u8; page_size];
    match node {
        Node::Leaf { entries, next } => {
            buf[0] = 1;
            put_u16(&mut buf, 1, entries.len() as u16);
            put_u32(&mut buf, 3, next.map_or(NO_PAGE, |p| p.0));
            let mut at = LEAF_HDR;
            for e in entries {
                put_i64(&mut buf, at, e.key);
                put_u64(&mut buf, at + 8, e.value);
                put_u64(&mut buf, at + 16, e.aux);
                at += LEAF_ENTRY;
            }
            assert!(at <= page_size, "leaf overflow during encode");
        }
        Node::Internal { seps, children } => {
            assert_eq!(children.len(), seps.len() + 1, "malformed internal node");
            buf[0] = 0;
            put_u16(&mut buf, 1, seps.len() as u16);
            put_u32(&mut buf, 3, children[0].0);
            let mut at = INTERNAL_HDR;
            for (sep, child) in seps.iter().zip(&children[1..]) {
                put_i64(&mut buf, at, sep.key);
                put_u64(&mut buf, at + 8, sep.value);
                put_u32(&mut buf, at + 16, child.0);
                at += INTERNAL_ENTRY;
            }
            assert!(at <= page_size, "internal overflow during encode");
        }
    }
    buf
}

/// Decode the node stored in `buf`.
pub(crate) fn decode(buf: &[u8]) -> Node {
    match buf[0] {
        1 => {
            let count = get_u16(buf, 1) as usize;
            let nxt = get_u32(buf, 3);
            let next = (nxt != NO_PAGE).then_some(PageId(nxt));
            let mut entries = Vec::with_capacity(count);
            let mut at = LEAF_HDR;
            for _ in 0..count {
                entries.push(Entry::with_aux(
                    get_i64(buf, at),
                    get_u64(buf, at + 8),
                    get_u64(buf, at + 16),
                ));
                at += LEAF_ENTRY;
            }
            Node::Leaf { entries, next }
        }
        0 => {
            let count = get_u16(buf, 1) as usize;
            let mut children = Vec::with_capacity(count + 1);
            children.push(PageId(get_u32(buf, 3)));
            let mut seps = Vec::with_capacity(count);
            let mut at = INTERNAL_HDR;
            for _ in 0..count {
                seps.push(Entry::new(get_i64(buf, at), get_u64(buf, at + 8)));
                children.push(PageId(get_u32(buf, at + 16)));
                at += INTERNAL_ENTRY;
            }
            Node::Internal { seps, children }
        }
        tag => panic!("corrupt page: unknown node tag {tag}"),
    }
}

/// Read and decode the node at `id`. One I/O.
pub(crate) fn read_node(disk: &Disk, id: PageId) -> Node {
    decode(disk.read(id))
}

/// Encode and write `node` at `id`. One I/O.
pub(crate) fn write_node(disk: &mut Disk, id: PageId, node: &Node) {
    let buf = encode(node, disk.page_size());
    disk.write(id, &buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::IoCounter;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![Entry::new(-5, 1), Entry::new(0, 2), Entry::new(7, 3)],
            next: Some(PageId(42)),
        };
        let buf = encode(&node, 256);
        assert_eq!(decode(&buf), node);
    }

    #[test]
    fn leaf_without_next_roundtrip() {
        let node = Node::Leaf {
            entries: vec![],
            next: None,
        };
        let buf = encode(&node, 128);
        assert_eq!(decode(&buf), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            seps: vec![Entry::new(10, 0), Entry::new(20, 9)],
            children: vec![PageId(1), PageId(2), PageId(3)],
        };
        let buf = encode(&node, 256);
        assert_eq!(decode(&buf), node);
    }

    #[test]
    fn layout_capacities() {
        let l = Layout::for_page_size(4096);
        assert_eq!(l.leaf_cap, (4096 - 7) / 24);
        assert_eq!(l.fanout, (4096 - 7) / 20 + 1);
    }

    #[test]
    fn aux_survives_roundtrip_but_not_ordering() {
        let a = Entry::with_aux(1, 2, 99);
        let b = Entry::new(1, 2);
        assert_eq!(a, b, "aux is not part of equality");
        let node = Node::Leaf {
            entries: vec![a],
            next: None,
        };
        let buf = encode(&node, 128);
        match decode(&buf) {
            Node::Leaf { entries, .. } => assert_eq!(entries[0].aux, 99),
            _ => panic!("expected leaf"),
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_rejected() {
        let _ = Layout::for_page_size(32);
    }

    #[test]
    fn disk_roundtrip_counts_io() {
        let counter = IoCounter::new();
        let mut disk = Disk::new(256, counter.clone());
        let id = disk.alloc();
        let node = Node::Leaf {
            entries: vec![Entry::new(1, 1)],
            next: None,
        };
        write_node(&mut disk, id, &node);
        assert_eq!(read_node(&disk, id), node);
        assert_eq!(counter.writes(), 1);
        assert_eq!(counter.reads(), 1);
    }
}
