//! B+-tree operations: bulk load, point/range queries, insert, delete.

use ccix_extmem::{Disk, PageId};

use crate::layout::{read_node, write_node, Entry, Layout, Node};

/// An external B+-tree over `(i64, u64)` entries.
///
/// The tree owns pages on a shared [`Disk`] (several trees may coexist on one
/// device, as in the range-tree class index, which keeps `O(c)` trees). All
/// costs are in page I/Os on the disk's counter:
///
/// * [`BPlusTree::range`] — `O(log_B n + t/B)`,
/// * [`BPlusTree::insert`] / [`BPlusTree::delete`] — `O(log_B n)`,
/// * space — `O(n/B)` pages.
#[derive(Clone, Debug)]
pub struct BPlusTree {
    root: PageId,
    height: usize, // 1 = the root is a leaf
    len: u64,
    layout: Layout,
}

impl BPlusTree {
    /// Create an empty tree, allocating its root leaf on `disk`.
    pub fn new(disk: &mut Disk) -> Self {
        let layout = Layout::for_page_size(disk.page_size());
        let root = disk.alloc();
        write_node(
            disk,
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: None,
            },
        );
        Self {
            root,
            height: 1,
            len: 0,
            layout,
        }
    }

    /// Build a tree from entries already sorted by `(key, value)`, with
    /// leaves packed full.
    ///
    /// Leaves are packed and chained; internal levels are built bottom-up.
    /// Costs `O(n/B)` I/Os — one write per emitted page.
    ///
    /// # Panics
    /// Panics if `entries` is not sorted by `(key, value)`.
    pub fn bulk_load(disk: &mut Disk, entries: &[Entry]) -> Self {
        Self::bulk_load_with_fill(disk, entries, 100)
    }

    /// As [`BPlusTree::bulk_load`], loading leaves to `fill_percent` of
    /// capacity (50–100) instead of full.
    ///
    /// Full leaves minimise space and range-scan I/O but make every
    /// post-load insert split a leaf; a lower fill factor trades pages for
    /// insert headroom. Leaves never drop below half occupancy, so all
    /// rebalancing invariants are preserved.
    ///
    /// # Panics
    /// Panics if `entries` is not sorted by `(key, value)` or
    /// `fill_percent` is outside `50..=100`.
    pub fn bulk_load_with_fill(disk: &mut Disk, entries: &[Entry], fill_percent: usize) -> Self {
        assert!(
            (50..=100).contains(&fill_percent),
            "fill factor must be within 50..=100 percent"
        );
        let layout = Layout::for_page_size(disk.page_size());
        assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "bulk_load requires sorted entries"
        );
        if entries.is_empty() {
            return Self::new(disk);
        }

        // Leaf level: pre-allocate ids so each leaf can point to its
        // successor, then write each page once. At fill 100 chunks are
        // packed full and balanced at the tail; at lower fills entries are
        // spread near-equally over the target leaf count, never dropping a
        // leaf below half occupancy.
        let chunks: Vec<&[Entry]> = if fill_percent == 100 {
            balanced_chunks(entries, layout.leaf_cap, layout.leaf_cap / 2)
        } else {
            let min = (layout.leaf_cap / 2).max(1);
            let target = (layout.leaf_cap * fill_percent / 100).clamp(min, layout.leaf_cap);
            let n = entries.len();
            let mut k = n.div_ceil(target);
            while k > 1 && n / k < min {
                k -= 1;
            }
            ccix_extmem::near_equal_ranges(n, k)
                .into_iter()
                .map(|(s, e)| &entries[s..e])
                .collect()
        };
        let ids: Vec<PageId> = chunks.iter().map(|_| disk.alloc()).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            let next = ids.get(i + 1).copied();
            write_node(
                disk,
                ids[i],
                &Node::Leaf {
                    entries: chunk.to_vec(),
                    next,
                },
            );
        }
        // `firsts[i]` is the lexicographically smallest entry under node i,
        // used as the separator when grouping nodes one level up.
        let mut level = ids;
        let mut firsts: Vec<Entry> = chunks.iter().map(|c| c[0]).collect();
        let mut height = 1;

        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut next_firsts = Vec::new();
            let min_children = (layout.fanout - 1) / 2 + 1;
            let id_groups = balanced_chunks(&level, layout.fanout, min_children);
            let first_groups = balanced_chunks(&firsts, layout.fanout, min_children);
            for (ids, fs) in id_groups.iter().zip(&first_groups) {
                let (children, fs) = (ids.to_vec(), fs.to_vec());
                let id = disk.alloc();
                write_node(
                    disk,
                    id,
                    &Node::Internal {
                        seps: fs[1..].to_vec(),
                        children,
                    },
                );
                next_firsts.push(fs[0]);
                next_level.push(id);
            }
            level = next_level;
            firsts = next_firsts;
            height += 1;
        }

        Self {
            root: level[0],
            height,
            len: entries.len() as u64,
            layout,
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height in levels (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Root page id (for space accounting / debugging).
    pub fn root(&self) -> PageId {
        self.root
    }

    fn child_index(seps: &[Entry], e: Entry) -> usize {
        seps.partition_point(|s| *s <= e)
    }

    /// Stream every entry in key order by walking the leaf chain
    /// (`O(log_B n + n/B)` I/Os — a sequential scan).
    pub fn scan(&self, disk: &Disk) -> Vec<Entry> {
        self.range_entries(disk, i64::MIN, i64::MAX)
    }

    /// The smallest entry, if any. `O(log_B n)` I/Os.
    pub fn first(&self, disk: &Disk) -> Option<Entry> {
        let mut id = self.root;
        loop {
            match read_node(disk, id) {
                Node::Internal { children, .. } => id = children[0],
                Node::Leaf { entries, .. } => return entries.first().copied(),
            }
        }
    }

    /// The largest entry, if any. `O(log_B n)` I/Os.
    pub fn last(&self, disk: &Disk) -> Option<Entry> {
        let mut id = self.root;
        loop {
            match read_node(disk, id) {
                Node::Internal { children, .. } => {
                    id = *children.last().expect("internal node has children")
                }
                Node::Leaf { entries, .. } => return entries.last().copied(),
            }
        }
    }

    /// All values whose key lies in `[lo, hi]` (inclusive), in key order.
    /// `O(log_B n + t/B)` I/Os.
    pub fn range(&self, disk: &Disk, lo: i64, hi: i64) -> Vec<u64> {
        self.range_entries(disk, lo, hi)
            .into_iter()
            .map(|e| e.value)
            .collect()
    }

    /// All entries whose key lies in `[lo, hi]` (inclusive), in order.
    pub fn range_entries(&self, disk: &Disk, lo: i64, hi: i64) -> Vec<Entry> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let probe = Entry::new(lo, u64::MIN);
        // Descend to the leaf that would contain the first qualifying entry.
        let mut id = self.root;
        loop {
            match read_node(disk, id) {
                Node::Internal { seps, children } => {
                    id = children[Self::child_index(&seps, probe)];
                }
                Node::Leaf { entries, next } => {
                    let mut cur_entries = entries;
                    let mut cur_next = next;
                    loop {
                        for e in &cur_entries {
                            if e.key > hi {
                                return out;
                            }
                            if e.key >= lo {
                                out.push(*e);
                            }
                        }
                        match cur_next {
                            Some(nid) => match read_node(disk, nid) {
                                Node::Leaf { entries, next } => {
                                    cur_entries = entries;
                                    cur_next = next;
                                }
                                Node::Internal { .. } => {
                                    unreachable!("leaf chain points at internal node")
                                }
                            },
                            None => return out,
                        }
                    }
                }
            }
        }
    }

    /// First value stored under `key`, if any. `O(log_B n)` I/Os.
    pub fn get(&self, disk: &Disk, key: i64) -> Option<u64> {
        let probe = Entry::new(key, u64::MIN);
        let mut id = self.root;
        loop {
            match read_node(disk, id) {
                Node::Internal { seps, children } => {
                    id = children[Self::child_index(&seps, probe)];
                }
                Node::Leaf { entries, next } => {
                    if let Some(e) = entries.iter().find(|e| e.key >= key) {
                        return (e.key == key).then_some(e.value);
                    }
                    // All entries < key; the answer, if it exists, is the
                    // first entry of the next leaf.
                    match next {
                        Some(nid) => match read_node(disk, nid) {
                            Node::Leaf { entries, .. } => {
                                return entries.first().filter(|e| e.key == key).map(|e| e.value);
                            }
                            Node::Internal { .. } => {
                                unreachable!("leaf chain points at internal node")
                            }
                        },
                        None => return None,
                    }
                }
            }
        }
    }

    /// Whether the exact `(key, value)` pair is present. `O(log_B n)` I/Os.
    pub fn contains(&self, disk: &Disk, key: i64, value: u64) -> bool {
        let e = Entry::new(key, value);
        let mut id = self.root;
        loop {
            match read_node(disk, id) {
                Node::Internal { seps, children } => {
                    id = children[Self::child_index(&seps, e)];
                }
                Node::Leaf { entries, .. } => return entries.binary_search(&e).is_ok(),
            }
        }
    }

    /// Insert `(key, value)`. Duplicate `(key, value)` pairs are ignored
    /// (set semantics). `O(log_B n)` I/Os.
    pub fn insert(&mut self, disk: &mut Disk, key: i64, value: u64) {
        self.insert_entry(disk, Entry::new(key, value));
    }

    /// Insert a full entry (including its auxiliary payload). Duplicate
    /// `(key, value)` pairs are ignored. `O(log_B n)` I/Os.
    pub fn insert_entry(&mut self, disk: &mut Disk, e: Entry) {
        match self.insert_rec(disk, self.root, e) {
            InsertResult::NoSplit { inserted } => {
                if inserted {
                    self.len += 1;
                }
            }
            InsertResult::Split { sep, right } => {
                let new_root = disk.alloc();
                write_node(
                    disk,
                    new_root,
                    &Node::Internal {
                        seps: vec![sep],
                        children: vec![self.root, right],
                    },
                );
                self.root = new_root;
                self.height += 1;
                self.len += 1;
            }
        }
    }

    fn insert_rec(&mut self, disk: &mut Disk, id: PageId, e: Entry) -> InsertResult {
        match read_node(disk, id) {
            Node::Leaf { mut entries, next } => {
                match entries.binary_search(&e) {
                    Ok(_) => return InsertResult::NoSplit { inserted: false },
                    Err(pos) => entries.insert(pos, e),
                }
                if entries.len() <= self.layout.leaf_cap {
                    write_node(disk, id, &Node::Leaf { entries, next });
                    return InsertResult::NoSplit { inserted: true };
                }
                // Split: right half moves to a fresh page spliced into the
                // leaf chain.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0];
                let right = disk.alloc();
                write_node(
                    disk,
                    right,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                );
                write_node(
                    disk,
                    id,
                    &Node::Leaf {
                        entries,
                        next: Some(right),
                    },
                );
                InsertResult::Split { sep, right }
            }
            Node::Internal {
                mut seps,
                mut children,
            } => {
                let idx = Self::child_index(&seps, e);
                match self.insert_rec(disk, children[idx], e) {
                    InsertResult::NoSplit { inserted } => InsertResult::NoSplit { inserted },
                    InsertResult::Split { sep, right } => {
                        seps.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() <= self.layout.fanout {
                            write_node(disk, id, &Node::Internal { seps, children });
                            return InsertResult::NoSplit { inserted: true };
                        }
                        // Split the internal node; the middle separator moves
                        // up rather than being duplicated.
                        let mid = seps.len() / 2;
                        let up = seps[mid];
                        let right_seps = seps.split_off(mid + 1);
                        seps.pop();
                        let right_children = children.split_off(mid + 1);
                        let right_id = disk.alloc();
                        write_node(
                            disk,
                            right_id,
                            &Node::Internal {
                                seps: right_seps,
                                children: right_children,
                            },
                        );
                        write_node(disk, id, &Node::Internal { seps, children });
                        InsertResult::Split {
                            sep: up,
                            right: right_id,
                        }
                    }
                }
            }
        }
    }

    /// Remove the exact `(key, value)` pair. Returns whether it was present.
    /// `O(log_B n)` I/Os, with standard borrow/merge rebalancing.
    pub fn delete(&mut self, disk: &mut Disk, key: i64, value: u64) -> bool {
        let e = Entry::new(key, value);
        let root_node = read_node(disk, self.root);
        let removed = self.delete_rec(disk, self.root, root_node, e);
        if removed {
            self.len -= 1;
            // Collapse a one-child internal root.
            loop {
                match read_node(disk, self.root) {
                    Node::Internal { seps, children } if seps.is_empty() => {
                        disk.free_page(self.root);
                        self.root = children[0];
                        self.height -= 1;
                    }
                    _ => break,
                }
            }
        }
        removed
    }

    fn min_leaf(&self) -> usize {
        self.layout.leaf_cap / 2
    }

    fn min_seps(&self) -> usize {
        (self.layout.fanout - 1) / 2
    }

    /// Delete `e` from the subtree rooted at `id` (already decoded as
    /// `node`). The caller (the parent) repairs any underflow.
    fn delete_rec(&mut self, disk: &mut Disk, id: PageId, node: Node, e: Entry) -> bool {
        match node {
            Node::Leaf { mut entries, next } => match entries.binary_search(&e) {
                Ok(pos) => {
                    entries.remove(pos);
                    write_node(disk, id, &Node::Leaf { entries, next });
                    true
                }
                Err(_) => false,
            },
            Node::Internal {
                mut seps,
                mut children,
            } => {
                let idx = Self::child_index(&seps, e);
                let child = children[idx];
                let child_node = read_node(disk, child);
                let removed = self.delete_rec(disk, child, child_node, e);
                if !removed {
                    return false;
                }
                // Check whether the child underflowed and repair via borrow
                // or merge with an adjacent sibling.
                let child_node = read_node(disk, child);
                let under = match &child_node {
                    Node::Leaf { entries, .. } => entries.len() < self.min_leaf(),
                    Node::Internal { seps, .. } => seps.len() < self.min_seps(),
                };
                if under {
                    self.rebalance_child(disk, &mut seps, &mut children, idx, child_node);
                    write_node(disk, id, &Node::Internal { seps, children });
                }
                true
            }
        }
    }

    /// Repair an underflowing `children[idx]` (decoded as `child_node`) by
    /// borrowing from or merging with an adjacent sibling. Mutates the
    /// parent's `seps`/`children`; the caller writes the parent back.
    fn rebalance_child(
        &mut self,
        disk: &mut Disk,
        seps: &mut Vec<Entry>,
        children: &mut Vec<PageId>,
        idx: usize,
        child_node: Node,
    ) {
        // Prefer the left sibling, matching the usual textbook presentation.
        let (left_idx, right_idx) = if idx > 0 {
            (idx - 1, idx)
        } else {
            (idx, idx + 1)
        };
        let left_id = children[left_idx];
        let right_id = children[right_idx];
        let (left, right) = if idx > 0 {
            (read_node(disk, left_id), child_node)
        } else {
            (child_node, read_node(disk, right_id))
        };
        let sep_pos = left_idx; // separator between left and right

        match (left, right) {
            (
                Node::Leaf {
                    entries: mut le,
                    next: lnext,
                },
                Node::Leaf {
                    entries: mut re,
                    next: rnext,
                },
            ) => {
                if le.len() + re.len() <= self.layout.leaf_cap {
                    // Merge right into left; unlink right from the chain.
                    le.extend(re);
                    write_node(
                        disk,
                        left_id,
                        &Node::Leaf {
                            entries: le,
                            next: rnext,
                        },
                    );
                    disk.free_page(right_id);
                    seps.remove(sep_pos);
                    children.remove(right_idx);
                } else if le.len() < re.len() {
                    // Borrow the smallest entry of right.
                    le.push(re.remove(0));
                    seps[sep_pos] = re[0];
                    write_node(
                        disk,
                        left_id,
                        &Node::Leaf {
                            entries: le,
                            next: lnext,
                        },
                    );
                    write_node(
                        disk,
                        right_id,
                        &Node::Leaf {
                            entries: re,
                            next: rnext,
                        },
                    );
                } else {
                    // Borrow the largest entry of left.
                    let moved = le.pop().expect("left leaf cannot be empty here");
                    re.insert(0, moved);
                    seps[sep_pos] = moved;
                    write_node(
                        disk,
                        left_id,
                        &Node::Leaf {
                            entries: le,
                            next: lnext,
                        },
                    );
                    write_node(
                        disk,
                        right_id,
                        &Node::Leaf {
                            entries: re,
                            next: rnext,
                        },
                    );
                }
            }
            (
                Node::Internal {
                    seps: mut ls,
                    children: mut lc,
                },
                Node::Internal {
                    seps: mut rs,
                    children: mut rc,
                },
            ) => {
                if lc.len() + rc.len() <= self.layout.fanout {
                    // Merge: the parent separator comes down between them.
                    ls.push(seps[sep_pos]);
                    ls.extend(rs);
                    lc.extend(rc);
                    write_node(
                        disk,
                        left_id,
                        &Node::Internal {
                            seps: ls,
                            children: lc,
                        },
                    );
                    disk.free_page(right_id);
                    seps.remove(sep_pos);
                    children.remove(right_idx);
                } else if lc.len() < rc.len() {
                    // Rotate left: parent separator comes down to left, the
                    // right node's first separator goes up.
                    ls.push(seps[sep_pos]);
                    lc.push(rc.remove(0));
                    seps[sep_pos] = rs.remove(0);
                    write_node(
                        disk,
                        left_id,
                        &Node::Internal {
                            seps: ls,
                            children: lc,
                        },
                    );
                    write_node(
                        disk,
                        right_id,
                        &Node::Internal {
                            seps: rs,
                            children: rc,
                        },
                    );
                } else {
                    // Rotate right.
                    rs.insert(0, seps[sep_pos]);
                    rc.insert(0, lc.pop().expect("left internal cannot be empty here"));
                    seps[sep_pos] = ls.pop().expect("left internal has a separator to donate");
                    write_node(
                        disk,
                        left_id,
                        &Node::Internal {
                            seps: ls,
                            children: lc,
                        },
                    );
                    write_node(
                        disk,
                        right_id,
                        &Node::Internal {
                            seps: rs,
                            children: rc,
                        },
                    );
                }
            }
            _ => unreachable!("siblings at the same depth have the same kind"),
        }
    }

    /// Walk the whole tree without charging I/Os and assert every structural
    /// invariant. Returns the number of live pages. Test/debug only.
    pub fn validate_unbilled(&self, disk: &Disk) -> usize {
        fn decode_unbilled(disk: &Disk, id: PageId) -> Node {
            crate::layout::decode(disk.read_unbilled(id))
        }

        struct Walk<'a> {
            disk: &'a Disk,
            layout: Layout,
            pages: usize,
            entries: u64,
            leaf_depth: Option<usize>,
        }

        impl Walk<'_> {
            fn go(
                &mut self,
                id: PageId,
                depth: usize,
                lo: Option<Entry>,
                hi: Option<Entry>,
                is_root: bool,
            ) {
                self.pages += 1;
                match decode_unbilled(self.disk, id) {
                    Node::Leaf { entries, .. } => {
                        match self.leaf_depth {
                            None => self.leaf_depth = Some(depth),
                            Some(d) => assert_eq!(d, depth, "leaves at unequal depths"),
                        }
                        assert!(entries.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                        if !is_root {
                            assert!(
                                entries.len() >= self.layout.leaf_cap / 2,
                                "leaf underflow: {}",
                                entries.len()
                            );
                        }
                        for e in &entries {
                            if let Some(lo) = lo {
                                assert!(*e >= lo, "entry below separator");
                            }
                            if let Some(hi) = hi {
                                assert!(*e < hi, "entry at/above separator");
                            }
                        }
                        self.entries += entries.len() as u64;
                    }
                    Node::Internal { seps, children } => {
                        assert_eq!(children.len(), seps.len() + 1);
                        assert!(seps.windows(2).all(|w| w[0] < w[1]), "unsorted separators");
                        if !is_root {
                            assert!(
                                seps.len() >= (self.layout.fanout - 1) / 2,
                                "internal underflow"
                            );
                        } else {
                            assert!(!seps.is_empty(), "internal root must have ≥ 2 children");
                        }
                        for (i, &child) in children.iter().enumerate() {
                            let clo = if i == 0 { lo } else { Some(seps[i - 1]) };
                            let chi = if i == seps.len() { hi } else { Some(seps[i]) };
                            self.go(child, depth + 1, clo, chi, false);
                        }
                    }
                }
            }
        }

        let mut w = Walk {
            disk,
            layout: self.layout,
            pages: 0,
            entries: 0,
            leaf_depth: None,
        };
        w.go(self.root, 1, None, None, true);
        assert_eq!(w.entries, self.len, "stored entry count mismatch");
        if let Some(d) = w.leaf_depth {
            assert_eq!(d, self.height, "height mismatch");
        }
        w.pages
    }
}

enum InsertResult {
    NoSplit { inserted: bool },
    Split { sep: Entry, right: PageId },
}

/// Split `items` into chunks of at most `cap`, at least `min` (except when
/// there is a single chunk), preserving order. Only the final two chunks are
/// ever rebalanced; all earlier chunks are full.
fn balanced_chunks<T>(items: &[T], cap: usize, min: usize) -> Vec<&[T]> {
    debug_assert!(min <= cap / 2 + 1, "min {min} unreachable for cap {cap}");
    let mut out: Vec<&[T]> = Vec::with_capacity(items.len().div_ceil(cap));
    let mut rest = items;
    while rest.len() > cap {
        // If what would remain after a full chunk is a too-small tail, split
        // the final `cap + tail` items evenly instead.
        let after = rest.len() - cap;
        if after < min && rest.len() <= 2 * cap {
            let half = rest.len().div_ceil(2);
            let (a, b) = rest.split_at(half);
            out.push(a);
            out.push(b);
            return out;
        }
        let (chunk, tail) = rest.split_at(cap);
        out.push(chunk);
        rest = tail;
    }
    if !rest.is_empty() || out.is_empty() {
        out.push(rest);
    }
    out
}

#[cfg(test)]
mod chunk_tests {
    use super::balanced_chunks;

    #[test]
    fn exact_multiples_stay_full() {
        let v: Vec<u8> = (0..12).collect();
        let c = balanced_chunks(&v, 4, 2);
        assert_eq!(c.iter().map(|s| s.len()).collect::<Vec<_>>(), vec![4, 4, 4]);
    }

    #[test]
    fn small_tail_is_balanced() {
        let v: Vec<u8> = (0..9).collect();
        let c = balanced_chunks(&v, 8, 4);
        assert_eq!(c.iter().map(|s| s.len()).collect::<Vec<_>>(), vec![5, 4]);
    }

    #[test]
    fn single_small_input_is_one_chunk() {
        let v: Vec<u8> = vec![1];
        let c = balanced_chunks(&v, 8, 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], &[1]);
    }

    #[test]
    fn all_chunks_respect_min_and_cap() {
        for n in 1..200usize {
            let v: Vec<usize> = (0..n).collect();
            for cap in [4usize, 5, 8, 63] {
                let min = cap / 2;
                let chunks = balanced_chunks(&v, cap, min);
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                assert_eq!(total, n);
                for (i, c) in chunks.iter().enumerate() {
                    assert!(c.len() <= cap, "n={n} cap={cap} chunk {i} too big");
                    if chunks.len() > 1 {
                        assert!(c.len() >= min, "n={n} cap={cap} chunk {i} too small");
                    }
                }
            }
        }
    }
}
