//! Property tests (on the shared testkit harness) for the order-constraint
//! decision procedure: the solver's satisfiability and projection answers
//! must agree with brute-force evaluation over a dense grid of candidate
//! assignments.

use ccix_constraint::{Atom, Bound, Cmp, GeneralizedTuple, Rat};
use ccix_testkit::{check, DetRng};

/// Candidate values: integers and half-integers in a small window —
/// dense enough to witness any satisfiable combination of constraints whose
/// constants are drawn from the integers in the same window.
fn grid() -> Vec<Rat> {
    let mut v = Vec::new();
    for n in -8..=8i64 {
        v.push(Rat::from(n));
        v.push(Rat::new(2 * n + 1, 2));
    }
    v.sort_unstable();
    v
}

fn random_cmp(rng: &mut DetRng) -> Cmp {
    *rng.choose(&[Cmp::Lt, Cmp::Le, Cmp::Eq, Cmp::Ge, Cmp::Gt])
        .expect("nonempty")
}

fn random_atom(rng: &mut DetRng, arity: usize) -> Atom {
    if rng.gen_bool(0.5) {
        Atom::var_cmp_const(
            rng.gen_range(0..arity),
            random_cmp(rng),
            Rat::from(rng.gen_range(-6i64..6)),
        )
    } else {
        Atom::var_cmp_var(
            rng.gen_range(0..arity),
            random_cmp(rng),
            rng.gen_range(0..arity),
        )
    }
}

fn random_tuple(rng: &mut DetRng, arity: usize, max_atoms: usize) -> GeneralizedTuple {
    let mut t = GeneralizedTuple::new(arity);
    for _ in 0..rng.gen_range(0..max_atoms) {
        t.and(random_atom(rng, arity));
    }
    t
}

/// Brute-force satisfiability over the grid (complete for ≤ 2 variables,
/// since only order matters and the grid is dense in the constant window).
fn brute_sat(t: &GeneralizedTuple) -> bool {
    let g = grid();
    match t.arity() {
        1 => g.iter().any(|&a| t.satisfies(&[a])),
        2 => g.iter().any(|&a| g.iter().any(|&b| t.satisfies(&[a, b]))),
        _ => unreachable!("tests use arity ≤ 2"),
    }
}

/// Brute-force projection extrema of variable `v` over the grid.
fn brute_project(t: &GeneralizedTuple, v: usize) -> Option<(Rat, Rat)> {
    let g = grid();
    let mut lo = None;
    let mut hi = None;
    let ok = |val: Rat, t: &GeneralizedTuple| -> bool {
        match t.arity() {
            1 => t.satisfies(&[val]),
            2 => g.iter().any(|&other| {
                let mut asg = [val, val];
                asg[1 - v] = other;
                t.satisfies(&asg)
            }),
            _ => unreachable!(),
        }
    };
    for &cand in &g {
        if ok(cand, t) {
            if lo.is_none() {
                lo = Some(cand);
            }
            hi = Some(cand);
        }
    }
    lo.zip(hi)
}

#[test]
fn solver_agrees_with_brute_force_sat() {
    check::trials(
        "constraint::solver_agrees_with_brute_force_sat",
        256,
        0x5A7,
        |rng| {
            let t = random_tuple(rng, 2, 6);
            let solver = t.is_satisfiable();
            let brute = brute_sat(&t);
            // The grid is dense within the constant window, so brute-force SAT
            // implies solver SAT, and solver UNSAT implies brute-force UNSAT.
            // (A satisfiable tuple always has a witness on the grid because
            // constants lie in [-6, 6] and the domain is dense.)
            assert_eq!(solver, brute, "atoms: {:?}", t.atoms());
        },
    );
}

#[test]
fn projection_contains_all_witnesses() {
    check::trials(
        "constraint::projection_contains_all_witnesses",
        256,
        0x5A8,
        |rng| {
            let t = random_tuple(rng, 2, 6);
            let v = rng.gen_range(0usize..2);
            match (t.project(v), brute_project(&t, v)) {
                (None, w) => assert!(w.is_none(), "solver UNSAT but witnesses exist"),
                (Some((lo, hi)), Some((wlo, whi))) => {
                    // Every witnessed value lies inside the projected interval.
                    match lo {
                        Bound::Unbounded => {}
                        Bound::Closed(b) => assert!(wlo >= b),
                        Bound::Open(b) => assert!(wlo > b),
                    }
                    match hi {
                        Bound::Unbounded => {}
                        Bound::Closed(b) => assert!(whi <= b),
                        Bound::Open(b) => assert!(whi < b),
                    }
                }
                (Some(_), None) => {
                    // Solver SAT but no grid witness would contradict density.
                    panic!("projection nonempty but no grid witness");
                }
            }
        },
    );
}

#[test]
fn ground_evaluation_is_consistent_with_projection() {
    check::trials(
        "constraint::ground_eval_consistent_with_projection",
        256,
        0x5A9,
        |rng| {
            let t = random_tuple(rng, 1, 5);
            let probe = rng.gen_range(-8i64..8);
            let val = Rat::from(probe);
            if t.satisfies(&[val]) {
                let (lo, hi) = t.project(0).expect("satisfied implies satisfiable");
                match lo {
                    Bound::Unbounded => {}
                    Bound::Closed(b) => assert!(val >= b),
                    Bound::Open(b) => assert!(val > b),
                }
                match hi {
                    Bound::Unbounded => {}
                    Bound::Closed(b) => assert!(val <= b),
                    Bound::Open(b) => assert!(val < b),
                }
            }
        },
    );
}
