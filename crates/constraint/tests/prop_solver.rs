//! Property tests for the order-constraint decision procedure: the solver's
//! satisfiability and projection answers must agree with brute-force
//! evaluation over a dense grid of candidate assignments.

use ccix_constraint::{Atom, Bound, Cmp, GeneralizedTuple, Rat};
use proptest::prelude::*;

/// Candidate values: integers and half-integers in a small window —
/// dense enough to witness any satisfiable combination of constraints whose
/// constants are drawn from the integers in the same window.
fn grid() -> Vec<Rat> {
    let mut v = Vec::new();
    for n in -8..=8i64 {
        v.push(Rat::from(n));
        v.push(Rat::new(2 * n + 1, 2));
    }
    v.sort_unstable();
    v
}

fn atom_strategy(arity: usize) -> impl Strategy<Value = Atom> {
    let cmp = prop_oneof![
        Just(Cmp::Lt),
        Just(Cmp::Le),
        Just(Cmp::Eq),
        Just(Cmp::Ge),
        Just(Cmp::Gt),
    ];
    prop_oneof![
        (0..arity, cmp.clone(), -6..6i64)
            .prop_map(|(v, c, k)| Atom::var_cmp_const(v, c, Rat::from(k))),
        (0..arity, cmp, 0..arity).prop_map(|(u, c, v)| Atom::var_cmp_var(u, c, v)),
    ]
}

/// Brute-force satisfiability over the grid (complete for ≤ 2 variables,
/// since only order matters and the grid is dense in the constant window).
fn brute_sat(t: &GeneralizedTuple) -> bool {
    let g = grid();
    match t.arity() {
        1 => g.iter().any(|&a| t.satisfies(&[a])),
        2 => g
            .iter()
            .any(|&a| g.iter().any(|&b| t.satisfies(&[a, b]))),
        _ => unreachable!("tests use arity ≤ 2"),
    }
}

/// Brute-force projection extrema of variable `v` over the grid.
fn brute_project(t: &GeneralizedTuple, v: usize) -> Option<(Rat, Rat)> {
    let g = grid();
    let mut lo = None;
    let mut hi = None;
    let ok = |val: Rat, t: &GeneralizedTuple| -> bool {
        match t.arity() {
            1 => t.satisfies(&[val]),
            2 => g.iter().any(|&other| {
                let mut asg = [val, val];
                asg[1 - v] = other;
                t.satisfies(&asg)
            }),
            _ => unreachable!(),
        }
    };
    for &cand in &g {
        if ok(cand, t) {
            if lo.is_none() {
                lo = Some(cand);
            }
            hi = Some(cand);
        }
    }
    lo.zip(hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force_sat(
        atoms in proptest::collection::vec(atom_strategy(2), 0..6)
    ) {
        let mut t = GeneralizedTuple::new(2);
        for a in atoms {
            t.and(a);
        }
        let solver = t.is_satisfiable();
        let brute = brute_sat(&t);
        // The grid is dense within the constant window, so brute-force SAT
        // implies solver SAT, and solver UNSAT implies brute-force UNSAT.
        // (A satisfiable tuple always has a witness on the grid because
        // constants lie in [-6, 6] and the domain is dense.)
        prop_assert_eq!(solver, brute, "atoms: {:?}", t.atoms());
    }

    #[test]
    fn projection_contains_all_witnesses(
        atoms in proptest::collection::vec(atom_strategy(2), 0..6),
        v in 0usize..2,
    ) {
        let mut t = GeneralizedTuple::new(2);
        for a in atoms {
            t.and(a);
        }
        match (t.project(v), brute_project(&t, v)) {
            (None, w) => prop_assert!(w.is_none(), "solver UNSAT but witnesses exist"),
            (Some((lo, hi)), Some((wlo, whi))) => {
                // Every witnessed value lies inside the projected interval.
                match lo {
                    Bound::Unbounded => {}
                    Bound::Closed(b) => prop_assert!(wlo >= b),
                    Bound::Open(b) => prop_assert!(wlo > b),
                }
                match hi {
                    Bound::Unbounded => {}
                    Bound::Closed(b) => prop_assert!(whi <= b),
                    Bound::Open(b) => prop_assert!(whi < b),
                }
            }
            (Some(_), None) => {
                // Solver SAT but no grid witness would contradict density.
                prop_assert!(false, "projection nonempty but no grid witness");
            }
        }
    }

    #[test]
    fn ground_evaluation_is_consistent_with_projection(
        atoms in proptest::collection::vec(atom_strategy(1), 0..5),
        probe in -8..8i64,
    ) {
        let mut t = GeneralizedTuple::new(1);
        for a in atoms {
            t.and(a);
        }
        let val = Rat::from(probe);
        if t.satisfies(&[val]) {
            let (lo, hi) = t.project(0).expect("satisfied implies satisfiable");
            match lo {
                Bound::Unbounded => {}
                Bound::Closed(b) => prop_assert!(val >= b),
                Bound::Open(b) => prop_assert!(val > b),
            }
            match hi {
                Bound::Unbounded => {}
                Bound::Closed(b) => prop_assert!(val <= b),
                Bound::Open(b) => prop_assert!(val < b),
            }
        }
    }
}
