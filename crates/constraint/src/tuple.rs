//! Generalized tuples: conjunctions of order atoms, with a decision
//! procedure for satisfiability and projection.
//!
//! For the theory of dense linear order, a conjunction is satisfiable iff
//! the order graph over its variables admits no cycle through a strict
//! edge and no variable's derived lower bound exceeds its upper bound. The
//! same closure yields each variable's **projection**, which is always a
//! single (possibly unbounded, possibly open) interval — this is why the
//! paper's "convex CQL" assumption holds for free in this theory.

use crate::atom::{Atom, Cmp, Operand};
use crate::Rat;

/// One end of a projection interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// No constraint on this side.
    Unbounded,
    /// Inclusive endpoint.
    Closed(Rat),
    /// Exclusive endpoint.
    Open(Rat),
}

impl Bound {
    /// The endpoint value, if finite.
    pub fn value(&self) -> Option<Rat> {
        match self {
            Bound::Unbounded => None,
            Bound::Closed(v) | Bound::Open(v) => Some(*v),
        }
    }
}

/// A conjunction of atoms over `arity` variables — a finite representation
/// of a possibly infinite set of `arity`-tuples of rationals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralizedTuple {
    arity: usize,
    atoms: Vec<Atom>,
}

/// Derived bounds for one variable: `(value, strict)` on each side.
#[derive(Clone, Copy, Debug, Default)]
struct VarBounds {
    lo: Option<(Rat, bool)>,
    hi: Option<(Rat, bool)>,
}

impl GeneralizedTuple {
    /// An unconstrained tuple of the given arity (denotes all of `Q^arity`).
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            atoms: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The conjunction's atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Conjoin an atom.
    ///
    /// # Panics
    /// Panics if the atom mentions a variable outside the arity.
    pub fn and(&mut self, atom: Atom) -> &mut Self {
        assert!(
            atom.max_var() < self.arity,
            "atom mentions variable {} but arity is {}",
            atom.max_var(),
            self.arity
        );
        self.atoms.push(atom);
        self
    }

    /// Does the ground tuple satisfy the conjunction?
    pub fn satisfies(&self, assignment: &[Rat]) -> bool {
        assert_eq!(assignment.len(), self.arity, "assignment arity mismatch");
        self.atoms.iter().all(|a| a.eval(assignment))
    }

    /// Decide satisfiability over the rationals.
    pub fn is_satisfiable(&self) -> bool {
        self.solve().is_some()
    }

    /// The projection onto variable `v`: the exact interval of values `x_v`
    /// takes over all solutions, or `None` if the tuple is unsatisfiable.
    ///
    /// Always a single interval (order constraints describe convex sets in
    /// each coordinate), which is what makes the generalized
    /// one-dimensional index of §2.1 possible.
    pub fn project(&self, v: usize) -> Option<(Bound, Bound)> {
        assert!(v < self.arity, "projection variable out of range");
        let bounds = self.solve()?;
        let lo = match bounds[v].lo {
            None => Bound::Unbounded,
            Some((r, false)) => Bound::Closed(r),
            Some((r, true)) => Bound::Open(r),
        };
        let hi = match bounds[v].hi {
            None => Bound::Unbounded,
            Some((r, false)) => Bound::Closed(r),
            Some((r, true)) => Bound::Open(r),
        };
        Some((lo, hi))
    }

    /// Order closure + bound propagation. Returns per-variable bounds, or
    /// `None` when unsatisfiable.
    fn solve(&self) -> Option<Vec<VarBounds>> {
        let k = self.arity;
        // le[i][j]: x_i ≤ x_j provable; lt[i][j]: x_i < x_j provable.
        let mut le = vec![false; k * k];
        let mut lt = vec![false; k * k];
        let mut bounds: Vec<VarBounds> = vec![VarBounds::default(); k];

        let tighten_lo = |b: &mut VarBounds, v: Rat, strict: bool| {
            b.lo = Some(match b.lo {
                None => (v, strict),
                Some((old, os)) => match v.cmp(&old) {
                    std::cmp::Ordering::Greater => (v, strict),
                    std::cmp::Ordering::Equal => (old, os || strict),
                    std::cmp::Ordering::Less => (old, os),
                },
            });
        };
        let tighten_hi = |b: &mut VarBounds, v: Rat, strict: bool| {
            b.hi = Some(match b.hi {
                None => (v, strict),
                Some((old, os)) => match v.cmp(&old) {
                    std::cmp::Ordering::Less => (v, strict),
                    std::cmp::Ordering::Equal => (old, os || strict),
                    std::cmp::Ordering::Greater => (old, os),
                },
            });
        };

        for a in &self.atoms {
            match a.rhs {
                Operand::Const(c) => {
                    let b = &mut bounds[a.lhs];
                    match a.cmp {
                        Cmp::Lt => tighten_hi(b, c, true),
                        Cmp::Le => tighten_hi(b, c, false),
                        Cmp::Eq => {
                            tighten_lo(b, c, false);
                            tighten_hi(b, c, false);
                        }
                        Cmp::Ge => tighten_lo(b, c, false),
                        Cmp::Gt => tighten_lo(b, c, true),
                    }
                }
                Operand::Var(v) => {
                    let (i, j) = (a.lhs, v);
                    match a.cmp {
                        Cmp::Lt => lt[i * k + j] = true,
                        Cmp::Le => le[i * k + j] = true,
                        Cmp::Eq => {
                            le[i * k + j] = true;
                            le[j * k + i] = true;
                        }
                        Cmp::Ge => le[j * k + i] = true,
                        Cmp::Gt => lt[j * k + i] = true,
                    }
                }
            }
        }

        // Floyd–Warshall closure over the two-level order lattice.
        for m in 0..k {
            for i in 0..k {
                for j in 0..k {
                    let through_lt = (lt[i * k + m] && (le[m * k + j] || lt[m * k + j]))
                        || (le[i * k + m] && lt[m * k + j]);
                    let through_le = le[i * k + m] && le[m * k + j];
                    if through_lt {
                        lt[i * k + j] = true;
                    }
                    if through_le {
                        le[i * k + j] = true;
                    }
                }
            }
        }
        for i in 0..k {
            if lt[i * k + i] {
                return None; // strict cycle: x_i < x_i
            }
        }

        // Push constant bounds along the closed order relation (one pass
        // over the closure suffices since the closure is transitive).
        let snapshot = bounds.clone();
        for i in 0..k {
            for j in 0..k {
                if i == j || !(le[i * k + j] || lt[i * k + j]) {
                    continue;
                }
                let strict_edge = lt[i * k + j];
                // x_i ≤ (<) x_j: j inherits i's lower bound, i inherits j's
                // upper bound.
                if let Some((v, s)) = snapshot[i].lo {
                    tighten_lo(&mut bounds[j], v, s || strict_edge);
                }
                if let Some((v, s)) = snapshot[j].hi {
                    tighten_hi(&mut bounds[i], v, s || strict_edge);
                }
            }
        }

        // Per-variable emptiness.
        for b in &bounds {
            if let (Some((lo, ls)), Some((hi, hs))) = (b.lo, b.hi) {
                if lo > hi || (lo == hi && (ls || hs)) {
                    return None;
                }
            }
        }
        Some(bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn unconstrained_tuple_is_satisfiable_and_unbounded() {
        let t = GeneralizedTuple::new(2);
        assert!(t.is_satisfiable());
        assert_eq!(t.project(0), Some((Bound::Unbounded, Bound::Unbounded)));
    }

    #[test]
    fn simple_box() {
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_ge_const(0, q(1)));
        t.and(Atom::var_le_const(0, q(4)));
        t.and(Atom::var_gt_const(1, q(0)));
        assert_eq!(
            t.project(0),
            Some((Bound::Closed(q(1)), Bound::Closed(q(4))))
        );
        assert_eq!(t.project(1), Some((Bound::Open(q(0)), Bound::Unbounded)));
        assert!(t.satisfies(&[q(2), q(5)]));
        assert!(!t.satisfies(&[q(5), q(5)]));
        assert!(!t.satisfies(&[q(2), q(0)]));
    }

    #[test]
    fn equality_pins_a_point() {
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_eq_const(0, Rat::new(7, 2)));
        assert_eq!(
            t.project(0),
            Some((Bound::Closed(Rat::new(7, 2)), Bound::Closed(Rat::new(7, 2))))
        );
    }

    #[test]
    fn contradictory_constants_unsat() {
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_ge_const(0, q(5)));
        t.and(Atom::var_lt_const(0, q(5)));
        assert!(!t.is_satisfiable());
        assert_eq!(t.project(0), None);
    }

    #[test]
    fn bounds_propagate_through_variable_order() {
        // x ≤ y, y ≤ 3, x ≥ 0  ⇒  x ∈ [0, 3].
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_cmp_var(0, Cmp::Le, 1));
        t.and(Atom::var_le_const(1, q(3)));
        t.and(Atom::var_ge_const(0, q(0)));
        assert_eq!(
            t.project(0),
            Some((Bound::Closed(q(0)), Bound::Closed(q(3))))
        );
        // y inherits x's lower bound.
        assert_eq!(
            t.project(1),
            Some((Bound::Closed(q(0)), Bound::Closed(q(3))))
        );
    }

    #[test]
    fn strict_propagation_via_chain() {
        // x < y, y < z, z ≤ 10 ⇒ x < 10 (strict).
        let mut t = GeneralizedTuple::new(3);
        t.and(Atom::var_cmp_var(0, Cmp::Lt, 1));
        t.and(Atom::var_cmp_var(1, Cmp::Lt, 2));
        t.and(Atom::var_le_const(2, q(10)));
        assert_eq!(t.project(0), Some((Bound::Unbounded, Bound::Open(q(10)))));
    }

    #[test]
    fn strict_cycle_unsat() {
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_cmp_var(0, Cmp::Lt, 1));
        t.and(Atom::var_cmp_var(1, Cmp::Lt, 0));
        assert!(!t.is_satisfiable());
    }

    #[test]
    fn nonstrict_cycle_is_equality() {
        // x ≤ y ∧ y ≤ x ∧ y = 2 ⇒ x = 2.
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_cmp_var(0, Cmp::Le, 1));
        t.and(Atom::var_cmp_var(1, Cmp::Le, 0));
        t.and(Atom::var_eq_const(1, q(2)));
        assert_eq!(
            t.project(0),
            Some((Bound::Closed(q(2)), Bound::Closed(q(2))))
        );
    }

    #[test]
    fn forced_empty_between_vars() {
        // x ≥ 5, y ≤ 3, x ≤ y: unsat.
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_ge_const(0, q(5)));
        t.and(Atom::var_le_const(1, q(3)));
        t.and(Atom::var_cmp_var(0, Cmp::Le, 1));
        assert!(!t.is_satisfiable());
    }

    #[test]
    fn paper_example_diagonal_strip() {
        // R(x, y) with x = y ∧ x < 2 — the intro's generalized tuple.
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_cmp_var(0, Cmp::Eq, 1));
        t.and(Atom::var_lt_const(0, q(2)));
        assert!(t.is_satisfiable());
        assert_eq!(t.project(1), Some((Bound::Unbounded, Bound::Open(q(2)))));
        assert!(t.satisfies(&[q(1), q(1)]));
        assert!(!t.satisfies(&[q(1), q(0)]));
        assert!(!t.satisfies(&[q(2), q(2)]));
    }
}
