//! Exact rationals — the CQL domain.
//!
//! The theory of rational order needs nothing but comparisons, so [`Rat`]
//! provides a normalised `num/den` pair with exact ordering via 128-bit
//! cross multiplication. Constants in realistic constraint databases are
//! small; construction panics on zero denominators and normalisation keeps
//! the representation canonical (`den > 0`, reduced).

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num/den`, `den > 0`, fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i64,
    den: i64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a as i64
}

impl Rat {
    /// Construct `num/den`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Self {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Numerator (reduced; sign-carrying).
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Denominator (reduced, positive).
    pub fn den(&self) -> i64 {
        self.den
    }

    /// Is the value an integer?
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Exact conversion to a scaled integer: `self * scale`, if integral.
    pub fn scaled(&self, scale: i64) -> Option<i64> {
        let prod = self.num as i128 * scale as i128;
        if prod % self.den as i128 != 0 {
            return None;
        }
        i64::try_from(prod / self.den as i128).ok()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Self { num: v, den: 1 }
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross multiplication preserves order.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::from(0));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(1, 3));
        assert!(Rat::from(2) > Rat::new(5, 3));
        assert_eq!(Rat::new(4, 6), Rat::new(2, 3));
    }

    #[test]
    fn large_values_do_not_overflow_comparison() {
        let a = Rat::new(i64::MAX, 3);
        let b = Rat::new(i64::MAX - 1, 3);
        assert!(a > b);
    }

    #[test]
    fn scaled_conversion() {
        assert_eq!(Rat::new(1, 2).scaled(4), Some(2));
        assert_eq!(Rat::new(1, 3).scaled(4), None);
        assert_eq!(Rat::from(5).scaled(2), Some(10));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = Rat::new(1, 0);
    }
}
