//! The generalized one-dimensional index (§2.1).
//!
//! Each satisfiable tuple's projection on the indexed variable — one
//! interval, since the CQL is convex — becomes a *generalized key*; range
//! search conjoins the query constraint onto exactly the tuples whose keys
//! intersect the query, via the interval manager of `ccix-interval`.
//!
//! ## Rational endpoints on an integer store
//!
//! The external structures key on `i64`. Endpoints are mapped exactly onto
//! a half-integer grid: with `L` the least common multiple of every
//! endpoint denominator, the value `v` maps to `2·L·v`, and *open*
//! endpoints are nudged one half-step inward (`+1` for lower, `−1` for
//! upper). Two distinct rationals with denominators dividing `L` differ by
//! at least a full step, so intersection tests on the grid agree exactly
//! with intersection tests over the rationals. Query endpoints must share
//! the grid (their denominators must divide `L`), or
//! [`GeneralizedIndex::try_range_search`] reports
//! [`IndexError::OffGridQuery`].

use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalIndex};

use crate::tuple::Bound;
use crate::{Atom, GeneralizedRelation, Rat};

/// Sentinels for unbounded projection ends (half the i64 range keeps all
/// arithmetic overflow-free).
const NEG_SENTINEL: i64 = i64::MIN / 4;
const POS_SENTINEL: i64 = i64::MAX / 4;

/// Why an index could not be built or queried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// Endpoint denominators overflow the exact grid.
    ScaleOverflow,
    /// A query endpoint does not lie on the index's grid.
    OffGridQuery,
}

/// A generalized one-dimensional index on one variable of a generalized
/// relation.
#[derive(Debug)]
pub struct GeneralizedIndex {
    relation: GeneralizedRelation,
    var: usize,
    /// Grid scale: rationals map to `2 * lcm_den * value`.
    scale2: i64,
    index: IntervalIndex,
}

fn lcm(a: i64, b: i64) -> Option<i64> {
    let g = {
        let (mut x, mut y) = (a, b);
        while y != 0 {
            (x, y) = (y, x % y);
        }
        x
    };
    (a / g).checked_mul(b)
}

impl GeneralizedIndex {
    /// Build over `relation`, indexing variable `var`. Unsatisfiable tuples
    /// are skipped (they denote the empty set).
    pub fn build(
        relation: &GeneralizedRelation,
        var: usize,
        geo: Geometry,
        counter: IoCounter,
    ) -> Result<Self, IndexError> {
        assert!(var < relation.arity(), "indexed variable out of range");
        // Projections and the exact grid scale.
        let mut projections = Vec::with_capacity(relation.len());
        let mut l: i64 = 1;
        for t in relation.tuples() {
            let proj = t.project(var);
            if let Some((lo, hi)) = proj {
                for b in [lo, hi] {
                    if let Some(v) = b.value() {
                        l = lcm(l, v.den()).ok_or(IndexError::ScaleOverflow)?;
                        if l > (1 << 40) {
                            return Err(IndexError::ScaleOverflow);
                        }
                    }
                }
            }
            projections.push(proj);
        }
        let scale2 = 2 * l;

        let mut intervals = Vec::new();
        for (id, proj) in projections.iter().enumerate() {
            let Some((lo, hi)) = proj else { continue };
            let lo_key = match lo {
                Bound::Unbounded => NEG_SENTINEL,
                Bound::Closed(v) => v.scaled(scale2).ok_or(IndexError::ScaleOverflow)?,
                Bound::Open(v) => v.scaled(scale2).ok_or(IndexError::ScaleOverflow)? + 1,
            };
            let hi_key = match hi {
                Bound::Unbounded => POS_SENTINEL,
                Bound::Closed(v) => v.scaled(scale2).ok_or(IndexError::ScaleOverflow)?,
                Bound::Open(v) => v.scaled(scale2).ok_or(IndexError::ScaleOverflow)? - 1,
            };
            debug_assert!(lo_key <= hi_key, "projection interval inverted");
            intervals.push(Interval::new(lo_key, hi_key, id as u64));
        }
        let index = IndexBuilder::new(geo).bulk(counter, &intervals);
        Ok(Self {
            relation: relation.clone(),
            var,
            scale2,
            index,
        })
    }

    /// The indexed variable.
    pub fn var(&self) -> usize {
        self.var
    }

    /// The underlying relation.
    pub fn relation(&self) -> &GeneralizedRelation {
        &self.relation
    }

    /// Disk blocks occupied by the index structures.
    pub fn space_pages(&self) -> usize {
        self.index.space_pages()
    }

    /// The shared I/O counter.
    pub fn counter(&self) -> &IoCounter {
        self.index.counter()
    }

    /// Find a generalized relation representing all tuples whose `var`
    /// satisfies `a1 ≤ x_var ≤ a2` — operation (i) of §2.1: the returned
    /// disjuncts are the intersecting tuples with the query constraint
    /// conjoined.
    pub fn try_range_search(&self, a1: Rat, a2: Rat) -> Result<GeneralizedRelation, IndexError> {
        let q1 = a1.scaled(self.scale2).ok_or(IndexError::OffGridQuery)?;
        let q2 = a2.scaled(self.scale2).ok_or(IndexError::OffGridQuery)?;
        let mut out = GeneralizedRelation::new(self.relation.arity());
        if q1 > q2 {
            return Ok(out);
        }
        for id in self.index.intersecting(q1, q2) {
            let mut t = self.relation.tuples()[id as usize].clone();
            t.and(Atom::var_ge_const(self.var, a1));
            t.and(Atom::var_le_const(self.var, a2));
            out.add(t);
        }
        Ok(out)
    }

    /// As [`GeneralizedIndex::try_range_search`], panicking on off-grid
    /// query endpoints.
    pub fn range_search(&self, a1: Rat, a2: Rat) -> GeneralizedRelation {
        self.try_range_search(a1, a2)
            .expect("query endpoint off the index grid")
    }

    /// Tuples whose projection contains the point `a` (stabbing).
    pub fn stab(&self, a: Rat) -> GeneralizedRelation {
        self.range_search(a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneralizedTuple;

    fn interval_tuple(lo: Rat, hi: Rat) -> GeneralizedTuple {
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_ge_const(0, lo));
        t.and(Atom::var_le_const(0, hi));
        t
    }

    #[test]
    fn range_search_refines_tuples() {
        let mut rel = GeneralizedRelation::new(1);
        rel.add(interval_tuple(Rat::from(0), Rat::from(5)));
        rel.add(interval_tuple(Rat::from(10), Rat::from(20)));
        let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();
        let hits = idx.range_search(Rat::from(4), Rat::from(11));
        assert_eq!(hits.len(), 2);
        // Refined tuples respect both the original and the query constraint.
        assert!(hits.contains(&[Rat::from(4)]));
        assert!(hits.contains(&[Rat::from(11)]));
        assert!(!hits.contains(&[Rat::from(7)]), "gap between the tuples");
        assert!(!hits.contains(&[Rat::from(20)]), "outside the query");
    }

    #[test]
    fn open_bounds_are_exact_on_the_grid() {
        // x > 1/2: stabbing at 1/2 must miss, at 3/4 must hit.
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_gt_const(0, Rat::new(1, 2)));
        let mut rel = GeneralizedRelation::new(1);
        rel.add(t);
        let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();
        assert!(idx.stab(Rat::new(1, 2)).is_empty());
        assert_eq!(idx.stab(Rat::new(3, 4)).len(), 1);
    }

    #[test]
    fn off_grid_query_is_reported() {
        let mut rel = GeneralizedRelation::new(1);
        rel.add(interval_tuple(Rat::from(0), Rat::from(1)));
        let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();
        // Grid is halves of integers; thirds are off-grid.
        assert_eq!(
            idx.try_range_search(Rat::new(1, 3), Rat::from(1)).err(),
            Some(IndexError::OffGridQuery)
        );
    }

    #[test]
    fn unsatisfiable_tuples_are_skipped() {
        let mut rel = GeneralizedRelation::new(1);
        let mut t = GeneralizedTuple::new(1);
        t.and(Atom::var_ge_const(0, Rat::from(5)));
        t.and(Atom::var_lt_const(0, Rat::from(5)));
        rel.add(t);
        rel.add(interval_tuple(Rat::from(0), Rat::from(1)));
        let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();
        assert_eq!(idx.stab(Rat::from(5)).len(), 0);
        assert_eq!(idx.stab(Rat::from(1)).len(), 1);
    }

    #[test]
    fn unbounded_projections_always_intersect() {
        let mut rel = GeneralizedRelation::new(2);
        let mut t = GeneralizedTuple::new(2);
        t.and(Atom::var_le_const(1, Rat::from(3))); // no constraint on x_0
        rel.add(t);
        let idx = GeneralizedIndex::build(&rel, 0, Geometry::new(8), IoCounter::new()).unwrap();
        assert_eq!(idx.stab(Rat::from(-1_000_000)).len(), 1);
        assert_eq!(idx.stab(Rat::from(1_000_000)).len(), 1);
    }
}
