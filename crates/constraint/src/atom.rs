//! Atomic constraints of the theory of rational order with constants.

use crate::Rat;

/// A comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl Cmp {
    /// Evaluate `a ⋈ b`.
    pub fn eval(self, a: Rat, b: Rat) -> bool {
        match self {
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Eq => a == b,
            Cmp::Ge => a >= b,
            Cmp::Gt => a > b,
        }
    }

    /// The operator with sides swapped (`x < y` ⇔ `y > x`).
    pub fn flipped(self) -> Cmp {
        match self {
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Eq => Cmp::Eq,
            Cmp::Ge => Cmp::Le,
            Cmp::Gt => Cmp::Lt,
        }
    }
}

/// The right-hand side of an atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A rational constant.
    Const(Rat),
    /// Another variable (by index).
    Var(usize),
}

/// An atomic constraint `x_lhs ⋈ rhs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Left-hand variable index.
    pub lhs: usize,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: Operand,
}

impl Atom {
    /// `x_v ⋈ c` with an arbitrary operator.
    pub fn var_cmp_const(v: usize, cmp: Cmp, c: Rat) -> Self {
        Self {
            lhs: v,
            cmp,
            rhs: Operand::Const(c),
        }
    }

    /// `x_v = c`.
    pub fn var_eq_const(v: usize, c: Rat) -> Self {
        Self::var_cmp_const(v, Cmp::Eq, c)
    }

    /// `x_v ≤ c`.
    pub fn var_le_const(v: usize, c: Rat) -> Self {
        Self::var_cmp_const(v, Cmp::Le, c)
    }

    /// `x_v ≥ c`.
    pub fn var_ge_const(v: usize, c: Rat) -> Self {
        Self::var_cmp_const(v, Cmp::Ge, c)
    }

    /// `x_v < c`.
    pub fn var_lt_const(v: usize, c: Rat) -> Self {
        Self::var_cmp_const(v, Cmp::Lt, c)
    }

    /// `x_v > c`.
    pub fn var_gt_const(v: usize, c: Rat) -> Self {
        Self::var_cmp_const(v, Cmp::Gt, c)
    }

    /// `x_u ⋈ x_v`.
    pub fn var_cmp_var(u: usize, cmp: Cmp, v: usize) -> Self {
        Self {
            lhs: u,
            cmp,
            rhs: Operand::Var(v),
        }
    }

    /// Evaluate under a ground assignment.
    pub fn eval(&self, assignment: &[Rat]) -> bool {
        let a = assignment[self.lhs];
        let b = match self.rhs {
            Operand::Const(c) => c,
            Operand::Var(v) => assignment[v],
        };
        self.cmp.eval(a, b)
    }

    /// Largest variable index mentioned.
    pub fn max_var(&self) -> usize {
        match self.rhs {
            Operand::Var(v) => self.lhs.max(v),
            Operand::Const(_) => self.lhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_const_atoms() {
        let a = Atom::var_le_const(0, Rat::from(5));
        assert!(a.eval(&[Rat::from(5)]));
        assert!(a.eval(&[Rat::from(4)]));
        assert!(!a.eval(&[Rat::from(6)]));
        let b = Atom::var_gt_const(0, Rat::new(1, 2));
        assert!(b.eval(&[Rat::new(2, 3)]));
        assert!(!b.eval(&[Rat::new(1, 2)]));
    }

    #[test]
    fn eval_var_atoms() {
        let a = Atom::var_cmp_var(0, Cmp::Lt, 1);
        assert!(a.eval(&[Rat::from(1), Rat::from(2)]));
        assert!(!a.eval(&[Rat::from(2), Rat::from(2)]));
    }

    #[test]
    fn flip_is_involutive_on_order() {
        for cmp in [Cmp::Lt, Cmp::Le, Cmp::Eq, Cmp::Ge, Cmp::Gt] {
            assert_eq!(cmp.flipped().flipped(), cmp);
        }
    }
}
