//! # `ccix-constraint` — the constraint query language layer (§2.1)
//!
//! A CQL couples a database query language with a decidable logical theory;
//! here, as in the paper's running development, the theory of **rational
//! order with constants**: atoms are `x ⋈ c` and `x ⋈ y` for
//! `⋈ ∈ {<, ≤, =, ≥, >}` over the rationals.
//!
//! * A [`GeneralizedTuple`] of arity `k` is a conjunction of such atoms — a
//!   finite representation of a possibly infinite set of `k`-tuples.
//! * A [`GeneralizedRelation`] is a finite set of generalized tuples (a
//!   quantifier-free DNF formula).
//! * A [`GeneralizedIndex`] is the paper's *generalized one-dimensional
//!   index*: each tuple's projection onto the indexed variable — always one
//!   interval for order constraints, so this CQL is *convex* — becomes a
//!   generalized key in the interval manager of `ccix-interval`, and
//!   one-attribute range search returns a refined generalized relation by
//!   conjoining the query constraint to exactly the intersecting tuples.
//!
//! ```
//! use ccix_constraint::{Atom, GeneralizedIndex, GeneralizedRelation, GeneralizedTuple, Rat};
//! use ccix_extmem::{Geometry, IoCounter};
//!
//! // R'(z, x, y): (x, y) is a point of rectangle z (Example 2.1); index on x.
//! let mut rel = GeneralizedRelation::new(3);
//! let mut rect = GeneralizedTuple::new(3);
//! rect.and(Atom::var_eq_const(0, Rat::from(7)));      // z = 7
//! rect.and(Atom::var_ge_const(1, Rat::from(1)));      // 1 ≤ x
//! rect.and(Atom::var_le_const(1, Rat::from(4)));      // x ≤ 4
//! rect.and(Atom::var_ge_const(2, Rat::from(2)));      // 2 ≤ y
//! rect.and(Atom::var_le_const(2, Rat::from(5)));      // y ≤ 5
//! rel.add(rect);
//!
//! let idx = GeneralizedIndex::build(&rel, 1, Geometry::new(8), IoCounter::new()).unwrap();
//! let hits = idx.range_search(Rat::from(3), Rat::from(10));
//! assert_eq!(hits.tuples().len(), 1); // the rectangle's x-span meets [3, 10]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod index;
mod rational;
mod relation;
mod tuple;

pub use atom::{Atom, Cmp, Operand};
pub use index::{GeneralizedIndex, IndexError};
pub use rational::Rat;
pub use relation::GeneralizedRelation;
pub use tuple::{Bound, GeneralizedTuple};
