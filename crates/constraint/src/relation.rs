//! Generalized relations: finite sets of generalized tuples (DNF).

use crate::{GeneralizedTuple, Rat};

/// A generalized relation of fixed arity — a disjunction of conjunctions,
/// denoting a possibly infinite set of ground tuples.
#[derive(Clone, Debug, Default)]
pub struct GeneralizedRelation {
    arity: usize,
    tuples: Vec<GeneralizedTuple>,
}

impl GeneralizedRelation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Number of variables per tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The disjuncts.
    pub fn tuples(&self) -> &[GeneralizedTuple] {
        &self.tuples
    }

    /// Add a disjunct.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn add(&mut self, t: GeneralizedTuple) -> usize {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        self.tuples.push(t);
        self.tuples.len() - 1
    }

    /// Ground membership: does the point satisfy any disjunct?
    pub fn contains(&self, assignment: &[Rat]) -> bool {
        self.tuples.iter().any(|t| t.satisfies(assignment))
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no disjuncts are present (denotes the empty set).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Atom;

    #[test]
    fn union_semantics() {
        let mut r = GeneralizedRelation::new(1);
        let mut a = GeneralizedTuple::new(1);
        a.and(Atom::var_le_const(0, Rat::from(0)));
        let mut b = GeneralizedTuple::new(1);
        b.and(Atom::var_ge_const(0, Rat::from(10)));
        r.add(a);
        r.add(b);
        assert!(r.contains(&[Rat::from(-5)]));
        assert!(r.contains(&[Rat::from(10)]));
        assert!(!r.contains(&[Rat::from(5)]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = GeneralizedRelation::new(2);
        r.add(GeneralizedTuple::new(3));
    }
}
