//! Behavioural and bound-conformance tests for the 3-sided metablock tree
//! (§4, Lemmas 4.3 / 4.4).

use ccix_core::ThreeSidedTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

fn random_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            Point::new(
                (next() % range as u64) as i64,
                (next() % range as u64) as i64,
                i as u64,
            )
        })
        .collect()
}

fn build(b: usize, pts: &[Point]) -> ThreeSidedTree {
    ThreeSidedTree::build(Geometry::new(b), IoCounter::new(), pts.to_vec())
}

fn check_queries(t: &ThreeSidedTree, pts: &[Point], queries: &[(i64, i64, i64)], tag: &str) {
    for &(x1, x2, y0) in queries {
        let got = t.query(x1, x2, y0);
        let want = oracle::three_sided(pts, x1, x2, y0);
        oracle::assert_same_points(got, want, &format!("{tag} q=({x1},{x2},{y0})"));
    }
}

#[test]
fn empty_and_single() {
    let t = build(4, &[]);
    assert!(t.is_empty());
    assert!(t.query(i64::MIN, i64::MAX, i64::MIN).is_empty());
    t.validate_unbilled();

    let t = build(4, &[Point::new(3, -5, 1)]);
    assert_eq!(t.query(0, 5, -5).len(), 1);
    assert!(t.query(0, 5, -4).is_empty());
    assert!(t.query(4, 5, -10).is_empty());
    assert!(t.query(5, 4, -10).is_empty(), "inverted x-range");
    t.validate_unbilled();
}

#[test]
fn static_small_trees_match_oracle() {
    let queries: Vec<(i64, i64, i64)> = vec![
        (0, 99, 0),
        (0, 99, 50),
        (10, 20, 0),
        (50, 50, 25),
        (0, 0, 0),
        (99, 99, 99),
        (-5, 105, -5),
        (30, 70, 90),
        (98, 99, 1),
    ];
    for &(n, b) in &[
        (1usize, 2usize),
        (4, 2),
        (16, 2),
        (17, 2),
        (65, 2),
        (100, 3),
        (500, 4),
        (2000, 4),
    ] {
        let pts = random_points(n, 0x3511 + n as u64, 100);
        let t = build(b, &pts);
        t.validate_unbilled();
        check_queries(&t, &pts, &queries, &format!("static n={n} b={b}"));
    }
}

#[test]
fn exhaustive_small_queries() {
    let pts = random_points(300, 0xE55, 24);
    let t = build(2, &pts);
    for x1 in -1..25 {
        for x2 in x1..25 {
            for y0 in [-1i64, 5, 12, 23, 24] {
                let got = t.query(x1, x2, y0);
                let want = oracle::three_sided(&pts, x1, x2, y0);
                oracle::assert_same_points(got, want, &format!("q=({x1},{x2},{y0})"));
            }
        }
    }
}

#[test]
fn grid_input_matches_oracle() {
    // The uniform grid from §1.4 — the input on which heuristic structures
    // degrade to O(t/√B); ours must stay exact (and, per E1, optimal).
    let mut pts = Vec::new();
    for x in 0..40i64 {
        for y in 0..40i64 {
            pts.push(Point::new(x, y, (x * 40 + y) as u64));
        }
    }
    let t = build(4, &pts);
    t.validate_unbilled();
    let queries: Vec<(i64, i64, i64)> = vec![
        (0, 39, 39),  // full row
        (0, 39, 20),  // half the grid
        (5, 5, 0),    // full column
        (10, 30, 35), // wide, shallow
        (17, 23, 17),
    ];
    check_queries(&t, &pts, &queries, "grid");
}

#[test]
fn inserts_from_empty_match_oracle() {
    let queries: Vec<(i64, i64, i64)> = vec![
        (0, 199, 0),
        (0, 199, 100),
        (40, 60, 50),
        (120, 140, 190),
        (0, 10, 195),
    ];
    for &(n, b) in &[(60usize, 2usize), (300, 2), (800, 3), (2500, 4)] {
        let mut next = xorshift(0xF00D + n as u64);
        let mut t = ThreeSidedTree::new(Geometry::new(b), IoCounter::new());
        let mut pts = Vec::new();
        for i in 0..n {
            let p = Point::new((next() % 200) as i64, (next() % 200) as i64, i as u64);
            t.insert(p);
            pts.push(p);
            if i % 173 == 0 {
                t.validate_unbilled();
                check_queries(&t, &pts, &queries, &format!("grow n={i} b={b}"));
            }
        }
        t.validate_unbilled();
        check_queries(&t, &pts, &queries, &format!("final n={n} b={b}"));
    }
}

#[test]
fn inserts_into_built_tree_match_oracle() {
    let mut pts = random_points(2_000, 0xB0B, 500);
    let mut t = ThreeSidedTree::build(Geometry::new(3), IoCounter::new(), pts.clone());
    let mut next = xorshift(0xCAFE);
    let queries: Vec<(i64, i64, i64)> = vec![(0, 499, 250), (100, 150, 0), (250, 260, 490)];
    for i in 0..2_000u64 {
        let p = Point::new((next() % 500) as i64, (next() % 500) as i64, 100_000 + i);
        t.insert(p);
        pts.push(p);
        if i % 311 == 0 {
            t.validate_unbilled();
            check_queries(&t, &pts, &queries, &format!("i={i}"));
        }
    }
    t.validate_unbilled();
}

#[test]
fn adversarial_insert_orders() {
    let n = 1_200i64;
    for mode in 0..3 {
        let mut t = ThreeSidedTree::new(Geometry::new(3), IoCounter::new());
        let mut pts = Vec::new();
        for i in 0..n {
            let p = match mode {
                0 => Point::new(i, n - i, i as u64),       // ascending x
                1 => Point::new(n - i, i, i as u64),       // descending x
                _ => Point::new(i % 10, i / 10, i as u64), // few x values
            };
            t.insert(p);
            pts.push(p);
        }
        t.validate_unbilled();
        let queries: Vec<(i64, i64, i64)> =
            vec![(0, n, 0), (0, n, n / 2), (n / 4, n / 2, n / 3), (0, 9, 100)];
        check_queries(&t, &pts, &queries, &format!("mode={mode}"));
    }
}

/// Lemma 4.3: queries cost `O(log_B n + t/B + log2 B)` I/Os.
#[test]
fn static_query_io_bound() {
    for &(n, b) in &[(30_000usize, 8usize), (60_000, 16)] {
        let pts = random_points(n, 0xAB + n as u64, 100_000);
        let counter = IoCounter::new();
        let t = ThreeSidedTree::build(Geometry::new(b), counter.clone(), pts.clone());
        let geo = Geometry::new(b);
        let mut next = xorshift(9 + n as u64);
        for _ in 0..40 {
            let a = (next() % 100_000) as i64;
            let w = (next() % 30_000) as i64;
            let y0 = (next() % 100_000) as i64;
            let before = counter.snapshot();
            let got = t.query(a, a + w, y0);
            let cost = counter.since(before);
            let t_out = got.len();
            // Two boundary paths at ~5 I/Os per level + three PST accesses
            // (log2 of B³-sized structures) + the output term.
            let bound =
                10 * geo.log_b(n) + 4 * geo.out_blocks(t_out) + 6 * Geometry::log2(geo.b3()) + 12;
            assert!(
                cost.reads <= bound as u64,
                "n={n} b={b} q=({a},{},{y0}): {} reads > {bound} (t={t_out})",
                a + w,
                cost.reads
            );
            assert_eq!(cost.writes, 0, "queries must not write");
        }
    }
}

/// Space stays `O(n/B)` pages (with the PST and snapshot constants).
#[test]
fn space_bound() {
    for &(n, b) in &[(30_000usize, 8usize), (60_000, 16)] {
        let pts = random_points(n, 77 + n as u64, 1_000_000);
        let t = build(b, &pts);
        let geo = Geometry::new(b);
        let pages = t.space_pages();
        let budget = 12 * geo.out_blocks(n) + 30;
        assert!(pages <= budget, "n={n} b={b}: {pages} pages > {budget}");
    }
}

/// Lemma 4.4: amortised insert cost.
#[test]
fn amortized_insert_io_bound() {
    let b = 8;
    let n = 15_000usize;
    let counter = IoCounter::new();
    let mut t = ThreeSidedTree::new(Geometry::new(b), counter.clone());
    let mut next = xorshift(4242);
    let before = counter.snapshot();
    for i in 0..n {
        t.insert(Point::new(
            (next() % 100_000) as i64,
            (next() % 100_000) as i64,
            i as u64,
        ));
    }
    let cost = counter.since(before);
    let geo = Geometry::new(b);
    let per_insert = cost.total() as f64 / n as f64;
    let logb = geo.log_b(n) as f64;
    let log2b = Geometry::log2(geo.b3()) as f64;
    let bound = 14.0 * (logb + logb * logb / b as f64 + log2b / b as f64) + 18.0;
    assert!(
        per_insert <= bound,
        "amortised insert {per_insert:.1} I/Os > bound {bound:.1}"
    );
    t.validate_unbilled();
}

#[test]
fn stats_reflect_shape() {
    let pts = random_points(4_000, 11, 10_000);
    let t = build(8, &pts);
    let s = t.stats();
    assert_eq!(s.points, 4_000);
    assert!(s.height >= 2);
    assert!(s.pst_pages > 0, "interior nodes carry PSTs");
}

/// A striped workload in which every x-slab's metablock straddles the query
/// bottom: exercises the TSR/TSL snapshot routes (many partial middles) and
/// the fork's children-PST route, with answers checked against the oracle.
#[test]
fn striped_straddlers_hit_snapshot_routes() {
    // y cycles 0..100 while x sweeps: every slab holds points on both sides
    // of y0 = 50 for any x-range.
    let n = 4_000;
    let pts: Vec<Point> = (0..n)
        .map(|i| Point::new(i as i64, (i % 100) as i64, i as u64))
        .collect();
    for b in [2usize, 3, 4] {
        let counter = IoCounter::new();
        let t = ThreeSidedTree::build(Geometry::new(b), counter.clone(), pts.clone());
        t.validate_unbilled();
        let queries: Vec<(i64, i64, i64)> = vec![
            (0, n as i64, 50),         // full cover: children-PST at the root
            (100, n as i64 - 100, 50), // fork with many partial middles
            (100, n as i64, 97),       // left-boundary only (TSR route), tiny t
            (0, n as i64 - 100, 97),   // right-boundary only (TSL route), tiny t
            (500, 600, 99),            // both sides in one slab
        ];
        check_queries(&t, &pts, &queries, &format!("striped b={b}"));
    }
}

/// After heavy insertion the same routes must read from the TD structures
/// (stale snapshots) without duplicating or dropping answers.
#[test]
fn striped_straddlers_after_inserts() {
    let mut pts: Vec<Point> = (0..1_500)
        .map(|i| Point::new(i as i64, (i % 100) as i64, i as u64))
        .collect();
    let mut t = ThreeSidedTree::build(Geometry::new(3), IoCounter::new(), pts.clone());
    // Insert a second stripe offset by 50, interleaved in x.
    for i in 0..1_500u64 {
        let p = Point::new(i as i64, ((i + 50) % 100) as i64, 10_000 + i);
        t.insert(p);
        pts.push(p);
    }
    t.validate_unbilled();
    let queries: Vec<(i64, i64, i64)> = vec![
        (0, 1_500, 50),
        (100, 1_400, 75),
        (100, 1_500, 97),
        (0, 1_400, 97),
        (700, 800, 99),
    ];
    check_queries(&t, &pts, &queries, "striped+inserts");
}
