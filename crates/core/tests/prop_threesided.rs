//! Property-based tests (on the shared testkit harness) for the 3-sided
//! metablock tree.

use ccix_core::ThreeSidedTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;
use ccix_testkit::{check, DetRng};

fn random_pts(
    rng: &mut DetRng,
    n: usize,
    xr: std::ops::Range<i64>,
    yr: std::ops::Range<i64>,
) -> Vec<Point> {
    (0..n)
        .map(|i| {
            Point::new(
                rng.gen_range(xr.clone()),
                rng.gen_range(yr.clone()),
                i as u64,
            )
        })
        .collect()
}

#[test]
fn static_build_matches_oracle() {
    check::trials(
        "threesided::static_build_matches_oracle",
        40,
        0x35A,
        |rng| {
            let n = rng.gen_range(0..250usize);
            let b = rng.gen_range(2usize..5);
            let pts = random_pts(rng, n, 0..50, -20..30);
            let tree = ThreeSidedTree::build(Geometry::new(b), IoCounter::new(), pts.clone());
            tree.validate_unbilled();
            let n_queries = rng.gen_range(1..15usize);
            for _ in 0..n_queries {
                let a = rng.gen_range(-2i64..52);
                let c = rng.gen_range(-2i64..52);
                let y0 = rng.gen_range(-25i64..35);
                let (x1, x2) = (a.min(c), a.max(c));
                let got = tree.query(x1, x2, y0);
                let want = oracle::three_sided(&pts, x1, x2, y0);
                oracle::assert_same_points(got, want, &format!("b={b} q=({x1},{x2},{y0})"));
            }
        },
    );
}

#[test]
fn mixed_build_and_inserts_match_oracle() {
    check::trials("threesided::mixed_build_and_inserts", 40, 0x35B, |rng| {
        let b = rng.gen_range(2usize..4);
        let n_seed = rng.gen_range(0..100usize);
        let n_ins = rng.gen_range(1..150usize);
        let seed_pts = random_pts(rng, n_seed, 0..40, 0..40);
        let mut tree = ThreeSidedTree::build(Geometry::new(b), IoCounter::new(), seed_pts.clone());
        let mut all = seed_pts;
        for i in 0..n_ins {
            let p = Point::new(
                rng.gen_range(0i64..40),
                rng.gen_range(0i64..40),
                1_000_000 + i as u64,
            );
            tree.insert(p);
            all.push(p);
        }
        tree.validate_unbilled();
        for (x1, x2, y0) in [
            (0i64, 39i64, 0i64),
            (0, 39, 20),
            (10, 25, 15),
            (5, 5, 0),
            (38, 39, 39),
        ] {
            let got = tree.query(x1, x2, y0);
            let want = oracle::three_sided(&all, x1, x2, y0);
            oracle::assert_same_points(got, want, &format!("b={b} q=({x1},{x2},{y0})"));
        }
    });
}
