//! Property-based tests for the 3-sided metablock tree.

use ccix_core::ThreeSidedTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn static_build_matches_oracle(
        coords in proptest::collection::vec((0i64..50, -20i64..30), 0..250),
        b in 2usize..5,
        queries in proptest::collection::vec((-2i64..52, -2i64..52, -25i64..35), 1..15),
    ) {
        let pts: Vec<Point> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let tree = ThreeSidedTree::build(Geometry::new(b), IoCounter::new(), pts.clone());
        tree.validate_unbilled();
        for (a, c, y0) in queries {
            let (x1, x2) = (a.min(c), a.max(c));
            let got = tree.query(x1, x2, y0);
            let want = oracle::three_sided(&pts, x1, x2, y0);
            oracle::assert_same_points(got, want, &format!("b={b} q=({x1},{x2},{y0})"));
        }
    }

    #[test]
    fn mixed_build_and_inserts_match_oracle(
        seed in proptest::collection::vec((0i64..40, 0i64..40), 0..100),
        inserts in proptest::collection::vec((0i64..40, 0i64..40), 1..150),
        b in 2usize..4,
    ) {
        let seed_pts: Vec<Point> = seed
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let mut tree = ThreeSidedTree::build(Geometry::new(b), IoCounter::new(), seed_pts.clone());
        let mut all = seed_pts;
        for (i, &(x, y)) in inserts.iter().enumerate() {
            let p = Point::new(x, y, 1_000_000 + i as u64);
            tree.insert(p);
            all.push(p);
        }
        tree.validate_unbilled();
        for (x1, x2, y0) in [(0i64, 39i64, 0i64), (0, 39, 20), (10, 25, 15), (5, 5, 0), (38, 39, 39)] {
            let got = tree.query(x1, x2, y0);
            let want = oracle::three_sided(&all, x1, x2, y0);
            oracle::assert_same_points(got, want, &format!("b={b} q=({x1},{x2},{y0})"));
        }
    }
}
