//! Property-based tests: the metablock tree answers every diagonal-corner
//! query exactly like a linear scan, under arbitrary interleavings of
//! builds, inserts and queries, at tiny block sizes that force every
//! reorganisation path.

use ccix_core::MetablockTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;
use proptest::prelude::*;

fn interval(range: i64) -> impl Strategy<Value = (i64, i64)> {
    (0..range, 0..range).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn static_build_matches_oracle(
        intervals in proptest::collection::vec(interval(60), 0..250),
        b in 2usize..5,
        queries in proptest::collection::vec(-2i64..64, 1..20),
    ) {
        let pts: Vec<Point> = intervals
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let tree = MetablockTree::build(Geometry::new(b), IoCounter::new(), pts.clone());
        tree.validate_unbilled();
        for q in queries {
            let got = tree.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("b={b} q={q}"));
        }
    }

    #[test]
    fn incremental_inserts_match_oracle(
        seed in proptest::collection::vec(interval(60), 0..80),
        inserts in proptest::collection::vec(interval(60), 1..200),
        b in 2usize..5,
    ) {
        let seed_pts: Vec<Point> = seed
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let mut tree = MetablockTree::build(Geometry::new(b), IoCounter::new(), seed_pts.clone());
        let mut all = seed_pts;
        for (i, &(x, y)) in inserts.iter().enumerate() {
            let p = Point::new(x, y, 1_000_000 + i as u64);
            tree.insert(p);
            all.push(p);
        }
        tree.validate_unbilled();
        for q in [-1i64, 0, 15, 30, 45, 59, 60] {
            let got = tree.query(q);
            let want = oracle::diagonal_corner(&all, q);
            oracle::assert_same_points(got, want, &format!("b={b} q={q}"));
        }
    }

    #[test]
    fn stored_multiset_is_preserved(
        intervals in proptest::collection::vec(interval(100), 1..300),
        split in 0usize..300,
    ) {
        // Half built statically, half inserted; the tree must store exactly
        // the input multiset regardless of reorganisation history.
        let pts: Vec<Point> = intervals
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect();
        let k = split.min(pts.len());
        let mut tree =
            MetablockTree::build(Geometry::new(2), IoCounter::new(), pts[..k].to_vec());
        for p in &pts[k..] {
            tree.insert(*p);
        }
        let mut stored = tree.validate_unbilled();
        stored.sort_unstable_by_key(|p| p.id);
        let mut want = pts.clone();
        want.sort_unstable_by_key(|p| p.id);
        prop_assert_eq!(stored, want);
    }
}
