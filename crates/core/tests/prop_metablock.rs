//! Property-based tests (on the shared testkit harness): the metablock tree
//! answers every diagonal-corner query exactly like a linear scan, under
//! arbitrary interleavings of builds, inserts and queries, at tiny block
//! sizes that force every reorganisation path.

use ccix_core::MetablockTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;
use ccix_testkit::{check, DetRng};

fn random_interval(rng: &mut DetRng, range: i64) -> (i64, i64) {
    let a = rng.gen_range(0..range);
    let b = rng.gen_range(0..range);
    (a.min(b), a.max(b))
}

fn interval_pts(rng: &mut DetRng, range: i64, n: usize, id_base: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let (x, y) = random_interval(rng, range);
            Point::new(x, y, id_base + i as u64)
        })
        .collect()
}

#[test]
fn static_build_matches_oracle() {
    check::trials("metablock::static_build_matches_oracle", 48, 0xD1A, |rng| {
        let n = rng.gen_range(0..250usize);
        let b = rng.gen_range(2usize..5);
        let pts = interval_pts(rng, 60, n, 0);
        let tree = MetablockTree::build(Geometry::new(b), IoCounter::new(), pts.clone());
        tree.validate_unbilled();
        let n_queries = rng.gen_range(1..20usize);
        for _ in 0..n_queries {
            let q = rng.gen_range(-2i64..64);
            let got = tree.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("b={b} q={q}"));
        }
    });
}

#[test]
fn incremental_inserts_match_oracle() {
    check::trials(
        "metablock::incremental_inserts_match_oracle",
        48,
        0xD1B,
        |rng| {
            let b = rng.gen_range(2usize..5);
            let n_seed = rng.gen_range(0..80usize);
            let n_ins = rng.gen_range(1..200usize);
            let seed_pts = interval_pts(rng, 60, n_seed, 0);
            let mut tree =
                MetablockTree::build(Geometry::new(b), IoCounter::new(), seed_pts.clone());
            let mut all = seed_pts;
            for i in 0..n_ins {
                let (x, y) = random_interval(rng, 60);
                let p = Point::new(x, y, 1_000_000 + i as u64);
                tree.insert(p);
                all.push(p);
            }
            tree.validate_unbilled();
            for q in [-1i64, 0, 15, 30, 45, 59, 60] {
                let got = tree.query(q);
                let want = oracle::diagonal_corner(&all, q);
                oracle::assert_same_points(got, want, &format!("b={b} q={q}"));
            }
        },
    );
}

#[test]
fn stored_multiset_is_preserved() {
    check::trials(
        "metablock::stored_multiset_is_preserved",
        48,
        0xD1C,
        |rng| {
            // Half built statically, half inserted; the tree must store exactly
            // the input multiset regardless of reorganisation history.
            let n = rng.gen_range(1..300usize);
            let split = rng.gen_range(0..300usize);
            let pts = interval_pts(rng, 100, n, 0);
            let k = split.min(pts.len());
            let mut tree =
                MetablockTree::build(Geometry::new(2), IoCounter::new(), pts[..k].to_vec());
            for p in &pts[k..] {
                tree.insert(*p);
            }
            let mut stored = tree.validate_unbilled();
            stored.sort_unstable_by_key(|p| p.id);
            let mut want = pts.clone();
            want.sort_unstable_by_key(|p| p.id);
            assert_eq!(stored, want);
        },
    );
}
