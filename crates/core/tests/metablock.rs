//! Behavioural and bound-conformance tests for the metablock tree (§3).

use ccix_core::MetablockTree;
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// Random intervals as points (x = left endpoint, y = right endpoint).
fn interval_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            let a = (next() % range as u64) as i64;
            let b = (next() % range as u64) as i64;
            Point::new(a.min(b), a.max(b), i as u64)
        })
        .collect()
}

fn build(b: usize, pts: &[Point]) -> MetablockTree {
    MetablockTree::build(Geometry::new(b), IoCounter::new(), pts.to_vec())
}

#[test]
fn empty_tree() {
    let t = build(4, &[]);
    assert!(t.is_empty());
    assert!(t.query(0).is_empty());
    t.validate_unbilled();
}

#[test]
fn single_point() {
    let t = build(4, &[Point::new(2, 7, 1)]);
    assert_eq!(t.query(2).len(), 1);
    assert_eq!(t.query(7).len(), 1);
    assert_eq!(t.query(5).len(), 1);
    assert!(t.query(1).is_empty());
    assert!(t.query(8).is_empty());
    t.validate_unbilled();
}

#[test]
fn static_small_trees_match_oracle() {
    for &(n, b) in &[
        (1usize, 2usize),
        (5, 2),
        (16, 2),
        (17, 2),
        (64, 2),
        (65, 2),
        (100, 3),
        (300, 4),
        (1000, 4),
    ] {
        let pts = interval_points(n, 42 + n as u64, 120);
        let t = build(b, &pts);
        t.validate_unbilled();
        for q in -2..125 {
            let got = t.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("static n={n} b={b} q={q}"));
        }
    }
}

#[test]
fn static_larger_tree_matches_oracle() {
    let pts = interval_points(20_000, 7, 5_000);
    let t = build(8, &pts);
    t.validate_unbilled();
    for q in (-3..5_100).step_by(97) {
        let got = t.query(q);
        let want = oracle::diagonal_corner(&pts, q);
        oracle::assert_same_points(got, want, &format!("q={q}"));
    }
}

#[test]
fn clustered_and_degenerate_inputs() {
    // All-identical intervals.
    let same: Vec<Point> = (0..200).map(|i| Point::new(5, 9, i)).collect();
    let t = build(4, &same);
    t.validate_unbilled();
    assert_eq!(t.query(7).len(), 200);
    assert!(t.query(4).is_empty());
    assert!(t.query(10).is_empty());

    // Zero-length intervals exactly on the diagonal.
    let diag: Vec<Point> = (0..300).map(|i| Point::new(i, i, i as u64)).collect();
    let t = build(4, &diag);
    t.validate_unbilled();
    for q in [0i64, 1, 150, 299] {
        assert_eq!(t.query(q).len(), 1, "q={q}");
    }

    // Fully nested intervals: every stabbing query near the centre hits
    // a long prefix.
    let nested: Vec<Point> = (0..500).map(|i| Point::new(-i, i, i as u64)).collect();
    let t = build(4, &nested);
    t.validate_unbilled();
    for q in [-499i64, -250, 0, 250, 499] {
        let got = t.query(q);
        let want = oracle::diagonal_corner(&nested, q);
        oracle::assert_same_points(got, want, &format!("nested q={q}"));
    }
}

#[test]
fn inserts_from_empty_match_oracle() {
    for &(n, b) in &[(50usize, 2usize), (200, 2), (500, 3), (2000, 4)] {
        let mut next = xorshift(0xD1CE + n as u64);
        let mut t = MetablockTree::new(Geometry::new(b), IoCounter::new());
        let mut pts: Vec<Point> = Vec::new();
        for i in 0..n {
            let a = (next() % 200) as i64;
            let c = (next() % 200) as i64;
            let p = Point::new(a.min(c), a.max(c), i as u64);
            t.insert(p);
            pts.push(p);
            if i % 97 == 0 {
                t.validate_unbilled();
                for q in (-1..202).step_by(23) {
                    let got = t.query(q);
                    let want = oracle::diagonal_corner(&pts, q);
                    oracle::assert_same_points(got, want, &format!("n={i} b={b} q={q}"));
                }
            }
        }
        t.validate_unbilled();
        for q in -1..202 {
            let got = t.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("final n={n} b={b} q={q}"));
        }
    }
}

#[test]
fn inserts_into_built_tree_match_oracle() {
    let mut pts = interval_points(3_000, 0xBEE, 1_000);
    let counter = IoCounter::new();
    let mut t = MetablockTree::build(Geometry::new(4), counter, pts.clone());
    let mut next = xorshift(0xACE);
    for i in 0..3_000u64 {
        let a = (next() % 1_000) as i64;
        let c = (next() % 1_000) as i64;
        let p = Point::new(a.min(c), a.max(c), 10_000 + i);
        t.insert(p);
        pts.push(p);
        if i % 233 == 0 {
            t.validate_unbilled();
            for q in (-1..1_005).step_by(131) {
                let got = t.query(q);
                let want = oracle::diagonal_corner(&pts, q);
                oracle::assert_same_points(got, want, &format!("i={i} q={q}"));
            }
        }
    }
    t.validate_unbilled();
}

#[test]
fn sorted_adversarial_insert_orders() {
    // Ascending x, descending x, ascending y: each stresses a different
    // reorganisation path (rightmost leaf splits, leftmost splits, root
    // update churn).
    let n = 1_500i64;
    for mode in 0..3 {
        let mut t = MetablockTree::new(Geometry::new(3), IoCounter::new());
        let mut pts = Vec::new();
        for i in 0..n {
            let p = match mode {
                0 => Point::new(i, i + 10, i as u64),
                1 => Point::new(n - i, n - i + 10, i as u64),
                _ => Point::new(i % 50, i % 50 + 1 + i / 50, i as u64),
            };
            t.insert(p);
            pts.push(p);
        }
        t.validate_unbilled();
        for q in (-1..n + 60).step_by(37) {
            let got = t.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("mode={mode} q={q}"));
        }
    }
}

/// Theorem 3.2: static queries cost `O(log_B n + t/B)` I/Os.
#[test]
fn static_query_io_bound() {
    for &(n, b) in &[(20_000usize, 8usize), (50_000, 16), (50_000, 32)] {
        let pts = interval_points(n, 99 + n as u64, 100_000);
        let counter = IoCounter::new();
        let t = MetablockTree::build(Geometry::new(b), counter.clone(), pts.clone());
        let geo = Geometry::new(b);
        for q in (0..100_000).step_by(3_701) {
            let before = counter.snapshot();
            let got = t.query(q);
            let cost = counter.since(before);
            let t_out = got.len();
            // Per level: ~4 I/Os of control/vertical/update slack; plus the
            // output term with the corner-structure constant.
            let bound = 8 * geo.log_b(n) + 4 * geo.out_blocks(t_out) + 10;
            assert!(
                cost.reads <= bound as u64,
                "n={n} b={b} q={q}: {} reads > {bound} (t={t_out})",
                cost.reads
            );
            assert_eq!(cost.writes, 0, "queries must not write");
        }
    }
}

/// Lemma 3.4: the tree occupies `O(n/B)` pages.
#[test]
fn space_bound() {
    for &(n, b) in &[(20_000usize, 8usize), (50_000, 16)] {
        let pts = interval_points(n, 5 + n as u64, 50_000);
        let t = build(b, &pts);
        let geo = Geometry::new(b);
        let pages = t.space_pages();
        // Mains ×2 (two blockings) + corner (×3 worst) + TS + control.
        let budget = 9 * geo.out_blocks(n) + 20;
        assert!(
            pages <= budget,
            "n={n} b={b}: {pages} pages > budget {budget}"
        );
    }
}

/// Theorem 3.7: amortised insert cost is `O(log_B n + (log_B n)²/B)`.
#[test]
fn amortized_insert_io_bound() {
    let b = 8;
    let n = 20_000usize;
    let counter = IoCounter::new();
    let mut t = MetablockTree::new(Geometry::new(b), counter.clone());
    let mut next = xorshift(77);
    let before = counter.snapshot();
    for i in 0..n {
        let a = (next() % 100_000) as i64;
        let c = (next() % 100_000) as i64;
        t.insert(Point::new(a.min(c), a.max(c), i as u64));
    }
    let cost = counter.since(before);
    let geo = Geometry::new(b);
    let per_insert = cost.total() as f64 / n as f64;
    let logb = geo.log_b(n) as f64;
    // Generous constant: routing + cache writes + amortised reorgs.
    let bound = 12.0 * (logb + logb * logb / b as f64) + 16.0;
    assert!(
        per_insert <= bound,
        "amortised insert {per_insert:.1} I/Os > bound {bound:.1}"
    );
    t.validate_unbilled();
}

/// Queries remain within the Theorem 3.2 bound after heavy insertion
/// (Lemma 3.5: the dynamic additions add O(1) per examined organisation).
#[test]
fn dynamic_query_io_bound() {
    let b = 8;
    let geo = Geometry::new(b);
    let counter = IoCounter::new();
    let mut t = MetablockTree::new(geo, counter.clone());
    let mut next = xorshift(31337);
    let n = 30_000usize;
    let mut pts = Vec::new();
    for i in 0..n {
        let a = (next() % 60_000) as i64;
        let c = (next() % 60_000) as i64;
        let p = Point::new(a.min(c), a.max(c), i as u64);
        t.insert(p);
        pts.push(p);
    }
    for q in (0..60_000).step_by(2_113) {
        let before = counter.snapshot();
        let got = t.query(q);
        let cost = counter.since(before);
        let want = oracle::diagonal_corner(&pts, q);
        oracle::assert_same_points(got.clone(), want, &format!("q={q}"));
        let bound = 10 * geo.log_b(n) + 5 * geo.out_blocks(got.len()) + 12;
        assert!(
            cost.reads <= bound as u64,
            "q={q}: {} reads > {bound} (t={})",
            cost.reads,
            got.len()
        );
    }
}

#[test]
fn stats_reflect_shape() {
    let pts = interval_points(5_000, 3, 10_000);
    let t = build(8, &pts);
    let s = t.stats();
    assert_eq!(s.points, 5_000);
    assert!(s.leaves >= 1);
    assert!(s.height >= 2, "5000 points at B=8 need at least two levels");
    assert!(s.metablocks >= s.leaves);
    assert!(s.pages >= 2 * 5_000 / 8);
}

#[test]
#[should_panic(expected = "diagonal")]
fn below_diagonal_rejected() {
    let _ = build(4, &[Point::new(5, 2, 1)]);
}

#[test]
#[should_panic(expected = "duplicate point ids")]
fn duplicate_ids_rejected_in_build() {
    let _ = build(4, &[Point::new(0, 1, 7), Point::new(2, 3, 7)]);
}
