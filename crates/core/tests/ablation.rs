//! The ablation configurations (E13) must stay exactly correct — they trade
//! I/O bounds, never answers.

use ccix_core::{DiagOptions, MetablockTree};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::oracle;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

fn interval_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            let a = (next() % range as u64) as i64;
            let b = (next() % range as u64) as i64;
            Point::new(a.min(b), a.max(b), i as u64)
        })
        .collect()
}

const CONFIGS: [DiagOptions; 4] = [
    DiagOptions {
        corner_structures: true,
        ts_shortcut: true,
    },
    DiagOptions {
        corner_structures: false,
        ts_shortcut: true,
    },
    DiagOptions {
        corner_structures: true,
        ts_shortcut: false,
    },
    DiagOptions {
        corner_structures: false,
        ts_shortcut: false,
    },
];

#[test]
fn static_queries_identical_across_configs() {
    let pts = interval_points(5_000, 0xAB1, 800);
    for options in CONFIGS {
        let tree =
            MetablockTree::build_with(Geometry::new(4), IoCounter::new(), pts.clone(), options);
        tree.validate_unbilled();
        for q in (-2..805).step_by(11) {
            let got = tree.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("{options:?} q={q}"));
        }
    }
}

#[test]
fn dynamic_inserts_identical_across_configs() {
    for options in CONFIGS {
        let mut next = xorshift(0xAB2);
        let mut tree = MetablockTree::new_with(Geometry::new(3), IoCounter::new(), options);
        let mut pts = Vec::new();
        for i in 0..2_000u64 {
            let a = (next() % 300) as i64;
            let b = (next() % 300) as i64;
            let p = Point::new(a.min(b), a.max(b), i);
            tree.insert(p);
            pts.push(p);
        }
        tree.validate_unbilled();
        for q in (0..305).step_by(13) {
            let got = tree.query(q);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("{options:?} q={q}"));
        }
    }
}

#[test]
fn corner_ablation_saves_space() {
    let pts = interval_points(50_000, 0xAB3, 50_000);
    let with = MetablockTree::build_with(
        Geometry::new(16),
        IoCounter::new(),
        pts.clone(),
        DiagOptions::default(),
    );
    let without = MetablockTree::build_with(
        Geometry::new(16),
        IoCounter::new(),
        pts,
        DiagOptions {
            corner_structures: false,
            ts_shortcut: true,
        },
    );
    assert!(
        without.space_pages() < with.space_pages(),
        "corner structures cost space: {} !< {}",
        without.space_pages(),
        with.space_pages()
    );
}

#[test]
fn options_accessor_reports_config() {
    let t = MetablockTree::new_with(
        Geometry::new(4),
        IoCounter::new(),
        DiagOptions {
            corner_structures: false,
            ts_shortcut: true,
        },
    );
    assert!(!t.options().corner_structures);
    assert!(t.options().ts_shortcut);
    let d = MetablockTree::new(Geometry::new(4), IoCounter::new());
    assert_eq!(d.options(), DiagOptions::default());
}
