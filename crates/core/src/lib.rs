//! # `ccix-core` — metablock trees
//!
//! The paper's core contribution (§3, §4): I/O-optimal external structures
//! for the two query shapes its reductions produce.
//!
//! * [`MetablockTree`] answers **diagonal-corner queries** — report every
//!   point with `x ≤ q ≤ y` — in `O(log_B n + t/B)` I/Os with `O(n/B)` pages
//!   (Theorem 3.2, optimal by Proposition 3.3), and supports insertions at
//!   `O(log_B n + (log_B n)²/B)` amortised I/Os (Theorem 3.7). It is the
//!   engine behind external dynamic interval management (Proposition 2.2).
//!
//! * [`ThreeSidedTree`] answers **3-sided queries** — report every point
//!   with `x1 ≤ x ≤ x2 ∧ y ≥ y0` — in `O(log_B n + t/B + log2 B)` I/Os
//!   (Lemmas 4.3/4.4), the engine behind the improved class index
//!   (Theorem 4.7).
//!
//! Both trees also support **deletion** — the paper's §5 open problem —
//! within the insert budget: a delete routes a tombstone to the metablock
//! holding the live copy (the routing invariant makes that metablock
//! unique), queries filter pending tombstones wherever they scan update
//! buffers, reorganisations annihilate insert/delete pairs in their
//! merges, and an occupancy-triggered shrink keeps space `O(live/B)`
//! under delete floods. See `docs/architecture.md` for the invariants and
//! `docs/tuning.md` for the knobs ([`Tuning::tomb_batch_pages`],
//! [`Tuning::shrink_deletes_pct`]) and measured costs.
//!
//! ## Anatomy (Figs. 8–12)
//!
//! A metablock tree is a `B`-ary tree of *metablocks* of `B²` points each.
//! The root holds the `B²` points with the largest `y`; the remainder is
//! split by `x` into `B` slabs, one recursive tree per slab. Each metablock
//! stores its points twice — in *vertically* (x-sorted) and *horizontally*
//! (y-sorted) oriented blockings — plus, when its region meets the diagonal,
//! a [`CornerStructure`] (Lemma 3.1); each non-first child also carries a
//! `TS` set: the top `B²` points of its left siblings, which lets a query
//! decide in `O(t/B)` I/Os whether sibling subtrees are worth visiting
//! (Fig. 17). Insertions buffer in per-metablock update blocks and per-parent
//! `TD` corner structures, amortised by level-I/level-II reorganisations and
//! branching-factor splits (§3.2, Fig. 19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod corner;
mod diag;
mod op;
pub mod par;
mod threesided;
mod tuning;

pub use corner::CornerStructure;
pub use diag::{DiagOptions, DiagStats, MetablockTree};
pub use op::Op;
pub use threesided::{ThreeSidedStats, ThreeSidedTree};
pub use tuning::Tuning;
