//! Scoped-thread fan-out for the CPU-bound build-planning phases.
//!
//! The static builds and branching-split rebuilds of both metablock trees
//! split their work into **pure planning** (sorts, partitions, corner/PST
//! selection over disjoint arena slices — no store access, no I/O) and
//! sequential **materialisation** (page allocation on the calling thread).
//! Planning tasks for sibling slabs are independent, so they fan out over
//! [`std::thread::scope`] here; because every task is a pure function of
//! its slice, the result is identical for every thread count — the
//! [`crate::Tuning::build_threads`] knob changes wall-clock only, never an
//! I/O count or a byte of the built structure.
//!
//! The same order-preserving fan-out also drives shard-level parallelism
//! in `ccix-interval`'s sharded index (one task per shard, each charging
//! its own striped counter), which is why [`run_parallel`] is public.

/// Minimum number of points in a slab before planning it is worth a
/// worker-thread handoff; smaller slabs run inline.
pub(crate) const PAR_THRESHOLD: usize = 1 << 14;

/// Run `tasks` (each given its share of the thread budget) and collect
/// their results in task order.
///
/// With `budget ≤ 1` or a single task everything runs inline on the
/// calling thread. Otherwise the tasks are split into at most `budget`
/// contiguous near-equal groups, one scoped thread per group, and each
/// group passes the remaining budget share down so deep recursions can
/// keep fanning out while the total stays near the requested width.
pub fn run_parallel<T, F>(tasks: Vec<F>, budget: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce(usize) -> T + Send,
{
    let len = tasks.len();
    if len == 1 {
        return tasks.into_iter().map(|t| t(budget)).collect();
    }
    if budget <= 1 || len == 0 {
        return tasks.into_iter().map(|t| t(1)).collect();
    }
    let groups = budget.min(len);
    let inner = budget / groups;
    let ranges = ccix_extmem::near_equal_ranges(len, groups);
    let mut tasks = tasks;
    let mut grouped: Vec<Vec<F>> = Vec::with_capacity(groups);
    for &(start, _) in ranges.iter().rev() {
        grouped.push(tasks.split_off(start));
    }
    grouped.reverse();
    std::thread::scope(|scope| {
        let handles: Vec<_> = grouped
            .into_iter()
            .map(|group| {
                scope.spawn(move || group.into_iter().map(|t| t(inner)).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("build-planning worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_task_order_for_every_budget() {
        for budget in [0usize, 1, 2, 3, 8, 64] {
            let tasks: Vec<_> = (0..17).map(|i| move |_inner: usize| i * 10).collect();
            let got = run_parallel(tasks, budget);
            let want: Vec<usize> = (0..17).map(|i| i * 10).collect();
            assert_eq!(got, want, "budget={budget}");
        }
    }

    #[test]
    fn single_task_keeps_the_whole_budget() {
        let got = run_parallel(vec![|inner: usize| inner], 6);
        assert_eq!(got, vec![6]);
    }
}
