//! Write-path and space tuning for the metablock trees.
//!
//! The paper's semi-dynamic machinery (§3.2, §4) fixes several constants at
//! their simplest values: the update buffer is one block, the TD staging
//! area is one block, a TS sibling snapshot holds the top `B²` points, and
//! the corner-structure greedy adopts with factor 2. None of those choices
//! is load-bearing for correctness — only the *asymptotic* argument needs
//! "Θ(B) buffered inserts per level-I" and "Θ(B²) snapshot points" — so
//! they are exposed here as knobs. [`Tuning::default`] is the measured
//! sweet spot for the E9 workload (see `docs/tuning.md`);
//! [`Tuning::paper`] reproduces the paper's constants exactly.

/// Tunable constants of the semi-dynamic metablock machinery, shared by the
/// diagonal-corner tree (§3) and the 3-sided tree (§4).
///
/// All budgets are expressed in *pages* so they scale with the geometry.
/// Effective values are clamped per tree (see the `*_cap` helpers on the
/// trees): buffers never exceed `B/2` pages, so a buffer is always small
/// against the `B²` metablock capacity and the paper's invariants and
/// amortisation arguments survive unchanged — a batch of `k` pages simply
/// amortises each level-I reorganisation over `k·B` inserts instead of `B`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tuning {
    /// Pages of buffered inserts per metablock before a level-I
    /// reorganisation merges them into the mains. The paper uses 1.
    /// Queries scan the pending pages wherever they scan the update block
    /// (Lemma 3.5), so visibility is unaffected; each examined metablock
    /// costs up to this many extra I/Os while its buffer is non-empty.
    pub update_batch_pages: usize,
    /// Staged pages per TD tracking structure before it is folded into the
    /// TD corner structure / PST. The paper uses 1. The delete-side staging
    /// area of the TD (pending tombstones below a parent, see
    /// `tomb_batch_pages`) folds on the same trigger.
    pub td_batch_pages: usize,
    /// Pages of buffered **tombstones** per metablock before a level-I
    /// reorganisation cancels them against the mains (§5 leaves deletion
    /// open; this reproduction closes it with tombstones that ride the
    /// insert machinery as negative updates). Queries scan the pending
    /// tombstone pages wherever they scan the update block, so deletions
    /// are visible immediately; each examined metablock costs up to this
    /// many extra I/Os while tombstones are pending. The paper has no
    /// deletes; `Tuning::paper()` uses the 1-block analogue of its update
    /// block.
    pub tomb_batch_pages: usize,
    /// Occupancy-triggered shrink: when the deletes absorbed since the last
    /// full (re)build exceed this percentage of the tree's size at that
    /// build (and at least `B²`), the whole tree is rebuilt from its live
    /// points — the classic global-rebuilding argument, amortising the
    /// `O(n/B)` merge-based rebuild over `Θ(n)` deletes so space stays
    /// `O(live/B)` under delete-heavy floods. `0` disables the shrink.
    pub shrink_deletes_pct: usize,
    /// Page budget of a TS sibling snapshot: `None` keeps the paper's `B`
    /// pages (`B²` points); `Some(k)` stores only the top `k·B` points and
    /// marks the snapshot truncated. Snapshots stay sound — a truncated,
    /// fully-scanned snapshot still certifies `k·B` answers — but the
    /// certificate threshold of Fig. 17a drops from `B²` to `k·B`.
    pub ts_snapshot_pages: Option<usize>,
    /// Corner-structure adoption factor `α` (adopt `cᵢ` when
    /// `|S*_j| > α·Ωᵢ`). The paper's rule is 2, bounding explicit storage
    /// by `2|S|`; larger values store fewer explicit answers at the price
    /// of more stage-2 scanning.
    pub corner_alpha: usize,
    /// **Packed control blocks**: how many of each child's top horizontal
    /// pages (ids + page-top keys) an interior metablock mirrors inline in
    /// its child entries, alongside mirrors of the child's update-buffer
    /// and TS-snapshot page runs. A query that must examine a straddling
    /// child then walks the child's top pages straight from the parent's
    /// control block — no read of the child's own control block — and the
    /// TS route reads snapshot pages without loading their owner first.
    /// The child's control block is touched only when the query outgrows
    /// the mirrored prefix, which at least `k·B` answers have then paid
    /// for. A few words per child, within §3.1's "constant number of disk
    /// blocks" of control information. `0` reproduces the paper's layout
    /// (no packing).
    pub pack_h_pages: usize,
    /// Keep the root control block **memory-resident across operations** —
    /// one block of the model's `Θ(B²)`-unit persistent main memory
    /// dedicated to the open tree, exactly as every production storage
    /// engine pins the top of its tree. Descents then read it for free;
    /// writes to it are still charged (durability), and it still counts in
    /// the structure's space. `false` reproduces the paper's strict
    /// cold-per-operation accounting, where even the root transfers once
    /// per operation.
    pub resident_root: bool,
    /// **Incremental reorganisation budget**: the maximum number of page
    /// transfers of *deferred reorganisation work* an insert or delete pays
    /// on top of its own routing. `0` (the default, and the paper's
    /// behaviour) runs every reorganisation to completion inside the
    /// triggering operation — amortised cost is optimal but a TD fold or
    /// occupancy shrink is a stop-the-world pause.
    ///
    /// With a budget `k > 0` the trees run LSM-style: level-I merges, TD
    /// folds, TS reorganisations, splits and push-downs execute with their
    /// charges **shunted** ([`ccix_extmem::IoCounter::begin_shunt`]) into a
    /// debt meter that each subsequent write bleeds at most `k` transfers
    /// of, and the occupancy shrink becomes a **two-sided background job**:
    /// the old tree is frozen while a resumable merge
    /// ([`ccix_extmem::MergeCursor`]) rebuilds it a few pages per
    /// operation, interim updates divert to a side delta the queries
    /// consult alongside the tree, and after cutover the delta drains back
    /// a few points per operation. Totals are conserved exactly (the debt
    /// is real work, paid later), so amortised tables are unchanged in the
    /// limit; what the knob buys is a *worst-case per-operation* bound of
    /// `O(height) + k` transfers, gated by the EL latency table.
    pub reorg_pages_per_op: usize,
    /// Threads for the **CPU-bound planning phases** of static (re)builds:
    /// the per-child sort/partition/corner/PST planning of
    /// `MetablockTree::build`, `ThreeSidedTree::build` and the subtree
    /// rebuilds of branching splits fan out over `std::thread::scope` on
    /// disjoint arena slices. `0` means "use the machine's available
    /// parallelism"; `1` is strictly sequential. Page allocation and every
    /// I/O charge stay on the calling thread, so the knob never changes an
    /// I/O count — the built structure is bit-identical for every setting.
    pub build_threads: usize,
    /// Threads for **shard-level fan-out** in the sharded interval index
    /// (`ccix-interval`'s `ShardedIntervalIndex`): batched queries, flood
    /// applies and bulk builds split into per-shard tasks that fan out over
    /// [`crate::par::run_parallel`]. `0` means "use the machine's available
    /// parallelism"; `1` runs the shards strictly sequentially, in shard
    /// order, on the calling thread — the bit-identical-to-unsharded
    /// fallback. Each shard charges its own striped counter from whichever
    /// thread runs it, so the knob never changes an I/O count, only wall
    /// clock.
    pub shard_threads: usize,
}

impl Default for Tuning {
    /// The measured defaults behind `BENCH_baseline.json`: 4-page insert
    /// batches, 2-page TD staging, 8-page TS snapshots, the paper's `α = 2`
    /// (larger α saves more space but costs measurable stage-2 query I/O
    /// on the E9 workload — see experiment E14).
    fn default() -> Self {
        Self {
            update_batch_pages: 4,
            td_batch_pages: 2,
            tomb_batch_pages: 2,
            shrink_deletes_pct: 50,
            ts_snapshot_pages: Some(8),
            corner_alpha: 2,
            pack_h_pages: 4,
            resident_root: true,
            reorg_pages_per_op: 0,
            build_threads: 0,
            shard_threads: 0,
        }
    }
}

impl Tuning {
    /// The paper's constants: one-block buffers, full `B²` TS snapshots,
    /// adoption factor 2 (and, outside the paper's vocabulary, a strictly
    /// sequential build).
    pub fn paper() -> Self {
        Self {
            update_batch_pages: 1,
            td_batch_pages: 1,
            tomb_batch_pages: 1,
            shrink_deletes_pct: 50,
            ts_snapshot_pages: None,
            corner_alpha: 2,
            pack_h_pages: 0,
            resident_root: false,
            reorg_pages_per_op: 0,
            build_threads: 1,
            shard_threads: 1,
        }
    }

    /// Effective thread count for build planning: `build_threads`, with `0`
    /// resolved to the machine's available parallelism.
    pub fn effective_build_threads(&self) -> usize {
        match self.build_threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }

    /// Effective thread count for shard fan-out: `shard_threads`, with `0`
    /// resolved to the machine's available parallelism.
    pub fn effective_shard_threads(&self) -> usize {
        match self.shard_threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }
}
