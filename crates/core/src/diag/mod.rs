//! The metablock tree (§3): shared state and control information.
//!
//! Submodules: [`build`] (static construction, §3.1), [`query`] (the
//! diagonal-corner search of Theorem 3.2 / Fig. 15), [`insert`] (the
//! semi-dynamic machinery of §3.2 / Fig. 19) and [`validate`] (unbilled
//! invariant checking and shape statistics for tests and experiments).

mod apply;
mod build;
mod delete;
mod insert;
mod query;
pub(crate) mod reorg;
mod validate;

pub use validate::DiagStats;
// DiagOptions is defined below and re-exported from the crate root.

pub(crate) use build::{extract_top_y, near_equal_ranges, FULL_RANGE};
pub(crate) use query::{filter_deleted, filter_deleted_batch};

/// Record `mb` as dirty (dedup'd) for an operation's end-of-operation
/// control-block writeback — shared by both trees' insert and delete
/// routings.
pub(crate) fn mark_dirty(dirty: &mut Vec<MbId>, mb: MbId) {
    if !dirty.contains(&mb) {
        dirty.push(mb);
    }
}

use ccix_extmem::{BackendSpec, Geometry, IoCounter, PageId, PathPin, Point, TypedStore};

use crate::bbox::{BBox, Key};
use crate::corner::CornerStructure;
use crate::tuning::Tuning;

/// Identifier of a metablock within one tree.
pub(crate) type MbId = usize;

// ---- pinned reads ---------------------------------------------------------

/// Pin key-space of a tree's control blocks (keys are [`MbId`]s).
pub(crate) const SPACE_META: u32 = 0;
/// Pin key-space of a tree's point store (keys are [`PageId`]s).
pub(crate) const SPACE_STORE: u32 = 1;
/// First key-space available for per-metablock side structures (the 3-sided
/// tree's PSTs); space `SPACE_AUX + 3·mb + j` addresses structure `j` of
/// metablock `mb`.
pub(crate) const SPACE_AUX: u32 = 2;

/// Read context of one query-side operation: a single query, an x-range, or
/// a whole sorted batch. Every page the operation touches is billed through
/// the bounded [`PathPin`], so a block is paid once per residency instead of
/// once per access — the paper's accounting (each *distinct* block transfers
/// once, §2's model), kept honest by the pin's `B`-frame LRU budget.
///
/// With [`Tuning::resident_root`], the tree's root control block lives in
/// its own dedicated slot of long-lived main memory (outside the pin's LRU
/// frames, so it can never be evicted mid-batch) and is read for free.
pub(crate) struct ReadCtx {
    pub pin: PathPin,
    /// Control block held in dedicated memory (`(space, key)`).
    pub(crate) resident: Option<(u32, u64)>,
    /// Ids of pending tombstones discovered while the operation scanned
    /// tombstone pages. Any id recorded here belongs to a logically deleted
    /// point (pending tombstones are globally unique and ids are never
    /// reused), so the operation's answers are filtered against this set
    /// once at the end — empty on insert-only workloads, where no
    /// tombstone page exists to scan.
    pub(crate) del: Vec<u64>,
}

impl ReadCtx {
    /// A context over `counter` with the model's working memory: `B` frames
    /// of `B` records is the `Θ(B²)`-unit main memory the paper grants an
    /// operation.
    pub(crate) fn new(geo: Geometry, counter: IoCounter) -> Self {
        Self {
            pin: PathPin::new(counter, geo.b),
            resident: None,
            del: Vec::new(),
        }
    }

    /// Note a page touch: free when it is the resident block, otherwise
    /// billed through the pin.
    pub(crate) fn touch(&mut self, space: u32, key: u64) {
        if self.resident == Some((space, key)) {
            return;
        }
        self.pin.touch(space, key);
    }

    /// Note a control-block touch.
    pub(crate) fn touch_meta(&mut self, mb: MbId) {
        self.touch(SPACE_META, mb as u64);
    }
}

/// A child slot in a metablock's control information (one entry of the
/// "pointers to each of its B children, as well as the location of each
/// child's bounding box", §3.1).
///
/// Everything a query needs to classify the child against the query region
/// (Fig. 16) without touching the child is cached here: the slab of x-keys
/// the child's subtree is responsible for, the bounding box of the child's
/// main points, the top of its update block, and the top of everything
/// strictly below the child.
#[derive(Clone, Debug)]
pub(crate) struct ChildEntry {
    pub mb: MbId,
    /// Inclusive lower slab boundary.
    pub slab_lo: Key,
    /// Exclusive upper slab boundary.
    pub slab_hi: Key,
    /// Bounding box of the child's main points (`None` iff it has none).
    pub main_bbox: Option<BBox>,
    /// Largest `(y, id)` among the child's update-block points.
    pub upd_ymax: Option<Key>,
    /// Largest `(y, id)` among points strictly below the child metablock.
    /// The routing invariant keeps this below the child's `y_lo_main`.
    pub sub_yhi: Option<Key>,
    /// Packed control information about the child (PR 3); empty defaults
    /// when packing is disabled ([`Tuning::pack_top_points`] = 0).
    pub packed: PackedInfo,
}

impl ChildEntry {
    /// Does the child's slab contain the x-key `k`?
    pub fn slab_contains(&self, k: Key) -> bool {
        self.slab_lo <= k && k < self.slab_hi
    }
}

/// Per-child mirrors packed into the parent's control blocks, so that
/// examining a straddling child walks the top of the child's horizontal
/// blocking and its update buffer straight from the parent — no read of the
/// child's own control block — and the TS route reads snapshot pages
/// without first loading their owner. The child's control block is touched
/// only when a scan outgrows the mirrored horizontal prefix, by which point
/// `pack_h_pages · B` reported answers have paid for it.
///
/// Size accounting: every mirror is a few words per child — the same scale
/// as the entry's slab keys and the metablock's own `vkeys`, within §3.1's
/// "constant number of disk blocks" of control information per metablock.
#[derive(Clone, Debug, Default)]
pub(crate) struct PackedInfo {
    /// Mirror of the first [`Tuning::pack_h_pages`] pages of the child's
    /// horizontal blocking (its top mains, y-descending).
    pub h_pages: Vec<PageId>,
    /// First (largest) y-key of each mirrored page, so the scan skips a
    /// crossing page with no answers.
    pub h_tops: Vec<Key>,
    /// Live (not yet tombstoned) point count of each mirrored page, so a
    /// post-delete-flood scan skips a fully-dead page without reading it.
    pub h_live: Vec<u32>,
    /// The child's horizontal blocking extends beyond the mirror.
    pub h_more: bool,
    /// Mirror of the child's update-buffer page run.
    pub upd_pages: Vec<PageId>,
    /// Mirror of the child's tombstone-buffer page run, so an examination
    /// of a straddling child filters its pending deletes without touching
    /// the child's control block. Empty (and free to skip) whenever the
    /// child has no pending deletes.
    pub tomb_pages: Vec<PageId>,
    /// Mirror of the child's TS (diagonal) / TSL (3-sided) snapshot run.
    pub ts_pages: Vec<PageId>,
    /// Mirror of the snapshot's truncation bit.
    pub ts_truncated: bool,
    /// 3-sided only: mirror of the child's TSR snapshot run.
    pub tsr_pages: Vec<PageId>,
    /// Mirror of the TSR truncation bit.
    pub tsr_truncated: bool,
}

/// The left-sibling snapshot `TS(M)` (Fig. 10): the top points among
/// everything stored in `M`'s left siblings at the last TS reorganisation,
/// blocked horizontally (y-descending). The paper stores the top `B²`;
/// [`Tuning::ts_snapshot_pages`] can cap the budget lower.
#[derive(Clone, Debug)]
pub(crate) struct TsInfo {
    pub pages: Vec<PageId>,
    pub n: usize,
    /// True when sibling points were dropped to fit the budget. A scan of a
    /// non-truncated snapshot that never crosses the query bottom has seen
    /// *every* sibling point above it (the crossing case of Fig. 17b); a
    /// truncated one only certifies `n` answers (Fig. 17a).
    pub truncated: bool,
}

/// The `TD` corner structure of an internal metablock (§3.2): the points
/// inserted into this metablock's children since the last TS reorganisation,
/// kept query-able as a corner structure plus a one-block staging area.
///
/// Deletions give it a **negative side**: the tombstones routed into this
/// metablock's children since the last TS reorganisation, mirrored here so
/// the TS crossing case (Fig. 17b) — which answers covered siblings from
/// their *stale* snapshot plus this TD — can subtract what was deleted
/// since the snapshot was taken, without visiting the covered children.
/// The fold that settles staged inserts into the corner structure also
/// annihilates insert/delete pairs, so only tombstones whose insert
/// predates the TD survive into `del_corner`.
#[derive(Clone, Debug, Default)]
pub(crate) struct TdInfo {
    /// Corner structure over the settled TD points.
    pub corner: Option<CornerStructure>,
    pub n_built: usize,
    /// Staging pages: points awaiting the next TD rebuild, at most
    /// [`MetablockTree::td_cap_pages`] pages of `B`.
    pub staged: Vec<PageId>,
    pub n_staged: usize,
    /// Corner structure over the settled tombstones (queried alongside
    /// `corner` by the crossing case, reporting ids to subtract).
    pub del_corner: Option<CornerStructure>,
    pub n_del_built: usize,
    /// Tombstone staging pages, at most [`MetablockTree::td_cap_pages`]
    /// pages of `B`.
    pub del_staged: Vec<PageId>,
    pub n_del_staged: usize,
    /// Control-block mirror of the `del_staged` pages' contents (same
    /// bounded scale as the staging run itself — at most `td_cap_pages · B`
    /// points). Queries subtract these pending deletes for free instead of
    /// reading the staging pages; the pages stay authoritative for the TD
    /// fold.
    pub del_staged_buf: Vec<Point>,
}

impl TdInfo {
    pub fn total(&self) -> usize {
        self.n_built + self.n_staged
    }

    /// Pending tombstones tracked on the delete side.
    pub fn del_total(&self) -> usize {
        self.n_del_built + self.n_del_staged
    }
}

/// One metablock: `O(1)` control blocks plus the blockings of §3.1.
#[derive(Clone, Debug)]
pub(crate) struct MetaBlock {
    /// Main points, x-sorted, `B` per page ("vertically oriented blocks").
    pub vertical: Vec<PageId>,
    /// First x-key of each vertical page (control info: the slab's
    /// "boundary values"), used to locate a page without a linear scan.
    pub vkeys: Vec<Key>,
    /// Main points, y-descending, `B` per page ("horizontally oriented").
    pub horizontal: Vec<PageId>,
    /// First (largest) y-key of each horizontal page, so scans skip a
    /// crossing page that cannot contain an answer.
    pub hkeys: Vec<Key>,
    /// Live (not yet tombstoned) point count per horizontal page, parallel
    /// to `horizontal`. A routed tombstone whose victim sits in the mains
    /// decrements the victim page's count, so a query can skip a fully-dead
    /// page without reading it — the fix for the post-delete-flood stabbing
    /// regression (a flood used to leave pages of 100% shadowed points that
    /// every later query still paid to scan).
    pub h_live: Vec<u32>,
    pub n_main: usize,
    /// Smallest `(y, id)` among mains. Routing invariant: every point in a
    /// descendant metablock (mains *and* updates) is strictly below this.
    pub y_lo_main: Option<Key>,
    pub main_bbox: Option<BBox>,
    /// Corner structure (Lemma 3.1), present when the metablock's region can
    /// contain a query corner (its mains straddle some diagonal value). Its
    /// stage-2 blocking is shared with `vertical`.
    pub corner: Option<CornerStructure>,
    /// Update buffer: buffered inserts (§3.2), at most
    /// [`MetablockTree::upd_cap_pages`] pages of `B`. The paper's update
    /// *block* is the 1-page special case.
    pub update: Vec<PageId>,
    pub n_upd: usize,
    /// Tombstone buffer: buffered deletes, at most
    /// [`MetablockTree::tomb_cap_pages`] pages of `B`. The routing
    /// invariant lands every tombstone in the metablock that holds the
    /// live copy (mains or update buffer); the next level-I reorganisation
    /// annihilates the pair. Queries scan pending tombstone pages wherever
    /// they scan the update block and subtract the ids.
    pub tomb: Vec<PageId>,
    pub n_tomb: usize,
    /// Control-block mirror of the `tomb` pages' contents, in arrival
    /// order. Bounded by `tomb_cap_pages · B` points — the same control-
    /// information order as `vkeys`/`hkeys` — it lets every query that
    /// already holds this control block subtract the pending deletes for
    /// free, instead of paying one read per pending tombstone page (the
    /// post-delete-flood stabbing regression). The pages stay authoritative:
    /// reorganisations still read and bill them.
    pub tomb_buf: Vec<Point>,
    /// Left-sibling snapshot; `None` for a first child or the root.
    pub ts: Option<TsInfo>,
    /// TD corner structure; `Some` for internal metablocks.
    pub td: Option<TdInfo>,
    /// Child slots, in slab order. Empty for leaves.
    pub children: Vec<ChildEntry>,
}

impl MetaBlock {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Ablation switches for the metablock tree's two signature design choices
/// (experiment E13 measures their effect; defaults reproduce the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiagOptions {
    /// Build and use Lemma 3.1 corner structures. When off, a metablock
    /// containing the query corner falls back to scanning its vertical
    /// blocking with a filter — correct, but the Type II cost degrades from
    /// `O(t/B)` to `O(B)` blocks.
    pub corner_structures: bool,
    /// Use the `TS` sibling snapshots (Fig. 17) to decide whether straddling
    /// left siblings are worth individual visits. When off, every straddling
    /// sibling is examined individually — correct, but a query can pay `O(B)`
    /// unbacked block reads per level instead of `O(t/B)`.
    pub ts_shortcut: bool,
}

impl Default for DiagOptions {
    fn default() -> Self {
        Self {
            corner_structures: true,
            ts_shortcut: true,
        }
    }
}

/// The dynamic metablock tree for diagonal-corner queries (§3).
///
/// All points must satisfy `y ≥ x` (they encode intervals `[x, y]`, or more
/// generally lie on/above the diagonal, as the reduction of Proposition 2.2
/// produces). Ids must be unique across the tree's lifetime (a deleted id
/// may not be reused). Costs, measured on the shared counter:
///
/// * [`MetablockTree::query_into`] — `O(log_B n + t/B)` I/Os (Theorem 3.2);
/// * [`MetablockTree::insert`] — `O(log_B n + (log_B n)²/B)` amortised I/Os
///   (Theorem 3.7);
/// * [`MetablockTree::delete`] — the same amortised budget (tombstones
///   ride the insert machinery; §5's open problem, closed here);
/// * space `O(live/B)` pages (Lemma 3.4 + the occupancy shrink).
#[derive(Debug)]
pub struct MetablockTree {
    pub(crate) geo: Geometry,
    pub(crate) counter: IoCounter,
    pub(crate) store: TypedStore<Point>,
    pub(crate) metas: Vec<Option<MetaBlock>>,
    /// Count of freed meta slots (slots are never reused; see `alloc_meta`).
    pub(crate) dead_metas: usize,
    pub(crate) root: Option<MbId>,
    pub(crate) len: usize,
    /// Tombstones currently buffered somewhere in the tree (each matches
    /// exactly one physically stored, logically deleted point).
    pub(crate) tombs_pending: usize,
    /// Deletes absorbed since the last full (re)build, driving the
    /// occupancy-triggered shrink ([`Tuning::shrink_deletes_pct`]).
    pub(crate) deletes_since_shrink: usize,
    /// Tree size at the last full (re)build (the shrink trigger's base).
    pub(crate) shrink_base: usize,
    pub(crate) options: DiagOptions,
    pub(crate) tuning: Tuning,
    /// Incremental-reorganisation state ([`Tuning::reorg_pages_per_op`]):
    /// the deferred-work debt meter plus the in-progress background shrink
    /// job, if any. Always default/empty when the budget is 0.
    pub(crate) reorg: reorg::ReorgState,
}

impl MetablockTree {
    /// Create an empty tree with the paper's design (default options) and
    /// the measured default [`Tuning`].
    pub fn new(geo: Geometry, counter: IoCounter) -> Self {
        Self::new_with(geo, counter, DiagOptions::default())
    }

    /// Create an empty tree with explicit ablation options.
    pub fn new_with(geo: Geometry, counter: IoCounter, options: DiagOptions) -> Self {
        Self::new_tuned(geo, counter, options, Tuning::default())
    }

    /// Create an empty tree with explicit ablation options and tuning.
    pub fn new_tuned(
        geo: Geometry,
        counter: IoCounter,
        options: DiagOptions,
        tuning: Tuning,
    ) -> Self {
        Self::new_tuned_on(&BackendSpec::Model, geo, counter, options, tuning)
    }

    /// [`MetablockTree::new_tuned`] on an explicit page backend: the point
    /// store is created via [`TypedStore::new_on`], so a
    /// [`BackendSpec::File`] tree keeps every data page mirrored in a real
    /// page file while the control blocks (metablock directory) stay in
    /// memory, exactly as the model keeps them in working storage.
    pub fn new_tuned_on(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        options: DiagOptions,
        tuning: Tuning,
    ) -> Self {
        Self {
            geo,
            counter: counter.clone(),
            store: TypedStore::new_on(spec, geo.b, counter),
            metas: Vec::new(),
            dead_metas: 0,
            root: None,
            len: 0,
            tombs_pending: 0,
            deletes_since_shrink: 0,
            shrink_base: 0,
            options,
            tuning,
            reorg: reorg::ReorgState::default(),
        }
    }

    /// Fork a frozen read **snapshot** of this tree, charging its I/O to
    /// `counter`.
    ///
    /// The snapshot shares every data page with the live tree copy-on-write
    /// (see [`ccix_extmem::TypedStore::fork`]) and deep-copies only the
    /// control blocks, so forking costs `O(metablocks)` memory and zero
    /// I/O charges. It answers every read exactly as the live tree would
    /// at the moment of the fork — buffered updates, pending tombstones
    /// and even a mid-flight incremental shrink job (whose frozen runs and
    /// side delta are part of the copied control state) included. Reads on
    /// the snapshot bill `counter`, never the live tree's counter or its
    /// active shunt.
    ///
    /// This is the storage half of epoch-based publication: the serving
    /// layer forks an epoch after each group commit, readers hold it via
    /// `Arc`, and the pages a later mutation replaces stay alive until the
    /// last holder drops — see `ccix-serve`.
    pub fn fork_snapshot(&self, counter: IoCounter) -> Self {
        Self {
            geo: self.geo,
            counter: counter.clone(),
            store: self.store.fork(counter),
            metas: self.metas.clone(),
            dead_metas: self.dead_metas,
            root: self.root,
            len: self.len,
            tombs_pending: self.tombs_pending,
            deletes_since_shrink: self.deletes_since_shrink,
            shrink_base: self.shrink_base,
            options: self.options,
            tuning: self.tuning,
            reorg: self.reorg.clone(),
        }
    }

    /// Whether the point store mirrors its pages onto a real file.
    pub fn is_file_backed(&self) -> bool {
        self.store.is_file_backed()
    }

    /// `(cold, warm)` charged-read counts of the point store's file
    /// backend (see [`ccix_extmem::TypedStore::file_stats`]); `None` on
    /// the model backend.
    pub fn store_file_stats(&self) -> Option<(u64, u64)> {
        self.store.file_stats()
    }

    /// Empty the point store's file-backend page cache (cold-cache
    /// measurement); no-op on the model backend.
    pub fn clear_store_file_cache(&self) {
        self.store.clear_file_cache();
    }

    /// `(page id, encoded bytes)` images of the point store's live model
    /// pages (see [`ccix_extmem::TypedStore::page_images`]). Uncharged;
    /// for the differential backend suite.
    pub fn store_page_images(&self) -> Vec<(u32, Vec<u8>)> {
        self.store.page_images()
    }

    /// As [`MetablockTree::store_page_images`], read back from the file
    /// backend; `None` on the model backend.
    pub fn store_file_page_images(&self) -> Option<Vec<(u32, Vec<u8>)>> {
        self.store.file_page_images()
    }

    /// The tree's ablation options.
    pub fn options(&self) -> DiagOptions {
        self.options
    }

    /// The tree's write-path tuning.
    pub fn tuning(&self) -> Tuning {
        self.tuning
    }

    // ---- tuning-derived budgets -----------------------------------------
    //
    // Buffers are clamped to B/2 pages so a buffer (≤ B²/2 points) never
    // rivals the B² metablock capacity: the paper's invariants and the
    // level-II threshold arithmetic survive for every geometry, including
    // the tiny-B property tests.

    /// Update-buffer budget in pages (≥ 1).
    pub(crate) fn upd_cap_pages(&self) -> usize {
        self.tuning
            .update_batch_pages
            .clamp(1, (self.geo.b / 2).max(1))
    }

    /// TD staging budget in pages (≥ 1), shared by the insert and delete
    /// staging areas.
    pub(crate) fn td_cap_pages(&self) -> usize {
        self.tuning.td_batch_pages.clamp(1, (self.geo.b / 2).max(1))
    }

    /// Tombstone-buffer budget in pages (≥ 1).
    pub(crate) fn tomb_cap_pages(&self) -> usize {
        self.tuning
            .tomb_batch_pages
            .clamp(1, (self.geo.b / 2).max(1))
    }

    /// TS snapshot budget in points (≥ B).
    pub(crate) fn ts_cap_points(&self) -> usize {
        match self.tuning.ts_snapshot_pages {
            None => self.geo.b2(),
            Some(pages) => (pages.max(1) * self.geo.b).min(self.geo.b2()),
        }
    }

    /// Mirrored horizontal pages per child entry (0 = packing disabled).
    pub(crate) fn pack_h(&self) -> usize {
        self.tuning.pack_h_pages
    }

    /// Number of points stored (inserts minus deletes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logically deleted points whose tombstones are still pending
    /// cancellation. Each pending tombstone shadows exactly one physically
    /// stored copy; queries already filter them, and the next
    /// reorganisation that sees both annihilates the pair.
    pub fn pending_deletes(&self) -> usize {
        self.tombs_pending
    }

    /// Block geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The shared I/O counter.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Disk blocks occupied: data pages plus one control block per
    /// metablock (§3.1 stores "a constant number of disk blocks per
    /// metablock" of control information).
    pub fn space_pages(&self) -> usize {
        self.store.pages_in_use() + (self.metas.len() - self.dead_metas)
    }

    // ---- control-information access (charged) ---------------------------

    /// Read a metablock's control information: one I/O.
    pub(crate) fn meta(&self, mb: MbId) -> &MetaBlock {
        self.counter.add_reads(1);
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    /// Take a metablock's control information for mutation: one read I/O.
    /// Pair with [`MetablockTree::put_meta`].
    pub(crate) fn take_meta(&mut self, mb: MbId) -> MetaBlock {
        self.counter.add_reads(1);
        self.metas[mb].take().expect("take of freed metablock")
    }

    /// Write back control information: one write I/O.
    pub(crate) fn put_meta(&mut self, mb: MbId, meta: MetaBlock) {
        self.counter.add_writes(1);
        self.metas[mb] = Some(meta);
    }

    /// Access control information without billing (tests/validation only).
    pub(crate) fn meta_unbilled(&self, mb: MbId) -> &MetaBlock {
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    // ---- pinned query-side access ----------------------------------------

    /// Fresh read context for one query-side operation (or one batch).
    /// With [`Tuning::resident_root`], the root control block starts
    /// resident: the tree dedicates one block of long-lived main memory to
    /// it, so descents do not re-read it every operation.
    pub(crate) fn read_ctx(&self) -> ReadCtx {
        let mut ctx = ReadCtx::new(self.geo, self.counter.clone());
        if self.tuning.resident_root {
            if let Some(root) = self.root {
                ctx.resident = Some((SPACE_META, root as u64));
            }
        }
        ctx
    }

    /// Pinned control-block read: one I/O per residency in `ctx`.
    pub(crate) fn ctx_meta(&self, ctx: &mut ReadCtx, mb: MbId) -> &MetaBlock {
        ctx.touch_meta(mb);
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    /// Pinned data-page read: one I/O per residency in `ctx`.
    pub(crate) fn ctx_read(&self, ctx: &mut ReadCtx, pg: PageId) -> &[Point] {
        self.store.read_pinned(&mut ctx.pin, SPACE_STORE, pg)
    }

    /// Pinned read for one multi-step operation: the first touch of a
    /// control block charges one read; further touches are free while it
    /// stays pinned. The search path is `O(log_B n)` control blocks, well
    /// within the model's `Θ(B²)`-point working memory, so pinning it is the
    /// faithful charge — the paper's update analysis (§3.2) likewise counts
    /// each control block once per insert, not once per access. Mutations go
    /// through `metas[..].as_mut()` and are paid by one write per *dirty*
    /// block at the end of the operation (see `flush_dirty`).
    pub(crate) fn pin_meta(&self, pinned: &mut Vec<MbId>, mb: MbId) -> &MetaBlock {
        if !pinned.contains(&mb) {
            self.counter.add_reads(1);
            pinned.push(mb);
        }
        self.metas[mb].as_ref().expect("pinned metablock is live")
    }

    /// Charge one write per distinct dirty control block of a pinned
    /// operation.
    pub(crate) fn flush_dirty(&self, dirty: &[MbId]) {
        self.counter.add_writes(dirty.len() as u64);
    }

    pub(crate) fn alloc_meta(&mut self, meta: MetaBlock) -> MbId {
        self.counter.add_writes(1);
        // Meta slots are never reused: a freed MbId stays permanently dead,
        // which makes `metas[id].is_some()` a reliable liveness test for the
        // restructuring cascades of §3.2 (reorganisations fall back to
        // re-routing when a metablock they hold a handle to disappears).
        self.metas.push(Some(meta));
        self.metas.len() - 1
    }

    /// Free a metablock's control block and every data page it owns.
    pub(crate) fn free_metablock(&mut self, mb: MbId) -> MetaBlock {
        let meta = self.metas[mb].take().expect("double free of metablock");
        self.dead_metas += 1;
        self.store.free_run(&meta.vertical);
        self.store.free_run(&meta.horizontal);
        if let Some(c) = meta.corner.clone() {
            // The corner's stage-2 blocking is `meta.vertical` (shared),
            // already freed above; this releases only the explicit sets.
            c.free(&mut self.store);
        }
        self.store.free_run(&meta.update);
        self.store.free_run(&meta.tomb);
        self.tombs_pending -= meta.n_tomb;
        if let Some(ts) = &meta.ts {
            self.store.free_run(&ts.pages);
        }
        if let Some(td) = &meta.td {
            if let Some(c) = td.corner.clone() {
                c.free(&mut self.store);
            }
            self.store.free_run(&td.staged);
            if let Some(c) = td.del_corner.clone() {
                c.free(&mut self.store);
            }
            self.store.free_run(&td.del_staged);
        }
        meta
    }

    // ---- shared small helpers -------------------------------------------

    /// Read every point of a page run (one I/O per page).
    pub(crate) fn read_run(&self, pages: &[PageId]) -> Vec<Point> {
        let mut out = Vec::with_capacity(pages.len() * self.geo.b);
        for &pg in pages {
            out.extend_from_slice(self.store.read(pg));
        }
        out
    }

    /// Metablock point capacity `B²`.
    pub(crate) fn cap(&self) -> usize {
        self.geo.b2()
    }

    // ---- packed-entry maintenance ----------------------------------------

    /// Mirror `child`'s query-side control info (top horizontal pages,
    /// update-buffer run) into its entry in `parent`. Purely in-memory: the
    /// caller's operation already holds both control blocks, and every
    /// mirrored value is a page id or key already known to it. TS mirrors
    /// are maintained by `install_ts_snapshots`.
    pub(crate) fn sync_packed_entry(&mut self, parent: MbId, child: MbId) {
        let h = self.pack_h();
        if h == 0 {
            return;
        }
        let (h_pages, h_tops, h_live, h_more, upd, tomb) = {
            let cm = self.metas[child].as_ref().expect("live child");
            (
                cm.horizontal.iter().take(h).copied().collect::<Vec<_>>(),
                cm.hkeys.iter().take(h).copied().collect::<Vec<_>>(),
                cm.h_live.iter().take(h).copied().collect::<Vec<_>>(),
                cm.horizontal.len() > h,
                cm.update.clone(),
                cm.tomb.clone(),
            )
        };
        let pm = self.metas[parent].as_mut().expect("live parent");
        let e = pm
            .children
            .iter_mut()
            .find(|c| c.mb == child)
            .expect("child present in parent");
        e.packed.h_pages = h_pages;
        e.packed.h_tops = h_tops;
        e.packed.h_live = h_live;
        e.packed.h_more = h_more;
        e.packed.upd_pages = upd;
        e.packed.tomb_pages = tomb;
    }

    /// Refresh every child mirror of `parent` (used where the child list
    /// itself changed, i.e. splits and static builds).
    pub(crate) fn sync_packed_children(&mut self, parent: MbId) {
        if self.pack_h() == 0 {
            return;
        }
        let children: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        for c in children {
            self.sync_packed_entry(parent, c);
        }
    }
}
