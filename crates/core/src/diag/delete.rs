//! Deletion for the metablock tree — the paper's §5 open problem, closed
//! with tombstones that ride the insert machinery as **negative updates**.
//!
//! ## Why routing finds the victim
//!
//! A tombstone for `p` descends exactly like an insert of `p`: down the
//! slab containing `p.x`, stopping at the first metablock whose mains `p`
//! is not strictly below. The routing invariant (every point in a
//! descendant metablock lies strictly below `y_lo_main`) makes that
//! landing metablock the **only** place the live copy can be:
//!
//! * above the landing point, `p.ykey() < y_lo_main` held at every
//!   metablock the descent passed, so `p` can be in neither its mains
//!   (all `≥ y_lo_main`) nor its update buffer (buffered points satisfy
//!   `ykey ≥ y_lo_main`: the bound only *rises* at reorganisations that
//!   empty the buffer);
//! * below it, the routing invariant puts every point strictly under the
//!   landing metablock's `y_lo_main ≤ p.ykey()`.
//!
//! So the tombstone is buffered next to its victim and the next **level-I
//! reorganisation annihilates the pair** in the same galloping merge that
//! absorbs the update buffer ([`ccix_extmem::SortedRun::cancel`]). A copy
//! of the tombstone goes to the parent's TD delete side, mirroring the TD
//! insert tracking, so the TS crossing case can subtract deletes younger
//! than the sibling snapshots it answers from. One degenerate case needs
//! care: a delete flood can empty an interior metablock's mains entirely,
//! voiding `y_lo_main`. Such a metablock becomes a **pure router** — the
//! insert and delete routings both pass it by (its buffer is empty and
//! stays empty), so nothing can hide there; as defence in depth, a
//! tombstone a level-I nevertheless fails to match is re-routed one level
//! down, where the landing argument applies again.
//!
//! ## Costs
//!
//! A routed delete costs what a routed insert costs: the pinned descent
//! (`O(log_B n)` control blocks, billed through the operation's
//! [`PathPin`](ccix_extmem::PathPin)), one buffer append (1 read + 1
//! write), one TD-side append, and the amortised reorganisation terms —
//! cancellations ride reorganisations that were already paid for.
//! [`MetablockTree::delete_batch`] shares one read context across a sorted
//! batch, so correlated delete floods bill the shared descent prefix once
//! per residency, exactly like the batched read engine. Space stays
//! `O(live/B)`: once the deletes absorbed since the last full (re)build
//! exceed [`Tuning::shrink_deletes_pct`](crate::Tuning::shrink_deletes_pct)
//! of its size, the tree is rebuilt from its live points by the same
//! merge-based plan/materialise pipeline static builds use — the classic
//! global-rebuilding amortisation, `O(1/B)` extra I/Os per delete.
//!
//! ## Contract
//!
//! Ids are unique across the tree's lifetime: deleting a point that is not
//! currently stored, or re-inserting a previously deleted id, is a
//! contract violation (debug builds catch both — unmatched tombstones at
//! the leaf level and duplicate ids in the validator).

use ccix_extmem::Point;

use super::{mark_dirty, MbId, MetablockTree, ReadCtx};

/// Reorganisation triggers observed while routing one tombstone; they are
/// run after the routing context's dirty blocks are flushed, exactly like
/// phase 6 of an insert.
pub(super) struct DelTriggers {
    target: MbId,
    parent: Option<MbId>,
    tomb_full: bool,
    del_staged_full: bool,
    td_total: usize,
}

impl MetablockTree {
    /// Delete a previously inserted point. Amortised
    /// `O(log_B n + (log_B n)²/B)` I/Os — the insert budget: a tombstone
    /// is routed like an insert, buffered next to its victim, and
    /// annihilated by the next reorganisation that sees both.
    ///
    /// # Panics
    /// Panics if the tree is empty. Deleting a point that is not stored
    /// (or was already deleted) is a contract violation, caught by debug
    /// assertions when the stray tombstone reaches a leaf reorganisation.
    pub fn delete(&mut self, p: Point) {
        self.delete_batch(std::slice::from_ref(&p));
    }

    /// Delete a batch of points as **one pinned operation**: tombstones are
    /// routed in sorted order over a shared read context, so the control
    /// blocks of the shared descent prefix are billed once per residency
    /// instead of once per delete (a correlated delete flood pays the
    /// `O(log_B n)` descent once). Reorganisation triggers flush the
    /// context and run between routings, exactly as for serial deletes.
    pub fn delete_batch(&mut self, pts: &[Point]) {
        let mut order: Vec<usize> = (0..pts.len()).collect();
        order.sort_by_key(|&i| pts[i].xkey());
        let mut ctx = self.read_ctx();
        let mut dirty: Vec<MbId> = Vec::new();
        for &i in &order {
            let p = pts[i];
            assert!(p.y >= p.x, "points must lie on or above the diagonal");
            assert!(
                self.root.is_some() || self.reorg.job.is_some(),
                "delete from an empty tree"
            );
            self.len -= 1;
            self.deletes_since_shrink += 1;
            // While a background shrink job is active the delta may absorb
            // the delete entirely: the victim is an undrained delta point
            // (the pair annihilates in place) or the tree is frozen (the
            // tombstone is buffered in the delta until after cutover).
            if self.delta_delete(p) {
                if self.pump_reorg() {
                    ctx = self.read_ctx();
                }
                continue;
            }
            let root = self.root.expect("tree is nonempty");
            let triggers = self.route_tombstone(&mut ctx, &mut dirty, Vec::new(), root, p);
            let fired = self.run_del_triggers(&mut dirty, triggers);
            let pumped = self.pump_reorg();
            if fired || pumped {
                // A reorganisation may have freed or rebuilt pinned pages:
                // start a fresh context for the rest of the batch.
                ctx = self.read_ctx();
            }
        }
        self.flush_dirty(&dirty);
        self.maybe_shrink();
    }

    /// Route the tombstone `p` downward from `start` (ancestors in `above`,
    /// root first), buffer it next to its victim, and mirror it into the
    /// landing parent's TD delete side. Reads bill through `ctx`; control
    /// blocks mutated in memory are recorded in `dirty` and paid by the
    /// caller's flush.
    pub(super) fn route_tombstone(
        &mut self,
        ctx: &mut ReadCtx,
        dirty: &mut Vec<MbId>,
        above: Vec<MbId>,
        start: MbId,
        p: Point,
    ) -> DelTriggers {
        let mut path = above;

        // Phase 1 — descend, with the exact landing rule of the insert
        // routing. An interior metablock whose mains a delete flood
        // emptied is a pure router — nothing lands there (its buffer is
        // empty and stays empty), so nothing can hide there and the
        // victim, if stored at all, is exactly at the landing metablock.
        let mut cur = start;
        loop {
            let meta = self.ctx_meta(ctx, cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_some_and(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            debug_assert!(
                meta.y_lo_main.is_some() || meta.n_upd == 0,
                "emptied interior metablock holds buffered points"
            );
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        // Phase 2 — append the tombstone to the target's tombstone buffer
        // (pages fill left-to-right, B at a time).
        let b = self.geo.b;
        let open_page = {
            let m = self.metas[target].as_ref().expect("target is live");
            (!m.n_tomb.is_multiple_of(b)).then(|| *m.tomb.last().expect("partial page exists"))
        };
        match open_page {
            Some(pg) => self.store.append(pg, p),
            None => {
                let pg = self.store.alloc(vec![p]);
                self.metas[target]
                    .as_mut()
                    .expect("target is live")
                    .tomb
                    .push(pg);
                // Mirror the new tombstone page into the parent's packed
                // entry (in-memory: the parent is pinned on the descent).
                if self.pack_h() > 0 {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            e.packed.tomb_pages.push(pg);
                            mark_dirty(dirty, par);
                        }
                    }
                }
            }
        }
        let tomb_full = {
            let m = self.metas[target].as_mut().expect("target is live");
            m.n_tomb += 1;
            m.tomb_buf.push(p);
            m.n_tomb >= self.tomb_cap_pages() * b
        };
        self.tombs_pending += 1;
        mark_dirty(dirty, target);

        // Keep the per-page live counts exact: if the victim sits in the
        // mains (rather than the update buffer), it is on the unique
        // horizontal page whose top key covers its y — probe that page
        // (billed through the operation's pin) and decrement its count, so
        // queries can skip the page once every point on it is shadowed. On
        // a leaf with an empty update buffer the probe read is skipped
        // entirely: the victim has nowhere else to be (the landing rule
        // sends a tombstone exactly where its victim's insert landed, and a
        // leaf has no descendants to hide it in), so the decrement is
        // certain without touching the page.
        let probe = {
            let m = self.metas[target].as_ref().expect("target is live");
            if !m.hkeys.is_empty() && p.ykey() <= m.hkeys[0] {
                let i = m.hkeys.partition_point(|&hk| hk >= p.ykey()) - 1;
                let certain = m.is_leaf() && m.n_upd == 0;
                Some((i, (!certain).then(|| m.horizontal[i])))
            } else {
                None
            }
        };
        if let Some((i, pg)) = probe {
            if pg.is_none_or(|pg| self.ctx_read(ctx, pg).iter().any(|q| q.id == p.id)) {
                let m = self.metas[target].as_mut().expect("target is live");
                debug_assert!(m.h_live[i] > 0, "live count underflow");
                m.h_live[i] -= 1;
                if i < self.pack_h() {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            if let Some(slot) = e.packed.h_live.get_mut(i) {
                                *slot = slot.saturating_sub(1);
                            }
                            mark_dirty(dirty, par);
                        }
                    }
                }
            }
        }

        // Phase 3 — mirror the tombstone into the parent's TD delete side,
        // so snapshot-answered routes can subtract it.
        let parent = path.last().copied();
        let mut td_total = 0usize;
        let mut del_staged_full = false;
        if let Some(par) = parent {
            ctx.touch_meta(par);
            let open_page = {
                let td = self.metas[par]
                    .as_ref()
                    .expect("parent is live")
                    .td
                    .as_ref();
                let td = td.expect("internal metablock carries a TD");
                (!td.n_del_staged.is_multiple_of(b))
                    .then(|| *td.del_staged.last().expect("partial page exists"))
            };
            match open_page {
                Some(pg) => self.store.append(pg, p),
                None => {
                    let pg = self.store.alloc(vec![p]);
                    self.metas[par]
                        .as_mut()
                        .expect("parent is live")
                        .td
                        .as_mut()
                        .expect("TD present")
                        .del_staged
                        .push(pg);
                }
            }
            let td = self.metas[par]
                .as_mut()
                .expect("parent is live")
                .td
                .as_mut()
                .expect("TD present");
            td.n_del_staged += 1;
            td.del_staged_buf.push(p);
            td_total = td.total() + td.del_total();
            del_staged_full = td.n_del_staged >= self.td_cap_pages() * b;
            mark_dirty(dirty, par);
        }

        DelTriggers {
            target,
            parent,
            tomb_full,
            del_staged_full,
            td_total,
        }
    }

    /// Run the amortised triggers of one routed tombstone. Returns whether
    /// any reorganisation fired (so a batch context must be re-created).
    /// A delete can only shrink a metablock, so no level-II / split
    /// cascades arise here.
    pub(super) fn run_del_triggers(&mut self, dirty: &mut Vec<MbId>, t: DelTriggers) -> bool {
        let mut fired = false;
        if let Some(par) = t.parent {
            if t.td_total >= self.cap() {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.ts_reorg(par));
                fired = true;
            } else if t.del_staged_full {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.td_rebuild(par));
                fired = true;
            }
        }
        if t.tomb_full && self.metas[t.target].is_some() {
            self.flush_dirty(dirty);
            dirty.clear();
            self.with_shunt(|tr| tr.level_i(t.target, t.parent));
            fired = true;
        }
        fired
    }

    /// Re-route a tombstone that a level-I reorganisation could not match:
    /// its victim sits strictly below `from` (only possible when a delete
    /// flood emptied `from`'s mains and voided the landing bound). The
    /// tombstone descends into the slab child and lands where the
    /// invariant holds again; at a leaf with no match the delete was a
    /// contract violation and the stray tombstone is dropped.
    pub(crate) fn reroute_tombstone(&mut self, from: MbId, p: Point) {
        let is_leaf = self.metas[from].as_ref().is_none_or(|m| m.is_leaf());
        if is_leaf {
            debug_assert!(false, "deleted point {p:?} is not stored in the tree");
            return;
        }
        let mut ctx = self.read_ctx();
        let mut dirty: Vec<MbId> = Vec::new();
        let idx = {
            let meta = self.ctx_meta(&mut ctx, from);
            meta.children.partition_point(|c| c.slab_hi <= p.xkey())
        };
        let child = self.metas[from].as_ref().expect("live metablock").children[idx].mb;
        let triggers = self.route_tombstone(&mut ctx, &mut dirty, vec![from], child, p);
        self.run_del_triggers(&mut dirty, triggers);
        self.flush_dirty(&dirty);
    }

    /// Occupancy-triggered shrink: once the deletes absorbed since the last
    /// full (re)build exceed [`crate::Tuning::shrink_deletes_pct`] of its
    /// size (and at least `B²`), rebuild the whole tree from its live
    /// points — the merge-based collection cancels every pending tombstone
    /// and the static plan/materialise pipeline packs the result, so space
    /// returns to `O(live/B)` pages. Amortised `O(1/B)` I/Os per delete.
    pub(super) fn maybe_shrink(&mut self) {
        let pct = self.tuning.shrink_deletes_pct;
        if pct == 0 || self.deletes_since_shrink == 0 {
            return;
        }
        // One background job at a time; while one runs, the trigger keeps
        // accumulating and re-fires after the drain completes if needed.
        if self.reorg.job.is_some() {
            return;
        }
        let floor = self.cap().max(self.shrink_base * pct / 100);
        if self.deletes_since_shrink < floor {
            return;
        }
        let Some(root) = self.root else {
            self.note_full_rebuild();
            return;
        };
        if self.tuning.reorg_pages_per_op > 0 {
            // Incremental mode: freeze the tree and rebuild it over the
            // coming operations instead of stopping the world here.
            self.start_shrink_job();
            return;
        }
        let pts = self.collect_subtree_sorted(root);
        self.free_subtree(root);
        debug_assert_eq!(self.tombs_pending, 0, "shrink cancelled every tombstone");
        debug_assert_eq!(pts.len(), self.len, "live points disagree with len");
        self.root = if pts.is_empty() {
            None
        } else {
            let (root, _, _) =
                self.build_slab(pts, super::build::FULL_RANGE.0, super::build::FULL_RANGE.1);
            Some(root)
        };
        self.note_full_rebuild();
    }

    /// Reset the shrink accounting after any full-tree rebuild (shrink,
    /// root leaf split, root branching split).
    pub(crate) fn note_full_rebuild(&mut self) {
        self.shrink_base = self.len;
        self.deletes_since_shrink = 0;
    }
}
