//! Incremental reorganisation (LSM-style dribbling) for the metablock tree.
//!
//! With [`crate::Tuning::reorg_pages_per_op`] `= 0` (the default and the
//! paper's behaviour) nothing in this module runs and every reorganisation
//! executes to completion inside the operation that triggered it — the
//! amortised bounds are exactly the paper's, but a TD fold or occupancy
//! shrink is a stop-the-world pause. A budget `k > 0` converts those pauses
//! into a bounded per-operation tax, in two mechanisms:
//!
//! 1. **Charge dribbling** for the in-place reorganisations (level-I merge,
//!    TD fold, TS reorganisation, level-II push-down/split, branching
//!    split). These run at their usual trigger points — the *structure*
//!    evolves bit-identically to `k = 0` — but their page transfers are
//!    **shunted** ([`ccix_extmem::IoCounter::begin_shunt`]) into a debt
//!    meter instead of the live counters, and every subsequent write
//!    operation bleeds at most `k` transfers of debt. Totals are conserved
//!    exactly: the debt is real work, billed later.
//!
//! 2. A **two-sided background job** for the occupancy shrink, whose
//!    one-shot form rewrites the whole tree. The job freezes the tree and
//!    rebuilds it over many operations: *collect* the frozen runs a few
//!    pages per pump, *merge* them with a resumable [`MergeCursor`] a few
//!    pages of points per pump, then *cut over* (swap in the rebuilt tree)
//!    and *drain*. While the tree is frozen, inserts and deletes divert to
//!    a side **delta** (page-backed update/tombstone runs) that queries
//!    consult alongside the frozen tree; after cutover the delta drains
//!    back into the live tree a few points per pump. A delete whose victim
//!    still sits in the delta *annihilates* in place (no tombstone is ever
//!    stored for a delta-buffered point), so every delta tombstone targets
//!    a frozen-tree point and the drain order is irrelevant.
//!
//! Job pumps also run under the shunt, so a write operation's billed cost
//! is its own routing plus at most `k` bled transfers — the worst-case
//! bound the EL latency table gates.

use std::collections::{HashSet, VecDeque};

use ccix_extmem::{MergeCursor, PageId, Point, SortedRun};

use super::{MbId, MetablockTree, ReadCtx};

/// Debt meter plus the in-progress shrink job, if any.
#[derive(Clone, Debug, Default)]
pub(crate) struct ReorgState {
    /// Shunted reads not yet bled into the live counter.
    pub debt_reads: u64,
    /// Shunted writes not yet bled into the live counter.
    pub debt_writes: u64,
    /// The background shrink job (`None` almost always).
    pub job: Option<ShrinkJob>,
}

impl ReorgState {
    /// Total page transfers of deferred work.
    pub fn debt(&self) -> u64 {
        self.debt_reads + self.debt_writes
    }
}

/// A two-sided occupancy shrink in progress.
#[derive(Clone, Debug)]
pub(crate) struct ShrinkJob {
    pub phase: JobPhase,
    /// Logical size when the tree was frozen; the cutover's rebuilt tree
    /// holds exactly this many points (every frozen tombstone cancels).
    pub len_at_freeze: usize,
    pub delta: DeltaBuf,
}

impl ShrinkJob {
    /// True until the cutover: operations divert to the delta, queries see
    /// the frozen tree plus the delta.
    pub fn frozen(&self) -> bool {
        !matches!(self.phase, JobPhase::Drain)
    }
}

#[derive(Clone, Debug)]
pub(crate) enum JobPhase {
    /// Reading the frozen subtree's page runs, `k` pages per pump.
    Collect {
        /// Remaining runs to read (consumed from the back).
        specs: Vec<RunSpec>,
        /// Points of the run currently being read.
        buf: Vec<Point>,
        runs: Vec<SortedRun>,
        tomb_runs: Vec<SortedRun>,
    },
    /// Tournament-merging the collected runs, `k·B` points per pump.
    Merge {
        queue: VecDeque<SortedRun>,
        cursor: Option<MergeCursor>,
        tombs: SortedRun,
    },
    /// Cutover done (the rebuilt tree is live); re-routing the delta back,
    /// `k` points per pump.
    Drain,
}

/// One frozen page run awaiting collection.
#[derive(Clone, Debug)]
pub(crate) struct RunSpec {
    pub pages: Vec<PageId>,
    pub pos: usize,
    /// The run is already x-sorted (a vertical blocking).
    pub sorted: bool,
    /// The run holds tombstones.
    pub tomb: bool,
}

/// The side delta absorbing operations while the tree is frozen.
///
/// Both runs are page-backed (appends are charged like buffer appends);
/// the id sets are in-memory job state, bounded by the operations that
/// arrive during the job — the same scale as the pinned working memory the
/// model grants an operation.
#[derive(Clone, Debug, Default)]
pub(crate) struct DeltaBuf {
    pub upd_pages: Vec<PageId>,
    pub n_upd: usize,
    /// Update points drained back so far (prefix of the run).
    pub upd_pos: usize,
    pub tomb_pages: Vec<PageId>,
    pub n_tomb: usize,
    pub tomb_pos: usize,
    /// Ids of undrained, unannihilated delta update points.
    pub upd_ids: HashSet<u64>,
    /// Ids of delta update points whose delete arrived before their drain:
    /// the pair annihilated in place, the drain skips the stored copy.
    pub annihilated: HashSet<u64>,
}

impl DeltaBuf {
    /// Tombstones still awaiting drain.
    pub fn undrained_tombs(&self) -> usize {
        self.n_tomb - self.tomb_pos
    }
}

impl MetablockTree {
    /// Run `f` with its I/O charges shunted into the debt meter — identity
    /// when the budget is 0 (exact-I/O gates stay byte-identical) or when a
    /// shunt is already active (a dribbled reorganisation triggering
    /// further reorganisations).
    pub(crate) fn with_shunt<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.tuning.reorg_pages_per_op == 0 || self.counter.shunt_active() {
            return f(self);
        }
        self.counter.begin_shunt();
        let out = f(self);
        let (r, w) = self.counter.end_shunt();
        self.reorg.debt_reads += r;
        self.reorg.debt_writes += w;
        out
    }

    /// Deferred reorganisation work in page transfers (debt not yet bled).
    /// Always 0 when [`crate::Tuning::reorg_pages_per_op`] is 0.
    pub fn reorg_debt(&self) -> u64 {
        self.reorg.debt()
    }

    /// True while a background shrink job is in progress.
    pub fn reorg_in_progress(&self) -> bool {
        self.reorg.job.is_some()
    }

    /// Run any in-progress shrink job to completion and bill all deferred
    /// debt. Call before comparing totals against an amortised budget:
    /// totals are conserved only once the debt has been bled.
    pub fn flush_reorgs(&mut self) {
        if self.tuning.reorg_pages_per_op == 0 {
            debug_assert!(self.reorg.job.is_none() && self.reorg.debt() == 0);
            return;
        }
        while self.reorg.job.is_some() {
            self.with_shunt(|t| t.advance_job(usize::MAX / 2));
        }
        self.counter.add_reads(self.reorg.debt_reads);
        self.counter.add_writes(self.reorg.debt_writes);
        self.reorg.debt_reads = 0;
        self.reorg.debt_writes = 0;
    }

    /// One pump, called at the end of every insert/delete when the budget
    /// is finite: advance the job (charges shunted), then bleed at most `k`
    /// transfers of debt into the live counters. Returns true when a job
    /// was active (the tree may have been restructured, so a batched
    /// caller must refresh its pinned context).
    pub(crate) fn pump_reorg(&mut self) -> bool {
        let k = self.tuning.reorg_pages_per_op;
        if k == 0 {
            return false;
        }
        let had_job = self.reorg.job.is_some();
        if had_job {
            self.with_shunt(|t| t.advance_job(k));
        }
        let mut room = k as u64;
        let r = room.min(self.reorg.debt_reads);
        if r > 0 {
            self.counter.add_reads(r);
            self.reorg.debt_reads -= r;
            room -= r;
        }
        let w = room.min(self.reorg.debt_writes);
        if w > 0 {
            self.counter.add_writes(w);
            self.reorg.debt_writes -= w;
        }
        had_job
    }

    /// Advance the deferred reorganisation by one per-op budget slice:
    /// push any in-progress shrink job forward and bleed up to
    /// [`crate::Tuning::reorg_pages_per_op`] transfers of debt into the
    /// live counters. A no-op when the budget is 0. Returns `true` while
    /// work remains (a job in progress or unbled debt) — the serving
    /// layer's writer pumps this between group commits so publish latency
    /// stays bounded without ever stopping the world.
    pub fn pump_reorg_step(&mut self) -> bool {
        self.pump_reorg();
        self.reorg.job.is_some() || self.reorg.debt() > 0
    }

    // ---- the shrink job --------------------------------------------------

    /// Freeze the tree and start a background shrink job (budget > 0 only).
    /// The control-block walk that snapshots the page runs is shunted like
    /// every other job charge.
    pub(crate) fn start_shrink_job(&mut self) {
        debug_assert!(self.reorg.job.is_none(), "one job at a time");
        let root = self.root.expect("shrink job needs a non-empty tree");
        let mut specs = Vec::new();
        self.with_shunt(|t| t.collect_job_specs(root, &mut specs));
        self.reorg.job = Some(ShrinkJob {
            phase: JobPhase::Collect {
                specs,
                buf: Vec::new(),
                runs: Vec::new(),
                tomb_runs: Vec::new(),
            },
            len_at_freeze: self.len,
            delta: DeltaBuf::default(),
        });
    }

    fn collect_job_specs(&mut self, mb: MbId, specs: &mut Vec<RunSpec>) {
        let (vertical, update, tomb, children) = {
            let meta = self.meta(mb);
            (
                meta.vertical.clone(),
                meta.update.clone(),
                meta.tomb.clone(),
                meta.children.iter().map(|c| c.mb).collect::<Vec<_>>(),
            )
        };
        if !vertical.is_empty() {
            specs.push(RunSpec {
                pages: vertical,
                pos: 0,
                sorted: true,
                tomb: false,
            });
        }
        if !update.is_empty() {
            specs.push(RunSpec {
                pages: update,
                pos: 0,
                sorted: false,
                tomb: false,
            });
        }
        if !tomb.is_empty() {
            specs.push(RunSpec {
                pages: tomb,
                pos: 0,
                sorted: false,
                tomb: true,
            });
        }
        for c in children {
            self.collect_job_specs(c, specs);
        }
    }

    /// Advance the job by roughly `k` pages of work. Always called under
    /// the shunt.
    fn advance_job(&mut self, k: usize) {
        let Some(mut job) = self.reorg.job.take() else {
            return;
        };
        let done = self.advance_job_inner(&mut job, k);
        if done {
            self.store.free_run(&job.delta.upd_pages);
            self.store.free_run(&job.delta.tomb_pages);
        } else {
            self.reorg.job = Some(job);
        }
    }

    fn advance_job_inner(&mut self, job: &mut ShrinkJob, k: usize) -> bool {
        match &mut job.phase {
            JobPhase::Collect {
                specs,
                buf,
                runs,
                tomb_runs,
            } => {
                let mut budget = k.max(1);
                while budget > 0 {
                    let Some(spec) = specs.last_mut() else {
                        break;
                    };
                    buf.extend_from_slice(self.store.read(spec.pages[spec.pos]));
                    spec.pos += 1;
                    budget -= 1;
                    if spec.pos == spec.pages.len() {
                        let pts = std::mem::take(buf);
                        let run = if spec.sorted {
                            SortedRun::from_sorted(pts)
                        } else {
                            SortedRun::from_unsorted(pts)
                        };
                        if spec.tomb {
                            tomb_runs.push(run);
                        } else {
                            runs.push(run);
                        }
                        specs.pop();
                    }
                }
                if specs.is_empty() {
                    debug_assert!(buf.is_empty());
                    job.phase = JobPhase::Merge {
                        queue: runs.drain(..).collect(),
                        cursor: None,
                        tombs: SortedRun::merge_many(std::mem::take(tomb_runs)),
                    };
                }
                false
            }
            JobPhase::Merge {
                queue,
                cursor,
                tombs,
            } => {
                if cursor.is_none() && queue.len() < 2 {
                    // Tournament complete: cancel tombstones and cut over.
                    let merged = queue.pop_front().unwrap_or_default();
                    let tombs = std::mem::take(tombs);
                    self.job_cutover(merged, tombs, job.len_at_freeze);
                    job.phase = JobPhase::Drain;
                    return false;
                }
                if cursor.is_none() {
                    let a = queue.pop_front().expect("two runs queued");
                    let b = queue.pop_front().expect("two runs queued");
                    *cursor = Some(MergeCursor::new(a, b));
                }
                let cur = cursor.as_mut().expect("cursor just installed");
                if cur.step(k.saturating_mul(self.geo.b).max(1)) {
                    let merged = cursor.take().expect("cursor present").finish();
                    queue.push_back(merged);
                }
                false
            }
            JobPhase::Drain => {
                let mut delta = std::mem::take(&mut job.delta);
                let done = self.job_drain(&mut delta, k);
                job.delta = delta;
                done
            }
        }
    }

    /// Swap the rebuilt tree in for the frozen one. After this, every
    /// frozen tombstone has been cancelled and every delta tombstone's
    /// victim is a point of the rebuilt tree.
    fn job_cutover(&mut self, merged: SortedRun, tombs: SortedRun, len_at_freeze: usize) {
        let (pts, unmatched) = merged.cancel(&tombs);
        debug_assert!(
            unmatched.is_empty(),
            "every frozen tombstone has its victim in the frozen tree"
        );
        let root = self.root.expect("frozen tree has a root");
        self.free_subtree(root);
        debug_assert_eq!(self.tombs_pending, 0, "cutover cancelled every tombstone");
        debug_assert_eq!(
            pts.len(),
            len_at_freeze,
            "rebuilt tree holds exactly the frozen live points"
        );
        self.root = if pts.is_empty() {
            None
        } else {
            let (r, _, _) =
                self.build_slab(pts, super::build::FULL_RANGE.0, super::build::FULL_RANGE.1);
            Some(r)
        };
        self.note_full_rebuild();
    }

    /// Re-route up to `k` delta points into the live tree. Update points
    /// insert (skipping annihilated pairs); tombstones route with the
    /// normal delete machinery — their victims are all in the tree, so the
    /// landing invariant holds and triggers fire as usual (nested inside
    /// this already-shunted pump, so their charges join the debt).
    fn job_drain(&mut self, d: &mut DeltaBuf, k: usize) -> bool {
        let b = self.geo.b;
        let mut budget = k.max(1);
        while budget > 0 && d.upd_pos < d.n_upd {
            let page: Vec<Point> = self.store.read(d.upd_pages[d.upd_pos / b]).to_vec();
            let off = d.upd_pos % b;
            let take = (page.len() - off).min(budget);
            for p in &page[off..off + take] {
                d.upd_pos += 1;
                if d.annihilated.remove(&p.id) {
                    continue;
                }
                d.upd_ids.remove(&p.id);
                match self.root {
                    None => {
                        let id = self.make_metablock(
                            &SortedRun::from_sorted(vec![*p]),
                            Vec::new(),
                            false,
                        );
                        self.root = Some(id);
                    }
                    Some(root) => self.insert_routed(Vec::new(), root, *p),
                }
            }
            budget -= take;
        }
        while budget > 0 && d.tomb_pos < d.n_tomb {
            let page: Vec<Point> = self.store.read(d.tomb_pages[d.tomb_pos / b]).to_vec();
            let off = d.tomb_pos % b;
            let take = (page.len() - off).min(budget);
            for t in &page[off..off + take] {
                d.tomb_pos += 1;
                let root = self.root.expect("tombstone victims live in the tree");
                let mut ctx = self.read_ctx();
                let mut dirty: Vec<MbId> = Vec::new();
                let triggers = self.route_tombstone(&mut ctx, &mut dirty, Vec::new(), root, *t);
                self.run_del_triggers(&mut dirty, triggers);
                self.flush_dirty(&dirty);
            }
            budget -= take;
        }
        d.upd_pos == d.n_upd && d.tomb_pos == d.n_tomb
    }

    // ---- operation diversion ---------------------------------------------

    /// Divert an insert to the delta while the tree is frozen. Returns
    /// false (caller routes normally) when no frozen job is active.
    pub(crate) fn delta_insert(&mut self, p: Point) -> bool {
        let Self {
            store, reorg, geo, ..
        } = self;
        let Some(job) = reorg.job.as_mut() else {
            return false;
        };
        if !job.frozen() {
            return false;
        }
        let d = &mut job.delta;
        if d.n_upd % geo.b != 0 {
            let pg = *d.upd_pages.last().expect("open delta page exists");
            store.append(pg, p);
        } else {
            d.upd_pages.push(store.alloc(vec![p]));
        }
        d.n_upd += 1;
        d.upd_ids.insert(p.id);
        true
    }

    /// Handle the delta side of a delete. Returns true when the delete was
    /// fully absorbed here: either the victim was an undrained delta point
    /// (the pair annihilates in place — no tombstone is stored anywhere) or
    /// the tree is frozen (the tombstone is buffered in the delta; its
    /// victim is a frozen-tree point, re-routed after cutover). Returns
    /// false when the caller must route the tombstone normally.
    pub(crate) fn delta_delete(&mut self, p: Point) -> bool {
        let Self {
            store, reorg, geo, ..
        } = self;
        let Some(job) = reorg.job.as_mut() else {
            return false;
        };
        let frozen = job.frozen();
        let d = &mut job.delta;
        if d.upd_ids.remove(&p.id) {
            d.annihilated.insert(p.id);
            return true;
        }
        if !frozen {
            return false;
        }
        if d.n_tomb % geo.b != 0 {
            let pg = *d.tomb_pages.last().expect("open delta page exists");
            store.append(pg, p);
        } else {
            d.tomb_pages.push(store.alloc(vec![p]));
        }
        d.n_tomb += 1;
        true
    }

    // ---- query-side delta consultation -----------------------------------

    /// Report the delta's undrained update points matching the diagonal
    /// query `q` and record its undrained tombstone ids — the "both sides"
    /// half of a query against a tree with a job in progress. Billed
    /// through the operation's pin like any other buffer scan.
    pub(crate) fn scan_delta_query(&self, ctx: &mut ReadCtx, q: i64, out: &mut Vec<Point>) {
        self.scan_delta_with(ctx, |p| p.x <= q && p.y >= q, out);
    }

    /// As [`MetablockTree::scan_delta_query`] for an x-range query.
    pub(crate) fn scan_delta_x_range(
        &self,
        ctx: &mut ReadCtx,
        x1: i64,
        x2: i64,
        out: &mut Vec<Point>,
    ) {
        self.scan_delta_with(ctx, |p| x1 <= p.x && p.x <= x2, out);
    }

    fn scan_delta_with(
        &self,
        ctx: &mut ReadCtx,
        keep: impl Fn(&Point) -> bool,
        out: &mut Vec<Point>,
    ) {
        let Some(job) = &self.reorg.job else {
            return;
        };
        let d = &job.delta;
        let b = self.geo.b;
        for (i, &pg) in d.upd_pages.iter().enumerate() {
            if (i + 1) * b <= d.upd_pos {
                continue; // fully drained page
            }
            let skip = d.upd_pos.saturating_sub(i * b);
            for p in &self.ctx_read(ctx, pg)[skip..] {
                if keep(p) && !d.annihilated.contains(&p.id) {
                    out.push(*p);
                }
            }
        }
        for (i, &pg) in d.tomb_pages.iter().enumerate() {
            if (i + 1) * b <= d.tomb_pos {
                continue;
            }
            let skip = d.tomb_pos.saturating_sub(i * b);
            let page = self.ctx_read(ctx, pg);
            let dead: Vec<u64> = page[skip..]
                .iter()
                .filter(|t| keep(t))
                .map(|t| t.id)
                .collect();
            ctx.del.extend(dead);
        }
    }

    /// The delta's undrained live update points (unbilled; validator use).
    /// Also returns the undrained tombstone count.
    pub(crate) fn delta_contents_unbilled(&self) -> (Vec<Point>, usize) {
        let Some(job) = &self.reorg.job else {
            return (Vec::new(), 0);
        };
        let d = &job.delta;
        let b = self.geo.b;
        let mut live = Vec::new();
        for (i, &pg) in d.upd_pages.iter().enumerate() {
            if (i + 1) * b <= d.upd_pos {
                continue;
            }
            let skip = d.upd_pos.saturating_sub(i * b);
            for p in &self.store.read_unbilled(pg)[skip..] {
                if !d.annihilated.contains(&p.id) {
                    live.push(*p);
                }
            }
        }
        (live, d.undrained_tombs())
    }

    /// The delta's undrained tombstones (unbilled; validator use).
    pub(crate) fn delta_tombs_unbilled(&self) -> Vec<Point> {
        let Some(job) = &self.reorg.job else {
            return Vec::new();
        };
        let d = &job.delta;
        let b = self.geo.b;
        let mut tombs = Vec::new();
        for (i, &pg) in d.tomb_pages.iter().enumerate() {
            if (i + 1) * b <= d.tomb_pos {
                continue;
            }
            let skip = d.tomb_pos.saturating_sub(i * b);
            tombs.extend_from_slice(&self.store.read_unbilled(pg)[skip..]);
        }
        tombs
    }
}
