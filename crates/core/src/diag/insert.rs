//! Semi-dynamic insertion (§3.2, Fig. 19), with batched reorganisation.
//!
//! A new point is routed down the slab containing its x, stopping at the
//! first metablock whose mains it is not strictly below, and buffered in
//! that metablock's **update buffer**; a copy goes into the parent's **TD**
//! corner structure. Amortisation then proceeds as in the paper, with the
//! buffer sizes generalised from one block to the tuned budgets:
//!
//! * update buffer full (`k·B` points, [`crate::Tuning::update_batch_pages`])
//!   → **level-I reorganisation**: merge into the mains and rebuild the
//!   vertical/horizontal/corner organisations (`O(B)` I/Os, once per `k·B`
//!   inserts — the batching amortises the rebuild `k`× further than the
//!   paper's `B`);
//! * TD staging full → rebuild the TD corner structure;
//! * TD reaches `B²` points → **TS reorganisation** of the children: rebuild
//!   every child's TS snapshot from current contents and discard the TD;
//! * metablock reaches `2B²` points → **level-II reorganisation**: an
//!   internal metablock keeps its top `B²` points and trickles the bottom
//!   `B²` into its children; a leaf splits in two;
//! * a parent reaching `2B` children → **branching split**: the subtree is
//!   rebuilt statically as two trees of half the leaves (at the root: the
//!   whole tree is rebuilt), costs amortised over the inserts that grew it.
//!
//! The hot path pins the search path's control blocks: one read on first
//! touch, one write per dirty block at the end (see
//! [`MetablockTree::pin_meta`]) — the paper's accounting, without the
//! one-I/O-per-access overcharge of re-reading a block it already holds.
//!
//! Reorganisations are **sortedness-preserving** (see
//! [`ccix_extmem::merge`]): level-I reads the x-sorted vertical run and
//! merges the sorted (≤ `k·B`-point) update delta into it instead of
//! re-sorting the whole block; a TS reorganisation merges each child's
//! y-sorted horizontal run with its sorted delta; a leaf split reads the
//! vertical run and partitions it in place; a branching split k-way merges
//! the subtree's vertical runs. Every read touches exactly the pages the
//! sort-based pipeline read (the two blockings hold the same point count),
//! so I/O counts are bit-identical — only the `O(n log n)` CPU re-sorts
//! disappear.

use ccix_extmem::{Point, SortedRun};

use super::{mark_dirty, ChildEntry, MbId, MetablockTree, TdInfo};
use crate::bbox::BBox;
use crate::corner::CornerStructure;

impl MetablockTree {
    /// Insert a point. Amortised `O(log_B n + (log_B n)²/B)` I/Os
    /// (Theorem 3.7); individual inserts spike when reorganisations fire.
    ///
    /// # Panics
    /// Panics if `p.y < p.x`. Ids must be unique across the tree's lifetime
    /// (checked only by the unbilled validator, not on this hot path).
    pub fn insert(&mut self, p: Point) {
        assert!(p.y >= p.x, "points must lie on or above the diagonal");
        self.len += 1;
        // While a background shrink job holds the tree frozen, the insert
        // diverts to the job's delta instead of routing.
        if !self.delta_insert(p) {
            match self.root {
                None => {
                    let id =
                        self.make_metablock(&SortedRun::from_sorted(vec![p]), Vec::new(), false);
                    self.root = Some(id);
                }
                Some(root) => self.insert_routed(Vec::new(), root, p),
            }
        }
        self.pump_reorg();
    }

    /// Route `p` downward from `start` (whose ancestors are `above`, root
    /// first), buffer it, and run any triggered reorganisations.
    pub(super) fn insert_routed(&mut self, above: Vec<MbId>, start: MbId, p: Point) {
        let mut path = above;
        let fix_from = path.len();
        let mut pinned: Vec<MbId> = Vec::new();
        let mut dirty: Vec<MbId> = Vec::new();
        if self.tuning.resident_root {
            // The root control block lives in dedicated main memory (see
            // [`crate::Tuning::resident_root`]): pinned for free.
            if let Some(root) = self.root {
                pinned.push(root);
            }
        }

        // Phase 1 — descend, pinning each control block on the way down.
        // An interior metablock whose mains a delete flood emptied is a
        // pure router (its buffer is empty and stays empty): landing there
        // would later rebuild a `y_lo_main` that no longer bounds its
        // descendants, so the descent passes it by. Unreachable on
        // insert-only workloads, where interior mains are never empty.
        let mut cur = start;
        loop {
            let meta = self.pin_meta(&mut pinned, cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_some_and(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            debug_assert!(
                meta.y_lo_main.is_some() || meta.n_upd == 0,
                "emptied interior metablock holds buffered points"
            );
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        // Phase 2 — refresh the caches the query relies on, along the newly
        // descended part of the path (ancestors above `start` already cover
        // `p`). Purely in-memory on pinned blocks; only actual changes make
        // a block dirty.
        for i in fix_from..path.len() {
            let a = path[i];
            let on_path_child = path.get(i + 1).copied().unwrap_or(target);
            let m = self.metas[a].as_mut().expect("pinned ancestor is live");
            let e = m
                .children
                .iter_mut()
                .find(|c| c.mb == on_path_child)
                .expect("descent child present in parent");
            let changed = if on_path_child == target {
                if e.upd_ymax.is_none_or(|y| p.ykey() > y) {
                    e.upd_ymax = Some(p.ykey());
                    true
                } else {
                    false
                }
            } else if e.sub_yhi.is_none_or(|y| p.ykey() > y) {
                e.sub_yhi = Some(p.ykey());
                true
            } else {
                false
            };
            if changed {
                mark_dirty(&mut dirty, a);
            }
        }

        // Phase 3 — append to the target's update buffer (pages fill
        // left-to-right, B at a time, so a non-multiple-of-B count means the
        // last page has room).
        let b = self.geo.b;
        let open_page = {
            let m = self.metas[target].as_ref().expect("target is live");
            (!m.n_upd.is_multiple_of(b)).then(|| *m.update.last().expect("partial page exists"))
        };
        match open_page {
            // In-place append: the same read-modify-write charge as the
            // separate read/write pair, without cloning the page buffer.
            Some(pg) => self.store.append(pg, p),
            None => {
                let pg = self.store.alloc(vec![p]);
                self.metas[target]
                    .as_mut()
                    .expect("target is live")
                    .update
                    .push(pg);
                // Mirror the new buffer page into the parent's packed entry
                // (in-memory: the parent is pinned on the descent path).
                if self.pack_h() > 0 {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            e.packed.upd_pages.push(pg);
                            mark_dirty(&mut dirty, par);
                        }
                    }
                }
            }
        }
        let update_full = {
            let m = self.metas[target].as_mut().expect("target is live");
            m.n_upd += 1;
            m.n_upd >= self.upd_cap_pages() * b
        };
        mark_dirty(&mut dirty, target);

        // Phase 4 — track the insert in the parent's TD structure.
        let parent = path.last().copied();
        let mut td_total = 0usize;
        let mut staged_full = false;
        if let Some(par) = parent {
            self.pin_meta(&mut pinned, par);
            let open_page = {
                let td = self.metas[par]
                    .as_ref()
                    .expect("parent is live")
                    .td
                    .as_ref();
                let td = td.expect("internal metablock carries a TD");
                (!td.n_staged.is_multiple_of(b))
                    .then(|| *td.staged.last().expect("partial page exists"))
            };
            match open_page {
                Some(pg) => self.store.append(pg, p),
                None => {
                    let pg = self.store.alloc(vec![p]);
                    self.metas[par]
                        .as_mut()
                        .expect("parent is live")
                        .td
                        .as_mut()
                        .expect("TD present")
                        .staged
                        .push(pg);
                }
            }
            let td = self.metas[par]
                .as_mut()
                .expect("parent is live")
                .td
                .as_mut()
                .expect("TD present");
            td.n_staged += 1;
            td_total = td.total() + td.del_total();
            staged_full = td.n_staged >= self.td_cap_pages() * b;
            mark_dirty(&mut dirty, par);
        }

        // Phase 5 — write back every dirty control block, then unpin.
        self.flush_dirty(&dirty);

        // Phase 6 — amortised triggers (reorganisations bill through the
        // ordinary take/put helpers; their cost is the amortised term).
        // With a finite reorg budget the charges are shunted into the debt
        // meter and bled a bounded amount per operation; the structure
        // still evolves bit-identically to the all-at-once behaviour.
        if let Some(par) = parent {
            if td_total >= self.cap() {
                self.with_shunt(|t| t.ts_reorg(par));
            } else if staged_full {
                self.with_shunt(|t| t.td_rebuild(par));
            }
        }
        if update_full && self.metas[target].is_some() {
            let n_main = self.with_shunt(|t| t.level_i(target, parent));
            if n_main >= 2 * self.cap() {
                self.with_shunt(|t| t.level_ii(target, &path));
            }
        }
    }

    /// Fold the staged points into the TD corner structure (`O(B)` I/Os,
    /// since the TD holds at most `B²` points). The old TD corner's
    /// vertical blocking is already x-sorted, so only the staged delta is
    /// sorted and galloped in — this fold fires every `k·B` inserts per
    /// parent, which made its full re-sort the single hottest CPU cost of
    /// an insert flood (see docs/tuning.md).
    ///
    /// With deletes present, the fold is also the **first reorganisation
    /// that sees both sides**: a tombstone whose insert landed in the TD
    /// annihilates it here; only tombstones whose insert predates the TD
    /// (they target the sibling snapshots) survive into the delete-side
    /// corner structure. Insert-only trees take the identical code path —
    /// both delete sides are empty and cost nothing.
    pub(crate) fn td_rebuild(&mut self, parent: MbId) {
        let mut m = self.take_meta(parent);
        let td = m.td.as_mut().expect("TD present");
        let built = match td.corner.take() {
            Some(c) => {
                let v = SortedRun::from_sorted(c.collect_points(&self.store));
                c.free(&mut self.store);
                v
            }
            None => SortedRun::new(),
        };
        let mut delta = Vec::new();
        for &pg in &td.staged {
            delta.extend_from_slice(self.store.read(pg));
        }
        self.store.free_run(&td.staged);
        td.staged.clear();
        td.n_staged = 0;

        let del_built = match td.del_corner.take() {
            Some(c) => {
                let v = SortedRun::from_sorted(c.collect_points(&self.store));
                c.free(&mut self.store);
                v
            }
            None => SortedRun::new(),
        };
        let mut del_delta = Vec::new();
        for &pg in &td.del_staged {
            del_delta.extend_from_slice(self.store.read(pg));
        }
        self.store.free_run(&td.del_staged);
        td.del_staged.clear();
        td.n_del_staged = 0;
        td.del_staged_buf.clear();
        let tombs = del_built.merge(SortedRun::from_unsorted(del_delta));

        let merged = built.merge(SortedRun::from_unsorted(delta));
        let (pts, unmatched) = merged.cancel(&tombs);
        td.n_built = pts.len();
        td.corner = (!pts.is_empty()).then(|| {
            CornerStructure::build_from_sorted(&mut self.store, &pts, self.tuning.corner_alpha)
        });
        let survivors = SortedRun::from_sorted(unmatched);
        td.n_del_built = survivors.len();
        td.del_corner = (!survivors.is_empty()).then(|| {
            CornerStructure::build_from_sorted(
                &mut self.store,
                &survivors,
                self.tuning.corner_alpha,
            )
        });
        self.put_meta(parent, m);
    }

    /// TS reorganisation at `parent`: rebuild every child's TS snapshot from
    /// its current mains + updates and discard the TD (both sides). `O(B²)`
    /// I/Os, once per `B²` inserts below `parent`. Each child's snapshot is
    /// its already-y-sorted horizontal run merged with its sorted delta —
    /// the same page reads as before, no full re-sort — minus the child's
    /// pending tombstones, so a fresh snapshot never resurrects a deleted
    /// point (which is what lets the TDdel side be discarded here).
    pub(crate) fn ts_reorg(&mut self, parent: MbId) {
        let child_ids: Vec<MbId> = self.meta(parent).children.iter().map(|c| c.mb).collect();
        let snapshots: Vec<Vec<Point>> = child_ids
            .iter()
            .map(|&c| {
                let cm = self.meta(c);
                let mains_y = self.read_run(&cm.horizontal);
                let delta = self.read_run(&cm.update);
                let tombs = self.read_run(&cm.tomb);
                ccix_extmem::merge_delta_y_desc_cancel(mains_y, delta, &tombs)
            })
            .collect();
        let mut m = self.take_meta(parent);
        if let Some(td) = m.td.as_mut() {
            if let Some(c) = td.corner.take() {
                c.free(&mut self.store);
            }
            self.store.free_run(&td.staged);
            if let Some(c) = td.del_corner.take() {
                c.free(&mut self.store);
            }
            self.store.free_run(&td.del_staged);
            *td = TdInfo::default();
        }
        self.put_meta(parent, m);
        self.install_ts_snapshots(parent, snapshots);
    }

    /// Level-I reorganisation: merge the update buffer into the mains,
    /// annihilate pending tombstones against the merged set, and rebuild
    /// all organisations. Returns the new main count.
    ///
    /// Sortedness-preserving: the x-sorted vertical run is read (the same
    /// page count as the horizontal run the sort-based pipeline read) and
    /// only the delta is sorted, then galloped in — one `O(n log n)` sort
    /// (the y-order) remains instead of two. Tombstone cancellation is one
    /// more galloping pass over the merged run ([`SortedRun::cancel`]); a
    /// tombstone that finds no match (its victim sat in a descendant of a
    /// metablock whose mains a delete flood emptied) is re-routed one level
    /// down, where the landing invariant holds again. Re-routes never
    /// restructure the tree (a delete can only shrink a metablock), so the
    /// caller's pinned path stays live.
    pub(crate) fn level_i(&mut self, mb: MbId, parent: Option<MbId>) -> usize {
        let mut m = self.take_meta(mb);
        let mains_x = SortedRun::from_sorted(self.read_run(&m.vertical));
        let delta = SortedRun::from_unsorted(self.read_run(&m.update));
        let tombs = SortedRun::from_unsorted(self.read_run(&m.tomb));
        self.store.free_run(&m.tomb);
        m.tomb.clear();
        m.tomb_buf.clear();
        self.tombs_pending -= m.n_tomb;
        m.n_tomb = 0;
        let (by_x, unmatched) = mains_x.merge(delta).cancel(&tombs);
        let mut by_y = by_x.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        self.rebuild_orgs(&mut m, &by_x, &by_y);
        let n_main = m.n_main;
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);
        if let Some(parent) = parent {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.upd_ymax = None;
                e.packed.upd_pages.clear();
                e.packed.tomb_pages.clear();
            }
            self.put_meta(parent, pm);
            self.sync_packed_entry(parent, mb);
        }
        for t in unmatched {
            self.reroute_tombstone(mb, t);
        }
        n_main
    }

    /// Replace a metablock's blockings (and corner structure) with ones
    /// built over the given pre-sorted orders, clearing the update buffer.
    /// Children/TS/TD survive. No sorting happens here: `by_x` is a typed
    /// invariant and `by_y` is debug-checked — callers merge, filter or
    /// sort whichever side actually needs it.
    fn rebuild_orgs(&mut self, m: &mut super::MetaBlock, by_x: &SortedRun, by_y: &[Point]) {
        debug_assert!(by_y.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        debug_assert_eq!(by_x.len(), by_y.len());
        self.store.free_run(&m.vertical);
        self.store.free_run(&m.horizontal);
        if let Some(c) = m.corner.take() {
            c.free(&mut self.store);
        }
        self.store.free_run(&m.update);
        m.update.clear();
        m.n_upd = 0;

        m.vertical = self.store.alloc_run(by_x);
        m.vkeys = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        m.hkeys = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        m.h_live = by_y.chunks(self.geo.b).map(|c| c.len() as u32).collect();
        m.horizontal = self.store.alloc_run(by_y);
        m.n_main = by_x.len();
        m.main_bbox = BBox::of_points(by_x);
        m.y_lo_main = by_y.last().map(Point::ykey);
        if let (Some(bb), Some(ylo)) = (m.main_bbox, m.y_lo_main) {
            if self.options.corner_structures && ylo.0 <= bb.xhi.0 && by_x.len() > self.geo.b {
                m.corner = Some(CornerStructure::build_shared(
                    &mut self.store,
                    by_x,
                    &m.vertical,
                    self.tuning.corner_alpha,
                ));
            }
        }
    }

    /// Level-II reorganisation of a metablock holding `≥ 2B²` points.
    pub(super) fn level_ii(&mut self, mb: MbId, path: &[MbId]) {
        let is_leaf = self.meta(mb).is_leaf();
        if is_leaf {
            self.split_leaf(mb, path);
        } else {
            self.push_down(mb, path);
        }
    }

    /// Internal level-II: keep the top `B²` points, trickle the bottom
    /// points into the children, and TS-reorganise this level. The y-split
    /// is a prefix of the already-y-sorted horizontal run, so only the
    /// kept top needs an x-sort.
    fn push_down(&mut self, mb: MbId, path: &[MbId]) {
        let mut m = self.take_meta(mb);
        debug_assert_eq!(m.n_upd, 0, "level-II runs after level-I");
        debug_assert_eq!(m.n_tomb, 0, "level-I cancelled all tombstones");
        let mut pts = self.read_run(&m.horizontal);
        debug_assert!(pts.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        let bottom = pts.split_off(self.cap());
        let top_y = pts;
        let top_x = SortedRun::from_unsorted(top_y.clone());
        self.rebuild_orgs(&mut m, &top_x, &top_y);
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);

        // Fix the parent's caches before trickling (cascades may restructure
        // this subtree), then refresh this level's TS snapshots.
        let bottom_yhi = bottom.iter().map(Point::ykey).max();
        if let Some(&parent) = path.last() {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.sub_yhi = match (e.sub_yhi, bottom_yhi) {
                    (a, None) => a,
                    (None, b) => b,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            }
            self.put_meta(parent, pm);
            self.sync_packed_entry(parent, mb);
            self.ts_reorg(parent);
        }

        // Trickle the bottom points down. If a cascading branching split
        // rebuilt any metablock on the path away, fall back to routing from
        // the root — the destination is identical, the path just re-descends.
        for p in bottom {
            let path_alive =
                self.metas[mb].is_some() && path.iter().all(|&a| self.metas[a].is_some());
            if path_alive {
                self.insert_routed(path.to_vec(), mb, p);
            } else {
                let root = self.root.expect("tree is nonempty");
                self.insert_routed(Vec::new(), root, p);
            }
        }
    }

    /// Leaf level-II: split into two leaves around the median x, grow the
    /// parent's branching factor, and TS-reorganise the level. The split
    /// reads the **vertical** run (same page count as the horizontal one)
    /// and partitions the existing x-sorted order in place — no re-sort.
    fn split_leaf(&mut self, mb: MbId, path: &[MbId]) {
        let meta = self.meta(mb);
        debug_assert_eq!(meta.n_upd, 0, "level-II runs after level-I");
        debug_assert_eq!(meta.n_tomb, 0, "level-I cancelled all tombstones");
        let pts = SortedRun::from_sorted(self.read_run(&meta.vertical));

        let Some(&parent) = path.last() else {
            // The root itself is a full leaf: grow the tree by a static
            // rebuild (it creates the new root + B children).
            self.free_metablock(mb);
            let (root, _, _) =
                self.build_slab(pts, super::build::FULL_RANGE.0, super::build::FULL_RANGE.1);
            self.root = Some(root);
            self.note_full_rebuild();
            return;
        };

        let half = pts.len() / 2;
        let (left, right) = pts.split_at(half);
        let median = right[0].xkey();
        self.free_metablock(mb);
        let left_bbox = BBox::of_points(&left);
        let right_bbox = BBox::of_points(&right);
        let left_id = self.make_metablock(&left, Vec::new(), false);
        let right_id = self.make_metablock(&right, Vec::new(), false);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == mb)
            .expect("split leaf present in parent");
        let old = pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: left_id,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: left_bbox,
                upd_ymax: None,
                sub_yhi: None,
                packed: super::PackedInfo::default(),
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: right_id,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: right_bbox,
                upd_ymax: None,
                sub_yhi: None,
                packed: super::PackedInfo::default(),
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.sync_packed_children(parent);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &path[..path.len() - 1]);
        }
    }

    /// Branching-factor split: statically rebuild the subtree at `x` as two
    /// trees of half the points each, replacing `x` in its parent. At the
    /// root, rebuild the whole tree (this is how its height grows). The
    /// subtree's points are gathered as a k-way merge of its x-sorted
    /// vertical runs (plus sorted deltas) — `O(n log k)` with gallop fast
    /// paths over the x-disjoint slabs, instead of an `O(n log n)` re-sort.
    fn branching_split(&mut self, x: MbId, ancestors: &[MbId]) {
        let pts = self.collect_subtree_sorted(x);
        self.free_subtree(x);

        let Some(&parent) = ancestors.last() else {
            let (root, _, _) =
                self.build_slab(pts, super::build::FULL_RANGE.0, super::build::FULL_RANGE.1);
            self.root = Some(root);
            self.note_full_rebuild();
            return;
        };

        let half = pts.len() / 2;
        let (left, right) = pts.split_at(half);
        let median = right[0].xkey();
        let old = {
            let pm = self.meta(parent);
            pm.children
                .iter()
                .find(|c| c.mb == x)
                .expect("split node present in parent")
                .clone()
        };
        let (lid, lmains, lsub) = self.build_slab(left, old.slab_lo, median);
        let (rid, rmains, rsub) = self.build_slab(right, median, old.slab_hi);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == x)
            .expect("split node present in parent");
        pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: lid,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: BBox::of_points(&lmains),
                upd_ymax: None,
                sub_yhi: lsub,
                packed: super::PackedInfo::default(),
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: rid,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: BBox::of_points(&rmains),
                upd_ymax: None,
                sub_yhi: rsub,
                packed: super::PackedInfo::default(),
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.sync_packed_children(parent);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &ancestors[..ancestors.len() - 1]);
        }
    }

    /// Every live point in the subtree (mains + update buffers, minus
    /// pending tombstones) as one x-sorted run, with charged reads (each
    /// metablock's vertical run — the same page count its horizontal run
    /// would cost — plus its update and tombstone pages). TS/TD/corner
    /// pages are copies and are deliberately skipped. A static rebuild is
    /// therefore "the first reorganisation that sees both" for every
    /// pending tombstone in the subtree: the landing invariant keeps each
    /// tombstone's victim in the same subtree, so cancellation is exact.
    pub(crate) fn collect_subtree_sorted(&self, mb: MbId) -> SortedRun {
        let mut runs = Vec::new();
        let mut tomb_runs = Vec::new();
        self.collect_subtree_runs(mb, &mut runs, &mut tomb_runs);
        let tombs = SortedRun::merge_many(tomb_runs);
        let (pts, unmatched) = SortedRun::merge_many(runs).cancel(&tombs);
        debug_assert!(
            unmatched.is_empty(),
            "tombstone without a victim in its subtree"
        );
        pts
    }

    fn collect_subtree_runs(
        &self,
        mb: MbId,
        runs: &mut Vec<SortedRun>,
        tomb_runs: &mut Vec<SortedRun>,
    ) {
        let meta = self.meta(mb);
        runs.push(SortedRun::from_sorted(self.read_run(&meta.vertical)));
        let delta = self.read_run(&meta.update);
        if !delta.is_empty() {
            runs.push(SortedRun::from_unsorted(delta));
        }
        let tombs = self.read_run(&meta.tomb);
        if !tombs.is_empty() {
            tomb_runs.push(SortedRun::from_unsorted(tombs));
        }
        let children: Vec<MbId> = meta.children.iter().map(|c| c.mb).collect();
        for c in children {
            self.collect_subtree_runs(c, runs, tomb_runs);
        }
    }

    /// Free a subtree's metablocks and every page they own.
    pub(crate) fn free_subtree(&mut self, mb: MbId) {
        let meta = self.free_metablock(mb);
        for c in meta.children {
            self.free_subtree(c.mb);
        }
    }
}
