//! Diagonal-corner search (Theorem 3.2, Figs. 15–17), pinned and packed.
//!
//! A diagonal-corner query anchored at `(q, q)` reports every point with
//! `x ≤ q ≤ y`. Walking from the root along the slab containing `q`, each
//! metablock the search touches falls into one of the four types of Fig. 16:
//!
//! * **Type I** — the vertical side `x = q` crosses it and all its mains
//!   have `y ≥ q`: scan its vertical blocking left-to-right up to `q` (at
//!   most one partly-useful block), then deal with its children.
//! * **Type II** — it contains the corner: answer with its corner structure
//!   (Lemma 3.1). Its descendants are strictly below the corner (routing
//!   invariant), so recursion stops.
//! * **Type III** — entirely inside the query: report everything via the
//!   horizontal blocking and recurse into every child.
//! * **Type IV** — crosses the bottom `y = q` with all x in range: scan its
//!   horizontal blocking top-down until `y < q` (at most one wasted block);
//!   its subtree is entirely below the query.
//!
//! Up to `B` children of a Type I node can be Type IV; examining each would
//! break the `O(t/B)` bound. The `TS` snapshot of the rightmost such child
//! decides in output-paying I/Os whether the left siblings are worth
//! individual visits (the "certificate" case, Fig. 17a — at least `B²`
//! answers exist) or can be answered straight from the snapshot plus the
//! parent's `TD` structure (the "crossing" case, Fig. 17b). Update blocks
//! are scanned wherever a metablock is examined (Lemma 3.5).
//!
//! **PR 3's read-path rework**, all billed through a [`ReadCtx`] so a
//! distinct block is paid once per operation:
//!
//! * every read goes through the per-operation pin, so a control or data
//!   page the operation already holds is never billed twice — and a whole
//!   *batch* of queries ([`MetablockTree::query_batch`]) shares one pin, so
//!   sorted query floods pay for the shared descent prefix once; with
//!   [`crate::Tuning::resident_root`], the root control block is
//!   memory-resident across operations like any storage engine's;
//! * straddling children are examined from the parent's **packed control
//!   blocks**: the entry mirrors the child's update-buffer run, TS-snapshot
//!   run and the top of its horizontal blocking, so a Type IV child is
//!   answered without touching its own control block (which is read only
//!   when the scan outgrows the mirrored prefix — amply output-backed);
//! * the `vkeys`/`hkeys` boundary keys and the corner structure's per-page
//!   tops skip crossing pages that cannot contain an answer, and the
//!   terminal Type II node picks the cheaper of the corner query and a
//!   filtered horizontal scan from exact directory-computed page counts.

use ccix_extmem::Point;

use super::{ChildEntry, MbId, MetaBlock, MetablockTree, ReadCtx, SPACE_META};
use crate::bbox::Key;

/// How a child relates to the query bottom `y = q` (Fig. 16), judged purely
/// from the parent's cached control information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChildClass {
    /// Mains entirely inside the query (Type III).
    Full,
    /// Mains straddle `y = q` (Type IV) or only update points may qualify.
    Partial,
    /// Empty mains (a delete flood cancelled them all) over a possibly
    /// live subtree: the routing invariant's curtain is gone, so the child
    /// takes a full recursive search instead of a Fig. 16 class. Only
    /// reachable after deletes; the occupancy shrink rebuilds it away.
    Recurse,
    /// Nothing in the child's metablock or subtree can qualify.
    Dead,
}

fn classify(c: &ChildEntry, q: i64) -> ChildClass {
    let qk: Key = (q, 0);
    let mains_full = c.main_bbox.is_some_and(|b| b.ylo >= qk);
    let mains_some = c.main_bbox.is_some_and(|b| b.yhi >= qk);
    let upd_some = c.upd_ymax.is_some_and(|y| y >= qk);
    let sub_some = c.sub_yhi.is_some_and(|y| y >= qk);
    // Routing invariant: sub_yhi < child's y_lo_main, so a live subtree
    // implies fully-live mains; the empty-mains degenerate state (deletes
    // cancelled every main) is the one exception and recurses instead.
    debug_assert!(
        !sub_some || mains_full || c.main_bbox.is_none(),
        "routing invariant violated: subtree above a partially-live metablock"
    );
    if mains_full && c.main_bbox.is_some() {
        ChildClass::Full
    } else if c.main_bbox.is_none() && sub_some {
        ChildClass::Recurse
    } else if mains_some || upd_some {
        ChildClass::Partial
    } else {
        ChildClass::Dead
    }
}

impl MetablockTree {
    /// Report every point with `x ≤ q ≤ y` (diagonal-corner query at `q`).
    pub fn query(&self, q: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(q, &mut out);
        out
    }

    /// As [`MetablockTree::query`], appending into `out`.
    /// `O(log_B n + t/B)` I/Os.
    pub fn query_into(&self, q: i64, out: &mut Vec<Point>) {
        let mut ctx = self.read_ctx();
        let start = out.len();
        self.query_ctx(&mut ctx, q, out);
        filter_deleted(&ctx, start, out);
    }

    /// Answer a whole batch of diagonal-corner queries as **one pinned
    /// operation**: the queries are processed in sorted order over a single
    /// read context, so every page of the shared descent prefix — control
    /// blocks, vertical-scan prefixes, TS snapshots, corner pages — is
    /// billed once per residency instead of once per query. Results are
    /// returned in input order.
    ///
    /// Cost: `O(log_B n + Σtᵢ/B)` I/Os for a flood of nearby query points
    /// (they share the whole path); fully scattered batches degrade
    /// gracefully to per-query cost.
    pub fn query_batch(&self, qs: &[i64]) -> Vec<Vec<Point>> {
        let mut outs = Vec::new();
        self.query_batch_into(qs, &mut outs);
        outs
    }

    /// As [`MetablockTree::query_batch`], reusing `outs` for the per-query
    /// result buffers: `outs` is resized to `qs.len()` and each slot is
    /// cleared before its answer is appended, so a steady-state caller
    /// (e.g. the serving layer answering floods of stabbing batches)
    /// allocates nothing. This is the canonical `_into` shape of the batch
    /// surface — see `docs/architecture.md` § Batched operations.
    pub fn query_batch_into(&self, qs: &[i64], outs: &mut Vec<Vec<Point>>) {
        outs.truncate(qs.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(qs.len(), Vec::new);
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_by_key(|&i| qs[i]);
        let mut ctx = self.read_ctx();
        for &i in &order {
            self.query_ctx(&mut ctx, qs[i], &mut outs[i]);
        }
        // Tombstone ids are globally deleted (pending deletes shadow their
        // unique victim), so the batch filters every answer against the
        // ids the whole operation discovered.
        filter_deleted_batch(&ctx, outs);
    }

    /// One query within an existing read context.
    pub(crate) fn query_ctx(&self, ctx: &mut ReadCtx, q: i64, out: &mut Vec<Point>) {
        if let Some(root) = self.root {
            self.process_path(ctx, root, q, out);
        }
        // While a background shrink job is in progress, the query consults
        // both sides: the (frozen or rebuilt) tree above, and the job's
        // delta of diverted updates and tombstones here.
        self.scan_delta_query(ctx, q, out);
    }

    /// Process a metablock on the search path (the slab containing `q`).
    fn process_path(&self, ctx: &mut ReadCtx, mb: MbId, q: i64, out: &mut Vec<Point>) {
        let meta = self.ctx_meta(ctx, mb);
        self.scan_update_pages(ctx, &meta.update, q, out);
        mirror_tombs(ctx, &meta.tomb_buf, q);
        let (Some(bbox), Some(ylo)) = (meta.main_bbox, meta.y_lo_main) else {
            // Empty mains: a fresh root, or a metablock a delete flood
            // emptied. Nothing of its own to report beyond the buffers,
            // but live descendants stay reachable.
            if !meta.is_leaf() {
                self.process_children(ctx, mb, meta, q, out);
            }
            return;
        };
        let qk: Key = (q, 0);
        if qk > bbox.yhi {
            // Everything (mains, and by the routing invariant the whole
            // subtree) lies below the query.
            return;
        }
        if qk <= ylo {
            // Type I: all mains are inside in y; take those with x ≤ q.
            self.vertical_scan_leq(ctx, meta, q, out);
            if !meta.is_leaf() {
                self.process_children(ctx, mb, meta, q, out);
            }
        } else {
            // The corner falls inside the metablock's y-range (Type II), or
            // to the right of all its mains. Descendants are strictly below
            // `ylo < (q,0)` by the routing invariant: recursion ends here.
            if bbox.all_x_at_most(q) {
                self.horizontal_scan_down(ctx, meta, q, out);
            } else if let Some(corner) = &meta.corner {
                // Cost-planned Type II: both routes' page counts are exact
                // functions of directory information — the corner query
                // from its per-page tops, the filtered horizontal scan from
                // `hkeys` — so take whichever is cheaper for this `q`. (The
                // corner directory rides in this metablock's control block,
                // which the operation already holds.)
                let h_cost = meta.hkeys.iter().take_while(|&&k| k >= qk).count();
                if h_cost <= corner.planned_cost(q) {
                    let qx: Key = (q, u64::MAX);
                    'h: for (i, &pg) in meta.horizontal.iter().enumerate() {
                        if meta.hkeys[i] < qk {
                            break;
                        }
                        if meta.h_live[i] == 0 {
                            // Every point on the page is shadowed by a
                            // pending tombstone: skip the read.
                            continue;
                        }
                        for p in self.ctx_read(ctx, pg) {
                            if p.ykey() < qk {
                                break 'h;
                            }
                            if p.xkey() <= qx {
                                out.push(*p);
                            }
                        }
                    }
                } else {
                    corner.query_pinned(&self.store, ctx, (SPACE_META, mb as u64), q, out);
                }
            } else {
                // Mains fit in one vertical block, or corner structures are
                // ablated (E13): filtered scan of the vertical blocking up
                // to the query's vertical side.
                debug_assert!(
                    !self.options.corner_structures || meta.n_main <= self.geo.b,
                    "missing corner structure"
                );
                let qx: Key = (q, u64::MAX);
                for (i, &pg) in meta.vertical.iter().enumerate() {
                    if meta.vkeys[i] > qx {
                        break;
                    }
                    let mut crossed = false;
                    for p in self.ctx_read(ctx, pg) {
                        if p.xkey() > qx {
                            crossed = true;
                            break;
                        }
                        if p.y >= q {
                            out.push(*p);
                        }
                    }
                    if crossed {
                        break;
                    }
                }
            }
        }
    }

    /// Handle the children of a Type I metablock (already loaded as `meta`):
    /// left siblings of the path child via the TS/TD protocol, then recurse
    /// into the path child.
    fn process_children(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        meta: &MetaBlock,
        q: i64,
        out: &mut Vec<Point>,
    ) {
        let children = &meta.children;
        let qx: Key = (q, u64::MAX);
        // Path child: the first whose slab extends beyond (q, MAX). All
        // earlier children hold only x ≤ q; all later ones only x > q.
        let path_idx = children.partition_point(|c| c.slab_hi <= qx);

        let mut full: Vec<usize> = Vec::new();
        let mut partial: Vec<usize> = Vec::new();
        for (i, c) in children[..path_idx.min(children.len())].iter().enumerate() {
            match classify(c, q) {
                ChildClass::Full => full.push(i),
                ChildClass::Partial => partial.push(i),
                // Empty-mains child over a live subtree (delete-flood
                // degenerate): no snapshot or TD covers its depths, so it
                // takes a full recursive search, outside the TS protocol.
                ChildClass::Recurse => self.process_path(ctx, c.mb, q, out),
                ChildClass::Dead => {}
            }
        }

        match partial.len() {
            0 => {
                for &i in &full {
                    self.report_all(ctx, children[i].mb, q, out);
                }
            }
            1 => {
                // A single straddling child: examine it (from the packed
                // summary when it suffices; ≤ 2 I/Os of slack otherwise,
                // charged to the path — one such node per level).
                self.examine_child(ctx, meta, partial[0], q, out);
                for &i in &full {
                    self.report_all(ctx, children[i].mb, q, out);
                }
            }
            _ if !self.options.ts_shortcut => {
                // Ablated (E13): examine every straddling sibling directly.
                for &i in &partial {
                    self.examine_child(ctx, meta, i, q, out);
                }
                for &i in &full {
                    self.report_all(ctx, children[i].mb, q, out);
                }
            }
            _ => {
                let cr = *partial.last().expect("nonempty");
                let covered = &partial[..partial.len() - 1];
                // TS(children[cr]) top-down. With packing on, the snapshot's
                // page run is mirrored in the parent's entry, so no control
                // block of cr is touched; otherwise read cr's meta for it.
                let (ts_pages, ts_truncated) = if self.pack_h() > 0 {
                    (
                        children[cr].packed.ts_pages.clone(),
                        children[cr].packed.ts_truncated,
                    )
                } else {
                    let cr_meta = self.ctx_meta(ctx, children[cr].mb);
                    let ts = cr_meta
                        .ts
                        .as_ref()
                        .expect("non-first child carries a TS snapshot");
                    (ts.pages.clone(), ts.truncated)
                };
                let mut scanned: Vec<Point> = Vec::new();
                let mut crossed = false;
                'ts: for &pg in &ts_pages {
                    for p in self.ctx_read(ctx, pg) {
                        if p.ykey() < (q, 0) {
                            crossed = true;
                            break 'ts;
                        }
                        scanned.push(*p);
                    }
                }
                let complete = crossed || !ts_truncated;
                if complete {
                    // Crossing case (Fig. 17b): the snapshot contains every
                    // left-sibling point with y ≥ q as of the last TS reorg;
                    // the TD structure holds everything since. Report both,
                    // restricted to the covered children's slabs.
                    let in_covered = |p: &Point| {
                        let k = p.xkey();
                        covered.iter().any(|&i| children[i].slab_contains(k))
                    };
                    out.extend(scanned.iter().filter(|p| in_covered(p)));
                    self.query_td(ctx, mb, meta, q, &in_covered, out);
                    self.examine_child(ctx, meta, cr, q, out);
                    for &i in &full {
                        self.report_all(ctx, children[i].mb, q, out);
                    }
                } else {
                    // Certificate case (Fig. 17a): the snapshot proves at
                    // least B² answers exist among the left siblings, so
                    // examining each individually is paid for by the output.
                    for &i in &partial {
                        self.examine_child(ctx, meta, i, q, out);
                    }
                    for &i in &full {
                        self.report_all(ctx, children[i].mb, q, out);
                    }
                }
            }
        }

        if let Some(path) = children.get(path_idx) {
            // Recurse only if the parent's cache says something can qualify.
            let qk: Key = (q, 0);
            let live = path.main_bbox.is_some_and(|b| b.yhi >= qk)
                || path.upd_ymax.is_some_and(|y| y >= qk)
                || path.sub_yhi.is_some_and(|y| y >= qk);
            if live {
                self.process_path(ctx, path.mb, q, out);
            }
        }
    }

    /// Query the TD structure of `meta` at `q`, keeping points that satisfy
    /// `filter`, and append to `out`. The TD corner's directory rides in
    /// the parent's control block, which the operation already holds.
    ///
    /// The TD's delete side is queried alongside: a snapshot-answered route
    /// reports points as of the last TS reorganisation, so tombstones
    /// younger than the snapshot — exactly what the delete side holds —
    /// must subtract from the answer. Matching is global by id (any id the
    /// delete side reports is a logically deleted point), so no slab
    /// filter applies.
    fn query_td(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        meta: &MetaBlock,
        q: i64,
        filter: &dyn Fn(&Point) -> bool,
        out: &mut Vec<Point>,
    ) {
        let Some(td) = &meta.td else { return };
        if let Some(corner) = &td.corner {
            let mut tmp = Vec::new();
            corner.query_pinned(&self.store, ctx, (SPACE_META, mb as u64), q, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| filter(p)));
        }
        for &pg in &td.staged {
            for p in self.ctx_read(ctx, pg) {
                if p.x <= q && p.y >= q && filter(p) {
                    out.push(*p);
                }
            }
        }
        if let Some(del) = &td.del_corner {
            let mut tmp = Vec::new();
            del.query_pinned(&self.store, ctx, (SPACE_META, mb as u64), q, &mut tmp);
            ctx.del.extend(tmp.into_iter().map(|t| t.id));
        }
        mirror_tombs(ctx, &td.del_staged_buf, q);
    }

    /// Report a Type III subtree: everything in the metablock, then its
    /// children by class. Children's slack I/Os are absorbed by this
    /// metablock's `B²` reported points.
    fn report_all(&self, ctx: &mut ReadCtx, mb: MbId, q: i64, out: &mut Vec<Point>) {
        let meta = self.ctx_meta(ctx, mb);
        self.scan_update_pages(ctx, &meta.update, q, out);
        mirror_tombs(ctx, &meta.tomb_buf, q);
        for (i, &pg) in meta.horizontal.iter().enumerate() {
            if meta.h_live[i] == 0 {
                // Fully-dead page: its tombstones (scanned above) shadow
                // every point on it, so the read would report nothing.
                continue;
            }
            for p in self.ctx_read(ctx, pg) {
                debug_assert!(p.y >= q, "type III metablock holds a point below q");
                out.push(*p);
            }
        }
        for i in 0..meta.children.len() {
            match classify(&meta.children[i], q) {
                ChildClass::Full => self.report_all(ctx, meta.children[i].mb, q, out),
                ChildClass::Partial => self.examine_child(ctx, meta, i, q, out),
                ChildClass::Recurse => self.process_path(ctx, meta.children[i].mb, q, out),
                ChildClass::Dead => {}
            }
        }
    }

    /// Examine child `idx` of `parent` — a Type IV (or update-only)
    /// metablock. By the routing invariant its subtree is entirely below
    /// `q`, so only its update buffer and the top of its mains matter.
    ///
    /// With packing on, the whole examination runs off the parent's control
    /// information: the entry's update-page mirror and its mirror of the
    /// top of the child's horizontal blocking. The child's own control
    /// block is read only when the scan outgrows the mirrored prefix — by
    /// which point `pack_h_pages · B` reported answers have paid for it.
    fn examine_child(
        &self,
        ctx: &mut ReadCtx,
        parent: &MetaBlock,
        idx: usize,
        q: i64,
        out: &mut Vec<Point>,
    ) {
        let entry = &parent.children[idx];
        if self.pack_h() == 0 {
            let meta = self.ctx_meta(ctx, entry.mb);
            self.scan_update_pages(ctx, &meta.update, q, out);
            mirror_tombs(ctx, &meta.tomb_buf, q);
            if meta.main_bbox.is_some_and(|b| b.yhi >= (q, 0)) {
                self.horizontal_scan_down(ctx, meta, q, out);
            }
            debug_assert_no_live_children(meta, q);
            return;
        }
        let qk: Key = (q, 0);
        if !entry.packed.tomb_pages.is_empty() {
            // The child has pending deletes: one read of its control block
            // fetches the tombstone mirror — never more I/Os than the
            // page-by-page scan it replaces.
            let child = self.ctx_meta(ctx, entry.mb);
            mirror_tombs(ctx, &child.tomb_buf, q);
        }
        if entry.upd_ymax.is_some_and(|y| y >= qk) {
            self.scan_update_pages(ctx, &entry.packed.upd_pages, q, out);
        }
        if entry.main_bbox.is_some_and(|b| b.yhi >= qk) {
            let mut crossed = false;
            for (i, &pg) in entry.packed.h_pages.iter().enumerate() {
                if entry.packed.h_tops[i] < qk {
                    crossed = true;
                    break;
                }
                if entry.packed.h_live.get(i) == Some(&0) {
                    // The mirror says every point on the page is shadowed:
                    // skip the read, later pages can still qualify.
                    continue;
                }
                for p in self.ctx_read(ctx, pg) {
                    if p.ykey() < qk {
                        crossed = true;
                        break;
                    }
                    out.push(*p);
                }
                if crossed {
                    break;
                }
            }
            if !crossed && entry.packed.h_more {
                // The whole mirrored prefix qualified: continue from the
                // child's control block (amply output-backed).
                let meta = self.ctx_meta(ctx, entry.mb);
                let skip = entry.packed.h_pages.len();
                for (i, &pg) in meta.horizontal.iter().enumerate().skip(skip) {
                    if meta.hkeys[i] < qk {
                        break;
                    }
                    if meta.h_live[i] == 0 {
                        continue;
                    }
                    let mut done = false;
                    for p in self.ctx_read(ctx, pg) {
                        if p.ykey() < qk {
                            done = true;
                            break;
                        }
                        out.push(*p);
                    }
                    if done {
                        break;
                    }
                }
                debug_assert_no_live_children(meta, q);
            }
        }
    }

    /// Scan a run of update-buffer pages, reporting points inside the
    /// query. One I/O per pending page (Lemma 3.5, generalised to the
    /// batched buffer).
    fn scan_update_pages(
        &self,
        ctx: &mut ReadCtx,
        pages: &[ccix_extmem::PageId],
        q: i64,
        out: &mut Vec<Point>,
    ) {
        for &pg in pages {
            for p in self.ctx_read(ctx, pg) {
                if p.x <= q && p.y >= q {
                    out.push(*p);
                }
            }
        }
    }

    /// Left-to-right vertical scan reporting points with `x ≤ q` (callers
    /// guarantee `y ≥ q` for all mains). The cached page-boundary keys stop
    /// the scan before a page that cannot contain an answer, so every page
    /// read reports at least one point.
    fn vertical_scan_leq(&self, ctx: &mut ReadCtx, meta: &MetaBlock, q: i64, out: &mut Vec<Point>) {
        let qx: Key = (q, u64::MAX);
        for (i, &pg) in meta.vertical.iter().enumerate() {
            if meta.vkeys[i] > qx {
                break;
            }
            let mut crossed = false;
            for p in self.ctx_read(ctx, pg) {
                if p.xkey() > qx {
                    crossed = true;
                    break;
                }
                debug_assert!(p.y >= q);
                out.push(*p);
            }
            if crossed {
                break;
            }
        }
    }

    /// Top-down horizontal scan reporting points with `y ≥ q` (callers
    /// guarantee `x ≤ q`). The cached page-top keys skip a crossing page
    /// with no answers.
    fn horizontal_scan_down(
        &self,
        ctx: &mut ReadCtx,
        meta: &MetaBlock,
        q: i64,
        out: &mut Vec<Point>,
    ) {
        for (i, &pg) in meta.horizontal.iter().enumerate() {
            if meta.hkeys[i] < (q, 0) {
                break;
            }
            if meta.h_live[i] == 0 {
                // Fully-dead page (a delete flood shadowed every point on
                // it): nothing to report, skip the read and keep scanning —
                // later pages can still hold live answers.
                continue;
            }
            let mut crossed = false;
            for p in self.ctx_read(ctx, pg) {
                if p.ykey() < (q, 0) {
                    crossed = true;
                    break;
                }
                debug_assert!(p.x <= q, "horizontal scan point right of query");
                out.push(*p);
            }
            if crossed {
                break;
            }
        }
    }

    // ---- one-dimensional x-range reporting -------------------------------

    /// Report every stored point with `x1 ≤ x ≤ x2`, in `O(log_B n + t/B)`
    /// I/Os.
    ///
    /// The slab decomposition already orders the tree by x, so the
    /// metablock tree doubles as a one-dimensional index on left endpoints:
    /// at most two boundary slabs per level are descended (≤ 2 partly-useful
    /// vertical blocks each, located via the cached page-boundary keys),
    /// and every slab strictly inside the range is reported wholesale.
    /// This is what lets the interval index answer the left-endpoint range
    /// of an intersection query without a second copy of the data in a
    /// B+-tree.
    pub fn x_range(&self, x1: i64, x2: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.x_range_into(x1, x2, &mut out);
        out
    }

    /// As [`MetablockTree::x_range`], appending into `out`.
    pub fn x_range_into(&self, x1: i64, x2: i64, out: &mut Vec<Point>) {
        let mut ctx = self.read_ctx();
        let start = out.len();
        self.x_range_ctx(&mut ctx, x1, x2, out);
        filter_deleted(&ctx, start, out);
    }

    /// As [`MetablockTree::x_range_into`] within an existing read context.
    pub(crate) fn x_range_ctx(&self, ctx: &mut ReadCtx, x1: i64, x2: i64, out: &mut Vec<Point>) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.x_range_rec(ctx, root, (x1, u64::MIN), (x2, u64::MAX), out);
        }
        self.scan_delta_x_range(ctx, x1, x2, out);
    }

    /// Process a metablock on an x-range boundary path.
    fn x_range_rec(&self, ctx: &mut ReadCtx, mb: MbId, a1k: Key, a2k: Key, out: &mut Vec<Point>) {
        let meta = self.ctx_meta(ctx, mb);
        for &pg in &meta.update {
            for p in self.ctx_read(ctx, pg) {
                let k = p.xkey();
                if k >= a1k && k <= a2k {
                    out.push(*p);
                }
            }
        }
        mirror_tombs_x(ctx, &meta.tomb_buf, a1k, a2k);
        // Mains inside the range, starting from the page located via the
        // boundary keys (≤ 2 slack blocks).
        let start = meta.vkeys.partition_point(|&k| k <= a1k).saturating_sub(1);
        'vertical: for (i, &pg) in meta.vertical.iter().enumerate().skip(start) {
            if meta.vkeys[i] > a2k {
                break;
            }
            for p in self.ctx_read(ctx, pg) {
                let k = p.xkey();
                if k > a2k {
                    break 'vertical;
                }
                if k >= a1k {
                    out.push(*p);
                }
            }
        }
        // Children: recurse into the ≤ 2 boundary slabs, report the middles
        // (slab ⊆ range) wholesale.
        let children = &meta.children;
        let i1 = children.partition_point(|c| c.slab_hi <= a1k);
        let i2 = children.partition_point(|c| c.slab_hi <= a2k);
        for c in children.iter().take(i2 + 1).skip(i1) {
            if c.slab_lo > a2k {
                break;
            }
            if c.slab_lo >= a1k && c.slab_hi <= a2k {
                self.x_report_all(ctx, c.mb, out);
            } else {
                self.x_range_rec(ctx, c.mb, a1k, a2k, out);
            }
        }
    }

    /// Report a subtree whose slab lies entirely inside the x-range: every
    /// main and buffered point, output-paying I/Os only.
    fn x_report_all(&self, ctx: &mut ReadCtx, mb: MbId, out: &mut Vec<Point>) {
        let meta = self.ctx_meta(ctx, mb);
        for (i, &pg) in meta.horizontal.iter().enumerate() {
            if meta.h_live[i] == 0 {
                continue; // fully-dead page, shadowed by scanned tombstones
            }
            out.extend_from_slice(self.ctx_read(ctx, pg));
        }
        for &pg in &meta.update {
            out.extend_from_slice(self.ctx_read(ctx, pg));
        }
        ctx.del.extend(meta.tomb_buf.iter().map(|t| t.id));
        for i in 0..meta.children.len() {
            self.x_report_all(ctx, meta.children[i].mb, out);
        }
    }
}

/// Record the ids of pending tombstones the stabbing predicate selects,
/// straight from a control-block mirror — zero I/Os (a tombstone is an
/// exact copy of its victim, so a victim the query would report has a
/// tombstone the same predicate selects; see `MetaBlock::tomb_buf`).
pub(crate) fn mirror_tombs(ctx: &mut ReadCtx, tombs: &[Point], q: i64) {
    ctx.del
        .extend(tombs.iter().filter(|t| t.x <= q && t.y >= q).map(|t| t.id));
}

/// As [`mirror_tombs`], selecting tombstones by the x-range predicate.
fn mirror_tombs_x(ctx: &mut ReadCtx, tombs: &[Point], a1k: Key, a2k: Key) {
    ctx.del.extend(
        tombs
            .iter()
            .filter(|t| t.xkey() >= a1k && t.xkey() <= a2k)
            .map(|t| t.id),
    );
}

/// Filter the slice of `out` appended since `start` against the tombstone
/// ids the operation discovered. Free when no tombstone was seen — the
/// insert-only fast path.
pub(crate) fn filter_deleted(ctx: &ReadCtx, start: usize, out: &mut Vec<Point>) {
    if ctx.del.is_empty() {
        return;
    }
    let dead: std::collections::HashSet<u64> = ctx.del.iter().copied().collect();
    let tail = out.split_off(start);
    out.extend(tail.into_iter().filter(|p| !dead.contains(&p.id)));
}

/// As [`filter_deleted`], over every answer of a batch — the dead-id set
/// is built once for the whole operation.
pub(crate) fn filter_deleted_batch(ctx: &ReadCtx, outs: &mut [Vec<Point>]) {
    if ctx.del.is_empty() {
        return;
    }
    let dead: std::collections::HashSet<u64> = ctx.del.iter().copied().collect();
    for out in outs {
        out.retain(|p| !dead.contains(&p.id));
    }
}

/// Debug check: a partial metablock's children are all dead (routing
/// invariant).
fn debug_assert_no_live_children(meta: &MetaBlock, q: i64) {
    debug_assert!(
        meta.children
            .iter()
            .all(|c| classify(c, q) == ChildClass::Dead),
        "partial metablock with a live child"
    );
    let _ = (meta, q);
}
