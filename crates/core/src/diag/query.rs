//! Diagonal-corner search (Theorem 3.2, Figs. 15–17).
//!
//! A diagonal-corner query anchored at `(q, q)` reports every point with
//! `x ≤ q ≤ y`. Walking from the root along the slab containing `q`, each
//! metablock the search touches falls into one of the four types of Fig. 16:
//!
//! * **Type I** — the vertical side `x = q` crosses it and all its mains
//!   have `y ≥ q`: scan its vertical blocking left-to-right up to `q` (at
//!   most one partly-useful block), then deal with its children.
//! * **Type II** — it contains the corner: answer with its corner structure
//!   (Lemma 3.1). Its descendants are strictly below the corner (routing
//!   invariant), so recursion stops.
//! * **Type III** — entirely inside the query: report everything via the
//!   horizontal blocking and recurse into every child.
//! * **Type IV** — crosses the bottom `y = q` with all x in range: scan its
//!   horizontal blocking top-down until `y < q` (at most one wasted block);
//!   its subtree is entirely below the query.
//!
//! Up to `B` children of a Type I node can be Type IV; examining each would
//! break the `O(t/B)` bound. The `TS` snapshot of the rightmost such child
//! decides in output-paying I/Os whether the left siblings are worth
//! individual visits (the "certificate" case, Fig. 17a — at least `B²`
//! answers exist) or can be answered straight from the snapshot plus the
//! parent's `TD` structure (the "crossing" case, Fig. 17b). Update blocks
//! are scanned wherever a metablock is examined (Lemma 3.5).

use ccix_extmem::Point;

use super::{ChildEntry, MbId, MetaBlock, MetablockTree};
use crate::bbox::Key;

/// How a child relates to the query bottom `y = q` (Fig. 16), judged purely
/// from the parent's cached control information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChildClass {
    /// Mains entirely inside the query (Type III).
    Full,
    /// Mains straddle `y = q` (Type IV) or only update points may qualify.
    Partial,
    /// Nothing in the child's metablock or subtree can qualify.
    Dead,
}

fn classify(c: &ChildEntry, q: i64) -> ChildClass {
    let qk: Key = (q, 0);
    let mains_full = c.main_bbox.is_some_and(|b| b.ylo >= qk);
    let mains_some = c.main_bbox.is_some_and(|b| b.yhi >= qk);
    let upd_some = c.upd_ymax.is_some_and(|y| y >= qk);
    // Routing invariant: sub_yhi < child's y_lo_main, so a live subtree
    // implies fully-live mains; it never creates a class of its own.
    debug_assert!(
        c.sub_yhi.is_none_or(|y| y < qk) || mains_full,
        "routing invariant violated: subtree above a partially-live metablock"
    );
    if mains_full && c.main_bbox.is_some() {
        ChildClass::Full
    } else if mains_some || upd_some {
        ChildClass::Partial
    } else {
        ChildClass::Dead
    }
}

impl MetablockTree {
    /// Report every point with `x ≤ q ≤ y` (diagonal-corner query at `q`).
    pub fn query(&self, q: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(q, &mut out);
        out
    }

    /// As [`MetablockTree::query`], appending into `out`.
    /// `O(log_B n + t/B)` I/Os.
    pub fn query_into(&self, q: i64, out: &mut Vec<Point>) {
        if let Some(root) = self.root {
            self.process_path(root, q, out);
        }
    }

    /// Process a metablock on the search path (the slab containing `q`).
    fn process_path(&self, mb: MbId, q: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.scan_update(meta, q, out);
        let (Some(bbox), Some(ylo)) = (meta.main_bbox, meta.y_lo_main) else {
            return; // empty metablock: only possible for a fresh root
        };
        let qk: Key = (q, 0);
        if qk > bbox.yhi {
            // Everything (mains, and by the routing invariant the whole
            // subtree) lies below the query.
            return;
        }
        if qk <= ylo {
            // Type I: all mains are inside in y; take those with x ≤ q.
            self.vertical_scan_leq(meta, q, out);
            if !meta.is_leaf() {
                self.process_children(mb, meta, q, out);
            }
        } else {
            // The corner falls inside the metablock's y-range (Type II), or
            // to the right of all its mains. Descendants are strictly below
            // `ylo < (q,0)` by the routing invariant: recursion ends here.
            if bbox.all_x_at_most(q) {
                self.horizontal_scan_down(&meta.horizontal, q, out);
            } else if let Some(corner) = &meta.corner {
                corner.query_into(&self.store, q, out);
            } else {
                // Mains fit in one vertical block, or corner structures are
                // ablated (E13): filtered scan of the vertical blocking up
                // to the query's vertical side.
                debug_assert!(
                    !self.options.corner_structures || meta.n_main <= self.geo.b,
                    "missing corner structure"
                );
                let qx: Key = (q, u64::MAX);
                for &pg in &meta.vertical {
                    let mut crossed = false;
                    for p in self.store.read(pg) {
                        if p.xkey() > qx {
                            crossed = true;
                            break;
                        }
                        if p.y >= q {
                            out.push(*p);
                        }
                    }
                    if crossed {
                        break;
                    }
                }
            }
        }
    }

    /// Handle the children of a Type I metablock `mb` (already loaded as
    /// `meta`): left siblings of the path child via the TS/TD protocol, then
    /// recurse into the path child.
    fn process_children(&self, _mb: MbId, meta: &MetaBlock, q: i64, out: &mut Vec<Point>) {
        let children = &meta.children;
        let qx: Key = (q, u64::MAX);
        // Path child: the first whose slab extends beyond (q, MAX). All
        // earlier children hold only x ≤ q; all later ones only x > q.
        let path_idx = children.partition_point(|c| c.slab_hi <= qx);

        let mut full: Vec<usize> = Vec::new();
        let mut partial: Vec<usize> = Vec::new();
        for (i, c) in children[..path_idx.min(children.len())].iter().enumerate() {
            match classify(c, q) {
                ChildClass::Full => full.push(i),
                ChildClass::Partial => partial.push(i),
                ChildClass::Dead => {}
            }
        }

        match partial.len() {
            0 => {
                for &i in &full {
                    self.report_all(children[i].mb, q, out);
                }
            }
            1 => {
                // A single straddling child: examine it directly (≤ 2 I/Os
                // of slack, charged to the path — one such node per level).
                self.examine_partial(children[partial[0]].mb, q, out);
                for &i in &full {
                    self.report_all(children[i].mb, q, out);
                }
            }
            _ if !self.options.ts_shortcut => {
                // Ablated (E13): examine every straddling sibling directly.
                for &i in &partial {
                    self.examine_partial(children[i].mb, q, out);
                }
                for &i in &full {
                    self.report_all(children[i].mb, q, out);
                }
            }
            _ => {
                let cr = *partial.last().expect("nonempty");
                let covered = &partial[..partial.len() - 1];
                // Read TS(children[cr]) top-down; one meta read for cr also
                // serves its individual examination below.
                let cr_meta = self.meta(children[cr].mb);
                let ts = cr_meta
                    .ts
                    .as_ref()
                    .expect("non-first child carries a TS snapshot");
                let mut scanned: Vec<Point> = Vec::new();
                let mut crossed = false;
                'ts: for &pg in &ts.pages {
                    for p in self.store.read(pg) {
                        if p.ykey() < (q, 0) {
                            crossed = true;
                            break 'ts;
                        }
                        scanned.push(*p);
                    }
                }
                let complete = crossed || !ts.truncated;
                if complete {
                    // Crossing case (Fig. 17b): the snapshot contains every
                    // left-sibling point with y ≥ q as of the last TS reorg;
                    // the TD structure holds everything since. Report both,
                    // restricted to the covered children's slabs.
                    let in_covered = |p: &Point| {
                        let k = p.xkey();
                        covered.iter().any(|&i| children[i].slab_contains(k))
                    };
                    out.extend(scanned.iter().filter(|p| in_covered(p)));
                    self.query_td(meta, q, &in_covered, out);
                    self.examine_partial_loaded(cr_meta, q, out);
                    for &i in &full {
                        self.report_all(children[i].mb, q, out);
                    }
                } else {
                    // Certificate case (Fig. 17a): the snapshot proves at
                    // least B² answers exist among the left siblings, so
                    // examining each individually is paid for by the output.
                    self.examine_partial_loaded(cr_meta, q, out);
                    for &i in covered {
                        self.examine_partial(children[i].mb, q, out);
                    }
                    for &i in &full {
                        self.report_all(children[i].mb, q, out);
                    }
                }
            }
        }

        if let Some(path) = children.get(path_idx) {
            // Recurse only if the parent's cache says something can qualify.
            let qk: Key = (q, 0);
            let live = path.main_bbox.is_some_and(|b| b.yhi >= qk)
                || path.upd_ymax.is_some_and(|y| y >= qk)
                || path.sub_yhi.is_some_and(|y| y >= qk);
            if live {
                self.process_path(path.mb, q, out);
            }
        }
    }

    /// Query the TD structure of `meta` at `q`, keeping points that satisfy
    /// `filter`, and append to `out`.
    fn query_td(
        &self,
        meta: &MetaBlock,
        q: i64,
        filter: &dyn Fn(&Point) -> bool,
        out: &mut Vec<Point>,
    ) {
        let Some(td) = &meta.td else { return };
        if let Some(corner) = &td.corner {
            let mut tmp = Vec::new();
            corner.query_into(&self.store, q, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| filter(p)));
        }
        for &pg in &td.staged {
            for p in self.store.read(pg) {
                if p.x <= q && p.y >= q && filter(p) {
                    out.push(*p);
                }
            }
        }
    }

    /// Report a Type III subtree: everything in the metablock, then its
    /// children by class. Children's slack I/Os are absorbed by this
    /// metablock's `B²` reported points.
    fn report_all(&self, mb: MbId, q: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.scan_update(meta, q, out);
        for &pg in &meta.horizontal {
            for p in self.store.read(pg) {
                debug_assert!(p.y >= q, "type III metablock holds a point below q");
                out.push(*p);
            }
        }
        for c in &meta.children {
            match classify(c, q) {
                ChildClass::Full => self.report_all(c.mb, q, out),
                ChildClass::Partial => self.examine_partial(c.mb, q, out),
                ChildClass::Dead => {}
            }
        }
    }

    /// Examine a Type IV (or update-only) metablock: horizontal scan down to
    /// `q` plus the update block. By the routing invariant its subtree is
    /// entirely below `q`.
    fn examine_partial(&self, mb: MbId, q: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.examine_partial_loaded(meta, q, out);
    }

    fn examine_partial_loaded(&self, meta: &MetaBlock, q: i64, out: &mut Vec<Point>) {
        self.scan_update(meta, q, out);
        if meta.main_bbox.is_some_and(|b| b.yhi >= (q, 0)) {
            self.horizontal_scan_down(&meta.horizontal, q, out);
        }
        debug_assert!(
            meta.children
                .iter()
                .all(|c| classify(c, q) == ChildClass::Dead),
            "partial metablock with a live child"
        );
    }

    /// Scan the update buffer, reporting points inside the query. One I/O
    /// per pending page (Lemma 3.5, generalised to the batched buffer).
    fn scan_update(&self, meta: &MetaBlock, q: i64, out: &mut Vec<Point>) {
        for &pg in &meta.update {
            for p in self.store.read(pg) {
                if p.x <= q && p.y >= q {
                    out.push(*p);
                }
            }
        }
    }

    /// Left-to-right vertical scan reporting points with `x ≤ q` (callers
    /// guarantee `y ≥ q` for all mains). At most one partly-useful block.
    fn vertical_scan_leq(&self, meta: &MetaBlock, q: i64, out: &mut Vec<Point>) {
        let qx: Key = (q, u64::MAX);
        for &pg in &meta.vertical {
            let mut crossed = false;
            for p in self.store.read(pg) {
                if p.xkey() > qx {
                    crossed = true;
                    break;
                }
                debug_assert!(p.y >= q);
                out.push(*p);
            }
            if crossed {
                break;
            }
        }
    }

    /// Top-down horizontal scan reporting points with `y ≥ q` (callers
    /// guarantee `x ≤ q`). At most one wasted block.
    fn horizontal_scan_down(&self, pages: &[ccix_extmem::PageId], q: i64, out: &mut Vec<Point>) {
        'scan: for &pg in pages {
            for p in self.store.read(pg) {
                if p.ykey() < (q, 0) {
                    break 'scan;
                }
                debug_assert!(p.x <= q, "horizontal scan point right of query");
                out.push(*p);
            }
        }
    }

    // ---- one-dimensional x-range reporting -------------------------------

    /// Report every stored point with `x1 ≤ x ≤ x2`, in `O(log_B n + t/B)`
    /// I/Os.
    ///
    /// The slab decomposition already orders the tree by x, so the
    /// metablock tree doubles as a one-dimensional index on left endpoints:
    /// at most two boundary slabs per level are descended (≤ 2 partly-useful
    /// vertical blocks each, located via the cached page-boundary keys),
    /// and every slab strictly inside the range is reported wholesale.
    /// This is what lets the interval index answer the left-endpoint range
    /// of an intersection query without a second copy of the data in a
    /// B+-tree.
    pub fn x_range_into(&self, x1: i64, x2: i64, out: &mut Vec<Point>) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.x_range_rec(root, (x1, u64::MIN), (x2, u64::MAX), out);
        }
    }

    /// Process a metablock on an x-range boundary path.
    fn x_range_rec(&self, mb: MbId, a1k: Key, a2k: Key, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        for &pg in &meta.update {
            for p in self.store.read(pg) {
                let k = p.xkey();
                if k >= a1k && k <= a2k {
                    out.push(*p);
                }
            }
        }
        // Mains inside the range, starting from the page located via the
        // boundary keys (≤ 2 slack blocks).
        let start = meta.vkeys.partition_point(|&k| k <= a1k).saturating_sub(1);
        'vertical: for &pg in meta.vertical.iter().skip(start) {
            for p in self.store.read(pg) {
                let k = p.xkey();
                if k > a2k {
                    break 'vertical;
                }
                if k >= a1k {
                    out.push(*p);
                }
            }
        }
        // Children: recurse into the ≤ 2 boundary slabs, report the middles
        // (slab ⊆ range) wholesale.
        let children = &meta.children;
        let i1 = children.partition_point(|c| c.slab_hi <= a1k);
        let i2 = children.partition_point(|c| c.slab_hi <= a2k);
        for c in children.iter().take(i2 + 1).skip(i1) {
            if c.slab_lo > a2k {
                break;
            }
            if c.slab_lo >= a1k && c.slab_hi <= a2k {
                self.x_report_all(c.mb, out);
            } else {
                self.x_range_rec(c.mb, a1k, a2k, out);
            }
        }
    }

    /// Report a subtree whose slab lies entirely inside the x-range: every
    /// main and buffered point, output-paying I/Os only.
    fn x_report_all(&self, mb: MbId, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        for &pg in meta.horizontal.iter().chain(&meta.update) {
            out.extend_from_slice(self.store.read(pg));
        }
        for c in &meta.children {
            self.x_report_all(c.mb, out);
        }
    }
}
