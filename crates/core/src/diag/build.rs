//! Static construction of the metablock tree (§3.1, Fig. 8).
//!
//! The root metablock takes the `B²` points with the largest `y`; the rest
//! are divided by `x` into `B` slabs of near-equal size, one recursive tree
//! each, until a slab fits in a single metablock. Alongside the recursive
//! shape we build, per metablock: the vertical and horizontal blockings, the
//! corner structure where the region can contain a query corner, and the
//! `TS` snapshots of every non-first child.
//!
//! The build is **sort-once, arena-backed and two-phase**. The input is
//! x-sorted a single time into a [`SortedRun`] — from there sortedness is a
//! *typed* invariant, and the recursion works on disjoint subslices of that
//! one buffer. **Phase 1 (planning)** is a pure function over the arena:
//! selecting a metablock's mains is an `O(n)` in-place stable partition
//! around a `select_nth` threshold, and each node's y-order and corner
//! selection ([`CornerPlan`]) are computed with no store access — so
//! sibling slabs plan in parallel over [`crate::par::run_parallel`]
//! ([`crate::Tuning::build_threads`]). **Phase 2 (materialisation)** walks
//! the plan on the calling thread, allocating pages and charging I/O
//! exactly as a sequential build would; the `TS` snapshots of a level reuse
//! the children's planned y-orders and a capped incremental merge instead
//! of re-sorting a growing prefix per child.

use ccix_extmem::{merge_y_desc_capped, Geometry, IoCounter, Point, SortedRun};

use super::{ChildEntry, MbId, MetaBlock, MetablockTree, TdInfo, TsInfo};
use crate::bbox::{BBox, Key};
use crate::corner::CornerPlan;
use crate::par::{run_parallel, PAR_THRESHOLD};

/// The whole key space: the root's slab.
pub(crate) const FULL_RANGE: (Key, Key) = ((i64::MIN, 0), (i64::MAX, u64::MAX));

/// Pure planning context: everything the slab recursion needs besides the
/// arena itself. Shared immutably across planning threads.
struct PlanCtx {
    b: usize,
    cap: usize,
    corner_structures: bool,
    alpha: usize,
}

/// One planned metablock: contents and per-node organisations decided, no
/// page allocated, no I/O charged yet.
pub(crate) struct SlabPlan {
    /// Mains, x-sorted (the typed invariant the organisations build on).
    mains_x: SortedRun,
    /// Mains, y-descending.
    mains_y: Vec<Point>,
    /// Planned corner structure, when the region can contain a corner.
    corner: Option<CornerPlan>,
    children: Vec<SlabPlan>,
    slab_lo: Key,
    slab_hi: Key,
    /// Largest `(y, id)` strictly below this metablock (for the parent's
    /// `sub_yhi` cache).
    sub_yhi: Option<Key>,
}

/// Plan the subtree for the x-sorted arena slice `pts` responsible for
/// `[lo, hi)`. Pure CPU; `budget` is the remaining thread budget.
fn plan_slab(pts: &mut [Point], lo: Key, hi: Key, ctx: &PlanCtx, budget: usize) -> SlabPlan {
    debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
    if pts.len() <= ctx.cap {
        return finish_plan(pts.to_vec(), Vec::new(), lo, hi, None, ctx);
    }

    // Select the B² largest-(y, id) points as this metablock's mains,
    // compacting the remainder in place (x order preserved on both sides).
    let mut ybuf = Vec::new();
    let (mains, rest_len, rest_yhi) = extract_top_y(pts, ctx.cap, &mut ybuf);
    let rest = &mut pts[..rest_len];

    // Divide the remainder into at most B near-equal contiguous slabs.
    // The paper divides the remainder into B groups; when n ≪ B³ that
    // over-fragments the leaves (tiny leaves under B-ary fanout), so we
    // split into just enough near-B²-sized groups, still at most B of
    // them — every invariant and bound is preserved, leaves stay packed.
    let target = rest_len.div_ceil(ctx.cap).clamp(2, ctx.b);
    let ranges = near_equal_ranges(rest_len, target);
    let mut first_keys: Vec<Key> = ranges.iter().map(|&(s, _)| rest[s].xkey()).collect();
    first_keys[0] = lo;

    // Child slabs are disjoint arena slices: plan them in parallel.
    let mut tasks = Vec::with_capacity(ranges.len());
    let mut remainder: &mut [Point] = rest;
    for (i, &(s, e)) in ranges.iter().enumerate() {
        let (head, tail) = remainder.split_at_mut(e - s);
        remainder = tail;
        let slab_lo = first_keys[i];
        let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
        tasks.push(move |inner: usize| plan_slab(head, slab_lo, slab_hi, ctx, inner));
    }
    let child_budget = if rest_len >= PAR_THRESHOLD { budget } else { 1 };
    let children = run_parallel(tasks, child_budget);
    finish_plan(mains, children, lo, hi, rest_yhi, ctx)
}

/// The per-node CPU work: y-order the mains and plan the corner structure.
fn finish_plan(
    mains_x: Vec<Point>,
    children: Vec<SlabPlan>,
    slab_lo: Key,
    slab_hi: Key,
    sub_yhi: Option<Key>,
    ctx: &PlanCtx,
) -> SlabPlan {
    let mut mains_y = mains_x.clone();
    ccix_extmem::sort_by_y_desc(&mut mains_y);
    let mains_x = SortedRun::from_sorted(mains_x);
    let corner = plan_corner(&mains_x, &mains_y, ctx.b, ctx.corner_structures, ctx.alpha);
    SlabPlan {
        mains_x,
        mains_y,
        corner,
        children,
        slab_lo,
        slab_hi,
        sub_yhi,
    }
}

/// Plan a corner structure when the metablock's region can contain a query
/// corner: some diagonal value lies between the lowest y and the highest x
/// of the mains (and the mains span more than one block).
fn plan_corner(
    by_x: &SortedRun,
    by_y: &[Point],
    b: usize,
    enabled: bool,
    alpha: usize,
) -> Option<CornerPlan> {
    if !enabled || by_x.len() <= b {
        return None;
    }
    match (BBox::of_points(by_x), by_y.last().map(Point::ykey)) {
        (Some(bb), Some(ylo)) if ylo.0 <= bb.xhi.0 => Some(CornerPlan::plan(by_x, b, alpha)),
        _ => None,
    }
}

impl MetablockTree {
    /// Build a tree over `points` with the paper's design (default options).
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        Self::build_with(geo, counter, points, super::DiagOptions::default())
    }

    /// Build a tree over `points` with explicit ablation options.
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_with(
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        options: super::DiagOptions,
    ) -> Self {
        Self::build_tuned(geo, counter, points, options, crate::Tuning::default())
    }

    /// Build a tree over `points` with explicit ablation options and tuning.
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_tuned(
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        options: super::DiagOptions,
        tuning: crate::Tuning,
    ) -> Self {
        Self::build_tuned_on(
            &ccix_extmem::BackendSpec::Model,
            geo,
            counter,
            points,
            options,
            tuning,
        )
    }

    /// [`MetablockTree::build_tuned`] on an explicit page backend (see
    /// [`MetablockTree::new_tuned_on`]).
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_tuned_on(
        spec: &ccix_extmem::BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        options: super::DiagOptions,
        tuning: crate::Tuning,
    ) -> Self {
        assert!(
            points.iter().all(|p| p.y >= p.x),
            "metablock tree requires points on or above the diagonal (y ≥ x)"
        );
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new_tuned_on(spec, geo, counter, options, tuning);
        tree.len = points.len();
        tree.shrink_base = points.len();
        if points.is_empty() {
            return tree;
        }
        let (root, _, _) =
            tree.build_slab(SortedRun::from_unsorted(points), FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Rebuild the subtree for an x-sorted run responsible for the slab
    /// `[lo, hi)`. Returns the new subtree root, the root's main points
    /// (y-descending), and the largest `(y, id)` among points *below* the
    /// root metablock (for the parent's `sub_yhi` cache).
    ///
    /// Also used by the dynamic side for branching-factor splits; the
    /// planning phase fans out over [`crate::Tuning::build_threads`].
    pub(crate) fn build_slab(
        &mut self,
        pts: SortedRun,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        let ctx = PlanCtx {
            b: self.geo.b,
            cap: self.cap(),
            corner_structures: self.options.corner_structures,
            alpha: self.tuning.corner_alpha,
        };
        let budget = self.tuning.effective_build_threads();
        let mut arena = pts.into_inner();
        let plan = plan_slab(&mut arena, lo, hi, &ctx, budget);
        drop(arena);
        self.materialise_slab(plan)
    }

    /// Phase 2: allocate pages and control blocks for a planned subtree,
    /// sequentially on the calling thread (all I/O charges live here).
    /// Returns `(id, mains y-descending, sub_yhi)`.
    fn materialise_slab(&mut self, plan: SlabPlan) -> (MbId, Vec<Point>, Option<Key>) {
        let SlabPlan {
            mains_x,
            mains_y,
            corner,
            children,
            sub_yhi,
            ..
        } = plan;
        let internal = !children.is_empty();
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(children.len());
        let mut snapshots: Vec<Vec<Point>> = Vec::with_capacity(children.len());
        for child in children {
            let (slab_lo, slab_hi) = (child.slab_lo, child.slab_hi);
            let (mb, child_y, child_sub) = self.materialise_slab(child);
            entries.push(ChildEntry {
                mb,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&child_y),
                upd_ymax: None,
                sub_yhi: child_sub,
                packed: super::PackedInfo::default(),
            });
            snapshots.push(child_y);
        }
        let meta = self.build_organizations_planned(&mains_x, &mains_y, corner, entries, internal);
        let id = self.alloc_meta(meta);
        if internal {
            self.sync_packed_children(id);
            self.install_ts_snapshots(id, snapshots);
        }
        (id, mains_y, sub_yhi)
    }

    /// Allocate a metablock with its blockings and (if warranted) corner
    /// structure. `internal` decides whether a TD slot is created.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &SortedRun,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        debug_assert!(internal != children.is_empty() || mains.is_empty());
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    /// Construct the per-metablock organisations for a main point set. The
    /// [`SortedRun`] parameter is the typed sortedness invariant: callers
    /// prove x-order at compile time (sorting only what actually needs it,
    /// e.g. an update-buffer delta) instead of this function re-checking —
    /// or worse, re-sorting — the full block.
    pub(crate) fn build_organizations(
        &mut self,
        mains: &SortedRun,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MetaBlock {
        let mut by_y = mains.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let corner = plan_corner(
            mains,
            &by_y,
            self.geo.b,
            self.options.corner_structures,
            self.tuning.corner_alpha,
        );
        self.build_organizations_planned(mains, &by_y, corner, children, internal)
    }

    /// As [`MetablockTree::build_organizations`], with the y-order and the
    /// corner plan already computed (the planning phase supplies both).
    pub(crate) fn build_organizations_planned(
        &mut self,
        by_x: &SortedRun,
        by_y: &[Point],
        corner: Option<CornerPlan>,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MetaBlock {
        debug_assert!(by_y.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        let vertical = self.store.alloc_run(by_x);
        let vkeys: Vec<Key> = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        let hkeys: Vec<Key> = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        let h_live: Vec<u32> = by_y.chunks(self.geo.b).map(|c| c.len() as u32).collect();
        let horizontal = self.store.alloc_run(by_y);
        let corner = corner.map(|cp| cp.materialise(&mut self.store, vertical.clone(), false));
        MetaBlock {
            vertical,
            vkeys,
            horizontal,
            hkeys,
            h_live,
            n_main: by_x.len(),
            y_lo_main: by_y.last().map(Point::ykey),
            main_bbox: BBox::of_points(by_x),
            corner,
            update: Vec::new(),
            n_upd: 0,
            tomb: Vec::new(),
            n_tomb: 0,
            tomb_buf: Vec::new(),
            ts: None,
            td: internal.then(TdInfo::default),
            children,
        }
    }

    /// Build and attach `TS` snapshots for every non-first child, from the
    /// supplied per-child point snapshots — **y-descending already**: the
    /// static build hands over the planned y-orders, the TS reorganisation
    /// hands over merged horizontal-run + sorted-delta snapshots; nobody
    /// re-sorts a snapshot here.
    pub(crate) fn install_ts_snapshots(&mut self, parent: MbId, snapshots: Vec<Vec<Point>>) {
        let cap = self.ts_cap_points();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());
        debug_assert!(snapshots
            .iter()
            .all(|s| s.windows(2).all(|w| w[0].ykey() > w[1].ykey())));
        // Maintain the top-`cap` prefix incrementally, merging each
        // (already sorted) snapshot into the running capped top list.
        let mut mirrors: Vec<(usize, Vec<ccix_extmem::PageId>, bool)> = Vec::new();
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for (i, snap) in snapshots.into_iter().enumerate() {
            if i > 0 {
                let pages = self.store.alloc_run(&top);
                let truncated = total > top.len();
                mirrors.push((i, pages.clone(), truncated));
                let mut meta = self.take_meta(child_ids[i]);
                if let Some(old) = meta.ts.take() {
                    self.store.free_run(&old.pages);
                }
                meta.ts = Some(TsInfo {
                    pages,
                    n: top.len(),
                    truncated,
                });
                self.put_meta(child_ids[i], meta);
            }
            total += snap.len();
            top = merge_y_desc_capped(std::mem::take(&mut top), snap, cap);
        }
        // Mirror the snapshot runs into the parent's packed entries so the
        // TS route reads the snapshot without loading its owner's control
        // block first (in-memory: the parent is held by this operation).
        if self.pack_h() > 0 {
            let pm = self.metas[parent].as_mut().expect("live parent");
            for (i, pages, truncated) in mirrors {
                pm.children[i].packed.ts_pages = pages;
                pm.children[i].packed.ts_truncated = truncated;
            }
        }
    }
}

pub(crate) use ccix_extmem::near_equal_ranges;

/// Move the `cap` largest-`(y, id)` points out of `pts` into a fresh vector,
/// compacting the rest to the front of `pts` (both sides keep their relative
/// order, so an x-sorted slice stays x-sorted). Returns the extracted mains,
/// the remainder's length, and the largest `(y, id)` in the remainder.
pub(crate) fn extract_top_y(
    pts: &mut [Point],
    cap: usize,
    ybuf: &mut Vec<Key>,
) -> (Vec<Point>, usize, Option<Key>) {
    debug_assert!(cap < pts.len());
    ybuf.clear();
    ybuf.extend(pts.iter().map(Point::ykey));
    // (y, id) keys are unique, so exactly `cap` points are ≥ the threshold.
    ybuf.select_nth_unstable_by(cap - 1, |a, b| b.cmp(a));
    let threshold = ybuf[cap - 1];
    let mut mains = Vec::with_capacity(cap);
    let mut w = 0usize;
    let mut rest_yhi: Option<Key> = None;
    for r in 0..pts.len() {
        let p = pts[r];
        if p.ykey() >= threshold {
            mains.push(p);
        } else {
            rest_yhi = Some(rest_yhi.map_or(p.ykey(), |m| m.max(p.ykey())));
            pts[w] = p;
            w += 1;
        }
    }
    debug_assert_eq!(mains.len(), cap);
    (mains, w, rest_yhi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_top_y_is_stable_and_exact() {
        let mut pts: Vec<Point> = (0..40)
            .map(|i| Point::new(i, 100 + (i * 7) % 40, i as u64))
            .collect();
        let orig = pts.clone();
        let mut ybuf = Vec::new();
        let (mains, rest_len, rest_yhi) = extract_top_y(&mut pts, 10, &mut ybuf);
        assert_eq!(mains.len(), 10);
        assert_eq!(rest_len, 30);
        let rest = &pts[..rest_len];
        // Both sides keep x order.
        assert!(mains.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        assert!(rest.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        // The split is exactly by the y threshold.
        let min_main = mains.iter().map(Point::ykey).min().unwrap();
        assert!(rest.iter().all(|p| p.ykey() < min_main));
        assert_eq!(rest.iter().map(Point::ykey).max(), rest_yhi);
        // Nothing lost.
        let mut all: Vec<u64> = mains.iter().chain(rest).map(|p| p.id).collect();
        all.sort_unstable();
        let mut want: Vec<u64> = orig.iter().map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    /// The planned build is bit-identical for every thread budget: same
    /// metablocks, same page counts, same stats.
    #[test]
    fn build_is_identical_across_thread_counts() {
        let geo = Geometry::new(4);
        let pts: Vec<Point> = (0..3_000)
            .map(|i| {
                let x = (i * 37) % 1_000;
                Point::new(x, x + (i * 13) % 500, i as u64)
            })
            .collect();
        let mut reference: Option<(crate::DiagStats, u64, u64)> = None;
        for threads in [1usize, 2, 7] {
            let tuning = crate::Tuning {
                build_threads: threads,
                ..crate::Tuning::default()
            };
            let counter = IoCounter::new();
            let tree = MetablockTree::build_tuned(
                geo,
                counter.clone(),
                pts.clone(),
                super::super::DiagOptions::default(),
                tuning,
            );
            tree.validate_unbilled();
            let sig = (tree.stats(), counter.reads(), counter.writes());
            match &reference {
                None => reference = Some(sig),
                Some(want) => assert_eq!(&sig, want, "threads={threads}"),
            }
        }
    }
}
