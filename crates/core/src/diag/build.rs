//! Static construction of the metablock tree (§3.1, Fig. 8).
//!
//! The root metablock takes the `B²` points with the largest `y`; the rest
//! are divided by `x` into `B` slabs of near-equal size, one recursive tree
//! each, until a slab fits in a single metablock. Alongside the recursive
//! shape we build, per metablock: the vertical and horizontal blockings, the
//! corner structure where the region can contain a query corner, and the
//! `TS` snapshots of every non-first child.

use ccix_extmem::{Geometry, IoCounter, Point};

use super::{ChildEntry, MbId, MetaBlock, MetablockTree, TdInfo, TsInfo};
use crate::bbox::{BBox, Key};
use crate::corner::CornerStructure;

/// The whole key space: the root's slab.
pub(crate) const FULL_RANGE: (Key, Key) = ((i64::MIN, 0), (i64::MAX, u64::MAX));

impl MetablockTree {
    /// Build a tree over `points` with the paper's design (default options).
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        Self::build_with(geo, counter, points, super::DiagOptions::default())
    }

    /// Build a tree over `points` with explicit ablation options.
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_with(
        geo: Geometry,
        counter: IoCounter,
        mut points: Vec<Point>,
        options: super::DiagOptions,
    ) -> Self {
        assert!(
            points.iter().all(|p| p.y >= p.x),
            "metablock tree requires points on or above the diagonal (y ≥ x)"
        );
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new_with(geo, counter, options);
        tree.len = points.len();
        if points.is_empty() {
            return tree;
        }
        ccix_extmem::sort_by_x(&mut points);
        let (root, _, _) = tree.build_slab(points, FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Rebuild the subtree for an x-sorted point vector responsible for the
    /// slab `[lo, hi)`. Returns the new subtree root, the root's main
    /// points, and the largest `(y, id)` among points *below* the root
    /// metablock (for the parent's `sub_yhi` cache).
    ///
    /// Also used by the dynamic side for branching-factor splits.
    pub(crate) fn build_slab(
        &mut self,
        mut pts: Vec<Point>,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        let cap = self.cap();
        if pts.len() <= cap {
            let mains = pts;
            let id = self.make_metablock(&mains, Vec::new(), false);
            return (id, mains, None);
        }

        // Select the B² largest-(y, id) points as the root's mains,
        // preserving x order in the remainder.
        let mut ys: Vec<Key> = pts.iter().map(Point::ykey).collect();
        ys.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = ys[cap - 1];
        let mut mains = Vec::with_capacity(cap);
        pts.retain(|p| {
            if p.ykey() >= threshold {
                mains.push(*p);
                false
            } else {
                true
            }
        });
        debug_assert_eq!(mains.len(), cap);
        let rest_yhi = pts.iter().map(Point::ykey).max();

        // Divide the remainder into at most B near-equal contiguous slabs.
        // The paper divides the remainder into B groups; when n ≪ B³ that
        // over-fragments the leaves (tiny leaves under B-ary fanout), so we
        // split into just enough near-B²-sized groups, still at most B of
        // them — every invariant and bound is preserved, leaves stay packed.
        let target = pts.len().div_ceil(cap).clamp(2, self.geo.b);
        let groups = near_equal_groups(pts, target);

        // Recurse, collecting child mains for the TS snapshots.
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(groups.len());
        let mut child_mains: Vec<Vec<Point>> = Vec::with_capacity(groups.len());
        let mut first_keys: Vec<Key> = groups
            .iter()
            .map(|g| g.first().expect("nonempty group").xkey())
            .collect();
        first_keys[0] = lo;
        for (i, group) in groups.into_iter().enumerate() {
            let slab_lo = first_keys[i];
            let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
            let (child, cmains, sub_yhi) = self.build_slab(group, slab_lo, slab_hi);
            entries.push(ChildEntry {
                mb: child,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&cmains),
                upd_ymax: None,
                sub_yhi,
            });
            child_mains.push(cmains);
        }

        let id = self.make_metablock(&mains, entries, true);
        self.install_ts_snapshots(id, &child_mains);
        (id, mains, rest_yhi)
    }

    /// Allocate a metablock with its blockings and (if warranted) corner
    /// structure. `internal` decides whether a TD slot is created.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        debug_assert!(internal != children.is_empty() || mains.is_empty());
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    /// Construct the per-metablock organisations for a main point set.
    pub(crate) fn build_organizations(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MetaBlock {
        let mut by_x = mains.to_vec();
        ccix_extmem::sort_by_x(&mut by_x);
        let vertical = self.store.alloc_run(&by_x);
        let mut by_y = mains.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let horizontal = self.store.alloc_run(&by_y);
        let main_bbox = BBox::of_points(mains);
        let y_lo_main = mains.iter().map(Point::ykey).min();
        let corner = match (main_bbox, y_lo_main) {
            // A corner (q, q) can fall strictly inside the region only if
            // some diagonal value lies between the lowest y and the highest
            // x of the mains.
            (Some(bb), Some(ylo))
                if self.options.corner_structures
                    && ylo.0 <= bb.xhi.0
                    && mains.len() > self.geo.b =>
            {
                Some(CornerStructure::build(&mut self.store, mains))
            }
            _ => None,
        };
        MetaBlock {
            vertical,
            horizontal,
            n_main: mains.len(),
            y_lo_main,
            main_bbox,
            corner,
            update: None,
            n_upd: 0,
            ts: None,
            td: internal.then(TdInfo::default),
            children,
        }
    }

    /// Build and attach `TS` snapshots for every non-first child, from the
    /// supplied per-child point snapshots (mains, or mains+updates during a
    /// TS reorganisation).
    pub(crate) fn install_ts_snapshots(&mut self, parent: MbId, snapshots: &[Vec<Point>]) {
        let cap = self.cap();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());
        let mut acc: Vec<Point> = Vec::new();
        for (i, &child) in child_ids.iter().enumerate() {
            if i > 0 {
                let mut top = acc.clone();
                ccix_extmem::sort_by_y_desc(&mut top);
                top.truncate(cap);
                let pages = self.store.alloc_run(&top);
                let mut meta = self.take_meta(child);
                if let Some(old) = meta.ts.take() {
                    self.store.free_run(&old.pages);
                }
                meta.ts = Some(TsInfo {
                    pages,
                    n: top.len(),
                });
                self.put_meta(child, meta);
            }
            acc.extend_from_slice(&snapshots[i]);
        }
    }
}

/// Split an x-sorted vector into at most `b` nonempty contiguous groups of
/// near-equal size.
pub(crate) fn near_equal_groups(pts: Vec<Point>, b: usize) -> Vec<Vec<Point>> {
    let n = pts.len();
    let groups = b.min(n).max(1);
    let base = n / groups;
    let extra = n % groups;
    let mut out = Vec::with_capacity(groups);
    let mut iter = pts.into_iter();
    for g in 0..groups {
        let size = base + usize::from(g < extra);
        out.push(iter.by_ref().take(size).collect());
    }
    debug_assert!(iter.next().is_none());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_are_near_equal_and_cover() {
        let pts: Vec<Point> = (0..103).map(|i| Point::new(i, i + 1, i as u64)).collect();
        let groups = near_equal_groups(pts.clone(), 10);
        assert_eq!(groups.len(), 10);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 103);
        let flat: Vec<Point> = groups.into_iter().flatten().collect();
        assert_eq!(flat, pts, "order preserved");
    }

    #[test]
    fn fewer_points_than_groups() {
        let pts: Vec<Point> = (0..3).map(|i| Point::new(i, i, i as u64)).collect();
        let groups = near_equal_groups(pts, 10);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
    }
}
