//! Static construction of the metablock tree (§3.1, Fig. 8).
//!
//! The root metablock takes the `B²` points with the largest `y`; the rest
//! are divided by `x` into `B` slabs of near-equal size, one recursive tree
//! each, until a slab fits in a single metablock. Alongside the recursive
//! shape we build, per metablock: the vertical and horizontal blockings, the
//! corner structure where the region can contain a query corner, and the
//! `TS` snapshots of every non-first child.
//!
//! The build is **sort-once and arena-backed**: the input is x-sorted a
//! single time and the recursion then works on disjoint subslices of that
//! one buffer. Selecting a metablock's mains is an `O(n)` in-place stable
//! partition around a `select_nth` threshold (no per-level sorts, no
//! per-level copies of the remainder), and the `TS` snapshots of a level are
//! maintained as one incrementally merged top list instead of re-sorting a
//! growing prefix per child.

use ccix_extmem::{Geometry, IoCounter, Point};

use super::{ChildEntry, MbId, MetaBlock, MetablockTree, TdInfo, TsInfo};
use crate::bbox::{BBox, Key};
use crate::corner::CornerStructure;

/// The whole key space: the root's slab.
pub(crate) const FULL_RANGE: (Key, Key) = ((i64::MIN, 0), (i64::MAX, u64::MAX));

impl MetablockTree {
    /// Build a tree over `points` with the paper's design (default options).
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        Self::build_with(geo, counter, points, super::DiagOptions::default())
    }

    /// Build a tree over `points` with explicit ablation options.
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_with(
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        options: super::DiagOptions,
    ) -> Self {
        Self::build_tuned(geo, counter, points, options, crate::Tuning::default())
    }

    /// Build a tree over `points` with explicit ablation options and tuning.
    ///
    /// # Panics
    /// Panics if any point has `y < x` or ids repeat.
    pub fn build_tuned(
        geo: Geometry,
        counter: IoCounter,
        mut points: Vec<Point>,
        options: super::DiagOptions,
        tuning: crate::Tuning,
    ) -> Self {
        assert!(
            points.iter().all(|p| p.y >= p.x),
            "metablock tree requires points on or above the diagonal (y ≥ x)"
        );
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new_tuned(geo, counter, options, tuning);
        tree.len = points.len();
        if points.is_empty() {
            return tree;
        }
        ccix_extmem::sort_by_x(&mut points);
        let (root, _, _) = tree.build_slab(points, FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Rebuild the subtree for an x-sorted point vector responsible for the
    /// slab `[lo, hi)`. Returns the new subtree root, the root's main
    /// points, and the largest `(y, id)` among points *below* the root
    /// metablock (for the parent's `sub_yhi` cache).
    ///
    /// Also used by the dynamic side for branching-factor splits.
    pub(crate) fn build_slab(
        &mut self,
        mut pts: Vec<Point>,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        let mut ybuf = Vec::new();
        self.build_slab_in(&mut pts, lo, hi, &mut ybuf)
    }

    /// The in-place recursion behind [`MetablockTree::build_slab`]: `pts` is
    /// a subslice of the build arena (x-sorted); `ybuf` is a reusable
    /// scratch buffer for the main-selection threshold.
    fn build_slab_in(
        &mut self,
        pts: &mut [Point],
        lo: Key,
        hi: Key,
        ybuf: &mut Vec<Key>,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        let cap = self.cap();
        if pts.len() <= cap {
            let mains = pts.to_vec();
            let id = self.make_metablock(&mains, Vec::new(), false);
            return (id, mains, None);
        }

        // Select the B² largest-(y, id) points as the root's mains,
        // compacting the remainder in place (x order preserved on both
        // sides).
        let (mains, rest_len, rest_yhi) = extract_top_y(pts, cap, ybuf);
        let rest = &mut pts[..rest_len];

        // Divide the remainder into at most B near-equal contiguous slabs.
        // The paper divides the remainder into B groups; when n ≪ B³ that
        // over-fragments the leaves (tiny leaves under B-ary fanout), so we
        // split into just enough near-B²-sized groups, still at most B of
        // them — every invariant and bound is preserved, leaves stay packed.
        let target = rest_len.div_ceil(cap).clamp(2, self.geo.b);
        let ranges = near_equal_ranges(rest_len, target);

        // Recurse, collecting child mains for the TS snapshots.
        let mut first_keys: Vec<Key> = ranges.iter().map(|&(s, _)| rest[s].xkey()).collect();
        first_keys[0] = lo;
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(ranges.len());
        let mut child_mains: Vec<Vec<Point>> = Vec::with_capacity(ranges.len());
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let slab_lo = first_keys[i];
            let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
            let (child, cmains, sub_yhi) =
                self.build_slab_in(&mut rest[s..e], slab_lo, slab_hi, ybuf);
            entries.push(ChildEntry {
                mb: child,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&cmains),
                upd_ymax: None,
                sub_yhi,
                packed: super::PackedInfo::default(),
            });
            child_mains.push(cmains);
        }

        let id = self.make_metablock(&mains, entries, true);
        self.sync_packed_children(id);
        self.install_ts_snapshots(id, child_mains);
        (id, mains, rest_yhi)
    }

    /// Allocate a metablock with its blockings and (if warranted) corner
    /// structure. `internal` decides whether a TD slot is created.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        debug_assert!(internal != children.is_empty() || mains.is_empty());
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    /// Construct the per-metablock organisations for a main point set.
    pub(crate) fn build_organizations(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MetaBlock {
        // The static build hands mains over already x-sorted; only the
        // dynamic reorganisations (horizontal + update order) need a sort.
        let sorted_storage;
        let by_x: &[Point] = if mains.windows(2).all(|w| w[0].xkey() < w[1].xkey()) {
            mains
        } else {
            let mut v = mains.to_vec();
            ccix_extmem::sort_by_x(&mut v);
            sorted_storage = v;
            &sorted_storage
        };
        let vertical = self.store.alloc_run(by_x);
        let vkeys: Vec<Key> = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        let mut by_y = by_x.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let hkeys: Vec<Key> = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        let horizontal = self.store.alloc_run(&by_y);
        let main_bbox = BBox::of_points(by_x);
        let y_lo_main = by_y.last().map(Point::ykey);
        let corner = match (main_bbox, y_lo_main) {
            // A corner (q, q) can fall strictly inside the region only if
            // some diagonal value lies between the lowest y and the highest
            // x of the mains.
            (Some(bb), Some(ylo))
                if self.options.corner_structures
                    && ylo.0 <= bb.xhi.0
                    && mains.len() > self.geo.b =>
            {
                Some(CornerStructure::build_shared(
                    &mut self.store,
                    by_x,
                    &vertical,
                    self.tuning.corner_alpha,
                ))
            }
            _ => None,
        };
        MetaBlock {
            vertical,
            vkeys,
            horizontal,
            hkeys,
            n_main: mains.len(),
            y_lo_main,
            main_bbox,
            corner,
            update: Vec::new(),
            n_upd: 0,
            ts: None,
            td: internal.then(TdInfo::default),
            children,
        }
    }

    /// Build and attach `TS` snapshots for every non-first child, from the
    /// supplied per-child point snapshots (mains, or mains+updates during a
    /// TS reorganisation).
    pub(crate) fn install_ts_snapshots(&mut self, parent: MbId, snapshots: Vec<Vec<Point>>) {
        let cap = self.ts_cap_points();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());
        // Maintain the top-`cap` prefix incrementally: sort each child's
        // snapshot once, then merge it into the running capped top list.
        let mut mirrors: Vec<(usize, Vec<ccix_extmem::PageId>, bool)> = Vec::new();
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for (i, mut snap) in snapshots.into_iter().enumerate() {
            if i > 0 {
                let pages = self.store.alloc_run(&top);
                let truncated = total > top.len();
                mirrors.push((i, pages.clone(), truncated));
                let mut meta = self.take_meta(child_ids[i]);
                if let Some(old) = meta.ts.take() {
                    self.store.free_run(&old.pages);
                }
                meta.ts = Some(TsInfo {
                    pages,
                    n: top.len(),
                    truncated,
                });
                self.put_meta(child_ids[i], meta);
            }
            total += snap.len();
            ccix_extmem::sort_by_y_desc(&mut snap);
            top = merge_y_desc_capped(std::mem::take(&mut top), snap, cap);
        }
        // Mirror the snapshot runs into the parent's packed entries so the
        // TS route reads the snapshot without loading its owner's control
        // block first (in-memory: the parent is held by this operation).
        if self.pack_h() > 0 {
            let pm = self.metas[parent].as_mut().expect("live parent");
            for (i, pages, truncated) in mirrors {
                pm.children[i].packed.ts_pages = pages;
                pm.children[i].packed.ts_truncated = truncated;
            }
        }
    }
}

pub(crate) use ccix_extmem::near_equal_ranges;

/// Move the `cap` largest-`(y, id)` points out of `pts` into a fresh vector,
/// compacting the rest to the front of `pts` (both sides keep their relative
/// order, so an x-sorted slice stays x-sorted). Returns the extracted mains,
/// the remainder's length, and the largest `(y, id)` in the remainder.
pub(crate) fn extract_top_y(
    pts: &mut [Point],
    cap: usize,
    ybuf: &mut Vec<Key>,
) -> (Vec<Point>, usize, Option<Key>) {
    debug_assert!(cap < pts.len());
    ybuf.clear();
    ybuf.extend(pts.iter().map(Point::ykey));
    // (y, id) keys are unique, so exactly `cap` points are ≥ the threshold.
    ybuf.select_nth_unstable_by(cap - 1, |a, b| b.cmp(a));
    let threshold = ybuf[cap - 1];
    let mut mains = Vec::with_capacity(cap);
    let mut w = 0usize;
    let mut rest_yhi: Option<Key> = None;
    for r in 0..pts.len() {
        let p = pts[r];
        if p.ykey() >= threshold {
            mains.push(p);
        } else {
            rest_yhi = Some(rest_yhi.map_or(p.ykey(), |m| m.max(p.ykey())));
            pts[w] = p;
            w += 1;
        }
    }
    debug_assert_eq!(mains.len(), cap);
    (mains, w, rest_yhi)
}

/// Merge two y-descending point vectors, keeping at most `cap` points.
pub(crate) fn merge_y_desc_capped(a: Vec<Point>, b: Vec<Point>, cap: usize) -> Vec<Point> {
    if b.is_empty() && a.len() <= cap {
        return a;
    }
    let mut out = Vec::with_capacity((a.len() + b.len()).min(cap));
    let (mut i, mut j) = (0usize, 0usize);
    while out.len() < cap {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if x.ykey() > y.ykey() {
                    out.push(*x);
                    i += 1;
                } else {
                    out.push(*y);
                    j += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_top_y_is_stable_and_exact() {
        let mut pts: Vec<Point> = (0..40)
            .map(|i| Point::new(i, 100 + (i * 7) % 40, i as u64))
            .collect();
        let orig = pts.clone();
        let mut ybuf = Vec::new();
        let (mains, rest_len, rest_yhi) = extract_top_y(&mut pts, 10, &mut ybuf);
        assert_eq!(mains.len(), 10);
        assert_eq!(rest_len, 30);
        let rest = &pts[..rest_len];
        // Both sides keep x order.
        assert!(mains.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        assert!(rest.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        // The split is exactly by the y threshold.
        let min_main = mains.iter().map(Point::ykey).min().unwrap();
        assert!(rest.iter().all(|p| p.ykey() < min_main));
        assert_eq!(rest.iter().map(Point::ykey).max(), rest_yhi);
        // Nothing lost.
        let mut all: Vec<u64> = mains.iter().chain(rest).map(|p| p.id).collect();
        all.sort_unstable();
        let mut want: Vec<u64> = orig.iter().map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn merge_caps_and_orders() {
        let a: Vec<Point> = [9i64, 7, 3]
            .iter()
            .enumerate()
            .map(|(i, &y)| Point::new(0, y, i as u64))
            .collect();
        let b: Vec<Point> = [8i64, 2]
            .iter()
            .enumerate()
            .map(|(i, &y)| Point::new(0, y, 10 + i as u64))
            .collect();
        let m = merge_y_desc_capped(a, b, 4);
        let ys: Vec<i64> = m.iter().map(|p| p.y).collect();
        assert_eq!(ys, vec![9, 8, 7, 3]);
    }
}
