//! Unbilled invariant checking and shape statistics.
//!
//! [`MetablockTree::validate_unbilled`] walks the whole structure without
//! touching the I/O counters and asserts every invariant the query
//! correctness argument relies on. Tests call it after randomized workloads;
//! it is the executable form of the structural claims of §3.

use std::collections::BTreeSet;

use ccix_extmem::Point;

use super::{MbId, MetaBlock, MetablockTree};
use crate::bbox::{BBox, Key};

/// Shape statistics of a metablock tree (experiment E11 / Figs. 8–10).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiagStats {
    /// Total metablocks.
    pub metablocks: usize,
    /// Leaf metablocks.
    pub leaves: usize,
    /// Height in metablock levels.
    pub height: usize,
    /// Data pages plus one control block per metablock.
    pub pages: usize,
    /// Points stored (mains + update blocks).
    pub points: usize,
    /// Points held in update blocks awaiting a level-I reorganisation.
    pub pending_updates: usize,
    /// Tombstones held in tombstone buffers awaiting cancellation (each
    /// shadows one stored, logically deleted point counted in `points`).
    pub pending_tombs: usize,
    /// Pages used by TS snapshots.
    pub ts_pages: usize,
    /// Pages used by corner structures.
    pub corner_pages: usize,
}

impl MetablockTree {
    /// Compute shape statistics without charging I/Os.
    pub fn stats(&self) -> DiagStats {
        let mut s = DiagStats {
            pages: self.space_pages(),
            ..DiagStats::default()
        };
        if let Some(root) = self.root {
            self.stats_rec(root, 1, &mut s);
        }
        s
    }

    fn stats_rec(&self, mb: MbId, depth: usize, s: &mut DiagStats) {
        let meta = self.meta_unbilled(mb);
        s.metablocks += 1;
        s.height = s.height.max(depth);
        s.points += meta.n_main + meta.n_upd;
        s.pending_updates += meta.n_upd;
        s.pending_tombs += meta.n_tomb;
        if let Some(ts) = &meta.ts {
            s.ts_pages += ts.pages.len();
        }
        if let Some(c) = &meta.corner {
            s.corner_pages += c.pages();
        }
        if let Some(td) = &meta.td {
            if let Some(c) = &td.corner {
                s.corner_pages += c.pages();
            }
            if let Some(c) = &td.del_corner {
                s.corner_pages += c.pages();
            }
        }
        if meta.is_leaf() {
            s.leaves += 1;
        }
        for c in &meta.children {
            self.stats_rec(c.mb, depth + 1, s);
        }
    }

    /// Walk the tree unbilled, assert every structural invariant, and return
    /// all stored points. Test/debug only.
    pub fn validate_unbilled(&self) -> Vec<Point> {
        let mut all = Vec::new();
        if let Some(root) = self.root {
            self.validate_rec(root, (i64::MIN, 0), (i64::MAX, u64::MAX), None, &mut all);
        }
        assert_eq!(
            self.stats().pending_tombs,
            self.tombs_pending,
            "stale pending-tombstone counter"
        );
        // With a background shrink job in progress, the job's delta is part
        // of the physical contents: its undrained live update points are
        // stored points, and each undrained delta tombstone names a stored
        // tree point it shadows (annihilated pairs cancel inside the delta
        // and count on neither side).
        let tree_ids: BTreeSet<u64> = all.iter().map(|p| p.id).collect();
        for t in self.delta_tombs_unbilled() {
            assert!(
                tree_ids.contains(&t.id),
                "delta tombstone {t:?} has no victim in the tree"
            );
        }
        let (delta_live, tomb_rem) = self.delta_contents_unbilled();
        all.extend(delta_live);
        // Physical contents = logical contents plus one shadowed copy per
        // pending tombstone, buffered in the tree or in the delta.
        assert_eq!(
            all.len(),
            self.len + self.tombs_pending + tomb_rem,
            "stored point count mismatch"
        );
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        for p in &all {
            assert!(p.y >= p.x, "point below the diagonal: {p:?}");
            assert!(ids.insert(p.id), "duplicate id {}", p.id);
        }
        all
    }

    /// Validate the subtree at `mb`, whose slab is `[slab_lo, slab_hi)` and
    /// whose points must all be strictly `(y, id)`-below `y_bound` (the
    /// parent's `y_lo_main`). Appends the subtree's points to `all`.
    fn validate_rec(
        &self,
        mb: MbId,
        slab_lo: Key,
        slab_hi: Key,
        y_bound: Option<Key>,
        all: &mut Vec<Point>,
    ) {
        let meta = self.meta_unbilled(mb);
        let mains = self.mains_unbilled(meta);
        assert_eq!(mains.len(), meta.n_main, "main count mismatch");
        assert!(
            mains.len() <= 2 * self.cap() + self.upd_cap_pages() * self.geo.b,
            "metablock overfull: {}",
            mains.len()
        );

        // Blockings hold the same multiset, in the right orders, densely
        // packed (every page full except the last — the merge pipeline must
        // emit the same runs a sort-based rebuild would).
        self.assert_dense_run(&meta.vertical, "vertical");
        self.assert_dense_run(&meta.horizontal, "horizontal");
        if let Some(ts) = &meta.ts {
            self.assert_dense_run(&ts.pages, "TS snapshot");
        }
        let vertical = self.pages_unbilled(&meta.vertical);
        assert!(
            vertical.windows(2).all(|w| w[0].xkey() < w[1].xkey()),
            "vertical blocking out of order"
        );
        assert_eq!(
            meta.vkeys,
            vertical
                .chunks(self.geo.b)
                .map(|c| c[0].xkey())
                .collect::<Vec<_>>(),
            "stale vertical page-boundary keys"
        );
        let horizontal = self.pages_unbilled(&meta.horizontal);
        assert!(
            horizontal.windows(2).all(|w| w[0].ykey() > w[1].ykey()),
            "horizontal blocking out of order"
        );
        assert_eq!(
            meta.hkeys,
            horizontal
                .chunks(self.geo.b)
                .map(|c| c[0].ykey())
                .collect::<Vec<_>>(),
            "stale horizontal page-top keys"
        );
        let mut a: Vec<u64> = vertical.iter().map(|p| p.id).collect();
        let mut b: Vec<u64> = horizontal.iter().map(|p| p.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "vertical and horizontal blockings disagree");

        // Cached summaries are exact.
        assert_eq!(meta.main_bbox, BBox::of_points(&mains), "stale main bbox");
        assert_eq!(
            meta.y_lo_main,
            mains.iter().map(Point::ykey).min(),
            "stale y_lo_main"
        );

        // Slab containment for every stored point (mains + updates).
        let update = self.pages_unbilled(&meta.update);
        assert_eq!(update.len(), meta.n_upd, "update count mismatch");
        assert!(
            update.len() <= self.upd_cap_pages() * self.geo.b,
            "update buffer overfull: {} points",
            update.len()
        );
        for p in mains.iter().chain(&update) {
            assert!(
                p.xkey() >= slab_lo && p.xkey() < slab_hi,
                "point {p:?} outside slab [{slab_lo:?}, {slab_hi:?})"
            );
            if let Some(bound) = y_bound {
                assert!(
                    p.ykey() < bound,
                    "routing invariant violated: {p:?} not below parent bound {bound:?}"
                );
            }
        }

        // Tombstone buffer: within budget, and the landing invariant — a
        // tombstone is buffered in the metablock that physically holds its
        // victim (an exact copy, found in the mains or update buffer).
        let tombs = self.pages_unbilled(&meta.tomb);
        assert_eq!(tombs.len(), meta.n_tomb, "tombstone count mismatch");
        assert_eq!(tombs, meta.tomb_buf, "stale tombstone control-block mirror");
        assert!(
            tombs.len() <= self.tomb_cap_pages() * self.geo.b,
            "tombstone buffer overfull: {} tombstones",
            tombs.len()
        );
        {
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            for t in &tombs {
                assert!(seen.insert(t.id), "duplicate tombstone id {}", t.id);
                assert!(
                    mains.iter().chain(&update).any(|p| p == t),
                    "tombstone {t:?} has no victim in its metablock"
                );
            }
        }

        // Per-page live counts are exact: page points minus the pending
        // tombstones of *this* metablock that match them (the landing
        // invariant colocates every tombstone with its victim).
        let tomb_ids: BTreeSet<u64> = tombs.iter().map(|t| t.id).collect();
        assert_eq!(
            meta.h_live,
            horizontal
                .chunks(self.geo.b)
                .map(|c| c.iter().filter(|p| !tomb_ids.contains(&p.id)).count() as u32)
                .collect::<Vec<_>>(),
            "stale per-page live counts"
        );

        all.extend_from_slice(&mains);
        all.extend_from_slice(&update);

        // Children: contiguous slabs covering this slab, cached entries
        // exact, TS coverage sound.
        if !meta.children.is_empty() {
            assert!(meta.td.is_some(), "internal metablock without TD");
            // An emptied interior metablock is a pure router: the insert
            // and delete routings pass it by, so its buffers stay empty.
            if meta.main_bbox.is_none() {
                assert_eq!(meta.n_upd, 0, "emptied interior metablock buffers inserts");
                assert_eq!(
                    meta.n_tomb, 0,
                    "emptied interior metablock buffers tombstones"
                );
            }
            assert_eq!(meta.children[0].slab_lo, slab_lo, "first slab misaligned");
            assert_eq!(
                meta.children.last().unwrap().slab_hi,
                slab_hi,
                "last slab misaligned"
            );
            for w in meta.children.windows(2) {
                assert_eq!(w[0].slab_hi, w[1].slab_lo, "slab gap between children");
            }
            assert!(
                meta.children.len() < 2 * self.geo.b + 1,
                "branching factor overflow: {}",
                meta.children.len()
            );
            self.validate_ts_coverage(meta);

            self.validate_packed(meta);

            let y_lo = meta.y_lo_main;
            for c in &meta.children {
                let child_meta = self.meta_unbilled(c.mb);
                let child_mains = self.mains_unbilled(child_meta);
                assert_eq!(
                    c.main_bbox,
                    BBox::of_points(&child_mains),
                    "stale child main bbox"
                );
                let child_upd = self.pages_unbilled(&child_meta.update);
                assert_eq!(
                    c.upd_ymax,
                    child_upd.iter().map(Point::ykey).max(),
                    "stale child upd_ymax"
                );
                let mut sub = Vec::new();
                for g in &child_meta.children {
                    self.collect_unbilled(g.mb, &mut sub);
                }
                let true_sub_yhi = sub.iter().map(Point::ykey).max();
                assert!(
                    c.sub_yhi >= true_sub_yhi,
                    "child sub_yhi underestimates: cached {:?} < true {:?}",
                    c.sub_yhi,
                    true_sub_yhi
                );
                self.validate_rec(c.mb, c.slab_lo, c.slab_hi, y_lo, all);
            }
        } else {
            assert!(meta.td.is_none(), "leaf metablock with TD");
        }
    }

    /// The query's TS coverage argument, as an invariant: for every child
    /// with a TS snapshot, every **live** point currently stored in its left
    /// siblings is either in the snapshot, outranked by the snapshot's B²
    /// points, or present in the parent's TD structure. Points shadowed by
    /// a pending tombstone are exempt (queries subtract them by id), and
    /// ids on the TD's delete side must never shadow a live point.
    fn validate_ts_coverage(&self, parent: &MetaBlock) {
        let mut td_ids: BTreeSet<u64> = BTreeSet::new();
        let mut td_del_ids: BTreeSet<u64> = BTreeSet::new();
        if let Some(td) = &parent.td {
            if let Some(c) = &td.corner {
                for p in c.collect_points_unbilled(&self.store) {
                    td_ids.insert(p.id);
                }
            }
            for &pg in &td.staged {
                for p in self.store.read_unbilled(pg) {
                    td_ids.insert(p.id);
                }
            }
            let mut n_del = 0usize;
            if let Some(c) = &td.del_corner {
                let pts = c.collect_points_unbilled(&self.store);
                n_del += pts.len();
                for t in pts {
                    td_del_ids.insert(t.id);
                }
            }
            assert_eq!(n_del, td.n_del_built, "TD delete-side built-count stale");
            let mut staged: Vec<Point> = Vec::new();
            for &pg in &td.del_staged {
                staged.extend_from_slice(self.store.read_unbilled(pg));
            }
            td_del_ids.extend(staged.iter().map(|t| t.id));
            assert_eq!(
                staged.len(),
                td.n_del_staged,
                "TD delete-side staged-count stale"
            );
            assert_eq!(
                staged, td.del_staged_buf,
                "stale TD delete-side control-block mirror"
            );
        }
        let mut left_points: Vec<Point> = Vec::new();
        for (i, c) in parent.children.iter().enumerate() {
            let child_meta = self.meta_unbilled(c.mb);
            let child_tombs: BTreeSet<u64> = self
                .pages_unbilled(&child_meta.tomb)
                .iter()
                .map(|t| t.id)
                .collect();
            if i > 0 {
                let ts = child_meta.ts.as_ref().expect("non-first child has TS");
                let ts_points = self.pages_unbilled(&ts.pages);
                assert_eq!(ts_points.len(), ts.n, "TS count mismatch");
                assert!(
                    ts_points.windows(2).all(|w| w[0].ykey() > w[1].ykey()),
                    "TS snapshot out of order"
                );
                assert!(ts.n <= self.ts_cap_points(), "TS snapshot too large");
                let ts_ids: BTreeSet<u64> = ts_points.iter().map(|p| p.id).collect();
                let ts_min = ts_points.last().map(Point::ykey);
                for p in &left_points {
                    let covered = ts_ids.contains(&p.id)
                        || td_ids.contains(&p.id)
                        || (ts.truncated && ts_min.is_some_and(|m| p.ykey() < m));
                    assert!(
                        covered,
                        "TS coverage hole: point {p:?} invisible to child {i}"
                    );
                }
            } else {
                assert!(child_meta.ts.is_none(), "first child must not have TS");
            }
            for p in self
                .mains_unbilled(child_meta)
                .into_iter()
                .chain(self.pages_unbilled(&child_meta.update))
            {
                // A pending tombstone exempts its victim from coverage and
                // a TD delete-side id must belong to a deleted point.
                if child_tombs.contains(&p.id) {
                    continue;
                }
                assert!(
                    !td_del_ids.contains(&p.id),
                    "TD delete side shadows live point {p:?}"
                );
                left_points.push(p);
            }
        }
    }

    /// Packed control information is an exact mirror of the children's
    /// state: horizontal-prefix, update-page and TS-page mirrors all match.
    fn validate_packed(&self, meta: &MetaBlock) {
        let h = self.pack_h();
        if h == 0 {
            for c in &meta.children {
                assert!(c.packed.h_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.upd_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.tomb_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.ts_pages.is_empty(), "mirror while packing off");
            }
            return;
        }
        for c in &meta.children {
            let child_meta = self.meta_unbilled(c.mb);
            assert_eq!(
                c.packed.h_pages,
                child_meta
                    .horizontal
                    .iter()
                    .take(h)
                    .copied()
                    .collect::<Vec<_>>(),
                "stale packed horizontal-prefix mirror"
            );
            assert_eq!(
                c.packed.h_tops,
                child_meta.hkeys.iter().take(h).copied().collect::<Vec<_>>(),
                "stale packed horizontal-top mirror"
            );
            assert_eq!(
                c.packed.h_live,
                child_meta
                    .h_live
                    .iter()
                    .take(h)
                    .copied()
                    .collect::<Vec<_>>(),
                "stale packed live-count mirror"
            );
            assert_eq!(
                c.packed.h_more,
                child_meta.horizontal.len() > h,
                "stale packed h_more bit"
            );
            assert_eq!(
                c.packed.upd_pages, child_meta.update,
                "stale packed update-page mirror"
            );
            assert_eq!(
                c.packed.tomb_pages, child_meta.tomb,
                "stale packed tombstone-page mirror"
            );
            match &child_meta.ts {
                Some(ts) => {
                    assert_eq!(c.packed.ts_pages, ts.pages, "stale packed TS mirror");
                    assert_eq!(
                        c.packed.ts_truncated, ts.truncated,
                        "stale packed TS truncation bit"
                    );
                }
                None => assert!(c.packed.ts_pages.is_empty(), "packed TS for first child"),
            }
        }
    }

    fn mains_unbilled(&self, meta: &MetaBlock) -> Vec<Point> {
        self.pages_unbilled(&meta.horizontal)
    }

    /// Every page of a blocked run must be full except the last: a merge
    /// (or sort) rebuild that leaked partial pages mid-run would break the
    /// `t/B` output accounting of every scan over it.
    fn assert_dense_run(&self, pages: &[ccix_extmem::PageId], what: &str) {
        for (i, &pg) in pages.iter().enumerate() {
            if i + 1 < pages.len() {
                assert_eq!(
                    self.store.len_unbilled(pg),
                    self.geo.b,
                    "{what} run has a sparse page mid-run"
                );
            }
        }
    }

    fn pages_unbilled(&self, pages: &[ccix_extmem::PageId]) -> Vec<Point> {
        let mut out = Vec::new();
        for &pg in pages {
            out.extend_from_slice(self.store.read_unbilled(pg));
        }
        out
    }

    fn collect_unbilled(&self, mb: MbId, out: &mut Vec<Point>) {
        let meta = self.meta_unbilled(mb);
        out.extend(self.mains_unbilled(meta));
        out.extend(self.pages_unbilled(&meta.update));
        for c in &meta.children {
            self.collect_unbilled(c.mb, out);
        }
    }
}
