//! Bounding boxes over `(coordinate, id)` keys.
//!
//! The metablock tree classifies metablocks against a query (the four types
//! of Fig. 16) using bounding boxes cached in their parent's control
//! information, so classification costs no extra I/O. Boxes are kept over
//! the strict lexicographic keys so that coordinate ties never make a
//! classification ambiguous.

use ccix_extmem::Point;

/// Key type: `(coordinate, id)`.
pub type Key = (i64, u64);

/// A closed bounding box over x and y keys of a nonempty point set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BBox {
    /// Smallest `(x, id)`.
    pub xlo: Key,
    /// Largest `(x, id)`.
    pub xhi: Key,
    /// Smallest `(y, id)`.
    pub ylo: Key,
    /// Largest `(y, id)`.
    pub yhi: Key,
}

impl BBox {
    /// Box of a single point.
    pub fn of_point(p: Point) -> Self {
        Self {
            xlo: p.xkey(),
            xhi: p.xkey(),
            ylo: p.ykey(),
            yhi: p.ykey(),
        }
    }

    /// Box of a nonempty set; `None` for an empty one.
    pub fn of_points(points: &[Point]) -> Option<Self> {
        let mut it = points.iter();
        let first = BBox::of_point(*it.next()?);
        Some(it.fold(first, |acc, p| acc.extended(*p)))
    }

    /// The smallest box containing `self` and `p`.
    pub fn extended(mut self, p: Point) -> Self {
        self.xlo = self.xlo.min(p.xkey());
        self.xhi = self.xhi.max(p.xkey());
        self.ylo = self.ylo.min(p.ykey());
        self.yhi = self.yhi.max(p.ykey());
        self
    }

    /// Union with another box.
    pub fn union(mut self, other: BBox) -> Self {
        self.xlo = self.xlo.min(other.xlo);
        self.xhi = self.xhi.max(other.xhi);
        self.ylo = self.ylo.min(other.ylo);
        self.yhi = self.yhi.max(other.yhi);
        self
    }

    /// Does every point in the box satisfy `y ≥ q`?
    #[inline]
    pub fn all_y_at_least(&self, q: i64) -> bool {
        self.ylo >= (q, 0)
    }

    /// Can some point in the box satisfy `y ≥ q`?
    #[inline]
    pub fn some_y_at_least(&self, q: i64) -> bool {
        self.yhi >= (q, 0)
    }

    /// Does every point in the box satisfy `x ≤ q`?
    #[inline]
    pub fn all_x_at_most(&self, q: i64) -> bool {
        self.xhi <= (q, u64::MAX)
    }
}

/// Extend an optional box (empty-set-aware union with a point).
pub fn extend_opt(b: Option<BBox>, p: Point) -> Option<BBox> {
    Some(match b {
        Some(b) => b.extended(p),
        None => BBox::of_point(p),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_and_extend() {
        let pts = vec![
            Point::new(3, 9, 1),
            Point::new(1, 4, 2),
            Point::new(5, 7, 3),
        ];
        let b = BBox::of_points(&pts).unwrap();
        assert_eq!(b.xlo, (1, 2));
        assert_eq!(b.xhi, (5, 3));
        assert_eq!(b.ylo, (4, 2));
        assert_eq!(b.yhi, (9, 1));
        assert_eq!(BBox::of_points(&[]), None);
    }

    #[test]
    fn predicates() {
        let b = BBox::of_points(&[Point::new(0, 5, 1), Point::new(2, 8, 2)]).unwrap();
        assert!(b.all_y_at_least(5));
        assert!(!b.all_y_at_least(6));
        assert!(b.some_y_at_least(8));
        assert!(!b.some_y_at_least(9));
        assert!(b.all_x_at_most(2));
        assert!(!b.all_x_at_most(1));
    }

    #[test]
    fn union_covers_both() {
        let a = BBox::of_point(Point::new(0, 1, 1));
        let b = BBox::of_point(Point::new(9, 9, 2));
        let u = a.union(b);
        assert_eq!(u.xlo, (0, 1));
        assert_eq!(u.yhi, (9, 2));
    }
}
