//! Mixed write operations for the batched `apply_batch` paths.

use ccix_extmem::Point;

/// One write operation of a mixed batch (see
/// [`crate::MetablockTree::apply_batch`] and
/// [`crate::ThreeSidedTree::apply_batch`]).
///
/// Ops within one batch must be independent: the batch is re-ordered by
/// x-key before routing, so deleting a point that the same batch inserts
/// is a contract violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert the point.
    Insert(Point),
    /// Delete a previously inserted point (routes a tombstone).
    Delete(Point),
}

impl Op {
    /// The point the operation routes on.
    pub fn point(&self) -> Point {
        match *self {
            Op::Insert(p) | Op::Delete(p) => p,
        }
    }
}
