//! The corner structure of Lemma 3.1.
//!
//! A set `S` of at most `k·B²` points (all above the diagonal `y ≥ x`) is
//! blocked so that any **diagonal-corner query** — report `{p ∈ S : p.x ≤ q ≤
//! p.y}` — costs at most `2t/B + O(1)` I/Os, using `O(k·B)` blocks:
//!
//! 1. `S` is split into a vertically oriented blocking (x-sorted, `B` per
//!    block); the right boundaries of the blocks form the candidate corner
//!    set `C`.
//! 2. A subset `C* ⊆ C` is chosen greedily from right to left; for each
//!    `c ∈ C*` the full answer to the query cornered at `c` is stored
//!    explicitly as a horizontally oriented blocking. The greedy rule
//!    (`|Δ⁻| + |Δ⁺| > |S_i|`, Fig. 12) simplifies — see
//!    [`CornerStructure::build`] — to *"adopt `cᵢ` when `|S*_j| > 2·|Ωᵢ|`"*,
//!    which keeps the total explicit storage under `2|S|` by the paper's
//!    charging argument.
//! 3. A query at `q` finds the rightmost `c* ≤ q` in a one-block index, reads
//!    the explicit answer for `c*` top-down until it falls below `q`
//!    (stage 1, Fig. 13a), then reads vertical blocks to the right of `c*`
//!    up to the block containing `q` (stage 2, Fig. 13b).

use ccix_extmem::{PageId, Point, TypedStore};

use crate::bbox::Key;

/// An adopted corner `c* ∈ C*` with its explicitly blocked answer.
#[derive(Clone, Debug)]
struct CStar {
    /// The boundary key of the corner (last x-key of vertical block `block`).
    key: Key,
    /// Index of the vertical block whose right boundary this corner is.
    block: usize,
    /// Explicit answer `{p : p.xkey ≤ key ∧ p.y ≥ key.0}`, y-descending,
    /// `B` points per page.
    pages: Vec<PageId>,
    /// First (largest) y-key of each explicit page — directory info that
    /// stops the stage-1 scan *before* a page with no answers.
    page_tops: Vec<Key>,
}

/// A Lemma 3.1 corner structure over one metablock's point set.
///
/// Pages live in the tree's shared point store; [`CornerStructure::free`]
/// releases them during reorganisations. The stage-2 vertical blocking can
/// either be owned (standalone structures, TD tracking) or *borrowed* from
/// the metablock's own vertical blocking — the two are byte-identical
/// (x-sorted, `B` per block), so a per-metablock corner structure built via
/// [`CornerStructure::build_shared`] stores only the explicit `C*` answer
/// sets and cuts the structure's space by a full `|S|/B` blocks.
#[derive(Clone, Debug, Default)]
pub struct CornerStructure {
    vertical: Vec<PageId>,
    /// Whether `vertical` is owned (freed with the structure) or borrowed
    /// from the host metablock's vertical blocking.
    owns_vertical: bool,
    /// Right-boundary key of each vertical block (the candidate set `C`).
    boundaries: Vec<Key>,
    /// Largest `y` in each vertical block, so a stage-2 scan skips blocks
    /// that cannot contain an answer (directory info, like `boundaries`).
    block_ymax: Vec<i64>,
    cstars: Vec<CStar>,
    n: usize,
}

impl CornerStructure {
    /// Build over `points` (unsorted is fine; a copy is sorted internally),
    /// with the paper's adoption factor `α = 2` and an owned vertical
    /// blocking.
    ///
    /// I/O cost: one write per emitted page (vertical blocking + explicit
    /// sets). The greedy selection itself runs in memory — the set is at
    /// most `2B²` points, within the paper's `O(B²)` main-memory assumption.
    pub fn build(store: &mut TypedStore<Point>, points: &[Point]) -> Self {
        Self::build_tuned(store, points, 2)
    }

    /// As [`CornerStructure::build`], with an explicit adoption factor
    /// (see [`CornerStructure::build_shared`] for its meaning).
    pub fn build_tuned(store: &mut TypedStore<Point>, points: &[Point], alpha: usize) -> Self {
        Self::build_from_sorted(
            store,
            &ccix_extmem::SortedRun::from_unsorted(points.to_vec()),
            alpha,
        )
    }

    /// As [`CornerStructure::build_tuned`] over an already x-sorted run —
    /// the TD rebuild path: the previous TD corner's vertical blocking is
    /// x-sorted, so folding a staged delta in is a merge, not a re-sort.
    pub fn build_from_sorted(
        store: &mut TypedStore<Point>,
        sorted: &ccix_extmem::SortedRun,
        alpha: usize,
    ) -> Self {
        let plan = CornerPlan::plan(sorted, store.capacity(), alpha);
        let vertical = store.alloc_run(sorted);
        plan.materialise(store, vertical, true)
    }

    /// Build over a point set whose x-sorted vertical blocking already
    /// exists (a metablock's own vertical blocking): only the explicit
    /// answer sets are allocated; stage 2 reads the shared pages.
    ///
    /// `by_x` must be x-sorted and `vertical` must be its `B`-per-page run.
    /// `alpha` is the greedy adoption factor: candidate `cᵢ` is adopted when
    /// `|S*_j| > α·Ωᵢ` (the paper's rule is `α = 2`, which bounds the
    /// explicit storage by `2|S|`; larger `α` adopts fewer corners — less
    /// space, a little more stage-2 scanning per query).
    pub fn build_shared(
        store: &mut TypedStore<Point>,
        by_x: &[Point],
        vertical: &[PageId],
        alpha: usize,
    ) -> Self {
        debug_assert!(by_x.windows(2).all(|w| w[0].xkey() <= w[1].xkey()));
        CornerPlan::plan(by_x, store.capacity(), alpha).materialise(store, vertical.to_vec(), false)
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the structure indexes no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Pages *owned* by the structure (explicit sets, plus the vertical
    /// blocking unless it is shared with the host metablock).
    pub fn pages(&self) -> usize {
        let vertical = if self.owns_vertical {
            self.vertical.len()
        } else {
            0
        };
        vertical + self.cstars.iter().map(|c| c.pages.len()).sum::<usize>()
    }

    /// Exact page count the query at `q` would read, computed purely from
    /// directory information (per-page top keys, per-block y-maxima). Lets
    /// a host metablock pick the cheaper of the corner query and a filtered
    /// scan of its own horizontal blocking.
    pub fn planned_cost(&self, q: i64) -> usize {
        if self.n == 0 {
            return 0;
        }
        let qkey: Key = (q, u64::MAX);
        let qk: Key = (q, 0);
        let floor = self.cstars.partition_point(|c| c.key <= qkey);
        let (start_block, stage1) = match floor {
            0 => (0, 0),
            i => {
                let c = &self.cstars[i - 1];
                // The scan reads pages while their top is ≥ (q, 0) and
                // stops inside the crossing page — exactly this count.
                (
                    c.block + 1,
                    c.page_tops.iter().take_while(|&&t| t >= qk).count(),
                )
            }
        };
        let mut stage2 = 0;
        for i in start_block..self.vertical.len() {
            if self.block_ymax[i] >= q {
                stage2 += 1;
            }
            if self.boundaries[i] >= qkey {
                break;
            }
        }
        stage1 + stage2
    }

    /// Answer the diagonal-corner query at `q`, appending matches to `out`.
    ///
    /// Costs at most `2⌈t/B⌉ + 6` reads (Lemma 3.1 gives `2t/B + 4` in
    /// ceiling-free arithmetic; two extra blocks come from rounding the two
    /// stages separately): one index read, the stage-1 explicit scan, and
    /// the stage-2 vertical scan. The per-page directory keys usually do
    /// better: a page is read only if it contains at least one answer.
    pub fn query_into(&self, store: &TypedStore<Point>, q: i64, out: &mut Vec<Point>) {
        if self.n == 0 {
            return;
        }
        // The index block: boundaries of C and the C* directory fit in a
        // constant number of pages for k ≤ B (|C| = kB/B ≤ B entries);
        // charge one read.
        store.counter().add_reads(1);
        self.query_stages(store, &mut PlainReads, q, out);
    }

    /// As [`CornerStructure::query_into`] inside a pinned operation: pages
    /// are billed through the operation's [`ReadCtx`], and the directory —
    /// which rides in the host metablock's control block `host` — costs
    /// nothing when that block is already resident.
    pub(crate) fn query_pinned(
        &self,
        store: &TypedStore<Point>,
        ctx: &mut crate::diag::ReadCtx,
        host: (u32, u64),
        q: i64,
        out: &mut Vec<Point>,
    ) {
        if self.n == 0 {
            return;
        }
        ctx.touch(host.0, host.1);
        self.query_stages(store, &mut PinnedReads { ctx }, q, out);
    }

    /// The two query stages, parameterised over how page reads are billed.
    fn query_stages<R: PageReads>(
        &self,
        store: &TypedStore<Point>,
        reads: &mut R,
        q: i64,
        out: &mut Vec<Point>,
    ) {
        let qkey: Key = (q, u64::MAX);
        // Rightmost adopted corner at or left of q.
        let floor = self.cstars.partition_point(|c| c.key <= qkey);
        let (start_block, stage1) = match floor {
            0 => (0, None),
            i => {
                let c = &self.cstars[i - 1];
                (c.block + 1, Some(c))
            }
        };

        // Stage 1: explicit answer of the floor corner, top-down until the
        // query's bottom boundary. Every point there has x ≤ c* ≤ q; the
        // page-top keys stop before a page with no answers.
        if let Some(c) = stage1 {
            'stage1: for (i, &page) in c.pages.iter().enumerate() {
                if c.page_tops[i] < (q, 0) {
                    break;
                }
                for p in reads.read(store, page) {
                    if p.y < q {
                        break 'stage1;
                    }
                    out.push(*p);
                }
            }
        }

        // Stage 2: vertical blocks strictly right of the floor corner, left
        // to right, up to the block containing q; blocks whose largest y is
        // below the corner are skipped from the directory.
        for i in start_block..self.vertical.len() {
            if self.block_ymax[i] >= q {
                let mut crossed = false;
                for p in reads.read(store, self.vertical[i]) {
                    if p.xkey() > qkey {
                        crossed = true;
                        break;
                    }
                    if p.y >= q {
                        out.push(*p);
                    }
                }
                if crossed {
                    break;
                }
            }
            // If this block's boundary already covers q we are done.
            if self.boundaries[i] >= qkey {
                break;
            }
        }
    }

    /// Read back every indexed point (one I/O per vertical block); used when
    /// a TD structure is rebuilt with newly staged points.
    pub fn collect_points(&self, store: &TypedStore<Point>) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.n);
        for &pg in &self.vertical {
            out.extend_from_slice(store.read(pg));
        }
        out
    }

    /// As [`CornerStructure::collect_points`], without charging I/Os
    /// (validation only).
    pub fn collect_points_unbilled(&self, store: &TypedStore<Point>) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.n);
        for &pg in &self.vertical {
            out.extend_from_slice(store.read_unbilled(pg));
        }
        out
    }

    /// Release every page owned by the structure (a shared vertical blocking
    /// belongs to the host metablock and is left alone).
    pub fn free(self, store: &mut TypedStore<Point>) {
        if self.owns_vertical {
            store.free_run(&self.vertical);
        }
        for c in self.cstars {
            store.free_run(&c.pages);
        }
    }
}

/// The CPU-only half of a corner-structure build: the Fenwick-backed greedy
/// corner selection (Fig. 12) and the one-sweep explicit-answer bucketing,
/// computed from the x-sorted point set with **no store access and no
/// I/O** — a pure function, so the metablock trees run it on scoped worker
/// threads during their parallel build-planning phases.
/// [`CornerPlan::materialise`] then allocates the explicit answer sets on
/// the calling thread (one write per page, as before).
#[derive(Clone, Debug)]
pub(crate) struct CornerPlan {
    boundaries: Vec<Key>,
    block_ymax: Vec<i64>,
    /// Adopted corners in ascending block order: (vertical block index,
    /// corner key, explicit answer y-descending).
    answers: Vec<(usize, Key, Vec<Point>)>,
    n: usize,
}

impl CornerPlan {
    /// Plan over x-sorted `sorted` with vertical block size `b` and greedy
    /// adoption factor `alpha`.
    pub(crate) fn plan(sorted: &[Point], b: usize, alpha: usize) -> Self {
        assert!(alpha >= 1, "adoption factor must be at least 1");
        let boundaries: Vec<Key> = sorted
            .chunks(b)
            .map(|c| c.last().expect("chunks are nonempty").xkey())
            .collect();
        let block_ymax: Vec<i64> = sorted
            .chunks(b)
            .map(|c| c.iter().map(|p| p.y).max().expect("chunks are nonempty"))
            .collect();
        let m = boundaries.len();
        let mut plan = Self {
            boundaries,
            block_ymax,
            answers: Vec::new(),
            n: sorted.len(),
        };
        if m < 2 {
            return plan; // single block: stage 2 alone answers queries
        }

        // One y-argsort (descending ykey) shared by the Fenwick ranks and
        // the answer bucketing below — the plan's only `O(n log n)` sort.
        let mut by_y_idx: Vec<u32> = (0..sorted.len() as u32).collect();
        by_y_idx.sort_unstable_by_key(|&i| std::cmp::Reverse(sorted[i as usize].ykey()));

        // Candidate i is the right boundary of block i, for i = 0..m-1
        // (the last block's boundary is not a candidate). Process right to
        // left; the rightmost candidate is always adopted.
        //
        // Given the last adopted corner c*_j and a candidate c_i < c*_j
        // (Fig. 12):
        //   Ω_i  = |{p : p.xkey ≤ c_i ∧ p.y ≥ c*_j.x}|
        //   S_i  = |{p : p.xkey ≤ c_i ∧ p.y ≥ c_i.x}|   (answer at c_i)
        //   Δ⁻_i = S_i − Ω_i
        //   Δ⁺_i = |S*_j| − Ω_i
        // The adoption test |Δ⁻| + |Δ⁺| > |S_i| is therefore equivalent to
        // |S*_j| > 2·Ω_i.
        //
        // The counts come from per-block y-descending key lists (filled in
        // one pass off the shared argsort): "points with y ≥ bound among
        // blocks 0..=i" is a partition-point sum, `O(i log B)` per
        // candidate. With m ≤ 2B + 1 blocks for every corner structure a
        // metablock or TD can hold, the whole sweep is `O(m² log B)` —
        // cheaper (and far lighter on the allocator) than the Fenwick
        // sweep it replaces, with bit-identical adoption decisions. This
        // matters because the TD fold rebuilds its corner every `k·B`
        // inserts (see docs/tuning.md).
        let counts = BlockCounts::new(sorted, b, &by_y_idx);

        let mut adopted: Vec<(usize, Key)> = Vec::new();
        let last_cand = m - 2;
        adopted.push((last_cand, plan.boundaries[last_cand]));
        let mut sj_x = plan.boundaries[last_cand].0;
        let mut sj_size = counts.count_y_ge(last_cand, sj_x);

        for i in (0..last_cand).rev() {
            let ci = plan.boundaries[i];
            let omega = counts.count_y_ge(i, sj_x);
            if sj_size > alpha * omega {
                let si = counts.count_y_ge(i, ci.0);
                adopted.push((i, ci));
                sj_x = ci.0;
                sj_size = si;
            }
        }
        adopted.reverse(); // ascending block order

        // Explicitly block the answer for every adopted corner, in one
        // sweep over the points instead of one prefix re-scan per corner
        // (the old per-corner filter was quadratic in the block count and
        // dominated build wall-clock at large B — see docs/tuning.md).
        // Point p belongs to the answer of adopted corner c iff
        // `block(p) ≤ c.block` (so `p.xkey ≤ c.key`) and `p.y ≥ c.key.0` —
        // with corners in ascending block/key order that is a contiguous
        // corner range, and the total bucket volume is ≤ 2|S| by the
        // paper's charging argument.
        let corner_xs: Vec<i64> = adopted.iter().map(|&(_, k)| k.0).collect();
        let corner_blocks: Vec<usize> = adopted.iter().map(|&(bl, _)| bl).collect();
        let mut answers: Vec<Vec<Point>> = vec![Vec::new(); adopted.len()];
        // Sweep in descending-y order (the shared argsort) so every bucket
        // comes out y-sorted for free — no per-answer re-sort. The strict
        // `(y, id)` order makes the result identical to sorting each
        // bucket, and the TD fold (which rebuilds its corner every `k·B`
        // inserts) stops paying `O(|answers| log)` per fold.
        for &i in &by_y_idx {
            let idx = i as usize;
            let p = sorted[idx];
            let start = corner_blocks.partition_point(|&bl| bl < idx / b);
            let end = corner_xs.partition_point(|&x| x <= p.y);
            for bucket in answers[..end].iter_mut().skip(start) {
                bucket.push(p);
            }
        }
        plan.answers = adopted
            .into_iter()
            .zip(answers)
            .map(|((block, key), answer)| (block, key, answer))
            .collect();
        plan
    }

    /// Allocate the explicit answer sets and assemble the structure over
    /// the given vertical blocking (owned or borrowed from the host
    /// metablock). One write I/O per emitted page, on the calling thread.
    pub(crate) fn materialise(
        self,
        store: &mut TypedStore<Point>,
        vertical: Vec<PageId>,
        owns_vertical: bool,
    ) -> CornerStructure {
        let b = store.capacity();
        let cstars = self
            .answers
            .into_iter()
            .map(|(block, key, answer)| {
                let page_tops: Vec<Key> = answer.chunks(b).map(|c| c[0].ykey()).collect();
                let pages = store.alloc_run(&answer);
                CStar {
                    key,
                    block,
                    pages,
                    page_tops,
                }
            })
            .collect();
        CornerStructure {
            vertical,
            owns_vertical,
            boundaries: self.boundaries,
            block_ymax: self.block_ymax,
            cstars,
            n: self.n,
        }
    }
}

/// How [`CornerStructure::query_stages`] bills page reads: directly against
/// the store's counter, or through a per-operation pin.
trait PageReads {
    fn read<'s>(&mut self, store: &'s TypedStore<Point>, pg: PageId) -> &'s [Point];
}

struct PlainReads;

impl PageReads for PlainReads {
    fn read<'s>(&mut self, store: &'s TypedStore<Point>, pg: PageId) -> &'s [Point] {
        store.read(pg)
    }
}

struct PinnedReads<'c> {
    ctx: &'c mut crate::diag::ReadCtx,
}

impl PageReads for PinnedReads<'_> {
    fn read<'s>(&mut self, store: &'s TypedStore<Point>, pg: PageId) -> &'s [Point] {
        store.read_pinned(&mut self.ctx.pin, crate::diag::SPACE_STORE, pg)
    }
}

/// Per-block y-descending key lists for the greedy selection's prefix
/// counts: one flat buffer, block `j`'s keys at `j·B..` in descending
/// order, filled in a single pass off the shared y-argsort. A corner
/// structure never spans more than `2B + 1` vertical blocks (its host
/// holds at most `2B²` points), so the `O(prefix · log B)` per-candidate
/// count keeps the whole sweep cheaper than maintaining a Fenwick tree —
/// with exactly the same counts, hence bit-identical adoption.
struct BlockCounts {
    /// y values, block-major, descending within each block.
    ys: Vec<i64>,
    /// Block size `B` (last block may be shorter).
    b: usize,
    n: usize,
}

impl BlockCounts {
    fn new(points: &[Point], b: usize, by_y_idx: &[u32]) -> Self {
        let n = points.len();
        let mut ys = vec![0i64; n];
        let blocks = n.div_ceil(b);
        // Per-block write cursors: walking the global y-desc order fills
        // each block's slice in descending order.
        let mut cursor: Vec<usize> = (0..blocks).map(|j| j * b).collect();
        for &i in by_y_idx {
            let j = i as usize / b;
            ys[cursor[j]] = points[i as usize].y;
            cursor[j] += 1;
        }
        Self { ys, b, n }
    }

    /// Points with `y ≥ bound` among blocks `0..=upto_block`.
    fn count_y_ge(&self, upto_block: usize, bound: i64) -> usize {
        let end = self.n.min((upto_block + 1) * self.b);
        self.ys[..end]
            .chunks(self.b)
            .map(|block| block.partition_point(|&v| v >= bound))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::{Geometry, IoCounter};
    use ccix_pst::oracle;

    fn above_diagonal_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..n)
            .map(|i| {
                let a = (next() % range as u64) as i64;
                let b = (next() % range as u64) as i64;
                Point::new(a.min(b), a.max(b), i as u64)
            })
            .collect()
    }

    fn build(b: usize, pts: &[Point]) -> (TypedStore<Point>, CornerStructure, IoCounter) {
        let counter = IoCounter::new();
        let mut store = TypedStore::new(b, counter.clone());
        let cs = CornerStructure::build(&mut store, pts);
        (store, cs, counter)
    }

    #[test]
    fn empty_set() {
        let (store, cs, _) = build(4, &[]);
        let mut out = Vec::new();
        cs.query_into(&store, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(cs.pages(), 0);
    }

    #[test]
    fn single_block_set() {
        let pts = vec![
            Point::new(0, 5, 1),
            Point::new(2, 3, 2),
            Point::new(4, 9, 3),
        ];
        let (store, cs, _) = build(4, &pts);
        for q in -1..=10 {
            let mut out = Vec::new();
            cs.query_into(&store, q, &mut out);
            oracle::assert_same_points(out, oracle::diagonal_corner(&pts, q), &format!("q={q}"));
        }
    }

    #[test]
    fn random_sets_match_oracle() {
        for &(n, b) in &[
            (50usize, 4usize),
            (300, 4),
            (256, 16),
            (1000, 8),
            (2048, 16),
        ] {
            let pts = above_diagonal_points(n, 0xABC + n as u64, 200);
            let (store, cs, _) = build(b, &pts);
            for q in (-5..205).step_by(7) {
                let mut out = Vec::new();
                cs.query_into(&store, q, &mut out);
                oracle::assert_same_points(
                    out,
                    oracle::diagonal_corner(&pts, q),
                    &format!("n={n} b={b} q={q}"),
                );
            }
        }
    }

    /// Lemma 3.1: queries cost at most `2⌈t/B⌉ + 6` I/Os (see query docs).
    #[test]
    fn io_bound_holds() {
        for &(n, b) in &[(256usize, 16usize), (512, 16), (2048, 32), (900, 8)] {
            let pts = above_diagonal_points(n, 0xFEED + n as u64, 1000);
            let (store, cs, counter) = build(b, &pts);
            let geo = Geometry::new(b);
            for q in (-10..1010).step_by(13) {
                let before = counter.snapshot();
                let mut out = Vec::new();
                cs.query_into(&store, q, &mut out);
                let cost = counter.since(before);
                let bound = 2 * geo.out_blocks(out.len()) + 6;
                assert!(
                    cost.reads <= bound as u64,
                    "n={n} b={b} q={q}: {} reads > {bound} (t={})",
                    cost.reads,
                    out.len()
                );
            }
        }
    }

    /// The staircase from Proposition 3.3 — each integer corner stabs the
    /// two stairs `(q-1, q)` and `(q, q+1)`; queries must stay O(1) reads.
    #[test]
    fn staircase_queries_are_constant() {
        let b = 8;
        let n = 512;
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i, i + 1, i as u64)).collect();
        let (store, cs, counter) = build(b, &pts);
        for q in 1..n {
            let before = counter.snapshot();
            let mut out = Vec::new();
            cs.query_into(&store, q, &mut out);
            let cost = counter.since(before);
            assert_eq!(out.len(), 2, "q={q}");
            assert!(cost.reads <= 8, "q={q} reads={}", cost.reads);
        }
    }

    /// Space stays within the paper's `O(kB)` bound: explicit sets total at
    /// most 2|S| points, so pages ≤ 3·|S|/B + |C*|.
    #[test]
    fn space_bound_holds() {
        for &(n, b) in &[(1024usize, 16usize), (4096, 32), (333, 4)] {
            let pts = above_diagonal_points(n, 0x5EED + n as u64, (n / 2) as i64);
            let (_, cs, _) = build(b, &pts);
            let geo = Geometry::new(b);
            let max_pages = 3 * geo.out_blocks(n) + cs.cstars.len() + 1;
            assert!(
                cs.pages() <= max_pages,
                "n={n} b={b}: {} pages > {max_pages}",
                cs.pages()
            );
        }
    }

    #[test]
    fn duplicate_coordinates() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(3, 7, i)).collect();
        let (store, cs, _) = build(4, &pts);
        for q in [2, 3, 5, 7, 8] {
            let mut out = Vec::new();
            cs.query_into(&store, q, &mut out);
            oracle::assert_same_points(out, oracle::diagonal_corner(&pts, q), &format!("q={q}"));
        }
    }

    #[test]
    fn shared_vertical_matches_owning_build() {
        let pts = above_diagonal_points(700, 0x5AA, 300);
        let counter = IoCounter::new();
        let mut store = TypedStore::new(8, counter);
        let mut by_x = pts.clone();
        ccix_extmem::sort_by_x(&mut by_x);
        let vertical = store.alloc_run(&by_x);
        let cs = CornerStructure::build_shared(&mut store, &by_x, &vertical, 2);
        for q in (-5..305).step_by(11) {
            let mut out = Vec::new();
            cs.query_into(&store, q, &mut out);
            oracle::assert_same_points(out, oracle::diagonal_corner(&pts, q), &format!("q={q}"));
        }
        // Freeing the structure must leave the host blocking alive.
        let explicit = cs.pages();
        let before = store.pages_in_use();
        cs.free(&mut store);
        assert_eq!(store.pages_in_use(), before - explicit);
        assert_eq!(store.read_unbilled(vertical[0]).len(), 8);
    }

    #[test]
    fn larger_alpha_trades_pages_for_scanning() {
        let pts = above_diagonal_points(4096, 0xA1FA, 2000);
        let (_, cs2, _) = build(16, &pts);
        let counter = IoCounter::new();
        let mut store = TypedStore::new(16, counter);
        let cs4 = CornerStructure::build_tuned(&mut store, &pts, 4);
        assert!(
            cs4.pages() <= cs2.pages(),
            "alpha=4 uses {} pages, alpha=2 uses {}",
            cs4.pages(),
            cs2.pages()
        );
        for q in (-5..2005).step_by(37) {
            let mut out = Vec::new();
            cs4.query_into(&store, q, &mut out);
            oracle::assert_same_points(
                out,
                oracle::diagonal_corner(&pts, q),
                &format!("alpha=4 q={q}"),
            );
        }
    }

    #[test]
    fn free_releases_all_pages() {
        let pts = above_diagonal_points(500, 1, 100);
        let counter = IoCounter::new();
        let mut store = TypedStore::new(8, counter);
        let cs = CornerStructure::build(&mut store, &pts);
        assert!(store.pages_in_use() > 0);
        cs.free(&mut store);
        assert_eq!(store.pages_in_use(), 0);
    }
}
