//! The 3-sided search (Lemma 4.3, Fig. 21), pinned and packed.
//!
//! Report every point with `x1 ≤ x ≤ x2 ∧ y ≥ y0`. The search descends the
//! (at most two) slabs containing the query's vertical sides. A visited
//! metablock that straddles `y0` is answered by its own PST and is terminal
//! (its subtree is strictly below, by the routing invariant). A metablock
//! entirely above `y0` reports its mains inside `[x1, x2]` from the vertical
//! blocking, recurses into its boundary children, and deals with the
//! *middle* children (slabs fully inside the x-range) by class:
//!
//! * fully-above middles are reported wholesale (Type III);
//! * straddling middles are resolved by a sibling snapshot — `TSR` of the
//!   child left of the middles when the query opens to the right of the
//!   slab, `TSL` mirrored — with the same certificate/crossing dichotomy as
//!   the diagonal tree; at the unique *fork* node (both vertical sides in
//!   different children, the paper's case (4)) the parent's **children PST**
//!   answers for all of them at once, which is where the one `O(log2 B)`
//!   term of Theorem 4.7 is spent.
//!
//! PR 3's read-path rework applies exactly as in `crate::diag::query`:
//! every read is billed once per residency through the operation's
//! [`ReadCtx`] (shared by a whole [`ThreeSidedTree::query_batch`], which
//! also pins PST node pages); the sibling-snapshot runs are mirrored in the
//! parent's packed entries so the route never loads the anchor child's
//! control block; straddling middles are examined from the packed
//! horizontal-prefix mirrors; and the `vkeys`/`hkeys` boundary keys stop
//! scans before a page with no answers.

use ccix_extmem::Point;

use super::{ThreeSidedTree, TsMeta};
use crate::bbox::Key;
use crate::diag::{ChildEntry, MbId, ReadCtx};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChildClass {
    Full,
    Partial,
    /// Empty mains (a delete flood cancelled them all) over a possibly
    /// live subtree: takes a full recursive search (see the diagonal
    /// tree's `ChildClass::Recurse`).
    Recurse,
    Dead,
}

fn classify(c: &ChildEntry, y0: i64) -> ChildClass {
    let qk: Key = (y0, 0);
    let mains_full = c.main_bbox.is_some_and(|b| b.ylo >= qk);
    let mains_some = c.main_bbox.is_some_and(|b| b.yhi >= qk);
    let upd_some = c.upd_ymax.is_some_and(|y| y >= qk);
    let sub_some = c.sub_yhi.is_some_and(|y| y >= qk);
    debug_assert!(
        !sub_some || mains_full || c.main_bbox.is_none(),
        "routing invariant violated"
    );
    if mains_full && c.main_bbox.is_some() {
        ChildClass::Full
    } else if c.main_bbox.is_none() && sub_some {
        ChildClass::Recurse
    } else if mains_some || upd_some {
        ChildClass::Partial
    } else {
        ChildClass::Dead
    }
}

fn child_live(c: &ChildEntry, y0: i64) -> bool {
    let qk: Key = (y0, 0);
    c.main_bbox.is_some_and(|b| b.yhi >= qk)
        || c.upd_ymax.is_some_and(|y| y >= qk)
        || c.sub_yhi.is_some_and(|y| y >= qk)
}

/// Which sibling snapshot resolves the straddling middles.
#[derive(Clone, Copy)]
enum SnapshotSide {
    /// `TSR` of the child left of the middles.
    Right,
    /// `TSL` of the child right of the middles.
    Left,
}

impl ThreeSidedTree {
    /// Report every point with `x1 ≤ x ≤ x2 ∧ y ≥ y0`.
    pub fn query(&self, x1: i64, x2: i64, y0: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y0, &mut out);
        out
    }

    /// As [`ThreeSidedTree::query`], appending into `out`.
    /// `O(log_B n + t/B + log2 B)` I/Os.
    pub fn query_into(&self, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let mut ctx = self.read_ctx();
        let start = out.len();
        self.query_ctx(&mut ctx, x1, x2, y0, out);
        crate::diag::filter_deleted(&ctx, start, out);
    }

    /// Answer a batch of 3-sided queries as one pinned operation: queries
    /// are processed in sorted order over a shared read context, so control
    /// blocks, PST nodes and data pages of the shared descent prefix are
    /// billed once per residency instead of once per query. Results are in
    /// input order.
    pub fn query_batch(&self, queries: &[(i64, i64, i64)]) -> Vec<Vec<Point>> {
        let mut outs = Vec::new();
        self.query_batch_into(queries, &mut outs);
        outs
    }

    /// As [`ThreeSidedTree::query_batch`], reusing `outs` for the
    /// per-query result buffers (resized to `queries.len()`, each slot
    /// cleared) — the canonical `_into` shape of the batch surface, see
    /// `docs/architecture.md` § Batched operations.
    pub fn query_batch_into(&self, queries: &[(i64, i64, i64)], outs: &mut Vec<Vec<Point>>) {
        outs.truncate(queries.len());
        for o in outs.iter_mut() {
            o.clear();
        }
        outs.resize_with(queries.len(), Vec::new);
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_by_key(|&i| queries[i]);
        let mut ctx = self.read_ctx();
        for &i in &order {
            let (x1, x2, y0) = queries[i];
            self.query_ctx(&mut ctx, x1, x2, y0, &mut outs[i]);
        }
        // Tombstone ids are globally deleted: filter every answer of the
        // batch against the ids the whole operation discovered.
        crate::diag::filter_deleted_batch(&ctx, outs);
    }

    /// One query within an existing read context.
    pub(crate) fn query_ctx(
        &self,
        ctx: &mut ReadCtx,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.process(ctx, root, x1, x2, y0, out);
        }
        // While a background shrink job is in progress, the query consults
        // both sides: the (frozen or rebuilt) tree above, and the job's
        // delta of diverted updates and tombstones here.
        self.scan_delta_query(ctx, x1, x2, y0, out);
    }

    /// Process a metablock on a boundary path.
    fn process(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let meta = self.ctx_meta(ctx, mb);
        self.scan_update_pages(ctx, &meta.update, x1, x2, y0, out);
        mirror_tombs(ctx, &meta.tomb_buf, x1, x2, y0);
        let (Some(bbox), Some(ylo)) = (meta.main_bbox, meta.y_lo_main) else {
            // Empty mains (fresh root or delete-flood degenerate): nothing
            // of its own to report, but live descendants stay reachable.
            if !meta.is_leaf() {
                self.process_children(ctx, mb, meta, x1, x2, y0, out);
            }
            return;
        };
        let qk: Key = (y0, 0);
        if qk > bbox.yhi {
            return; // mains and (by routing invariant) subtree below y0
        }
        if qk > ylo {
            // Straddling node: its own PST answers; subtree is below y0.
            if let Some(pst) = &meta.pst {
                pst.query_pinned(&mut ctx.pin, Self::pst_space(mb, 0), x1, x2, y0, out);
            } else {
                debug_assert!(meta.n_main <= self.geo.b, "missing metablock PST");
                for &pg in &meta.vertical {
                    for p in self.ctx_read(ctx, pg) {
                        if p.x >= x1 && p.x <= x2 && p.y >= y0 {
                            out.push(*p);
                        }
                    }
                }
            }
            return;
        }

        // Entirely above y0: mains inside [x1, x2] via the vertical blocking
        // (page boundaries located from the control info, ≤ 2 slack blocks).
        self.vertical_scan_range(ctx, meta, x1, x2, out);
        if meta.is_leaf() {
            return;
        }
        self.process_children(ctx, mb, meta, x1, x2, y0, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn process_children(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        meta: &TsMeta,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let children = &meta.children;
        let a1k: Key = (x1, u64::MIN);
        let a2k: Key = (x2, u64::MAX);
        let len = children.len();

        // First child that can hold x ≥ x1, and first whose slab extends
        // beyond (x2, MAX).
        let i1 = children.partition_point(|c| c.slab_hi <= a1k);
        let i2 = children.partition_point(|c| c.slab_hi <= a2k);
        if i1 >= len {
            return; // every child is strictly left of x1
        }
        if i1 == i2 {
            // Both vertical sides within one child: no middles, recurse.
            let c = &children[i1];
            if c.slab_lo <= a2k && child_live(c, y0) {
                self.process(ctx, c.mb, x1, x2, y0, out);
            }
            return;
        }

        // Boundary children: i1 if x1 cuts into it, i2 if it exists and x2
        // cuts into it. Everything between is a middle (slab ⊆ [x1, x2]).
        let left_boundary = children[i1].slab_lo < a1k;
        let right_boundary = i2 < len && children[i2].slab_lo <= a2k;
        let m_start = if left_boundary { i1 + 1 } else { i1 };
        let m_end = i2; // exclusive
        if left_boundary && child_live(&children[i1], y0) {
            self.process(ctx, children[i1].mb, x1, x2, y0, out);
        }
        if right_boundary && child_live(&children[i2], y0) {
            self.process(ctx, children[i2].mb, x1, x2, y0, out);
        }
        if m_start >= m_end {
            return;
        }

        let mut full: Vec<usize> = Vec::new();
        let mut partial: Vec<usize> = Vec::new();
        for (i, c) in children[m_start..m_end].iter().enumerate() {
            match classify(c, y0) {
                ChildClass::Full => full.push(m_start + i),
                ChildClass::Partial => partial.push(m_start + i),
                // Delete-flood degenerate: full recursive search, outside
                // the snapshot protocol (no snapshot covers its depths).
                ChildClass::Recurse => self.process(ctx, c.mb, x1, x2, y0, out),
                ChildClass::Dead => {}
            }
        }
        for &i in &full {
            self.report_all(ctx, children[i].mb, x1, x2, y0, out);
        }
        match partial.len() {
            0 => {}
            1 => {
                // One straddling middle: examine it directly.
                self.examine_child(ctx, meta, partial[0], x1, x2, y0, out);
            }
            _ => {
                // Choose the sibling-snapshot that covers the whole middle
                // range, if one exists; otherwise (fork / fully covered
                // node) fall back to the children PST.
                if m_end == len && m_start > 0 {
                    let side = (m_start - 1, SnapshotSide::Right);
                    self.snapshot_route(ctx, mb, meta, side, &partial, x1, x2, y0, out);
                } else if m_start == 0 && m_end < len {
                    let side = (m_end, SnapshotSide::Left);
                    self.snapshot_route(ctx, mb, meta, side, &partial, x1, x2, y0, out);
                } else {
                    self.children_pst_route(ctx, mb, meta, &partial, x1, x2, y0, out);
                }
            }
        }
    }

    /// Resolve straddling middles from a sibling snapshot (`TSR` of the
    /// child left of them, or `TSL` of the child right of them). With
    /// packing on, the snapshot's run rides in the parent's entry; the
    /// anchor's control block is never touched.
    #[allow(clippy::too_many_arguments)]
    fn snapshot_route(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        parent: &TsMeta,
        (anchor_idx, side): (usize, SnapshotSide),
        partial: &[usize],
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let children = &parent.children;
        let anchor = &children[anchor_idx];
        let (ts_pages, ts_truncated) = if self.pack_h() > 0 {
            match side {
                SnapshotSide::Right => {
                    (anchor.packed.tsr_pages.clone(), anchor.packed.tsr_truncated)
                }
                SnapshotSide::Left => (anchor.packed.ts_pages.clone(), anchor.packed.ts_truncated),
            }
        } else {
            let anchor_meta = self.ctx_meta(ctx, anchor.mb);
            let info = match side {
                SnapshotSide::Right => anchor_meta.tsr.as_ref(),
                SnapshotSide::Left => anchor_meta.tsl.as_ref(),
            };
            let info = info.expect("anchor child carries the sibling snapshot");
            (info.pages.clone(), info.truncated)
        };
        let mut scanned: Vec<Point> = Vec::new();
        let mut crossed = false;
        'ts: for &pg in &ts_pages {
            for p in self.ctx_read(ctx, pg) {
                if p.ykey() < (y0, 0) {
                    crossed = true;
                    break 'ts;
                }
                scanned.push(*p);
            }
        }
        if crossed || !ts_truncated {
            // Crossing case: the snapshot holds every middle-sibling point
            // with y ≥ y0 as of the last TS reorganisation; TD holds the
            // rest. Restrict both to the straddling middles' slabs.
            let in_partial = |p: &Point| {
                let k = p.xkey();
                partial.iter().any(|&i| children[i].slab_contains(k))
            };
            out.extend(scanned.iter().filter(|p| in_partial(p)));
            self.query_td(ctx, mb, parent, x1, x2, y0, &in_partial, out);
        } else {
            // Certificate: at least B² answers exist among the middles;
            // examining each individually is paid for by the output.
            for &i in partial {
                self.examine_child(ctx, parent, i, x1, x2, y0, out);
            }
        }
    }

    /// Resolve straddling middles at the fork node from the children PST
    /// (the paper's case (4)); the only `O(log2 B)` access of the search.
    #[allow(clippy::too_many_arguments)]
    fn children_pst_route(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        parent: &TsMeta,
        partial: &[usize],
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let children = &parent.children;
        let in_partial = |p: &Point| {
            let k = p.xkey();
            partial.iter().any(|&i| children[i].slab_contains(k))
        };
        if let Some(cpst) = &parent.children_pst {
            let mut tmp = Vec::new();
            cpst.query_pinned(&mut ctx.pin, Self::pst_space(mb, 1), x1, x2, y0, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| in_partial(p)));
        } else {
            // No snapshot yet (fresh interior node): examine individually.
            for &i in partial {
                self.examine_child(ctx, parent, i, x1, x2, y0, out);
            }
            return;
        }
        self.query_td(ctx, mb, parent, x1, x2, y0, &in_partial, out);
    }

    /// Query the TD structure, keeping points that satisfy `filter`.
    #[allow(clippy::too_many_arguments)]
    fn query_td(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        meta: &TsMeta,
        x1: i64,
        x2: i64,
        y0: i64,
        filter: &dyn Fn(&Point) -> bool,
        out: &mut Vec<Point>,
    ) {
        let Some(td) = &meta.td else { return };
        if let Some(pst) = &td.pst {
            let mut tmp = Vec::new();
            pst.query_pinned(&mut ctx.pin, Self::pst_space(mb, 2), x1, x2, y0, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| filter(p)));
        }
        for &pg in &td.staged {
            for p in self.ctx_read(ctx, pg) {
                if p.x >= x1 && p.x <= x2 && p.y >= y0 && filter(p) {
                    out.push(*p);
                }
            }
        }
        // The TD's delete side: ids deleted since the last TS
        // reorganisation, subtracted globally from the answer (a
        // snapshot-answered route may have reported their stale copies).
        if let Some(del) = &td.del_pst {
            let mut tmp = Vec::new();
            del.query_pinned(&mut ctx.pin, Self::pst_space(mb, 3), x1, x2, y0, &mut tmp);
            ctx.del.extend(tmp.into_iter().map(|t| t.id));
        }
        mirror_tombs(ctx, &td.del_staged_buf, x1, x2, y0);
    }

    /// Report a fully-covered, fully-above subtree (Type III).
    fn report_all(
        &self,
        ctx: &mut ReadCtx,
        mb: MbId,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let meta = self.ctx_meta(ctx, mb);
        self.scan_update_pages(ctx, &meta.update, x1, x2, y0, out);
        mirror_tombs(ctx, &meta.tomb_buf, x1, x2, y0);
        for (i, &pg) in meta.horizontal.iter().enumerate() {
            if meta.h_live[i] == 0 {
                continue; // every point shadowed by a pending tombstone
            }
            for p in self.ctx_read(ctx, pg) {
                debug_assert!(p.y >= y0 && p.x >= x1 && p.x <= x2);
                out.push(*p);
            }
        }
        for i in 0..meta.children.len() {
            match classify(&meta.children[i], y0) {
                ChildClass::Full => self.report_all(ctx, meta.children[i].mb, x1, x2, y0, out),
                ChildClass::Partial => self.examine_child(ctx, meta, i, x1, x2, y0, out),
                ChildClass::Recurse => self.process(ctx, meta.children[i].mb, x1, x2, y0, out),
                ChildClass::Dead => {}
            }
        }
    }

    /// Examine child `idx` of `parent` — a straddling metablock whose slab
    /// is fully inside `[x1, x2]`; its subtree is below `y0` by the routing
    /// invariant. With packing on, the examination runs off the parent's
    /// control information (update mirror + horizontal-prefix mirror),
    /// touching the child's control block only when the scan outgrows the
    /// mirrored prefix (amply output-backed).
    #[allow(clippy::too_many_arguments)]
    fn examine_child(
        &self,
        ctx: &mut ReadCtx,
        parent: &TsMeta,
        idx: usize,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let entry = &parent.children[idx];
        if self.pack_h() == 0 {
            let meta = self.ctx_meta(ctx, entry.mb);
            self.scan_update_pages(ctx, &meta.update, x1, x2, y0, out);
            mirror_tombs(ctx, &meta.tomb_buf, x1, x2, y0);
            if meta.main_bbox.is_some_and(|b| b.yhi >= (y0, 0)) {
                self.horizontal_scan_down(ctx, meta, x1, x2, y0, out);
            }
            debug_assert_no_live_children(meta, y0);
            return;
        }
        let qk: Key = (y0, 0);
        if !entry.packed.tomb_pages.is_empty() {
            // The child has pending deletes: one read of its control block
            // fetches the tombstone mirror — never more I/Os than the
            // page-by-page scan it replaces.
            let child = self.ctx_meta(ctx, entry.mb);
            mirror_tombs(ctx, &child.tomb_buf, x1, x2, y0);
        }
        if entry.upd_ymax.is_some_and(|y| y >= qk) {
            self.scan_update_pages(ctx, &entry.packed.upd_pages, x1, x2, y0, out);
        }
        if entry.main_bbox.is_some_and(|b| b.yhi >= qk) {
            let mut crossed = false;
            for (i, &pg) in entry.packed.h_pages.iter().enumerate() {
                if entry.packed.h_tops[i] < qk {
                    crossed = true;
                    break;
                }
                if entry.packed.h_live.get(i) == Some(&0) {
                    continue; // fully-dead page: skip without reading
                }
                for p in self.ctx_read(ctx, pg) {
                    if p.ykey() < qk {
                        crossed = true;
                        break;
                    }
                    debug_assert!(p.x >= x1 && p.x <= x2);
                    out.push(*p);
                }
                if crossed {
                    break;
                }
            }
            if !crossed && entry.packed.h_more {
                let meta = self.ctx_meta(ctx, entry.mb);
                let skip = entry.packed.h_pages.len();
                for (i, &pg) in meta.horizontal.iter().enumerate().skip(skip) {
                    if meta.hkeys[i] < qk {
                        break;
                    }
                    if meta.h_live[i] == 0 {
                        continue; // fully-dead page: skip without reading
                    }
                    let mut done = false;
                    for p in self.ctx_read(ctx, pg) {
                        if p.ykey() < qk {
                            done = true;
                            break;
                        }
                        debug_assert!(p.x >= x1 && p.x <= x2);
                        out.push(*p);
                    }
                    if done {
                        break;
                    }
                }
                debug_assert_no_live_children(meta, y0);
            }
        }
    }

    /// Top-down horizontal scan reporting points with `y ≥ y0`; the cached
    /// page-top keys skip a crossing page with no answers.
    fn horizontal_scan_down(
        &self,
        ctx: &mut ReadCtx,
        meta: &TsMeta,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        for (i, &pg) in meta.horizontal.iter().enumerate() {
            if meta.hkeys[i] < (y0, 0) {
                break;
            }
            if meta.h_live[i] == 0 {
                continue; // fully-dead page: skip without reading
            }
            let mut crossed = false;
            for p in self.ctx_read(ctx, pg) {
                if p.ykey() < (y0, 0) {
                    crossed = true;
                    break;
                }
                debug_assert!(p.x >= x1 && p.x <= x2);
                out.push(*p);
            }
            if crossed {
                break;
            }
        }
        let _ = (x1, x2);
    }

    fn scan_update_pages(
        &self,
        ctx: &mut ReadCtx,
        pages: &[ccix_extmem::PageId],
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        for &pg in pages {
            for p in self.ctx_read(ctx, pg) {
                if p.x >= x1 && p.x <= x2 && p.y >= y0 {
                    out.push(*p);
                }
            }
        }
    }

    /// Report mains with `x ∈ [x1, x2]` from the vertical blocking, starting
    /// at the page located via the cached page-boundary keys. Callers
    /// guarantee all mains have `y ≥ y0`. At most 2 slack blocks.
    fn vertical_scan_range(
        &self,
        ctx: &mut ReadCtx,
        meta: &TsMeta,
        x1: i64,
        x2: i64,
        out: &mut Vec<Point>,
    ) {
        let a1k: Key = (x1, u64::MIN);
        let a2k: Key = (x2, u64::MAX);
        // Last page whose first key is ≤ a1k could still contain x ≥ x1.
        let start = meta.vkeys.partition_point(|&k| k <= a1k).saturating_sub(1);
        for (i, &pg) in meta.vertical.iter().enumerate().skip(start) {
            if meta.vkeys[i] > a2k {
                break;
            }
            let mut beyond = false;
            for p in self.ctx_read(ctx, pg) {
                let k = p.xkey();
                if k > a2k {
                    beyond = true;
                    break;
                }
                if k >= a1k {
                    out.push(*p);
                }
            }
            if beyond {
                break;
            }
        }
    }
}

/// Record the ids of pending tombstones the 3-sided predicate selects,
/// straight from a control-block mirror — zero I/Os (see the diagonal
/// tree's `mirror_tombs` and `TsMeta::tomb_buf`).
fn mirror_tombs(ctx: &mut ReadCtx, tombs: &[Point], x1: i64, x2: i64, y0: i64) {
    ctx.del.extend(
        tombs
            .iter()
            .filter(|t| t.x >= x1 && t.x <= x2 && t.y >= y0)
            .map(|t| t.id),
    );
}

/// Debug check: a partial metablock's children are all dead (routing
/// invariant).
fn debug_assert_no_live_children(meta: &TsMeta, y0: i64) {
    debug_assert!(
        meta.children
            .iter()
            .all(|c| classify(c, y0) == ChildClass::Dead),
        "partial metablock with a live child"
    );
    let _ = (meta, y0);
}
