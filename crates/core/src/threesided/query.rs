//! The 3-sided search (Lemma 4.3, Fig. 21).
//!
//! Report every point with `x1 ≤ x ≤ x2 ∧ y ≥ y0`. The search descends the
//! (at most two) slabs containing the query's vertical sides. A visited
//! metablock that straddles `y0` is answered by its own PST and is terminal
//! (its subtree is strictly below, by the routing invariant). A metablock
//! entirely above `y0` reports its mains inside `[x1, x2]` from the vertical
//! blocking, recurses into its boundary children, and deals with the
//! *middle* children (slabs fully inside the x-range) by class:
//!
//! * fully-above middles are reported wholesale (Type III);
//! * straddling middles are resolved by a sibling snapshot — `TSR` of the
//!   child left of the middles when the query opens to the right of the
//!   slab, `TSL` mirrored — with the same certificate/crossing dichotomy as
//!   the diagonal tree; at the unique *fork* node (both vertical sides in
//!   different children, the paper's case (4)) the parent's **children PST**
//!   answers for all of them at once, which is where the one `O(log2 B)`
//!   term of Theorem 4.7 is spent.

use ccix_extmem::Point;

use super::{ThreeSidedTree, TsMeta};
use crate::bbox::Key;
use crate::diag::{ChildEntry, MbId, TsInfo};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChildClass {
    Full,
    Partial,
    Dead,
}

fn classify(c: &ChildEntry, y0: i64) -> ChildClass {
    let qk: Key = (y0, 0);
    let mains_full = c.main_bbox.is_some_and(|b| b.ylo >= qk);
    let mains_some = c.main_bbox.is_some_and(|b| b.yhi >= qk);
    let upd_some = c.upd_ymax.is_some_and(|y| y >= qk);
    debug_assert!(
        c.sub_yhi.is_none_or(|y| y < qk) || mains_full,
        "routing invariant violated"
    );
    if mains_full && c.main_bbox.is_some() {
        ChildClass::Full
    } else if mains_some || upd_some {
        ChildClass::Partial
    } else {
        ChildClass::Dead
    }
}

fn child_live(c: &ChildEntry, y0: i64) -> bool {
    let qk: Key = (y0, 0);
    c.main_bbox.is_some_and(|b| b.yhi >= qk)
        || c.upd_ymax.is_some_and(|y| y >= qk)
        || c.sub_yhi.is_some_and(|y| y >= qk)
}

impl ThreeSidedTree {
    /// Report every point with `x1 ≤ x ≤ x2 ∧ y ≥ y0`.
    pub fn query(&self, x1: i64, x2: i64, y0: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y0, &mut out);
        out
    }

    /// As [`ThreeSidedTree::query`], appending into `out`.
    /// `O(log_B n + t/B + log2 B)` I/Os.
    pub fn query_into(&self, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.process(root, x1, x2, y0, out);
        }
    }

    /// Process a metablock on a boundary path.
    fn process(&self, mb: MbId, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.scan_update(meta, x1, x2, y0, out);
        let (Some(bbox), Some(ylo)) = (meta.main_bbox, meta.y_lo_main) else {
            return;
        };
        let qk: Key = (y0, 0);
        if qk > bbox.yhi {
            return; // mains and (by routing invariant) subtree below y0
        }
        if qk > ylo {
            // Straddling node: its own PST answers; subtree is below y0.
            if let Some(pst) = &meta.pst {
                pst.query_into(x1, x2, y0, out);
            } else {
                debug_assert!(meta.n_main <= self.geo.b, "missing metablock PST");
                for &pg in &meta.vertical {
                    for p in self.store.read(pg) {
                        if p.x >= x1 && p.x <= x2 && p.y >= y0 {
                            out.push(*p);
                        }
                    }
                }
            }
            return;
        }

        // Entirely above y0: mains inside [x1, x2] via the vertical blocking
        // (page boundaries located from the control info, ≤ 2 slack blocks).
        self.vertical_scan_range(meta, x1, x2, out);
        if meta.is_leaf() {
            return;
        }
        self.process_children(meta, x1, x2, y0, out);
    }

    fn process_children(&self, meta: &TsMeta, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let children = &meta.children;
        let a1k: Key = (x1, u64::MIN);
        let a2k: Key = (x2, u64::MAX);
        let len = children.len();

        // First child that can hold x ≥ x1, and first whose slab extends
        // beyond (x2, MAX).
        let i1 = children.partition_point(|c| c.slab_hi <= a1k);
        let i2 = children.partition_point(|c| c.slab_hi <= a2k);
        if i1 >= len {
            return; // every child is strictly left of x1
        }
        if i1 == i2 {
            // Both vertical sides within one child: no middles, recurse.
            let c = &children[i1];
            if c.slab_lo <= a2k && child_live(c, y0) {
                self.process(c.mb, x1, x2, y0, out);
            }
            return;
        }

        // Boundary children: i1 if x1 cuts into it, i2 if it exists and x2
        // cuts into it. Everything between is a middle (slab ⊆ [x1, x2]).
        let left_boundary = children[i1].slab_lo < a1k;
        let right_boundary = i2 < len && children[i2].slab_lo <= a2k;
        let m_start = if left_boundary { i1 + 1 } else { i1 };
        let m_end = i2; // exclusive
        if left_boundary && child_live(&children[i1], y0) {
            self.process(children[i1].mb, x1, x2, y0, out);
        }
        if right_boundary && child_live(&children[i2], y0) {
            self.process(children[i2].mb, x1, x2, y0, out);
        }
        if m_start >= m_end {
            return;
        }

        let mut full: Vec<usize> = Vec::new();
        let mut partial: Vec<usize> = Vec::new();
        for (i, c) in children[m_start..m_end].iter().enumerate() {
            match classify(c, y0) {
                ChildClass::Full => full.push(m_start + i),
                ChildClass::Partial => partial.push(m_start + i),
                ChildClass::Dead => {}
            }
        }
        for &i in &full {
            self.report_all(children[i].mb, x1, x2, y0, out);
        }
        match partial.len() {
            0 => {}
            1 => {
                // One straddling middle: examine it directly.
                self.examine_partial(children[partial[0]].mb, x1, x2, y0, out);
            }
            _ => {
                // Choose the sibling-snapshot that covers the whole middle
                // range, if one exists; otherwise (fork / fully covered
                // node) fall back to the children PST.
                if m_end == len && m_start > 0 {
                    let anchor = &children[m_start - 1];
                    let ts = |m: &TsMeta| m.tsr.clone();
                    self.snapshot_route(meta, children, anchor, &partial, ts, x1, x2, y0, out);
                } else if m_start == 0 && m_end < len {
                    let anchor = &children[m_end];
                    let ts = |m: &TsMeta| m.tsl.clone();
                    self.snapshot_route(meta, children, anchor, &partial, ts, x1, x2, y0, out);
                } else {
                    self.children_pst_route(meta, children, &partial, x1, x2, y0, out);
                }
            }
        }
    }

    /// Resolve straddling middles from a sibling snapshot (`TSR` of the
    /// child left of them, or `TSL` of the child right of them).
    #[allow(clippy::too_many_arguments)]
    fn snapshot_route(
        &self,
        parent: &TsMeta,
        children: &[ChildEntry],
        anchor: &ChildEntry,
        partial: &[usize],
        ts_of: impl Fn(&TsMeta) -> Option<TsInfo>,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let anchor_meta = self.meta(anchor.mb);
        let ts = ts_of(anchor_meta).expect("anchor child carries the sibling snapshot");
        let mut scanned: Vec<Point> = Vec::new();
        let mut crossed = false;
        'ts: for &pg in &ts.pages {
            for p in self.store.read(pg) {
                if p.ykey() < (y0, 0) {
                    crossed = true;
                    break 'ts;
                }
                scanned.push(*p);
            }
        }
        if crossed || !ts.truncated {
            // Crossing case: the snapshot holds every middle-sibling point
            // with y ≥ y0 as of the last TS reorganisation; TD holds the
            // rest. Restrict both to the straddling middles' slabs.
            let in_partial = |p: &Point| {
                let k = p.xkey();
                partial.iter().any(|&i| children[i].slab_contains(k))
            };
            out.extend(scanned.iter().filter(|p| in_partial(p)));
            self.query_td(parent, x1, x2, y0, &in_partial, out);
        } else {
            // Certificate: at least B² answers exist among the middles;
            // examining each individually is paid for by the output.
            for &i in partial {
                self.examine_partial(children[i].mb, x1, x2, y0, out);
            }
        }
    }

    /// Resolve straddling middles at the fork node from the children PST
    /// (the paper's case (4)); the only `O(log2 B)` access of the search.
    #[allow(clippy::too_many_arguments)]
    fn children_pst_route(
        &self,
        parent: &TsMeta,
        children: &[ChildEntry],
        partial: &[usize],
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let in_partial = |p: &Point| {
            let k = p.xkey();
            partial.iter().any(|&i| children[i].slab_contains(k))
        };
        if let Some(cpst) = &parent.children_pst {
            let mut tmp = Vec::new();
            cpst.query_into(x1, x2, y0, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| in_partial(p)));
        } else {
            // No snapshot yet (fresh interior node): examine individually.
            for &i in partial {
                self.examine_partial(children[i].mb, x1, x2, y0, out);
            }
            return;
        }
        self.query_td(parent, x1, x2, y0, &in_partial, out);
    }

    /// Query the TD structure, keeping points that satisfy `filter`.
    fn query_td(
        &self,
        meta: &TsMeta,
        x1: i64,
        x2: i64,
        y0: i64,
        filter: &dyn Fn(&Point) -> bool,
        out: &mut Vec<Point>,
    ) {
        let Some(td) = &meta.td else { return };
        if let Some(pst) = &td.pst {
            let mut tmp = Vec::new();
            pst.query_into(x1, x2, y0, &mut tmp);
            out.extend(tmp.into_iter().filter(|p| filter(p)));
        }
        for &pg in &td.staged {
            for p in self.store.read(pg) {
                if p.x >= x1 && p.x <= x2 && p.y >= y0 && filter(p) {
                    out.push(*p);
                }
            }
        }
    }

    /// Report a fully-covered, fully-above subtree (Type III).
    fn report_all(&self, mb: MbId, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.scan_update(meta, x1, x2, y0, out);
        for &pg in &meta.horizontal {
            for p in self.store.read(pg) {
                debug_assert!(p.y >= y0 && p.x >= x1 && p.x <= x2);
                out.push(*p);
            }
        }
        for c in &meta.children {
            match classify(c, y0) {
                ChildClass::Full => self.report_all(c.mb, x1, x2, y0, out),
                ChildClass::Partial => self.examine_partial(c.mb, x1, x2, y0, out),
                ChildClass::Dead => {}
            }
        }
    }

    /// Examine a straddling metablock whose slab is fully inside `[x1, x2]`:
    /// horizontal scan down to `y0` plus the update block; its subtree is
    /// below `y0` by the routing invariant.
    fn examine_partial(&self, mb: MbId, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let meta = self.meta(mb);
        self.scan_update(meta, x1, x2, y0, out);
        if meta.main_bbox.is_some_and(|b| b.yhi >= (y0, 0)) {
            'scan: for &pg in &meta.horizontal {
                for p in self.store.read(pg) {
                    if p.ykey() < (y0, 0) {
                        break 'scan;
                    }
                    debug_assert!(p.x >= x1 && p.x <= x2);
                    out.push(*p);
                }
            }
        }
        debug_assert!(
            meta.children
                .iter()
                .all(|c| classify(c, y0) == ChildClass::Dead),
            "partial metablock with a live child"
        );
    }

    fn scan_update(&self, meta: &TsMeta, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        for &pg in &meta.update {
            for p in self.store.read(pg) {
                if p.x >= x1 && p.x <= x2 && p.y >= y0 {
                    out.push(*p);
                }
            }
        }
    }

    /// Report mains with `x ∈ [x1, x2]` from the vertical blocking, starting
    /// at the page located via the cached page-boundary keys. Callers
    /// guarantee all mains have `y ≥ y0`. At most 2 slack blocks.
    fn vertical_scan_range(&self, meta: &TsMeta, x1: i64, x2: i64, out: &mut Vec<Point>) {
        let a1k: Key = (x1, u64::MIN);
        let a2k: Key = (x2, u64::MAX);
        // Last page whose first key is ≤ a1k could still contain x ≥ x1.
        let start = meta.vkeys.partition_point(|&k| k <= a1k).saturating_sub(1);
        for &pg in meta.vertical.iter().skip(start) {
            let mut beyond = false;
            for p in self.store.read(pg) {
                let k = p.xkey();
                if k > a2k {
                    beyond = true;
                    break;
                }
                if k >= a1k {
                    out.push(*p);
                }
            }
            if beyond {
                break;
            }
        }
    }
}
