//! Deletion for the 3-sided tree — the same tombstone machinery as the
//! diagonal tree (see [`crate::diag::delete`] for the landing-invariant
//! argument, which carries over verbatim: Lemma 4.4's routing is the §3.2
//! routing), with the PSTs taking the corner structures' role:
//!
//! * level-I rebuilds the per-metablock PST over the cancelled set via
//!   [`ccix_pst::ExternalPst::rebuild_from_sorted`] — nodes the deletes
//!   did not touch keep their pages;
//! * the TD delete side is a PST, queried by the snapshot-answered routes
//!   (TSL/TSR crossing case and the children-PST fork) to subtract deletes
//!   younger than the copies those routes report from;
//! * the TS reorganisation rebuilds every child's TSL/TSR snapshot and the
//!   parent's children PST from delete-cleaned merges.

use ccix_extmem::Point;

use super::ThreeSidedTree;
use crate::diag::{mark_dirty, MbId, ReadCtx};

/// Reorganisation triggers observed while routing one tombstone.
pub(super) struct DelTriggers {
    target: MbId,
    parent: Option<MbId>,
    tomb_full: bool,
    del_staged_full: bool,
    td_total: usize,
}

impl ThreeSidedTree {
    /// Delete a previously inserted point. Amortised — like
    /// [`ThreeSidedTree::insert`] — `O(log_B n + (log_B n)²/B +
    /// (log2 B)/B)` I/Os (Lemma 4.4's budget).
    ///
    /// # Panics
    /// Panics if the tree is empty. Deleting a point that is not stored is
    /// a contract violation caught by debug assertions.
    pub fn delete(&mut self, p: Point) {
        self.delete_batch(std::slice::from_ref(&p));
    }

    /// Delete a batch of points as one pinned operation (see
    /// [`crate::MetablockTree::delete_batch`]): tombstones route in sorted
    /// order over a shared read context, billing the shared descent prefix
    /// once per residency.
    pub fn delete_batch(&mut self, pts: &[Point]) {
        let mut order: Vec<usize> = (0..pts.len()).collect();
        order.sort_by_key(|&i| pts[i].xkey());
        let mut ctx = self.read_ctx();
        let mut dirty: Vec<MbId> = Vec::new();
        for &i in &order {
            let p = pts[i];
            assert!(
                self.root.is_some() || self.reorg.job.is_some(),
                "delete from an empty tree"
            );
            self.len -= 1;
            self.deletes_since_shrink += 1;
            // While a background shrink job is active the delta may absorb
            // the delete entirely (see the diagonal tree's delete_batch).
            if self.delta_delete(p) {
                if self.pump_reorg() {
                    ctx = self.read_ctx();
                }
                continue;
            }
            let root = self.root.expect("tree is nonempty");
            let triggers = self.route_tombstone(&mut ctx, &mut dirty, Vec::new(), root, p);
            let fired = self.run_del_triggers(&mut dirty, triggers);
            let pumped = self.pump_reorg();
            if fired || pumped {
                // A reorganisation may have freed or rebuilt pinned pages:
                // start a fresh context for the rest of the batch.
                ctx = self.read_ctx();
            }
        }
        self.flush_dirty(&dirty);
        self.maybe_shrink();
    }

    /// Route the tombstone `p` downward from `start`, buffer it next to
    /// its victim, and mirror it into the landing parent's TD delete side.
    pub(super) fn route_tombstone(
        &mut self,
        ctx: &mut ReadCtx,
        dirty: &mut Vec<MbId>,
        above: Vec<MbId>,
        start: MbId,
        p: Point,
    ) -> DelTriggers {
        let mut path = above;

        // Phase 1 — descend with the insert routing's landing rule; an
        // emptied interior metablock is a pure router (see crate::diag).
        let mut cur = start;
        loop {
            let meta = self.ctx_meta(ctx, cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_some_and(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            debug_assert!(
                meta.y_lo_main.is_some() || meta.n_upd == 0,
                "emptied interior metablock holds buffered points"
            );
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        // Phase 2 — append the tombstone to the target's tombstone buffer.
        let b = self.geo.b;
        let open_page = {
            let m = self.metas[target].as_ref().expect("target is live");
            (!m.n_tomb.is_multiple_of(b)).then(|| *m.tomb.last().expect("partial page exists"))
        };
        match open_page {
            Some(pg) => self.store.append(pg, p),
            None => {
                let pg = self.store.alloc(vec![p]);
                self.metas[target]
                    .as_mut()
                    .expect("target is live")
                    .tomb
                    .push(pg);
                if self.pack_h() > 0 {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            e.packed.tomb_pages.push(pg);
                            mark_dirty(dirty, par);
                        }
                    }
                }
            }
        }
        let tomb_full = {
            let m = self.metas[target].as_mut().expect("target is live");
            m.n_tomb += 1;
            m.tomb_buf.push(p);
            m.n_tomb >= self.tomb_cap_pages() * b
        };
        self.tombs_pending += 1;
        mark_dirty(dirty, target);

        // Keep the per-page live counts exact: if the victim sits in the
        // mains (rather than the update buffer), it is on the unique
        // horizontal page whose top key covers its y — probe that page
        // (billed through the operation's pin) and decrement its count, so
        // queries can skip the page once every point on it is shadowed. On
        // a leaf with an empty update buffer the probe read is skipped:
        // the victim has nowhere else to be (see the diagonal tree).
        let probe = {
            let m = self.metas[target].as_ref().expect("target is live");
            if !m.hkeys.is_empty() && p.ykey() <= m.hkeys[0] {
                let i = m.hkeys.partition_point(|&hk| hk >= p.ykey()) - 1;
                let certain = m.is_leaf() && m.n_upd == 0;
                Some((i, (!certain).then(|| m.horizontal[i])))
            } else {
                None
            }
        };
        if let Some((i, pg)) = probe {
            if pg.is_none_or(|pg| self.ctx_read(ctx, pg).iter().any(|q| q.id == p.id)) {
                let m = self.metas[target].as_mut().expect("target is live");
                debug_assert!(m.h_live[i] > 0, "live count underflow");
                m.h_live[i] -= 1;
                if i < self.pack_h() {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            if let Some(slot) = e.packed.h_live.get_mut(i) {
                                *slot = slot.saturating_sub(1);
                            }
                            mark_dirty(dirty, par);
                        }
                    }
                }
            }
        }

        // Phase 3 — mirror the tombstone into the parent's TD delete side.
        let parent = path.last().copied();
        let mut td_total = 0usize;
        let mut del_staged_full = false;
        if let Some(par) = parent {
            ctx.touch_meta(par);
            let open_page = {
                let td = self.metas[par]
                    .as_ref()
                    .expect("parent is live")
                    .td
                    .as_ref();
                let td = td.expect("interior metablock carries a TD");
                (!td.n_del_staged.is_multiple_of(b))
                    .then(|| *td.del_staged.last().expect("partial page exists"))
            };
            match open_page {
                Some(pg) => self.store.append(pg, p),
                None => {
                    let pg = self.store.alloc(vec![p]);
                    self.metas[par]
                        .as_mut()
                        .expect("parent is live")
                        .td
                        .as_mut()
                        .expect("TD present")
                        .del_staged
                        .push(pg);
                }
            }
            let td = self.metas[par]
                .as_mut()
                .expect("parent is live")
                .td
                .as_mut()
                .expect("TD present");
            td.n_del_staged += 1;
            td.del_staged_buf.push(p);
            td_total = td.total() + td.del_total();
            del_staged_full = td.n_del_staged >= self.td_cap_pages() * b;
            mark_dirty(dirty, par);
        }

        DelTriggers {
            target,
            parent,
            tomb_full,
            del_staged_full,
            td_total,
        }
    }

    /// Run the amortised triggers of one routed tombstone; returns whether
    /// a reorganisation fired (deletes never cascade into level-II).
    pub(super) fn run_del_triggers(&mut self, dirty: &mut Vec<MbId>, t: DelTriggers) -> bool {
        let mut fired = false;
        if let Some(par) = t.parent {
            if t.td_total >= self.cap() {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.ts_reorg(par));
                fired = true;
            } else if t.del_staged_full {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.td_rebuild(par));
                fired = true;
            }
        }
        if t.tomb_full && self.metas[t.target].is_some() {
            self.flush_dirty(dirty);
            dirty.clear();
            self.with_shunt(|tr| tr.level_i(t.target, t.parent));
            fired = true;
        }
        fired
    }

    /// Re-route a tombstone a level-I could not match (see the diagonal
    /// tree's `reroute_tombstone`).
    pub(crate) fn reroute_tombstone(&mut self, from: MbId, p: Point) {
        let is_leaf = self.metas[from].as_ref().is_none_or(|m| m.is_leaf());
        if is_leaf {
            debug_assert!(false, "deleted point {p:?} is not stored in the tree");
            return;
        }
        let mut ctx = self.read_ctx();
        let mut dirty: Vec<MbId> = Vec::new();
        let idx = {
            let meta = self.ctx_meta(&mut ctx, from);
            meta.children.partition_point(|c| c.slab_hi <= p.xkey())
        };
        let child = self.metas[from].as_ref().expect("live metablock").children[idx].mb;
        let triggers = self.route_tombstone(&mut ctx, &mut dirty, vec![from], child, p);
        self.run_del_triggers(&mut dirty, triggers);
        self.flush_dirty(&dirty);
    }

    /// Occupancy-triggered shrink, exactly as on the diagonal tree: a full
    /// merge-based rebuild over the live points once deletes exceed
    /// [`crate::Tuning::shrink_deletes_pct`] of the last build's size.
    pub(super) fn maybe_shrink(&mut self) {
        let pct = self.tuning.shrink_deletes_pct;
        if pct == 0 || self.deletes_since_shrink == 0 {
            return;
        }
        // One background job at a time; while one runs, the trigger keeps
        // accumulating and re-fires after the drain completes if needed.
        if self.reorg.job.is_some() {
            return;
        }
        let floor = self.cap().max(self.shrink_base * pct / 100);
        if self.deletes_since_shrink < floor {
            return;
        }
        let Some(root) = self.root else {
            self.note_full_rebuild();
            return;
        };
        if self.tuning.reorg_pages_per_op > 0 {
            // Incremental mode: freeze the tree and rebuild it over the
            // coming operations instead of stopping the world here.
            self.start_shrink_job();
            return;
        }
        let pts = self.collect_subtree_sorted(root);
        self.free_subtree(root);
        debug_assert_eq!(self.tombs_pending, 0, "shrink cancelled every tombstone");
        debug_assert_eq!(pts.len(), self.len, "live points disagree with len");
        self.root = if pts.is_empty() {
            None
        } else {
            let (root, _, _) =
                self.build_slab(pts, crate::diag::FULL_RANGE.0, crate::diag::FULL_RANGE.1);
            Some(root)
        };
        self.note_full_rebuild();
    }

    /// Reset the shrink accounting after any full-tree rebuild.
    pub(crate) fn note_full_rebuild(&mut self) {
        self.shrink_base = self.len;
        self.deletes_since_shrink = 0;
    }
}
