//! Semi-dynamic insertion for the 3-sided tree (Lemma 4.4).
//!
//! The proof of Lemma 4.4 "parallels that of Lemma 3.6": the same routing,
//! update buffers, level-I/II reorganisations, TS reorganisations and
//! branching splits as §3.2, with the corner structures replaced by
//! Lemma 4.1 PSTs. A level-I reorganisation additionally rebuilds the
//! metablock's own PST; a TS reorganisation also rebuilds the parent's
//! children PST; the TD tracking structure is a PST with a staging area.
//! Batching and the pinned-path accounting mirror the diagonal tree (see
//! `crate::diag::insert`).

use ccix_extmem::{Point, SortedRun};
use ccix_pst::ExternalPst;

use super::{ThreeSidedTree, TsMeta, TsTd};
use crate::bbox::BBox;
use crate::diag::{mark_dirty, ChildEntry, MbId, PackedInfo, FULL_RANGE};

impl ThreeSidedTree {
    /// Insert a point. Amortised
    /// `O(log_B n + (log_B n)²/B + (log2 B)/B)` I/Os (Lemma 4.4).
    pub fn insert(&mut self, p: Point) {
        self.len += 1;
        // While a background shrink job holds the tree frozen, the insert
        // diverts to the job's delta instead of routing.
        if !self.delta_insert(p) {
            match self.root {
                None => {
                    let id =
                        self.make_metablock(&SortedRun::from_sorted(vec![p]), Vec::new(), false);
                    self.root = Some(id);
                }
                Some(root) => self.insert_routed(Vec::new(), root, p),
            }
        }
        self.pump_reorg();
    }

    pub(super) fn insert_routed(&mut self, above: Vec<MbId>, start: MbId, p: Point) {
        let mut path = above;
        let fix_from = path.len();
        let mut pinned: Vec<MbId> = Vec::new();
        let mut dirty: Vec<MbId> = Vec::new();
        if self.tuning.resident_root {
            // The root control block lives in dedicated main memory (see
            // [`crate::Tuning::resident_root`]): pinned for free.
            if let Some(root) = self.root {
                pinned.push(root);
            }
        }

        // Phase 1 — descend, pinning each control block on the way down.
        // An interior metablock whose mains a delete flood emptied is a
        // pure router — see the diagonal tree's routing for the argument.
        let mut cur = start;
        loop {
            let meta = self.pin_meta(&mut pinned, cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_some_and(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            debug_assert!(
                meta.y_lo_main.is_some() || meta.n_upd == 0,
                "emptied interior metablock holds buffered points"
            );
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        // Phase 2 — refresh ancestor caches in memory, marking real changes.
        for i in fix_from..path.len() {
            let a = path[i];
            let on_path_child = path.get(i + 1).copied().unwrap_or(target);
            let m = self.metas[a].as_mut().expect("pinned ancestor is live");
            let e = m
                .children
                .iter_mut()
                .find(|c| c.mb == on_path_child)
                .expect("descent child present in parent");
            let changed = if on_path_child == target {
                if e.upd_ymax.is_none_or(|y| p.ykey() > y) {
                    e.upd_ymax = Some(p.ykey());
                    true
                } else {
                    false
                }
            } else if e.sub_yhi.is_none_or(|y| p.ykey() > y) {
                e.sub_yhi = Some(p.ykey());
                true
            } else {
                false
            };
            if changed {
                mark_dirty(&mut dirty, a);
            }
        }

        // Phase 3 — append to the target's update buffer.
        let b = self.geo.b;
        let open_page = {
            let m = self.metas[target].as_ref().expect("target is live");
            (!m.n_upd.is_multiple_of(b)).then(|| *m.update.last().expect("partial page exists"))
        };
        match open_page {
            // In-place append: the same read-modify-write charge as the
            // separate read/write pair, without cloning the page buffer.
            Some(pg) => self.store.append(pg, p),
            None => {
                let pg = self.store.alloc(vec![p]);
                self.metas[target]
                    .as_mut()
                    .expect("target is live")
                    .update
                    .push(pg);
                // Mirror the new buffer page into the parent's packed entry
                // (in-memory: the parent is pinned on the descent path).
                if self.pack_h() > 0 {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            e.packed.upd_pages.push(pg);
                            mark_dirty(&mut dirty, par);
                        }
                    }
                }
            }
        }
        let update_full = {
            let m = self.metas[target].as_mut().expect("target is live");
            m.n_upd += 1;
            m.n_upd >= self.upd_cap_pages() * b
        };
        mark_dirty(&mut dirty, target);

        // Phase 4 — track the insert in the parent's TD structure.
        let parent = path.last().copied();
        let mut td_total = 0usize;
        let mut staged_full = false;
        if let Some(par) = parent {
            self.pin_meta(&mut pinned, par);
            let open_page = {
                let td = self.metas[par]
                    .as_ref()
                    .expect("parent is live")
                    .td
                    .as_ref();
                let td = td.expect("interior metablock carries a TD");
                (!td.n_staged.is_multiple_of(b))
                    .then(|| *td.staged.last().expect("partial page exists"))
            };
            match open_page {
                Some(pg) => self.store.append(pg, p),
                None => {
                    let pg = self.store.alloc(vec![p]);
                    self.metas[par]
                        .as_mut()
                        .expect("parent is live")
                        .td
                        .as_mut()
                        .expect("TD present")
                        .staged
                        .push(pg);
                }
            }
            let td = self.metas[par]
                .as_mut()
                .expect("parent is live")
                .td
                .as_mut()
                .expect("TD present");
            td.n_staged += 1;
            td_total = td.total() + td.del_total();
            staged_full = td.n_staged >= self.td_cap_pages() * b;
            mark_dirty(&mut dirty, par);
        }

        // Phase 5 — write back every dirty control block.
        self.flush_dirty(&dirty);

        // Phase 6 — amortised triggers. With a finite reorganisation budget
        // their charges are shunted into the debt meter and bled a few
        // transfers per operation — the structure still evolves
        // bit-identically to the all-at-once behaviour.
        if let Some(par) = parent {
            if td_total >= self.cap() {
                self.with_shunt(|t| t.ts_reorg(par));
            } else if staged_full {
                self.with_shunt(|t| t.td_rebuild(par));
            }
        }
        if update_full && self.metas[target].is_some() {
            let n_main = self.with_shunt(|t| t.level_i(target, parent));
            if n_main >= 2 * self.cap() {
                self.with_shunt(|t| t.level_ii(target, &path));
            }
        }
    }

    /// Fold both TD staging areas into their PSTs, annihilating
    /// insert/delete pairs first (see the diagonal tree's `td_rebuild`):
    /// only tombstones whose insert predates the TD survive into the
    /// delete-side PST. Insert-only trees take the identical path — both
    /// delete sides are empty and cost nothing.
    pub(crate) fn td_rebuild(&mut self, parent: MbId) {
        let mut m = self.take_meta(parent);
        let td = m.td.as_mut().expect("TD present");
        let mut pts = match &td.pst {
            Some(pst) => pst.collect_points(),
            None => Vec::new(),
        };
        for &pg in &td.staged {
            pts.extend_from_slice(self.store.read(pg));
        }
        self.store.free_run(&td.staged);
        td.staged.clear();
        td.n_staged = 0;

        let mut del_pts = match &td.del_pst {
            Some(pst) => pst.collect_points(),
            None => Vec::new(),
        };
        for &pg in &td.del_staged {
            del_pts.extend_from_slice(self.store.read(pg));
        }
        self.store.free_run(&td.del_staged);
        td.del_staged.clear();
        td.n_del_staged = 0;
        td.del_staged_buf.clear();
        let tombs = SortedRun::from_unsorted(del_pts);

        let (run, unmatched) = SortedRun::from_unsorted(pts).cancel(&tombs);
        td.n_built = run.len();
        if run.is_empty() {
            td.pst = None; // pages freed on drop
        } else {
            match td.pst.as_mut() {
                // Rebuild in place, reusing page slots and the layout of
                // any node whose population the staged delta did not move.
                Some(pst) => pst.rebuild_from_sorted(self.geo, run),
                None => {
                    td.pst = Some(ExternalPst::build_from_sorted_on(
                        &self.backend,
                        self.geo,
                        self.counter.clone(),
                        run,
                    ))
                }
            }
        }
        let survivors = SortedRun::from_sorted(unmatched);
        td.n_del_built = survivors.len();
        if survivors.is_empty() {
            td.del_pst = None;
        } else {
            match td.del_pst.as_mut() {
                Some(pst) => pst.rebuild_from_sorted(self.geo, survivors),
                None => {
                    td.del_pst = Some(ExternalPst::build_from_sorted_on(
                        &self.backend,
                        self.geo,
                        self.counter.clone(),
                        survivors,
                    ))
                }
            }
        }
        self.put_meta(parent, m);
    }

    /// Rebuild every child's TSL/TSR snapshot and the parent's children PST
    /// from current contents; discard the TD. `O(B²)` I/Os. Each child's
    /// snapshot is its already-y-sorted horizontal run merged with its
    /// sorted delta — the same page reads, no full re-sort.
    pub(crate) fn ts_reorg(&mut self, parent: MbId) {
        let child_ids: Vec<MbId> = self.meta(parent).children.iter().map(|c| c.mb).collect();
        let snapshots: Vec<Vec<Point>> = child_ids
            .iter()
            .map(|&c| {
                let cm = self.meta(c);
                let mains_y = self.read_run(&cm.horizontal);
                let delta = self.read_run(&cm.update);
                let tombs = self.read_run(&cm.tomb);
                ccix_extmem::merge_delta_y_desc_cancel(mains_y, delta, &tombs)
            })
            .collect();
        let mut m = self.take_meta(parent);
        if let Some(td) = m.td.as_mut() {
            self.store.free_run(&td.staged);
            self.store.free_run(&td.del_staged);
            *td = TsTd::default(); // old TD PST pages (both sides) freed on drop
        }
        self.put_meta(parent, m);
        self.install_sibling_snapshots(parent, snapshots, None);
    }

    /// Level-I: sortedness-preserving like the diagonal tree's — the
    /// x-sorted vertical run absorbs the sorted delta by a galloping merge,
    /// pending tombstones annihilate their victims in one more galloping
    /// pass, and only the y-order is re-sorted. The per-metablock PST is
    /// rebuilt over the cancelled set via
    /// [`ExternalPst::rebuild_from_sorted`], which reuses the layout of
    /// nodes the deletes did not touch.
    pub(crate) fn level_i(&mut self, mb: MbId, parent: Option<MbId>) -> usize {
        let mut m = self.take_meta(mb);
        let mains_x = SortedRun::from_sorted(self.read_run(&m.vertical));
        let delta = SortedRun::from_unsorted(self.read_run(&m.update));
        let tombs = SortedRun::from_unsorted(self.read_run(&m.tomb));
        self.store.free_run(&m.tomb);
        m.tomb.clear();
        m.tomb_buf.clear();
        self.tombs_pending -= m.n_tomb;
        m.n_tomb = 0;
        let (by_x, unmatched) = mains_x.merge(delta).cancel(&tombs);
        let mut by_y = by_x.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        self.rebuild_orgs(&mut m, &by_x, &by_y);
        let n_main = m.n_main;
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);
        if let Some(parent) = parent {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.upd_ymax = None;
                e.packed.upd_pages.clear();
                e.packed.tomb_pages.clear();
            }
            self.put_meta(parent, pm);
            self.sync_packed_entry(parent, mb);
        }
        for t in unmatched {
            self.reroute_tombstone(mb, t);
        }
        n_main
    }

    /// Replace blockings and the per-metablock PST with ones over the given
    /// pre-sorted orders. No sorting happens here; the PST rebuild reuses
    /// the previous node layout where populations are unchanged.
    fn rebuild_orgs(&mut self, m: &mut TsMeta, by_x: &SortedRun, by_y: &[Point]) {
        debug_assert!(by_y.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        debug_assert_eq!(by_x.len(), by_y.len());
        self.store.free_run(&m.vertical);
        self.store.free_run(&m.horizontal);
        self.store.free_run(&m.update);
        m.update.clear();
        m.n_upd = 0;

        m.vkeys = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        m.vertical = self.store.alloc_run(by_x);
        m.hkeys = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        m.h_live = by_y.chunks(self.geo.b).map(|c| c.len() as u32).collect();
        m.horizontal = self.store.alloc_run(by_y);
        m.n_main = by_x.len();
        m.main_bbox = BBox::of_points(by_x);
        m.y_lo_main = by_y.last().map(Point::ykey);
        if by_x.len() > self.geo.b {
            let run = SortedRun::from_sorted(by_x.to_vec());
            match m.pst.as_mut() {
                Some(pst) => pst.rebuild_from_sorted(self.geo, run),
                None => {
                    m.pst = Some(ExternalPst::build_from_sorted_on(
                        &self.backend,
                        self.geo,
                        self.counter.clone(),
                        run,
                    ))
                }
            }
        } else {
            m.pst = None; // pages freed on drop
        }
    }

    pub(super) fn level_ii(&mut self, mb: MbId, path: &[MbId]) {
        let is_leaf = self.meta(mb).is_leaf();
        if is_leaf {
            self.split_leaf(mb, path);
        } else {
            self.push_down(mb, path);
        }
    }

    fn push_down(&mut self, mb: MbId, path: &[MbId]) {
        let mut m = self.take_meta(mb);
        debug_assert_eq!(m.n_upd, 0, "level-II runs after level-I");
        debug_assert_eq!(m.n_tomb, 0, "level-I cancelled all tombstones");
        let mut pts = self.read_run(&m.horizontal);
        debug_assert!(pts.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        let bottom = pts.split_off(self.cap());
        let top_y = pts;
        let top_x = SortedRun::from_unsorted(top_y.clone());
        self.rebuild_orgs(&mut m, &top_x, &top_y);
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);

        let bottom_yhi = bottom.iter().map(Point::ykey).max();
        if let Some(&parent) = path.last() {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.sub_yhi = match (e.sub_yhi, bottom_yhi) {
                    (a, None) => a,
                    (None, b) => b,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            }
            self.put_meta(parent, pm);
            self.sync_packed_entry(parent, mb);
            self.ts_reorg(parent);
        }

        for p in bottom {
            let path_alive =
                self.metas[mb].is_some() && path.iter().all(|&a| self.metas[a].is_some());
            if path_alive {
                self.insert_routed(path.to_vec(), mb, p);
            } else {
                let root = self.root.expect("tree is nonempty");
                self.insert_routed(Vec::new(), root, p);
            }
        }
    }

    /// Leaf split over the already-x-sorted vertical run (same page count
    /// as the horizontal run) — partitioned in place, no re-sort.
    fn split_leaf(&mut self, mb: MbId, path: &[MbId]) {
        let meta = self.meta(mb);
        debug_assert_eq!(meta.n_upd, 0, "level-II runs after level-I");
        debug_assert_eq!(meta.n_tomb, 0, "level-I cancelled all tombstones");
        let pts = SortedRun::from_sorted(self.read_run(&meta.vertical));

        let Some(&parent) = path.last() else {
            self.free_metablock(mb);
            let (root, _, _) = self.build_slab(pts, FULL_RANGE.0, FULL_RANGE.1);
            self.root = Some(root);
            self.note_full_rebuild();
            return;
        };

        let half = pts.len() / 2;
        let (left, right) = pts.split_at(half);
        let median = right[0].xkey();
        self.free_metablock(mb);
        let left_bbox = BBox::of_points(&left);
        let right_bbox = BBox::of_points(&right);
        let left_id = self.make_metablock(&left, Vec::new(), false);
        let right_id = self.make_metablock(&right, Vec::new(), false);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == mb)
            .expect("split leaf present in parent");
        let old = pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: left_id,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: left_bbox,
                upd_ymax: None,
                sub_yhi: None,
                packed: PackedInfo::default(),
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: right_id,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: right_bbox,
                upd_ymax: None,
                sub_yhi: None,
                packed: PackedInfo::default(),
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.sync_packed_children(parent);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &path[..path.len() - 1]);
        }
    }

    /// Branching split over the k-way merge of the subtree's x-sorted
    /// vertical runs (see the diagonal tree's `branching_split`).
    fn branching_split(&mut self, x: MbId, ancestors: &[MbId]) {
        let pts = self.collect_subtree_sorted(x);
        self.free_subtree(x);

        let Some(&parent) = ancestors.last() else {
            let (root, _, _) = self.build_slab(pts, FULL_RANGE.0, FULL_RANGE.1);
            self.root = Some(root);
            self.note_full_rebuild();
            return;
        };

        let half = pts.len() / 2;
        let (left, right) = pts.split_at(half);
        let median = right[0].xkey();
        let old = {
            let pm = self.meta(parent);
            pm.children
                .iter()
                .find(|c| c.mb == x)
                .expect("split node present in parent")
                .clone()
        };
        let (lid, lmains, lsub) = self.build_slab(left, old.slab_lo, median);
        let (rid, rmains, rsub) = self.build_slab(right, median, old.slab_hi);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == x)
            .expect("split node present in parent");
        pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: lid,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: BBox::of_points(&lmains),
                upd_ymax: None,
                sub_yhi: lsub,
                packed: PackedInfo::default(),
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: rid,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: BBox::of_points(&rmains),
                upd_ymax: None,
                sub_yhi: rsub,
                packed: PackedInfo::default(),
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.sync_packed_children(parent);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &ancestors[..ancestors.len() - 1]);
        }
    }

    /// Every live point of the subtree as one x-sorted run; pending
    /// tombstones are collected alongside and annihilated in the final
    /// merge (the landing invariant keeps victim and tombstone in the same
    /// subtree, so cancellation is exact).
    pub(crate) fn collect_subtree_sorted(&self, mb: MbId) -> SortedRun {
        let mut runs = Vec::new();
        let mut tomb_runs = Vec::new();
        self.collect_subtree_runs(mb, &mut runs, &mut tomb_runs);
        let tombs = SortedRun::merge_many(tomb_runs);
        let (pts, unmatched) = SortedRun::merge_many(runs).cancel(&tombs);
        debug_assert!(
            unmatched.is_empty(),
            "tombstone without a victim in its subtree"
        );
        pts
    }

    fn collect_subtree_runs(
        &self,
        mb: MbId,
        runs: &mut Vec<SortedRun>,
        tomb_runs: &mut Vec<SortedRun>,
    ) {
        let meta = self.meta(mb);
        runs.push(SortedRun::from_sorted(self.read_run(&meta.vertical)));
        let delta = self.read_run(&meta.update);
        if !delta.is_empty() {
            runs.push(SortedRun::from_unsorted(delta));
        }
        let tombs = self.read_run(&meta.tomb);
        if !tombs.is_empty() {
            tomb_runs.push(SortedRun::from_unsorted(tombs));
        }
        let children: Vec<MbId> = meta.children.iter().map(|c| c.mb).collect();
        for c in children {
            self.collect_subtree_runs(c, runs, tomb_runs);
        }
    }

    pub(crate) fn free_subtree(&mut self, mb: MbId) {
        let meta = self.free_metablock(mb);
        for c in meta.children {
            self.free_subtree(c.mb);
        }
    }
}
