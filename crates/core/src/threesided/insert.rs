//! Semi-dynamic insertion for the 3-sided tree (Lemma 4.4).
//!
//! The proof of Lemma 4.4 "parallels that of Lemma 3.6": the same routing,
//! update blocks, level-I/II reorganisations, TS reorganisations and
//! branching splits as §3.2, with the corner structures replaced by
//! Lemma 4.1 PSTs. A level-I reorganisation additionally rebuilds the
//! metablock's own PST; a TS reorganisation also rebuilds the parent's
//! children PST; the TD tracking structure is a PST with a staging block.

use ccix_extmem::Point;
use ccix_pst::ExternalPst;

use super::{ThreeSidedTree, TsMeta, TsTd};
use crate::bbox::BBox;
use crate::diag::{ChildEntry, MbId, FULL_RANGE};

impl ThreeSidedTree {
    /// Insert a point. Amortised
    /// `O(log_B n + (log_B n)²/B + (log2 B)/B)` I/Os (Lemma 4.4).
    pub fn insert(&mut self, p: Point) {
        self.len += 1;
        match self.root {
            None => {
                let id = self.make_metablock(&[p], Vec::new(), false);
                self.root = Some(id);
            }
            Some(root) => self.insert_routed(Vec::new(), root, p),
        }
    }

    fn insert_routed(&mut self, above: Vec<MbId>, start: MbId, p: Point) {
        let mut path = above;
        let fix_from = path.len();
        let mut cur = start;
        loop {
            let meta = self.meta(cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_none_or(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        for i in fix_from..path.len() {
            let a = path[i];
            let on_path_child = path.get(i + 1).copied().unwrap_or(target);
            let mut m = self.take_meta(a);
            let e = m
                .children
                .iter_mut()
                .find(|c| c.mb == on_path_child)
                .expect("descent child present in parent");
            if on_path_child == target {
                e.upd_ymax = Some(e.upd_ymax.map_or(p.ykey(), |y| y.max(p.ykey())));
            } else {
                e.sub_yhi = Some(e.sub_yhi.map_or(p.ykey(), |y| y.max(p.ykey())));
            }
            self.put_meta(a, m);
        }

        let mut m = self.take_meta(target);
        match m.update {
            Some(pg) => {
                let mut pts = self.store.read(pg).to_vec();
                pts.push(p);
                self.store.write(pg, pts);
            }
            None => m.update = Some(self.store.alloc(vec![p])),
        }
        m.n_upd += 1;
        let update_full = m.n_upd >= self.geo.b;
        self.put_meta(target, m);

        if let Some(&parent) = path.last() {
            self.td_add(parent, p);
        }

        if update_full && self.metas[target].is_some() {
            let parent = path.last().copied();
            let n_main = self.level_i(target, parent);
            if n_main >= 2 * self.cap() {
                self.level_ii(target, &path);
            }
        }
    }

    fn td_add(&mut self, parent: MbId, p: Point) {
        let mut m = self.take_meta(parent);
        let td = m.td.as_mut().expect("interior metablock carries a TD");
        match td.staged {
            Some(pg) => {
                let mut pts = self.store.read(pg).to_vec();
                pts.push(p);
                self.store.write(pg, pts);
            }
            None => td.staged = Some(self.store.alloc(vec![p])),
        }
        td.n_staged += 1;
        let total = td.total();
        let staged_full = td.n_staged >= self.geo.b;
        self.put_meta(parent, m);

        if total >= self.cap() {
            self.ts_reorg(parent);
        } else if staged_full {
            self.td_rebuild(parent);
        }
    }

    fn td_rebuild(&mut self, parent: MbId) {
        let mut m = self.take_meta(parent);
        let td = m.td.as_mut().expect("TD present");
        let mut pts = match td.pst.take() {
            Some(pst) => pst.collect_points(), // pages freed on drop
            None => Vec::new(),
        };
        if let Some(pg) = td.staged.take() {
            pts.extend_from_slice(self.store.read(pg));
            self.store.free(pg);
        }
        td.n_staged = 0;
        td.n_built = pts.len();
        td.pst = Some(ExternalPst::build(self.geo, self.counter.clone(), pts));
        self.put_meta(parent, m);
    }

    /// Rebuild every child's TSL/TSR snapshot and the parent's children PST
    /// from current contents; discard the TD. `O(B²)` I/Os.
    pub(crate) fn ts_reorg(&mut self, parent: MbId) {
        let child_ids: Vec<MbId> = self.meta(parent).children.iter().map(|c| c.mb).collect();
        let snapshots: Vec<Vec<Point>> = child_ids
            .iter()
            .map(|&c| {
                let cm = self.meta(c);
                self.collect_points(cm)
            })
            .collect();
        let mut m = self.take_meta(parent);
        if let Some(td) = m.td.as_mut() {
            if let Some(pg) = td.staged.take() {
                self.store.free(pg);
            }
            *td = TsTd::default(); // old TD PST pages freed on drop
        }
        self.put_meta(parent, m);
        self.install_sibling_snapshots(parent, &snapshots);
    }

    fn level_i(&mut self, mb: MbId, parent: Option<MbId>) -> usize {
        let mut m = self.take_meta(mb);
        let pts = self.collect_points(&m);
        self.rebuild_orgs(&mut m, &pts);
        let n_main = m.n_main;
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);
        if let Some(parent) = parent {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.upd_ymax = None;
            }
            self.put_meta(parent, pm);
        }
        n_main
    }

    /// Replace blockings and the per-metablock PST with ones over `pts`.
    fn rebuild_orgs(&mut self, m: &mut TsMeta, pts: &[Point]) {
        self.store.free_run(&m.vertical);
        self.store.free_run(&m.horizontal);
        m.pst = None; // pages freed on drop
        if let Some(pg) = m.update.take() {
            self.store.free(pg);
        }
        m.n_upd = 0;

        let mut by_x = pts.to_vec();
        ccix_extmem::sort_by_x(&mut by_x);
        m.vkeys = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        m.vertical = self.store.alloc_run(&by_x);
        let mut by_y = pts.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        m.horizontal = self.store.alloc_run(&by_y);
        m.n_main = pts.len();
        m.main_bbox = BBox::of_points(pts);
        m.y_lo_main = pts.iter().map(Point::ykey).min();
        if pts.len() > self.geo.b {
            m.pst = Some(ExternalPst::build(
                self.geo,
                self.counter.clone(),
                pts.to_vec(),
            ));
        }
    }

    fn level_ii(&mut self, mb: MbId, path: &[MbId]) {
        let is_leaf = self.meta(mb).is_leaf();
        if is_leaf {
            self.split_leaf(mb, path);
        } else {
            self.push_down(mb, path);
        }
    }

    fn push_down(&mut self, mb: MbId, path: &[MbId]) {
        let mut m = self.take_meta(mb);
        debug_assert_eq!(m.n_upd, 0, "level-II runs after level-I");
        let mut pts = self.read_run(&m.horizontal);
        ccix_extmem::sort_by_y_desc(&mut pts);
        let bottom = pts.split_off(self.cap());
        let top = pts;
        self.rebuild_orgs(&mut m, &top);
        let new_bbox = m.main_bbox;
        self.put_meta(mb, m);

        let bottom_yhi = bottom.iter().map(Point::ykey).max();
        if let Some(&parent) = path.last() {
            let mut pm = self.take_meta(parent);
            if let Some(e) = pm.children.iter_mut().find(|c| c.mb == mb) {
                e.main_bbox = new_bbox;
                e.sub_yhi = match (e.sub_yhi, bottom_yhi) {
                    (a, None) => a,
                    (None, b) => b,
                    (Some(a), Some(b)) => Some(a.max(b)),
                };
            }
            self.put_meta(parent, pm);
            self.ts_reorg(parent);
        }

        for p in bottom {
            let path_alive =
                self.metas[mb].is_some() && path.iter().all(|&a| self.metas[a].is_some());
            if path_alive {
                self.insert_routed(path.to_vec(), mb, p);
            } else {
                let root = self.root.expect("tree is nonempty");
                self.insert_routed(Vec::new(), root, p);
            }
        }
    }

    fn split_leaf(&mut self, mb: MbId, path: &[MbId]) {
        let meta = self.meta(mb);
        debug_assert_eq!(meta.n_upd, 0, "level-II runs after level-I");
        let mut pts = self.read_run(&meta.horizontal);
        ccix_extmem::sort_by_x(&mut pts);

        let Some(&parent) = path.last() else {
            self.free_metablock(mb);
            let (root, _, _) = self.build_slab(pts, FULL_RANGE.0, FULL_RANGE.1);
            self.root = Some(root);
            return;
        };

        let half = pts.len() / 2;
        let right = pts.split_off(half);
        let left = pts;
        let median = right[0].xkey();
        self.free_metablock(mb);
        let left_bbox = BBox::of_points(&left);
        let right_bbox = BBox::of_points(&right);
        let left_id = self.make_metablock(&left, Vec::new(), false);
        let right_id = self.make_metablock(&right, Vec::new(), false);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == mb)
            .expect("split leaf present in parent");
        let old = pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: left_id,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: left_bbox,
                upd_ymax: None,
                sub_yhi: None,
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: right_id,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: right_bbox,
                upd_ymax: None,
                sub_yhi: None,
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &path[..path.len() - 1]);
        }
    }

    fn branching_split(&mut self, x: MbId, ancestors: &[MbId]) {
        let mut pts = self.collect_subtree_points(x);
        ccix_extmem::sort_by_x(&mut pts);
        self.free_subtree(x);

        let Some(&parent) = ancestors.last() else {
            let (root, _, _) = self.build_slab(pts, FULL_RANGE.0, FULL_RANGE.1);
            self.root = Some(root);
            return;
        };

        let half = pts.len() / 2;
        let right = pts.split_off(half);
        let left = pts;
        let median = right[0].xkey();
        let old = {
            let pm = self.meta(parent);
            pm.children
                .iter()
                .find(|c| c.mb == x)
                .expect("split node present in parent")
                .clone()
        };
        let (lid, lmains, lsub) = self.build_slab(left, old.slab_lo, median);
        let (rid, rmains, rsub) = self.build_slab(right, median, old.slab_hi);

        let mut pm = self.take_meta(parent);
        let pos = pm
            .children
            .iter()
            .position(|c| c.mb == x)
            .expect("split node present in parent");
        pm.children.remove(pos);
        pm.children.insert(
            pos,
            ChildEntry {
                mb: lid,
                slab_lo: old.slab_lo,
                slab_hi: median,
                main_bbox: BBox::of_points(&lmains),
                upd_ymax: None,
                sub_yhi: lsub,
            },
        );
        pm.children.insert(
            pos + 1,
            ChildEntry {
                mb: rid,
                slab_lo: median,
                slab_hi: old.slab_hi,
                main_bbox: BBox::of_points(&rmains),
                upd_ymax: None,
                sub_yhi: rsub,
            },
        );
        let overflow = pm.children.len() >= 2 * self.geo.b;
        self.put_meta(parent, pm);
        self.ts_reorg(parent);
        if overflow {
            self.branching_split(parent, &ancestors[..ancestors.len() - 1]);
        }
    }

    fn collect_subtree_points(&self, mb: MbId) -> Vec<Point> {
        let meta = self.meta(mb);
        let mut pts = self.collect_points(meta);
        let children: Vec<MbId> = meta.children.iter().map(|c| c.mb).collect();
        for c in children {
            pts.extend(self.collect_subtree_points(c));
        }
        pts
    }

    fn free_subtree(&mut self, mb: MbId) {
        let meta = self.free_metablock(mb);
        for c in meta.children {
            self.free_subtree(c.mb);
        }
    }
}
