//! The mixed batched write path for the 3-sided tree — inserts and
//! deletes over one shared pinned read context, the exact mirror of
//! [`crate::diag::apply`] (see there for the accounting argument).

use ccix_extmem::{Point, SortedRun};

use super::ThreeSidedTree;
use crate::diag::{mark_dirty, MbId, ReadCtx};
use crate::Op;

/// Reorganisation triggers observed while routing one buffered insert;
/// run after the batch's dirty blocks are flushed.
struct InsTriggers {
    target: MbId,
    parent: Option<MbId>,
    /// Root-first descent path (level-II cascades re-route through it).
    path: Vec<MbId>,
    update_full: bool,
    staged_full: bool,
    td_total: usize,
}

impl ThreeSidedTree {
    /// Apply a mixed batch of inserts and deletes as **one pinned
    /// operation** (see [`crate::MetablockTree::apply_batch`]): the ops
    /// route in sorted x-order over a shared read context, billing the
    /// shared descent prefix once per residency instead of once per op.
    ///
    /// Ops must be independent: the batch is re-ordered by x-key, so
    /// deleting a point the same batch inserts is a contract violation.
    pub fn apply_batch(&mut self, ops: &[Op]) {
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| ops[i].point().xkey());
        let mut ctx = self.read_ctx();
        let mut dirty: Vec<MbId> = Vec::new();
        for &i in &order {
            match ops[i] {
                Op::Insert(p) => {
                    self.len += 1;
                    if self.delta_insert(p) {
                        if self.pump_reorg() {
                            ctx = self.read_ctx();
                        }
                        continue;
                    }
                    match self.root {
                        None => {
                            let id = self.make_metablock(
                                &SortedRun::from_sorted(vec![p]),
                                Vec::new(),
                                false,
                            );
                            self.root = Some(id);
                            // The (possibly resident) root changed.
                            ctx = self.read_ctx();
                        }
                        Some(root) => {
                            let t = self.route_insert(&mut ctx, &mut dirty, root, p);
                            let fired = self.run_ins_triggers(&mut dirty, t);
                            let pumped = self.pump_reorg();
                            if fired || pumped {
                                ctx = self.read_ctx();
                            }
                        }
                    }
                }
                Op::Delete(p) => {
                    assert!(
                        self.root.is_some() || self.reorg.job.is_some(),
                        "delete from an empty tree"
                    );
                    self.len -= 1;
                    self.deletes_since_shrink += 1;
                    if self.delta_delete(p) {
                        if self.pump_reorg() {
                            ctx = self.read_ctx();
                        }
                        continue;
                    }
                    let root = self.root.expect("tree is nonempty");
                    let t = self.route_tombstone(&mut ctx, &mut dirty, Vec::new(), root, p);
                    let fired = self.run_del_triggers(&mut dirty, t);
                    let pumped = self.pump_reorg();
                    if fired || pumped {
                        ctx = self.read_ctx();
                    }
                }
            }
        }
        self.flush_dirty(&dirty);
        self.maybe_shrink();
    }

    /// Route `p` downward from the root and buffer it — phases 1–4 of
    /// [`ThreeSidedTree::insert_routed`] billed through the shared context,
    /// recording (without running) the triggers it pulled.
    fn route_insert(
        &mut self,
        ctx: &mut ReadCtx,
        dirty: &mut Vec<MbId>,
        start: MbId,
        p: Point,
    ) -> InsTriggers {
        let mut path: Vec<MbId> = Vec::new();

        // Phase 1 — descend (the pure-router rule is `insert_routed`'s).
        let mut cur = start;
        loop {
            let meta = self.ctx_meta(ctx, cur);
            let lands = meta.is_leaf() || meta.y_lo_main.is_some_and(|ylo| p.ykey() >= ylo);
            if lands {
                break;
            }
            debug_assert!(
                meta.y_lo_main.is_some() || meta.n_upd == 0,
                "emptied interior metablock holds buffered points"
            );
            let idx = meta.children.partition_point(|c| c.slab_hi <= p.xkey());
            debug_assert!(
                idx < meta.children.len() && meta.children[idx].slab_contains(p.xkey()),
                "slab ranges must cover the key space"
            );
            let child = meta.children[idx].mb;
            path.push(cur);
            cur = child;
        }
        let target = cur;

        // Phase 2 — refresh ancestor caches in memory, marking real changes.
        for i in 0..path.len() {
            let a = path[i];
            let on_path_child = path.get(i + 1).copied().unwrap_or(target);
            let m = self.metas[a].as_mut().expect("pinned ancestor is live");
            let e = m
                .children
                .iter_mut()
                .find(|c| c.mb == on_path_child)
                .expect("descent child present in parent");
            let changed = if on_path_child == target {
                if e.upd_ymax.is_none_or(|y| p.ykey() > y) {
                    e.upd_ymax = Some(p.ykey());
                    true
                } else {
                    false
                }
            } else if e.sub_yhi.is_none_or(|y| p.ykey() > y) {
                e.sub_yhi = Some(p.ykey());
                true
            } else {
                false
            };
            if changed {
                mark_dirty(dirty, a);
            }
        }

        // Phase 3 — append to the target's update buffer.
        let b = self.geo.b;
        let open_page = {
            let m = self.metas[target].as_ref().expect("target is live");
            (!m.n_upd.is_multiple_of(b)).then(|| *m.update.last().expect("partial page exists"))
        };
        match open_page {
            Some(pg) => self.store.append(pg, p),
            None => {
                let pg = self.store.alloc(vec![p]);
                self.metas[target]
                    .as_mut()
                    .expect("target is live")
                    .update
                    .push(pg);
                if self.pack_h() > 0 {
                    if let Some(&par) = path.last() {
                        let pm = self.metas[par].as_mut().expect("parent is live");
                        if let Some(e) = pm.children.iter_mut().find(|c| c.mb == target) {
                            e.packed.upd_pages.push(pg);
                            mark_dirty(dirty, par);
                        }
                    }
                }
            }
        }
        let update_full = {
            let m = self.metas[target].as_mut().expect("target is live");
            m.n_upd += 1;
            m.n_upd >= self.upd_cap_pages() * b
        };
        mark_dirty(dirty, target);

        // Phase 4 — track the insert in the parent's TD structure.
        let parent = path.last().copied();
        let mut td_total = 0usize;
        let mut staged_full = false;
        if let Some(par) = parent {
            ctx.touch_meta(par);
            let open_page = {
                let td = self.metas[par]
                    .as_ref()
                    .expect("parent is live")
                    .td
                    .as_ref();
                let td = td.expect("interior metablock carries a TD");
                (!td.n_staged.is_multiple_of(b))
                    .then(|| *td.staged.last().expect("partial page exists"))
            };
            match open_page {
                Some(pg) => self.store.append(pg, p),
                None => {
                    let pg = self.store.alloc(vec![p]);
                    self.metas[par]
                        .as_mut()
                        .expect("parent is live")
                        .td
                        .as_mut()
                        .expect("TD present")
                        .staged
                        .push(pg);
                }
            }
            let td = self.metas[par]
                .as_mut()
                .expect("parent is live")
                .td
                .as_mut()
                .expect("TD present");
            td.n_staged += 1;
            td_total = td.total() + td.del_total();
            staged_full = td.n_staged >= self.td_cap_pages() * b;
            mark_dirty(dirty, par);
        }

        InsTriggers {
            target,
            parent,
            path,
            update_full,
            staged_full,
            td_total,
        }
    }

    /// Run the amortised triggers of one routed insert; returns whether any
    /// reorganisation fired (so the batch context must be re-created).
    fn run_ins_triggers(&mut self, dirty: &mut Vec<MbId>, t: InsTriggers) -> bool {
        let mut fired = false;
        if let Some(par) = t.parent {
            if t.td_total >= self.cap() {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.ts_reorg(par));
                fired = true;
            } else if t.staged_full {
                self.flush_dirty(dirty);
                dirty.clear();
                self.with_shunt(|tr| tr.td_rebuild(par));
                fired = true;
            }
        }
        if t.update_full && self.metas[t.target].is_some() {
            self.flush_dirty(dirty);
            dirty.clear();
            let n_main = self.with_shunt(|tr| tr.level_i(t.target, t.parent));
            if n_main >= 2 * self.cap() {
                self.with_shunt(|tr| tr.level_ii(t.target, &t.path));
            }
            fired = true;
        }
        fired
    }
}
