//! The 3-sided metablock tree (§4, Lemmas 4.3 and 4.4).
//!
//! Answers **3-sided queries** — report every point with `x1 ≤ x ≤ x2` and
//! `y ≥ y0` — in `O(log_B n + t/B + log2 B)` I/Os, `O(n/B)` pages, with
//! amortised `O(log_B n + (log2B n)/B)`-style insertion, mirroring §3.2.
//!
//! The skeleton is the metablock tree of §3; the paper adapts it by
//! replacing the corner structures (which assume a corner on the diagonal)
//! with Lemma 4.1 priority search trees, and by handling the five
//! differences it lists for 3-sided queries (Fig. 20):
//!
//! 1./2. corners anywhere → each metablock carries an [`ExternalPst`] over
//!   its mains, so a metablock straddling the query bottom answers in
//!   `O(log2 B² + t/B)`;
//! 3. two vertical sides in one metablock → the vertical blocking plus its
//!   page-boundary keys locate the x-range directly;
//! 4. the sides fall on two children of the same parent → every interior
//!   metablock keeps a **children PST** over the `O(B³)` points of its
//!   children (queried at most once per search: at the fork);
//! 5. queries can open to the left *or* right → each child keeps **two** TS
//!   snapshots, `TSL` over its left siblings and `TSR` over its right
//!   siblings.
//!
//! Insertions replace the TD corner structure with a TD priority search
//! tree; level-I/II reorganisations and branching splits carry over
//! unchanged (Lemma 4.4).

mod apply;
mod build;
mod delete;
mod insert;
mod query;
mod reorg;
mod validate;

pub use validate::ThreeSidedStats;

use ccix_extmem::{BackendSpec, Geometry, IoCounter, PageId, Point, TypedStore};
use ccix_pst::ExternalPst;

use crate::bbox::{BBox, Key};
use crate::diag::{ChildEntry, MbId, ReadCtx, TsInfo, SPACE_AUX, SPACE_META, SPACE_STORE};

/// TD insert-tracking structure of an interior metablock: the points
/// inserted into its children since the last TS reorganisation, queryable as
/// a PST plus a staging area of at most
/// [`ThreeSidedTree::td_cap_pages`] pages.
///
/// Deletions add the mirror-image **delete side** (see the diagonal tree's
/// [`crate::diag`] TD): tombstones routed into the children since the last
/// TS reorganisation, queryable as a PST so snapshot-answered routes (TSL/
/// TSR crossing case, children-PST fork) can subtract deletes younger than
/// the copies they report from.
#[derive(Debug, Default)]
pub(crate) struct TsTd {
    pub pst: Option<ExternalPst>,
    pub n_built: usize,
    pub staged: Vec<PageId>,
    pub n_staged: usize,
    /// PST over the settled tombstones.
    pub del_pst: Option<ExternalPst>,
    pub n_del_built: usize,
    /// Tombstone staging pages.
    pub del_staged: Vec<PageId>,
    pub n_del_staged: usize,
    /// Control-block mirror of the `del_staged` pages' contents (see the
    /// diagonal tree's `TdInfo::del_staged_buf`): snapshot-answered routes
    /// subtract these pending deletes for free; the pages stay
    /// authoritative for the TD fold.
    pub del_staged_buf: Vec<Point>,
}

impl TsTd {
    /// Deep-copy the control state, forking the PSTs onto `counter` (see
    /// [`ThreeSidedTree::fork_snapshot`]).
    pub fn fork(&self, counter: &IoCounter) -> Self {
        Self {
            pst: self.pst.as_ref().map(|p| p.fork(counter.clone())),
            n_built: self.n_built,
            staged: self.staged.clone(),
            n_staged: self.n_staged,
            del_pst: self.del_pst.as_ref().map(|p| p.fork(counter.clone())),
            n_del_built: self.n_del_built,
            del_staged: self.del_staged.clone(),
            n_del_staged: self.n_del_staged,
            del_staged_buf: self.del_staged_buf.clone(),
        }
    }

    pub fn total(&self) -> usize {
        self.n_built + self.n_staged
    }

    /// Pending tombstones tracked on the delete side.
    pub fn del_total(&self) -> usize {
        self.n_del_built + self.n_del_staged
    }
}

/// One metablock of the 3-sided tree.
#[derive(Debug)]
pub(crate) struct TsMeta {
    /// Mains, x-sorted, `B` per page.
    pub vertical: Vec<PageId>,
    /// First x-key of each vertical page (control info: "boundary values").
    pub vkeys: Vec<Key>,
    /// Mains, y-descending, `B` per page.
    pub horizontal: Vec<PageId>,
    /// First (largest) y-key of each horizontal page.
    pub hkeys: Vec<Key>,
    /// Live (un-tombstoned) count of each horizontal page, decremented as
    /// routed tombstones shadow main points; queries skip a fully-dead
    /// page (the post-delete-flood stabbing fix — see the diagonal tree).
    pub h_live: Vec<u32>,
    pub n_main: usize,
    pub y_lo_main: Option<Key>,
    pub main_bbox: Option<BBox>,
    /// Lemma 4.1 structure over the mains (absent for ≤ B mains, where the
    /// single vertical block is scanned instead).
    pub pst: Option<ExternalPst>,
    /// Update buffer: buffered inserts, at most
    /// [`ThreeSidedTree::upd_cap_pages`] pages of `B`.
    pub update: Vec<PageId>,
    pub n_upd: usize,
    /// Tombstone buffer: buffered deletes, at most
    /// [`ThreeSidedTree::tomb_cap_pages`] pages of `B`; the landing
    /// invariant keeps each tombstone next to its victim (see the diagonal
    /// tree's tombstone buffer).
    pub tomb: Vec<PageId>,
    pub n_tomb: usize,
    /// Control-block mirror of the `tomb` pages' contents (see the diagonal
    /// tree's `MetaBlock::tomb_buf`): bounded by `tomb_cap_pages · B`
    /// points, it lets queries subtract pending deletes for free instead of
    /// paying one read per pending tombstone page. The pages stay
    /// authoritative for every reorganisation merge.
    pub tomb_buf: Vec<Point>,
    /// Snapshot of the top `B²` points of the left siblings.
    pub tsl: Option<TsInfo>,
    /// Snapshot of the top `B²` points of the right siblings.
    pub tsr: Option<TsInfo>,
    /// Interior only: PST over all children's snapshot points (≤ `B³`).
    pub children_pst: Option<ExternalPst>,
    /// Interior only: TD insert tracking.
    pub td: Option<TsTd>,
    pub children: Vec<ChildEntry>,
}

impl TsMeta {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Deep-copy the control state, forking the per-metablock PSTs onto
    /// `counter` (see [`ThreeSidedTree::fork_snapshot`]).
    pub fn fork(&self, counter: &IoCounter) -> Self {
        Self {
            vertical: self.vertical.clone(),
            vkeys: self.vkeys.clone(),
            horizontal: self.horizontal.clone(),
            hkeys: self.hkeys.clone(),
            h_live: self.h_live.clone(),
            n_main: self.n_main,
            y_lo_main: self.y_lo_main,
            main_bbox: self.main_bbox,
            pst: self.pst.as_ref().map(|p| p.fork(counter.clone())),
            update: self.update.clone(),
            n_upd: self.n_upd,
            tomb: self.tomb.clone(),
            n_tomb: self.n_tomb,
            tomb_buf: self.tomb_buf.clone(),
            tsl: self.tsl.clone(),
            tsr: self.tsr.clone(),
            children_pst: self.children_pst.as_ref().map(|p| p.fork(counter.clone())),
            td: self.td.as_ref().map(|t| t.fork(counter)),
            children: self.children.clone(),
        }
    }
}

/// The dynamic 3-sided metablock tree (§4).
///
/// Points may lie anywhere in the plane; ids must be unique across the
/// tree's lifetime (a deleted id may not be reused). Costs on the shared
/// counter:
///
/// * [`ThreeSidedTree::query_into`] — `O(log_B n + t/B + log2 B)` I/Os
///   (Lemma 4.3);
/// * [`ThreeSidedTree::insert`] — `O(log_B n + (log2B n)/B)` amortised I/Os
///   (Lemma 4.4);
/// * [`ThreeSidedTree::delete`] — the same amortised budget (tombstones
///   ride the insert machinery; §5's open problem, closed here);
/// * space `O(live/B)` pages.
#[derive(Debug)]
pub struct ThreeSidedTree {
    pub(crate) geo: Geometry,
    pub(crate) counter: IoCounter,
    pub(crate) store: TypedStore<Point>,
    pub(crate) metas: Vec<Option<TsMeta>>,
    pub(crate) dead_metas: usize,
    pub(crate) root: Option<MbId>,
    pub(crate) len: usize,
    /// Tombstones currently buffered somewhere in the tree.
    pub(crate) tombs_pending: usize,
    /// Deletes absorbed since the last full (re)build (shrink trigger).
    pub(crate) deletes_since_shrink: usize,
    /// Tree size at the last full (re)build.
    pub(crate) shrink_base: usize,
    pub(crate) tuning: crate::Tuning,
    /// Incremental-reorganisation state: deferred-work debt plus the
    /// in-progress background shrink job, if any (see [`crate::diag::reorg`]).
    pub(crate) reorg: crate::diag::reorg::ReorgState,
    /// Page backend every store in this tree lives on. Retained (unlike the
    /// diagonal tree, which owns a single store) because the per-metablock
    /// PSTs are created dynamically as the tree grows, and each one must
    /// land on the same backend as the main point store.
    pub(crate) backend: BackendSpec,
}

impl ThreeSidedTree {
    /// Create an empty tree with the measured default [`crate::Tuning`].
    pub fn new(geo: Geometry, counter: IoCounter) -> Self {
        Self::new_tuned(geo, counter, crate::Tuning::default())
    }

    /// Create an empty tree with explicit tuning (the corner-structure knob
    /// is unused here; §4 replaces corner structures with PSTs).
    pub fn new_tuned(geo: Geometry, counter: IoCounter, tuning: crate::Tuning) -> Self {
        Self::new_tuned_on(&BackendSpec::Model, geo, counter, tuning)
    }

    /// [`ThreeSidedTree::new_tuned`] on an explicit page backend. The spec
    /// is kept for the tree's lifetime: every per-metablock PST store the
    /// dynamic side creates is opened on the same backend as the main
    /// point store.
    pub fn new_tuned_on(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        tuning: crate::Tuning,
    ) -> Self {
        Self {
            geo,
            counter: counter.clone(),
            store: TypedStore::new_on(spec, geo.b, counter),
            metas: Vec::new(),
            dead_metas: 0,
            root: None,
            len: 0,
            tombs_pending: 0,
            deletes_since_shrink: 0,
            shrink_base: 0,
            tuning,
            reorg: crate::diag::reorg::ReorgState::default(),
            backend: spec.clone(),
        }
    }

    /// Fork a frozen read **snapshot** of this tree, charging its I/O to
    /// `counter` — the §4 counterpart of
    /// [`crate::MetablockTree::fork_snapshot`], with the per-metablock
    /// PSTs forked copy-on-write alongside the point store.
    pub fn fork_snapshot(&self, counter: IoCounter) -> Self {
        Self {
            geo: self.geo,
            counter: counter.clone(),
            store: self.store.fork(counter.clone()),
            metas: self
                .metas
                .iter()
                .map(|m| m.as_ref().map(|m| m.fork(&counter)))
                .collect(),
            dead_metas: self.dead_metas,
            root: self.root,
            len: self.len,
            tombs_pending: self.tombs_pending,
            deletes_since_shrink: self.deletes_since_shrink,
            shrink_base: self.shrink_base,
            tuning: self.tuning,
            reorg: self.reorg.clone(),
            // Snapshots are in-memory publications: forked stores are
            // model-backed, and so are any PSTs the snapshot would create
            // (it never creates any — snapshots are read-only).
            backend: BackendSpec::Model,
        }
    }

    /// The tree's write-path tuning.
    pub fn tuning(&self) -> crate::Tuning {
        self.tuning
    }

    /// Update-buffer budget in pages (≥ 1); see the diagonal tree's clamp
    /// rationale.
    pub(crate) fn upd_cap_pages(&self) -> usize {
        self.tuning
            .update_batch_pages
            .clamp(1, (self.geo.b / 2).max(1))
    }

    /// TD staging budget in pages (≥ 1), shared by both TD sides.
    pub(crate) fn td_cap_pages(&self) -> usize {
        self.tuning.td_batch_pages.clamp(1, (self.geo.b / 2).max(1))
    }

    /// Tombstone-buffer budget in pages (≥ 1).
    pub(crate) fn tomb_cap_pages(&self) -> usize {
        self.tuning
            .tomb_batch_pages
            .clamp(1, (self.geo.b / 2).max(1))
    }

    /// TSL/TSR snapshot budget in points (≥ B).
    pub(crate) fn ts_cap_points(&self) -> usize {
        match self.tuning.ts_snapshot_pages {
            None => self.geo.b2(),
            Some(pages) => (pages.max(1) * self.geo.b).min(self.geo.b2()),
        }
    }

    /// Mirrored horizontal pages per child entry (0 = packing disabled);
    /// see the diagonal tree's [`crate::MetablockTree::pack_h`].
    pub(crate) fn pack_h(&self) -> usize {
        self.tuning.pack_h_pages
    }

    /// Number of points stored (inserts minus deletes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logically deleted points whose tombstones are still pending
    /// cancellation (see [`crate::MetablockTree::pending_deletes`]).
    pub fn pending_deletes(&self) -> usize {
        self.tombs_pending
    }

    /// Block geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// The shared I/O counter.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Disk blocks occupied: data pages, PST pages, plus one control block
    /// per metablock.
    pub fn space_pages(&self) -> usize {
        let mut pages = self.store.pages_in_use() + (self.metas.len() - self.dead_metas);
        for meta in self.metas.iter().flatten() {
            pages += meta.pst.as_ref().map_or(0, ExternalPst::space_pages);
            pages += meta
                .children_pst
                .as_ref()
                .map_or(0, ExternalPst::space_pages);
            if let Some(td) = &meta.td {
                pages += td.pst.as_ref().map_or(0, ExternalPst::space_pages);
                pages += td.del_pst.as_ref().map_or(0, ExternalPst::space_pages);
            }
        }
        pages
    }

    // ---- control information (charged) -----------------------------------

    pub(crate) fn meta(&self, mb: MbId) -> &TsMeta {
        self.counter.add_reads(1);
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    pub(crate) fn take_meta(&mut self, mb: MbId) -> TsMeta {
        self.counter.add_reads(1);
        self.metas[mb].take().expect("take of freed metablock")
    }

    pub(crate) fn put_meta(&mut self, mb: MbId, meta: TsMeta) {
        self.counter.add_writes(1);
        self.metas[mb] = Some(meta);
    }

    pub(crate) fn meta_unbilled(&self, mb: MbId) -> &TsMeta {
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    // ---- pinned query-side access ----------------------------------------

    /// Fresh read context for one query-side operation (or one batch);
    /// with [`crate::Tuning::resident_root`], the root control block starts
    /// resident (see the diagonal tree).
    pub(crate) fn read_ctx(&self) -> ReadCtx {
        let mut ctx = ReadCtx::new(self.geo, self.counter.clone());
        if self.tuning.resident_root {
            if let Some(root) = self.root {
                ctx.resident = Some((SPACE_META, root as u64));
            }
        }
        ctx
    }

    /// Pinned control-block read: one I/O per residency in `ctx`.
    pub(crate) fn ctx_meta(&self, ctx: &mut ReadCtx, mb: MbId) -> &TsMeta {
        ctx.touch_meta(mb);
        self.metas[mb].as_ref().expect("read of freed metablock")
    }

    /// Pinned data-page read: one I/O per residency in `ctx`.
    pub(crate) fn ctx_read(&self, ctx: &mut ReadCtx, pg: PageId) -> &[Point] {
        self.store.read_pinned(&mut ctx.pin, SPACE_STORE, pg)
    }

    /// Pin key-space of metablock `mb`'s own PST (`j = 0`), children PST
    /// (`j = 1`), TD PST (`j = 2`) or TD delete-side PST (`j = 3`).
    pub(crate) fn pst_space(mb: MbId, j: u32) -> u32 {
        SPACE_AUX + 4 * (mb as u32) + j
    }

    /// Pinned read for one multi-step operation; see the diagonal tree's
    /// [`crate::MetablockTree::pin_meta`] for the accounting argument.
    pub(crate) fn pin_meta(&self, pinned: &mut Vec<MbId>, mb: MbId) -> &TsMeta {
        if !pinned.contains(&mb) {
            self.counter.add_reads(1);
            pinned.push(mb);
        }
        self.metas[mb].as_ref().expect("pinned metablock is live")
    }

    /// Charge one write per distinct dirty control block of a pinned
    /// operation.
    pub(crate) fn flush_dirty(&self, dirty: &[MbId]) {
        self.counter.add_writes(dirty.len() as u64);
    }

    pub(crate) fn alloc_meta(&mut self, meta: TsMeta) -> MbId {
        self.counter.add_writes(1);
        // Never reuse slots (reliable liveness; see the diagonal tree).
        self.metas.push(Some(meta));
        self.metas.len() - 1
    }

    pub(crate) fn free_metablock(&mut self, mb: MbId) -> TsMeta {
        let meta = self.metas[mb].take().expect("double free of metablock");
        self.dead_metas += 1;
        self.store.free_run(&meta.vertical);
        self.store.free_run(&meta.horizontal);
        self.store.free_run(&meta.update);
        self.store.free_run(&meta.tomb);
        self.tombs_pending -= meta.n_tomb;
        if let Some(ts) = &meta.tsl {
            self.store.free_run(&ts.pages);
        }
        if let Some(ts) = &meta.tsr {
            self.store.free_run(&ts.pages);
        }
        if let Some(td) = &meta.td {
            self.store.free_run(&td.staged);
            self.store.free_run(&td.del_staged);
        }
        // PSTs own their pages; dropping the meta releases them.
        meta
    }

    // ---- helpers ----------------------------------------------------------

    pub(crate) fn read_run(&self, pages: &[PageId]) -> Vec<Point> {
        let mut out = Vec::with_capacity(pages.len() * self.geo.b);
        for &pg in pages {
            out.extend_from_slice(self.store.read(pg));
        }
        out
    }

    pub(crate) fn cap(&self) -> usize {
        self.geo.b2()
    }

    // ---- packed-entry maintenance (mirrors the diagonal tree) ------------

    /// Mirror `child`'s query-side control info into its entry in `parent`
    /// (in-memory; see [`crate::MetablockTree::sync_packed_entry`]).
    pub(crate) fn sync_packed_entry(&mut self, parent: MbId, child: MbId) {
        let h = self.pack_h();
        if h == 0 {
            return;
        }
        let (h_pages, h_tops, h_live, h_more, upd, tomb) = {
            let cm = self.metas[child].as_ref().expect("live child");
            (
                cm.horizontal.iter().take(h).copied().collect::<Vec<_>>(),
                cm.hkeys.iter().take(h).copied().collect::<Vec<_>>(),
                cm.h_live.iter().take(h).copied().collect::<Vec<_>>(),
                cm.horizontal.len() > h,
                cm.update.clone(),
                cm.tomb.clone(),
            )
        };
        let pm = self.metas[parent].as_mut().expect("live parent");
        let e = pm
            .children
            .iter_mut()
            .find(|c| c.mb == child)
            .expect("child present in parent");
        e.packed.h_pages = h_pages;
        e.packed.h_tops = h_tops;
        e.packed.h_live = h_live;
        e.packed.h_more = h_more;
        e.packed.upd_pages = upd;
        e.packed.tomb_pages = tomb;
    }

    /// Refresh every child mirror of `parent` (child list changed).
    pub(crate) fn sync_packed_children(&mut self, parent: MbId) {
        if self.pack_h() == 0 {
            return;
        }
        let children: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        for c in children {
            self.sync_packed_entry(parent, c);
        }
    }
}
