//! Unbilled invariant checking and statistics for the 3-sided tree.

use std::collections::BTreeSet;

use ccix_extmem::Point;

use super::{ThreeSidedTree, TsMeta};
use crate::bbox::{BBox, Key};
use crate::diag::{MbId, TsInfo};

/// Shape statistics of a 3-sided metablock tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreeSidedStats {
    /// Total metablocks.
    pub metablocks: usize,
    /// Leaf metablocks.
    pub leaves: usize,
    /// Height in metablock levels.
    pub height: usize,
    /// Total disk blocks (data + PSTs + control).
    pub pages: usize,
    /// Points stored.
    pub points: usize,
    /// Tombstones held in tombstone buffers awaiting cancellation (each
    /// shadows one stored, logically deleted point counted in `points`).
    pub pending_tombs: usize,
    /// Pages in per-metablock and children PSTs.
    pub pst_pages: usize,
}

impl ThreeSidedTree {
    /// Compute shape statistics without charging I/Os.
    pub fn stats(&self) -> ThreeSidedStats {
        let mut s = ThreeSidedStats {
            pages: self.space_pages(),
            ..ThreeSidedStats::default()
        };
        if let Some(root) = self.root {
            self.stats_rec(root, 1, &mut s);
        }
        s
    }

    fn stats_rec(&self, mb: MbId, depth: usize, s: &mut ThreeSidedStats) {
        let meta = self.meta_unbilled(mb);
        s.metablocks += 1;
        s.height = s.height.max(depth);
        s.points += meta.n_main + meta.n_upd;
        s.pending_tombs += meta.n_tomb;
        s.pst_pages += meta.pst.as_ref().map_or(0, |p| p.space_pages());
        s.pst_pages += meta.children_pst.as_ref().map_or(0, |p| p.space_pages());
        if meta.is_leaf() {
            s.leaves += 1;
        }
        for c in &meta.children {
            self.stats_rec(c.mb, depth + 1, s);
        }
    }

    /// Walk the tree unbilled, assert all invariants, and return the stored
    /// points. Test/debug only.
    pub fn validate_unbilled(&self) -> Vec<Point> {
        let mut all = Vec::new();
        if let Some(root) = self.root {
            self.validate_rec(root, (i64::MIN, 0), (i64::MAX, u64::MAX), None, &mut all);
        }
        assert_eq!(
            self.stats().pending_tombs,
            self.tombs_pending,
            "stale pending-tombstone counter"
        );
        // With a background shrink job in progress, the job's delta is part
        // of the physical contents (see the diagonal tree's validator).
        let tree_ids: BTreeSet<u64> = all.iter().map(|p| p.id).collect();
        for t in self.delta_tombs_unbilled() {
            assert!(
                tree_ids.contains(&t.id),
                "delta tombstone {t:?} has no victim in the tree"
            );
        }
        let (delta_live, tomb_rem) = self.delta_contents_unbilled();
        all.extend(delta_live);
        // Physical contents = logical contents plus one shadowed copy per
        // pending tombstone, buffered in the tree or in the delta.
        assert_eq!(
            all.len(),
            self.len + self.tombs_pending + tomb_rem,
            "stored point count mismatch"
        );
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        for p in &all {
            assert!(ids.insert(p.id), "duplicate id {}", p.id);
        }
        all
    }

    fn validate_rec(
        &self,
        mb: MbId,
        slab_lo: Key,
        slab_hi: Key,
        y_bound: Option<Key>,
        all: &mut Vec<Point>,
    ) {
        let meta = self.meta_unbilled(mb);
        // Dense blocking: every run page full except the last (the merge
        // pipeline must emit exactly the runs a sort-based rebuild would).
        self.assert_dense_run(&meta.vertical, "vertical");
        self.assert_dense_run(&meta.horizontal, "horizontal");
        if let Some(ts) = &meta.tsl {
            self.assert_dense_run(&ts.pages, "TSL snapshot");
        }
        if let Some(ts) = &meta.tsr {
            self.assert_dense_run(&ts.pages, "TSR snapshot");
        }
        let mains = self.pages_unbilled(&meta.horizontal);
        assert_eq!(mains.len(), meta.n_main, "main count mismatch");

        let vertical = self.pages_unbilled(&meta.vertical);
        assert!(
            vertical.windows(2).all(|w| w[0].xkey() < w[1].xkey()),
            "vertical blocking out of order"
        );
        assert_eq!(
            meta.vkeys,
            vertical
                .chunks(self.geo.b)
                .map(|c| c[0].xkey())
                .collect::<Vec<_>>(),
            "stale vertical page-boundary keys"
        );
        let horizontal = &mains;
        assert!(
            horizontal.windows(2).all(|w| w[0].ykey() > w[1].ykey()),
            "horizontal blocking out of order"
        );
        assert_eq!(
            meta.hkeys,
            horizontal
                .chunks(self.geo.b)
                .map(|c| c[0].ykey())
                .collect::<Vec<_>>(),
            "stale horizontal page-top keys"
        );
        assert_eq!(meta.main_bbox, BBox::of_points(&mains), "stale main bbox");
        assert_eq!(
            meta.y_lo_main,
            mains.iter().map(Point::ykey).min(),
            "stale y_lo_main"
        );
        if let Some(pst) = &meta.pst {
            let mut a: Vec<u64> = pst.collect_points_unbilled().iter().map(|p| p.id).collect();
            let mut b: Vec<u64> = mains.iter().map(|p| p.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "metablock PST out of sync with mains");
        } else {
            assert!(meta.n_main <= self.geo.b, "multi-block mains without a PST");
        }

        let update = self.pages_unbilled(&meta.update);
        assert_eq!(update.len(), meta.n_upd, "update count mismatch");
        assert!(
            update.len() <= self.upd_cap_pages() * self.geo.b,
            "update buffer overfull: {} points",
            update.len()
        );
        for p in mains.iter().chain(&update) {
            assert!(
                p.xkey() >= slab_lo && p.xkey() < slab_hi,
                "point {p:?} outside slab [{slab_lo:?}, {slab_hi:?})"
            );
            if let Some(bound) = y_bound {
                assert!(p.ykey() < bound, "routing invariant violated: {p:?}");
            }
        }

        // Tombstone buffer: within budget, unique ids, and the landing
        // invariant — each tombstone's victim is an exact copy stored in
        // this same metablock's mains or update buffer.
        let tombs = self.pages_unbilled(&meta.tomb);
        assert_eq!(tombs.len(), meta.n_tomb, "tombstone count mismatch");
        assert_eq!(tombs, meta.tomb_buf, "stale tombstone control-block mirror");
        assert!(
            tombs.len() <= self.tomb_cap_pages() * self.geo.b,
            "tombstone buffer overfull: {} tombstones",
            tombs.len()
        );
        {
            let mut seen: BTreeSet<u64> = BTreeSet::new();
            for t in &tombs {
                assert!(seen.insert(t.id), "duplicate tombstone id {}", t.id);
                assert!(
                    mains.iter().chain(&update).any(|p| p == t),
                    "tombstone {t:?} has no victim in its metablock"
                );
            }
        }

        // Per-page live counts are exact: page points minus the pending
        // tombstones of *this* metablock that match them (the landing
        // invariant colocates every tombstone with its victim).
        let tomb_ids: BTreeSet<u64> = tombs.iter().map(|t| t.id).collect();
        assert_eq!(
            meta.h_live,
            horizontal
                .chunks(self.geo.b)
                .map(|c| c.iter().filter(|p| !tomb_ids.contains(&p.id)).count() as u32)
                .collect::<Vec<_>>(),
            "stale per-page live counts"
        );

        all.extend_from_slice(&mains);
        all.extend_from_slice(&update);

        if !meta.children.is_empty() {
            assert!(meta.td.is_some(), "interior metablock without TD");
            // An emptied interior metablock is a pure router: the insert
            // and delete routings pass it by, so its buffers stay empty.
            if meta.main_bbox.is_none() {
                assert_eq!(meta.n_upd, 0, "emptied interior metablock buffers inserts");
                assert_eq!(
                    meta.n_tomb, 0,
                    "emptied interior metablock buffers tombstones"
                );
            }
            assert_eq!(meta.children[0].slab_lo, slab_lo, "first slab misaligned");
            assert_eq!(
                meta.children.last().unwrap().slab_hi,
                slab_hi,
                "last slab misaligned"
            );
            for w in meta.children.windows(2) {
                assert_eq!(w[0].slab_hi, w[1].slab_lo, "slab gap between children");
            }
            self.validate_sibling_coverage(meta);
            self.validate_packed(meta);

            let y_lo = meta.y_lo_main;
            for c in &meta.children {
                let child_meta = self.meta_unbilled(c.mb);
                let child_mains = self.pages_unbilled(&child_meta.horizontal);
                assert_eq!(
                    c.main_bbox,
                    BBox::of_points(&child_mains),
                    "stale child main bbox"
                );
                let child_upd = self.pages_unbilled(&child_meta.update);
                assert_eq!(
                    c.upd_ymax,
                    child_upd.iter().map(Point::ykey).max(),
                    "stale child upd_ymax"
                );
                let mut sub = Vec::new();
                for g in &child_meta.children {
                    self.collect_unbilled(g.mb, &mut sub);
                }
                let true_sub_yhi = sub.iter().map(Point::ykey).max();
                assert!(
                    c.sub_yhi >= true_sub_yhi,
                    "child sub_yhi underestimates: cached {:?} < true {:?}",
                    c.sub_yhi,
                    true_sub_yhi
                );
                self.validate_rec(c.mb, c.slab_lo, c.slab_hi, y_lo, all);
            }
        } else {
            assert!(meta.td.is_none(), "leaf metablock with TD");
            assert!(meta.children_pst.is_none(), "leaf with children PST");
        }
    }

    /// Packed control information is an exact mirror of the children's
    /// state: horizontal-prefix, update-page and TSL/TSR-page mirrors all
    /// match (see the diagonal tree's validator).
    fn validate_packed(&self, meta: &TsMeta) {
        let h = self.pack_h();
        if h == 0 {
            for c in &meta.children {
                assert!(c.packed.h_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.upd_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.tomb_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.ts_pages.is_empty(), "mirror while packing off");
                assert!(c.packed.tsr_pages.is_empty(), "mirror while packing off");
            }
            return;
        }
        for c in &meta.children {
            let child_meta = self.meta_unbilled(c.mb);
            assert_eq!(
                c.packed.h_pages,
                child_meta
                    .horizontal
                    .iter()
                    .take(h)
                    .copied()
                    .collect::<Vec<_>>(),
                "stale packed horizontal-prefix mirror"
            );
            assert_eq!(
                c.packed.h_tops,
                child_meta.hkeys.iter().take(h).copied().collect::<Vec<_>>(),
                "stale packed horizontal-top mirror"
            );
            assert_eq!(
                c.packed.h_live,
                child_meta
                    .h_live
                    .iter()
                    .take(h)
                    .copied()
                    .collect::<Vec<_>>(),
                "stale packed live-count mirror"
            );
            assert_eq!(
                c.packed.h_more,
                child_meta.horizontal.len() > h,
                "stale packed h_more bit"
            );
            assert_eq!(
                c.packed.upd_pages, child_meta.update,
                "stale packed update-page mirror"
            );
            assert_eq!(
                c.packed.tomb_pages, child_meta.tomb,
                "stale packed tombstone-page mirror"
            );
            match &child_meta.tsl {
                Some(ts) => {
                    assert_eq!(c.packed.ts_pages, ts.pages, "stale packed TSL mirror");
                    assert_eq!(
                        c.packed.ts_truncated, ts.truncated,
                        "stale packed TSL truncation bit"
                    );
                }
                None => assert!(c.packed.ts_pages.is_empty(), "packed TSL for first child"),
            }
            match &child_meta.tsr {
                Some(ts) => {
                    assert_eq!(c.packed.tsr_pages, ts.pages, "stale packed TSR mirror");
                    assert_eq!(
                        c.packed.tsr_truncated, ts.truncated,
                        "stale packed TSR truncation bit"
                    );
                }
                None => assert!(c.packed.tsr_pages.is_empty(), "packed TSR for last child"),
            }
        }
    }

    /// The coverage invariant behind the snapshot routes and the children
    /// PST: every point currently stored in a metablock's siblings (on the
    /// relevant side) is in the snapshot, outranked by its B² points, or in
    /// the parent's TD structure.
    fn validate_sibling_coverage(&self, parent: &TsMeta) {
        let mut td_ids: BTreeSet<u64> = BTreeSet::new();
        let mut td_del_ids: BTreeSet<u64> = BTreeSet::new();
        if let Some(td) = &parent.td {
            if let Some(pst) = &td.pst {
                for p in pst.collect_points_unbilled() {
                    td_ids.insert(p.id);
                }
            }
            for &pg in &td.staged {
                for p in self.store.read_unbilled(pg) {
                    td_ids.insert(p.id);
                }
            }
            let mut n_del = 0usize;
            if let Some(pst) = &td.del_pst {
                for t in pst.collect_points_unbilled() {
                    n_del += 1;
                    td_del_ids.insert(t.id);
                }
            }
            assert_eq!(n_del, td.n_del_built, "TD delete-side built-count stale");
            let mut staged: Vec<Point> = Vec::new();
            for &pg in &td.del_staged {
                staged.extend_from_slice(self.store.read_unbilled(pg));
            }
            td_del_ids.extend(staged.iter().map(|t| t.id));
            assert_eq!(
                staged.len(),
                td.n_del_staged,
                "TD delete-side staged-count stale"
            );
            assert_eq!(
                staged, td.del_staged_buf,
                "stale TD delete-side control-block mirror"
            );
        }
        // Live child points only: a pending tombstone exempts its victim
        // from every coverage argument (queries subtract it by id), and a
        // TD delete-side id must never shadow a live point.
        let stored: Vec<Vec<Point>> = parent
            .children
            .iter()
            .map(|c| {
                let cm = self.meta_unbilled(c.mb);
                let child_tombs: BTreeSet<u64> =
                    self.pages_unbilled(&cm.tomb).iter().map(|t| t.id).collect();
                let mut pts = self.pages_unbilled(&cm.horizontal);
                pts.extend(self.pages_unbilled(&cm.update));
                pts.retain(|p| {
                    if child_tombs.contains(&p.id) {
                        return false;
                    }
                    assert!(
                        !td_del_ids.contains(&p.id),
                        "TD delete side shadows live point {p:?}"
                    );
                    true
                });
                pts
            })
            .collect();

        let check = |ts: &TsInfo, covered: &[Vec<Point>], what: &str| {
            let ts_points = self.pages_unbilled(&ts.pages);
            assert_eq!(ts_points.len(), ts.n, "{what} count mismatch");
            assert!(
                ts_points.windows(2).all(|w| w[0].ykey() > w[1].ykey()),
                "{what} out of order"
            );
            assert!(ts.n <= self.ts_cap_points(), "{what} too large");
            let ts_ids: BTreeSet<u64> = ts_points.iter().map(|p| p.id).collect();
            let ts_min = ts_points.last().map(Point::ykey);
            for p in covered.iter().flatten() {
                let ok = ts_ids.contains(&p.id)
                    || td_ids.contains(&p.id)
                    || (ts.truncated && ts_min.is_some_and(|m| p.ykey() < m));
                assert!(ok, "{what} coverage hole: {p:?}");
            }
        };

        for (i, c) in parent.children.iter().enumerate() {
            let cm = self.meta_unbilled(c.mb);
            if i > 0 {
                let ts = cm.tsl.as_ref().expect("non-first child has TSL");
                check(ts, &stored[..i], "TSL");
            } else {
                assert!(cm.tsl.is_none(), "first child must not have TSL");
            }
            if i + 1 < parent.children.len() {
                let ts = cm.tsr.as_ref().expect("non-last child has TSR");
                check(ts, &stored[i + 1..], "TSR");
            } else {
                assert!(cm.tsr.is_none(), "last child must not have TSR");
            }
        }

        // Children PST coverage: every currently stored child point is in
        // the snapshot or the TD.
        if let Some(cpst) = &parent.children_pst {
            let snap_ids: BTreeSet<u64> = cpst
                .collect_points_unbilled()
                .iter()
                .map(|p| p.id)
                .collect();
            for p in stored.iter().flatten() {
                assert!(
                    snap_ids.contains(&p.id) || td_ids.contains(&p.id),
                    "children PST coverage hole: {p:?}"
                );
            }
        }
    }

    fn pages_unbilled(&self, pages: &[ccix_extmem::PageId]) -> Vec<Point> {
        let mut out = Vec::new();
        for &pg in pages {
            out.extend_from_slice(self.store.read_unbilled(pg));
        }
        out
    }

    /// Every page of a blocked run must be full except the last (see the
    /// diagonal validator's `assert_dense_run`).
    fn assert_dense_run(&self, pages: &[ccix_extmem::PageId], what: &str) {
        for (i, &pg) in pages.iter().enumerate() {
            if i + 1 < pages.len() {
                assert_eq!(
                    self.store.len_unbilled(pg),
                    self.geo.b,
                    "{what} run has a sparse page mid-run"
                );
            }
        }
    }

    fn collect_unbilled(&self, mb: MbId, out: &mut Vec<Point>) {
        let meta = self.meta_unbilled(mb);
        out.extend(self.pages_unbilled(&meta.horizontal));
        out.extend(self.pages_unbilled(&meta.update));
        for c in &meta.children {
            self.collect_unbilled(c.mb, out);
        }
    }
}
