//! Incremental reorganisation for the 3-sided tree — the same two
//! mechanisms as the diagonal tree's [`crate::diag::reorg`] (charge
//! dribbling via the I/O shunt, plus the two-sided background shrink job
//! with its operation delta), sharing that module's state types. Only the
//! tree-specific hooks differ: the collect walk reads `TsMeta` runs (the
//! PSTs and TSL/TSR snapshots are copies and are skipped), the cutover
//! rebuilds via this tree's `build_slab`, and the delta's query-side scan
//! uses the 3-sided predicate.

use ccix_extmem::{MergeCursor, Point, SortedRun};

use super::ThreeSidedTree;
use crate::diag::reorg::{DeltaBuf, JobPhase, RunSpec, ShrinkJob};
use crate::diag::{MbId, ReadCtx, FULL_RANGE};

impl ThreeSidedTree {
    /// Run `f` with its I/O charges shunted into the debt meter — identity
    /// when the budget is 0 or a shunt is already active (see the diagonal
    /// tree's `with_shunt`).
    pub(crate) fn with_shunt<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        if self.tuning.reorg_pages_per_op == 0 || self.counter.shunt_active() {
            return f(self);
        }
        self.counter.begin_shunt();
        let out = f(self);
        let (r, w) = self.counter.end_shunt();
        self.reorg.debt_reads += r;
        self.reorg.debt_writes += w;
        out
    }

    /// Deferred reorganisation work in page transfers (debt not yet bled).
    pub fn reorg_debt(&self) -> u64 {
        self.reorg.debt()
    }

    /// True while a background shrink job is in progress.
    pub fn reorg_in_progress(&self) -> bool {
        self.reorg.job.is_some()
    }

    /// Run any in-progress shrink job to completion and bill all deferred
    /// debt (totals are conserved only once the debt has been bled).
    pub fn flush_reorgs(&mut self) {
        if self.tuning.reorg_pages_per_op == 0 {
            debug_assert!(self.reorg.job.is_none() && self.reorg.debt() == 0);
            return;
        }
        while self.reorg.job.is_some() {
            self.with_shunt(|t| t.advance_job(usize::MAX / 2));
        }
        self.counter.add_reads(self.reorg.debt_reads);
        self.counter.add_writes(self.reorg.debt_writes);
        self.reorg.debt_reads = 0;
        self.reorg.debt_writes = 0;
    }

    /// One pump per write operation: advance the job (charges shunted),
    /// then bleed at most `k` transfers of debt. Returns true when a job
    /// was active (batched callers must refresh their pinned context).
    pub(crate) fn pump_reorg(&mut self) -> bool {
        let k = self.tuning.reorg_pages_per_op;
        if k == 0 {
            return false;
        }
        let had_job = self.reorg.job.is_some();
        if had_job {
            self.with_shunt(|t| t.advance_job(k));
        }
        let mut room = k as u64;
        let r = room.min(self.reorg.debt_reads);
        if r > 0 {
            self.counter.add_reads(r);
            self.reorg.debt_reads -= r;
            room -= r;
        }
        let w = room.min(self.reorg.debt_writes);
        if w > 0 {
            self.counter.add_writes(w);
            self.reorg.debt_writes -= w;
        }
        had_job
    }

    /// Advance the deferred reorganisation by one per-op budget slice and
    /// bleed up to [`crate::Tuning::reorg_pages_per_op`] transfers of debt;
    /// see [`crate::MetablockTree::pump_reorg_step`]. Returns `true` while
    /// work remains.
    pub fn pump_reorg_step(&mut self) -> bool {
        self.pump_reorg();
        self.reorg.job.is_some() || self.reorg.debt() > 0
    }

    // ---- the shrink job --------------------------------------------------

    /// Freeze the tree and start a background shrink job (budget > 0 only).
    pub(crate) fn start_shrink_job(&mut self) {
        debug_assert!(self.reorg.job.is_none(), "one job at a time");
        let root = self.root.expect("shrink job needs a non-empty tree");
        let mut specs = Vec::new();
        self.with_shunt(|t| t.collect_job_specs(root, &mut specs));
        self.reorg.job = Some(ShrinkJob {
            phase: JobPhase::Collect {
                specs,
                buf: Vec::new(),
                runs: Vec::new(),
                tomb_runs: Vec::new(),
            },
            len_at_freeze: self.len,
            delta: DeltaBuf::default(),
        });
    }

    /// Snapshot the frozen subtree's page runs. PSTs, TSL/TSR snapshots and
    /// TD staging areas hold copies of points collected here — skipped, and
    /// freed wholesale by the cutover's `free_subtree`.
    fn collect_job_specs(&mut self, mb: MbId, specs: &mut Vec<RunSpec>) {
        let (vertical, update, tomb, children) = {
            let meta = self.meta(mb);
            (
                meta.vertical.clone(),
                meta.update.clone(),
                meta.tomb.clone(),
                meta.children.iter().map(|c| c.mb).collect::<Vec<_>>(),
            )
        };
        if !vertical.is_empty() {
            specs.push(RunSpec {
                pages: vertical,
                pos: 0,
                sorted: true,
                tomb: false,
            });
        }
        if !update.is_empty() {
            specs.push(RunSpec {
                pages: update,
                pos: 0,
                sorted: false,
                tomb: false,
            });
        }
        if !tomb.is_empty() {
            specs.push(RunSpec {
                pages: tomb,
                pos: 0,
                sorted: false,
                tomb: true,
            });
        }
        for c in children {
            self.collect_job_specs(c, specs);
        }
    }

    /// Advance the job by roughly `k` pages of work. Always called under
    /// the shunt.
    fn advance_job(&mut self, k: usize) {
        let Some(mut job) = self.reorg.job.take() else {
            return;
        };
        let done = self.advance_job_inner(&mut job, k);
        if done {
            self.store.free_run(&job.delta.upd_pages);
            self.store.free_run(&job.delta.tomb_pages);
        } else {
            self.reorg.job = Some(job);
        }
    }

    fn advance_job_inner(&mut self, job: &mut ShrinkJob, k: usize) -> bool {
        match &mut job.phase {
            JobPhase::Collect {
                specs,
                buf,
                runs,
                tomb_runs,
            } => {
                let mut budget = k.max(1);
                while budget > 0 {
                    let Some(spec) = specs.last_mut() else {
                        break;
                    };
                    buf.extend_from_slice(self.store.read(spec.pages[spec.pos]));
                    spec.pos += 1;
                    budget -= 1;
                    if spec.pos == spec.pages.len() {
                        let pts = std::mem::take(buf);
                        let run = if spec.sorted {
                            SortedRun::from_sorted(pts)
                        } else {
                            SortedRun::from_unsorted(pts)
                        };
                        if spec.tomb {
                            tomb_runs.push(run);
                        } else {
                            runs.push(run);
                        }
                        specs.pop();
                    }
                }
                if specs.is_empty() {
                    debug_assert!(buf.is_empty());
                    job.phase = JobPhase::Merge {
                        queue: runs.drain(..).collect(),
                        cursor: None,
                        tombs: SortedRun::merge_many(std::mem::take(tomb_runs)),
                    };
                }
                false
            }
            JobPhase::Merge {
                queue,
                cursor,
                tombs,
            } => {
                if cursor.is_none() && queue.len() < 2 {
                    let merged = queue.pop_front().unwrap_or_default();
                    let tombs = std::mem::take(tombs);
                    self.job_cutover(merged, tombs, job.len_at_freeze);
                    job.phase = JobPhase::Drain;
                    return false;
                }
                if cursor.is_none() {
                    let a = queue.pop_front().expect("two runs queued");
                    let b = queue.pop_front().expect("two runs queued");
                    *cursor = Some(MergeCursor::new(a, b));
                }
                let cur = cursor.as_mut().expect("cursor just installed");
                if cur.step(k.saturating_mul(self.geo.b).max(1)) {
                    let merged = cursor.take().expect("cursor present").finish();
                    queue.push_back(merged);
                }
                false
            }
            JobPhase::Drain => {
                let mut delta = std::mem::take(&mut job.delta);
                let done = self.job_drain(&mut delta, k);
                job.delta = delta;
                done
            }
        }
    }

    /// Swap the rebuilt tree in for the frozen one (see the diagonal
    /// tree's `job_cutover`).
    fn job_cutover(&mut self, merged: SortedRun, tombs: SortedRun, len_at_freeze: usize) {
        let (pts, unmatched) = merged.cancel(&tombs);
        debug_assert!(
            unmatched.is_empty(),
            "every frozen tombstone has its victim in the frozen tree"
        );
        let root = self.root.expect("frozen tree has a root");
        self.free_subtree(root);
        debug_assert_eq!(self.tombs_pending, 0, "cutover cancelled every tombstone");
        debug_assert_eq!(
            pts.len(),
            len_at_freeze,
            "rebuilt tree holds exactly the frozen live points"
        );
        self.root = if pts.is_empty() {
            None
        } else {
            let (r, _, _) = self.build_slab(pts, FULL_RANGE.0, FULL_RANGE.1);
            Some(r)
        };
        self.note_full_rebuild();
    }

    /// Re-route up to `k` delta points into the live tree (see the
    /// diagonal tree's `job_drain` for the ordering argument).
    fn job_drain(&mut self, d: &mut DeltaBuf, k: usize) -> bool {
        let b = self.geo.b;
        let mut budget = k.max(1);
        while budget > 0 && d.upd_pos < d.n_upd {
            let page: Vec<Point> = self.store.read(d.upd_pages[d.upd_pos / b]).to_vec();
            let off = d.upd_pos % b;
            let take = (page.len() - off).min(budget);
            for p in &page[off..off + take] {
                d.upd_pos += 1;
                if d.annihilated.remove(&p.id) {
                    continue;
                }
                d.upd_ids.remove(&p.id);
                match self.root {
                    None => {
                        let id = self.make_metablock(
                            &SortedRun::from_sorted(vec![*p]),
                            Vec::new(),
                            false,
                        );
                        self.root = Some(id);
                    }
                    Some(root) => self.insert_routed(Vec::new(), root, *p),
                }
            }
            budget -= take;
        }
        while budget > 0 && d.tomb_pos < d.n_tomb {
            let page: Vec<Point> = self.store.read(d.tomb_pages[d.tomb_pos / b]).to_vec();
            let off = d.tomb_pos % b;
            let take = (page.len() - off).min(budget);
            for t in &page[off..off + take] {
                d.tomb_pos += 1;
                let root = self.root.expect("tombstone victims live in the tree");
                let mut ctx = self.read_ctx();
                let mut dirty: Vec<MbId> = Vec::new();
                let triggers = self.route_tombstone(&mut ctx, &mut dirty, Vec::new(), root, *t);
                self.run_del_triggers(&mut dirty, triggers);
                self.flush_dirty(&dirty);
            }
            budget -= take;
        }
        d.upd_pos == d.n_upd && d.tomb_pos == d.n_tomb
    }

    // ---- operation diversion ---------------------------------------------

    /// Divert an insert to the delta while the tree is frozen; false means
    /// the caller routes normally.
    pub(crate) fn delta_insert(&mut self, p: Point) -> bool {
        let Self {
            store, reorg, geo, ..
        } = self;
        let Some(job) = reorg.job.as_mut() else {
            return false;
        };
        if !job.frozen() {
            return false;
        }
        let d = &mut job.delta;
        if d.n_upd % geo.b != 0 {
            let pg = *d.upd_pages.last().expect("open delta page exists");
            store.append(pg, p);
        } else {
            d.upd_pages.push(store.alloc(vec![p]));
        }
        d.n_upd += 1;
        d.upd_ids.insert(p.id);
        true
    }

    /// Handle the delta side of a delete; true means the delete was fully
    /// absorbed here (annihilated in the delta, or buffered as a delta
    /// tombstone while frozen — see the diagonal tree's `delta_delete`).
    pub(crate) fn delta_delete(&mut self, p: Point) -> bool {
        let Self {
            store, reorg, geo, ..
        } = self;
        let Some(job) = reorg.job.as_mut() else {
            return false;
        };
        let frozen = job.frozen();
        let d = &mut job.delta;
        if d.upd_ids.remove(&p.id) {
            d.annihilated.insert(p.id);
            return true;
        }
        if !frozen {
            return false;
        }
        if d.n_tomb % geo.b != 0 {
            let pg = *d.tomb_pages.last().expect("open delta page exists");
            store.append(pg, p);
        } else {
            d.tomb_pages.push(store.alloc(vec![p]));
        }
        d.n_tomb += 1;
        true
    }

    // ---- query-side delta consultation -----------------------------------

    /// Report the delta's undrained update points inside the 3-sided range
    /// and record its undrained tombstone ids (the "both sides" half of a
    /// query during a job). Billed through the operation's pin.
    pub(crate) fn scan_delta_query(
        &self,
        ctx: &mut ReadCtx,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let Some(job) = &self.reorg.job else {
            return;
        };
        let keep = |p: &Point| p.x >= x1 && p.x <= x2 && p.y >= y0;
        let d = &job.delta;
        let b = self.geo.b;
        for (i, &pg) in d.upd_pages.iter().enumerate() {
            if (i + 1) * b <= d.upd_pos {
                continue; // fully drained page
            }
            let skip = d.upd_pos.saturating_sub(i * b);
            for p in &self.ctx_read(ctx, pg)[skip..] {
                if keep(p) && !d.annihilated.contains(&p.id) {
                    out.push(*p);
                }
            }
        }
        for (i, &pg) in d.tomb_pages.iter().enumerate() {
            if (i + 1) * b <= d.tomb_pos {
                continue;
            }
            let skip = d.tomb_pos.saturating_sub(i * b);
            let page = self.ctx_read(ctx, pg);
            let dead: Vec<u64> = page[skip..]
                .iter()
                .filter(|t| keep(t))
                .map(|t| t.id)
                .collect();
            ctx.del.extend(dead);
        }
    }

    /// The delta's undrained live update points plus the undrained
    /// tombstone count (unbilled; validator use).
    pub(crate) fn delta_contents_unbilled(&self) -> (Vec<Point>, usize) {
        let Some(job) = &self.reorg.job else {
            return (Vec::new(), 0);
        };
        let d = &job.delta;
        let b = self.geo.b;
        let mut live = Vec::new();
        for (i, &pg) in d.upd_pages.iter().enumerate() {
            if (i + 1) * b <= d.upd_pos {
                continue;
            }
            let skip = d.upd_pos.saturating_sub(i * b);
            for p in &self.store.read_unbilled(pg)[skip..] {
                if !d.annihilated.contains(&p.id) {
                    live.push(*p);
                }
            }
        }
        (live, d.undrained_tombs())
    }

    /// The delta's undrained tombstones (unbilled; validator use).
    pub(crate) fn delta_tombs_unbilled(&self) -> Vec<Point> {
        let Some(job) = &self.reorg.job else {
            return Vec::new();
        };
        let d = &job.delta;
        let b = self.geo.b;
        let mut tombs = Vec::new();
        for (i, &pg) in d.tomb_pages.iter().enumerate() {
            if (i + 1) * b <= d.tomb_pos {
                continue;
            }
            let skip = d.tomb_pos.saturating_sub(i * b);
            tombs.extend_from_slice(&self.store.read_unbilled(pg)[skip..]);
        }
        tombs
    }
}
