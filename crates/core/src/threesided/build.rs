//! Static construction of the 3-sided tree (the §3.1 shape with §4
//! per-metablock structures).
//!
//! Sort-once and arena-backed like the diagonal tree's build: one x-sort up
//! front, in-place slab partitioning, and incrementally merged sibling
//! snapshots (here in both directions — TSL and TSR).

use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::ExternalPst;

use super::{ThreeSidedTree, TsMeta, TsTd};
use crate::bbox::{BBox, Key};
use crate::diag::{
    extract_top_y, merge_y_desc_capped, near_equal_ranges, ChildEntry, MbId, PackedInfo, TsInfo,
    FULL_RANGE,
};

impl ThreeSidedTree {
    /// Build a tree over `points` (anywhere in the plane; unique ids) with
    /// the measured default [`crate::Tuning`].
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        Self::build_tuned(geo, counter, points, crate::Tuning::default())
    }

    /// As [`ThreeSidedTree::build`], with explicit tuning.
    pub fn build_tuned(
        geo: Geometry,
        counter: IoCounter,
        mut points: Vec<Point>,
        tuning: crate::Tuning,
    ) -> Self {
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new_tuned(geo, counter, tuning);
        tree.len = points.len();
        if points.is_empty() {
            return tree;
        }
        ccix_extmem::sort_by_x(&mut points);
        let (root, _, _) = tree.build_slab(points, FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Build the subtree over an x-sorted vector responsible for `[lo, hi)`.
    /// Returns (root, root's mains, max ykey strictly below the root).
    pub(crate) fn build_slab(
        &mut self,
        mut pts: Vec<Point>,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        let mut ybuf = Vec::new();
        self.build_slab_in(&mut pts, lo, hi, &mut ybuf)
    }

    fn build_slab_in(
        &mut self,
        pts: &mut [Point],
        lo: Key,
        hi: Key,
        ybuf: &mut Vec<Key>,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        let cap = self.cap();
        if pts.len() <= cap {
            let mains = pts.to_vec();
            let id = self.make_metablock(&mains, Vec::new(), false);
            return (id, mains, None);
        }

        let (mains, rest_len, rest_yhi) = extract_top_y(pts, cap, ybuf);
        let rest = &mut pts[..rest_len];

        // The paper divides the remainder into B groups; when n ≪ B³ that
        // over-fragments the leaves (tiny leaves under B-ary fanout), so we
        // split into just enough near-B²-sized groups, still at most B of
        // them — every invariant and bound is preserved, leaves stay packed.
        let target = rest_len.div_ceil(cap).clamp(2, self.geo.b);
        let ranges = near_equal_ranges(rest_len, target);
        let mut first_keys: Vec<Key> = ranges.iter().map(|&(s, _)| rest[s].xkey()).collect();
        first_keys[0] = lo;
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(ranges.len());
        let mut child_mains: Vec<Vec<Point>> = Vec::with_capacity(ranges.len());
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let slab_lo = first_keys[i];
            let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
            let (child, cmains, sub_yhi) =
                self.build_slab_in(&mut rest[s..e], slab_lo, slab_hi, ybuf);
            entries.push(ChildEntry {
                mb: child,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&cmains),
                upd_ymax: None,
                sub_yhi,
                packed: PackedInfo::default(),
            });
            child_mains.push(cmains);
        }

        let id = self.make_metablock(&mains, entries, true);
        self.sync_packed_children(id);
        self.install_sibling_snapshots(id, child_mains);
        (id, mains, rest_yhi)
    }

    /// Allocate a metablock with all §4 per-node structures.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    pub(crate) fn build_organizations(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> TsMeta {
        // The static build hands mains over already x-sorted; only the
        // dynamic reorganisations need a sort.
        let sorted_storage;
        let by_x: &[Point] = if mains.windows(2).all(|w| w[0].xkey() < w[1].xkey()) {
            mains
        } else {
            let mut v = mains.to_vec();
            ccix_extmem::sort_by_x(&mut v);
            sorted_storage = v;
            &sorted_storage
        };
        let vkeys: Vec<Key> = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        let vertical = self.store.alloc_run(by_x);
        let mut by_y = by_x.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let hkeys: Vec<Key> = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        let horizontal = self.store.alloc_run(&by_y);
        // A PST pays off once the mains span multiple blocks; a single
        // block is answered by scanning it.
        let pst = (mains.len() > self.geo.b)
            .then(|| ExternalPst::build(self.geo, self.counter.clone(), by_x.to_vec()));
        TsMeta {
            vertical,
            vkeys,
            horizontal,
            hkeys,
            n_main: mains.len(),
            y_lo_main: by_y.last().map(Point::ykey),
            main_bbox: BBox::of_points(by_x),
            pst,
            update: Vec::new(),
            n_upd: 0,
            tsl: None,
            tsr: None,
            children_pst: None,
            td: internal.then(TsTd::default),
            children,
        }
    }

    /// Install, for every child, the TSL and TSR snapshots and, on the
    /// parent, the children PST — all from the supplied per-child point
    /// snapshots. Each snapshot is y-sorted once; the capped prefix/suffix
    /// top lists are maintained by merging instead of re-sorting a growing
    /// accumulator per child.
    pub(crate) fn install_sibling_snapshots(&mut self, parent: MbId, snapshots: Vec<Vec<Point>>) {
        let cap = self.ts_cap_points();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());
        let len = child_ids.len();

        let mut sorted = snapshots;
        for s in &mut sorted {
            ccix_extmem::sort_by_y_desc(s);
        }

        // Prefix (left-sibling) snapshots.
        let mut tsl: Vec<Option<(Vec<Point>, bool)>> = vec![None; len];
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for i in 0..len {
            if i > 0 {
                tsl[i] = Some((top.clone(), total > top.len()));
            }
            total += sorted[i].len();
            top = merge_y_desc_capped(std::mem::take(&mut top), sorted[i].clone(), cap);
        }

        // Suffix (right-sibling) snapshots.
        let mut tsr: Vec<Option<(Vec<Point>, bool)>> = vec![None; len];
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for i in (0..len).rev() {
            if i + 1 < len {
                tsr[i] = Some((top.clone(), total > top.len()));
            }
            total += sorted[i].len();
            top = merge_y_desc_capped(std::mem::take(&mut top), sorted[i].clone(), cap);
        }

        let mut mirrors: Vec<(
            Vec<ccix_extmem::PageId>,
            bool,
            Vec<ccix_extmem::PageId>,
            bool,
        )> = Vec::with_capacity(len);
        for (i, &child) in child_ids.iter().enumerate() {
            let mut meta = self.take_meta(child);
            if let Some(old) = meta.tsl.take() {
                self.store.free_run(&old.pages);
            }
            if let Some(old) = meta.tsr.take() {
                self.store.free_run(&old.pages);
            }
            if let Some((pts, truncated)) = tsl[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsl = Some(TsInfo {
                    pages,
                    n: pts.len(),
                    truncated,
                });
            }
            if let Some((pts, truncated)) = tsr[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsr = Some(TsInfo {
                    pages,
                    n: pts.len(),
                    truncated,
                });
            }
            mirrors.push((
                meta.tsl
                    .as_ref()
                    .map(|t| t.pages.clone())
                    .unwrap_or_default(),
                meta.tsl.as_ref().is_some_and(|t| t.truncated),
                meta.tsr
                    .as_ref()
                    .map(|t| t.pages.clone())
                    .unwrap_or_default(),
                meta.tsr.as_ref().is_some_and(|t| t.truncated),
            ));
            self.put_meta(child, meta);
        }
        // Mirror both snapshot runs into the parent's packed entries (the
        // parent is held in memory by this operation).
        if self.pack_h() > 0 {
            let pm = self.metas[parent].as_mut().expect("live parent");
            for (e, (tsl_pages, tsl_tr, tsr_pages, tsr_tr)) in pm.children.iter_mut().zip(mirrors) {
                e.packed.ts_pages = tsl_pages;
                e.packed.ts_truncated = tsl_tr;
                e.packed.tsr_pages = tsr_pages;
                e.packed.tsr_truncated = tsr_tr;
            }
        }

        // The children PST over every child's snapshot points (≤ B³). This
        // one is deliberately uncapped: the fork-node route answers from it
        // alone, so it must cover every sibling point.
        let all_points: Vec<Point> = sorted.into_iter().flatten().collect();
        let mut pm = self.take_meta(parent);
        pm.children_pst = Some(ExternalPst::build(
            self.geo,
            self.counter.clone(),
            all_points,
        ));
        self.put_meta(parent, pm);
    }
}
