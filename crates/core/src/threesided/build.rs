//! Static construction of the 3-sided tree (the §3.1 shape with §4
//! per-metablock structures).

use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::ExternalPst;

use super::{ThreeSidedTree, TsMeta, TsTd};
use crate::bbox::{BBox, Key};
use crate::diag::{near_equal_groups, ChildEntry, MbId, TsInfo, FULL_RANGE};

impl ThreeSidedTree {
    /// Build a tree over `points` (anywhere in the plane; unique ids).
    pub fn build(geo: Geometry, counter: IoCounter, mut points: Vec<Point>) -> Self {
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new(geo, counter);
        tree.len = points.len();
        if points.is_empty() {
            return tree;
        }
        ccix_extmem::sort_by_x(&mut points);
        let (root, _, _) = tree.build_slab(points, FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Build the subtree over an x-sorted vector responsible for `[lo, hi)`.
    /// Returns (root, root's mains, max ykey strictly below the root).
    pub(crate) fn build_slab(
        &mut self,
        mut pts: Vec<Point>,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
        let cap = self.cap();
        if pts.len() <= cap {
            let mains = pts;
            let id = self.make_metablock(&mains, Vec::new(), false);
            return (id, mains, None);
        }

        let mut ys: Vec<Key> = pts.iter().map(Point::ykey).collect();
        ys.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = ys[cap - 1];
        let mut mains = Vec::with_capacity(cap);
        pts.retain(|p| {
            if p.ykey() >= threshold {
                mains.push(*p);
                false
            } else {
                true
            }
        });
        debug_assert_eq!(mains.len(), cap);
        let rest_yhi = pts.iter().map(Point::ykey).max();

        // The paper divides the remainder into B groups; when n ≪ B³ that
        // over-fragments the leaves (tiny leaves under B-ary fanout), so we
        // split into just enough near-B²-sized groups, still at most B of
        // them — every invariant and bound is preserved, leaves stay packed.
        let target = pts.len().div_ceil(cap).clamp(2, self.geo.b);
        let groups = near_equal_groups(pts, target);
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(groups.len());
        let mut child_mains: Vec<Vec<Point>> = Vec::with_capacity(groups.len());
        let mut first_keys: Vec<Key> = groups
            .iter()
            .map(|g| g.first().expect("nonempty group").xkey())
            .collect();
        first_keys[0] = lo;
        for (i, group) in groups.into_iter().enumerate() {
            let slab_lo = first_keys[i];
            let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
            let (child, cmains, sub_yhi) = self.build_slab(group, slab_lo, slab_hi);
            entries.push(ChildEntry {
                mb: child,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&cmains),
                upd_ymax: None,
                sub_yhi,
            });
            child_mains.push(cmains);
        }

        let id = self.make_metablock(&mains, entries, true);
        self.install_sibling_snapshots(id, &child_mains);
        (id, mains, rest_yhi)
    }

    /// Allocate a metablock with all §4 per-node structures.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    pub(crate) fn build_organizations(
        &mut self,
        mains: &[Point],
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> TsMeta {
        let mut by_x = mains.to_vec();
        ccix_extmem::sort_by_x(&mut by_x);
        let vkeys: Vec<Key> = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        let vertical = self.store.alloc_run(&by_x);
        let mut by_y = mains.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let horizontal = self.store.alloc_run(&by_y);
        // A PST pays off once the mains span multiple blocks; a single
        // block is answered by scanning it.
        let pst = (mains.len() > self.geo.b)
            .then(|| ExternalPst::build(self.geo, self.counter.clone(), mains.to_vec()));
        TsMeta {
            vertical,
            vkeys,
            horizontal,
            n_main: mains.len(),
            y_lo_main: mains.iter().map(Point::ykey).min(),
            main_bbox: BBox::of_points(mains),
            pst,
            update: None,
            n_upd: 0,
            tsl: None,
            tsr: None,
            children_pst: None,
            td: internal.then(TsTd::default),
            children,
        }
    }

    /// Install, for every child, the TSL and TSR snapshots and, on the
    /// parent, the children PST — all from the supplied per-child point
    /// snapshots.
    pub(crate) fn install_sibling_snapshots(&mut self, parent: MbId, snapshots: &[Vec<Point>]) {
        let cap = self.cap();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());

        let top_of = |acc: &[Point]| {
            let mut top = acc.to_vec();
            ccix_extmem::sort_by_y_desc(&mut top);
            top.truncate(cap);
            top
        };

        // Prefix (left-sibling) snapshots.
        let mut acc: Vec<Point> = Vec::new();
        let mut tsl: Vec<Option<(Vec<Point>, usize)>> = vec![None; child_ids.len()];
        for (i, snap) in snapshots.iter().enumerate() {
            if i > 0 {
                let top = top_of(&acc);
                tsl[i] = Some((top.clone(), top.len()));
            }
            acc.extend_from_slice(snap);
        }
        let all_points = acc;

        // Suffix (right-sibling) snapshots.
        let mut acc: Vec<Point> = Vec::new();
        let mut tsr: Vec<Option<(Vec<Point>, usize)>> = vec![None; child_ids.len()];
        for (i, snap) in snapshots.iter().enumerate().rev() {
            if i + 1 < child_ids.len() {
                let top = top_of(&acc);
                tsr[i] = Some((top.clone(), top.len()));
            }
            acc.extend_from_slice(snap);
        }

        for (i, &child) in child_ids.iter().enumerate() {
            let mut meta = self.take_meta(child);
            if let Some(old) = meta.tsl.take() {
                self.store.free_run(&old.pages);
            }
            if let Some(old) = meta.tsr.take() {
                self.store.free_run(&old.pages);
            }
            if let Some((pts, n)) = tsl[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsl = Some(TsInfo { pages, n });
            }
            if let Some((pts, n)) = tsr[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsr = Some(TsInfo { pages, n });
            }
            self.put_meta(child, meta);
        }

        // The children PST over every child's snapshot points (≤ B³).
        let mut pm = self.take_meta(parent);
        pm.children_pst = Some(ExternalPst::build(
            self.geo,
            self.counter.clone(),
            all_points,
        ));
        self.put_meta(parent, pm);
    }
}
