//! Static construction of the 3-sided tree (the §3.1 shape with §4
//! per-metablock structures).
//!
//! Two-phase like the diagonal tree's build (see `crate::diag::build`): a
//! **pure planning phase** — one x-sort up front, in-place slab
//! partitioning, per-node y-orders and [`PstPlan`]s (the per-metablock PST
//! *and* the parent's children PST, whose input is the x-sorted
//! concatenation of the children's x-disjoint mains) — fanned out over
//! scoped threads ([`crate::Tuning::build_threads`]); then a sequential
//! **materialisation** that allocates every page on the calling thread.
//! Sibling snapshots (here in both directions — TSL and TSR) are capped
//! incremental merges over the planned y-orders.

use ccix_extmem::{merge_y_desc_capped, Geometry, IoCounter, Point, SortedRun};
use ccix_pst::{ExternalPst, PstPlan};

use super::{ThreeSidedTree, TsMeta, TsTd};
use crate::bbox::{BBox, Key};
use crate::diag::{
    extract_top_y, near_equal_ranges, ChildEntry, MbId, PackedInfo, TsInfo, FULL_RANGE,
};
use crate::par::{run_parallel, PAR_THRESHOLD};

/// Pure planning context for the 3-sided slab recursion.
struct PlanCtx {
    geo: Geometry,
    cap: usize,
}

/// One planned 3-sided metablock: contents, orders and PST plans decided,
/// nothing allocated yet.
struct SlabPlan {
    mains_x: SortedRun,
    mains_y: Vec<Point>,
    /// Plan of the Lemma 4.1 PST over the mains (absent for ≤ B mains).
    pst: Option<PstPlan>,
    /// Interior only: plan of the children PST over every child's mains.
    children_pst: Option<PstPlan>,
    children: Vec<SlabPlan>,
    slab_lo: Key,
    slab_hi: Key,
    sub_yhi: Option<Key>,
}

fn plan_slab(pts: &mut [Point], lo: Key, hi: Key, ctx: &PlanCtx, budget: usize) -> SlabPlan {
    debug_assert!(pts.windows(2).all(|w| w[0].xkey() < w[1].xkey()));
    if pts.len() <= ctx.cap {
        return finish_plan(pts.to_vec(), Vec::new(), lo, hi, None, ctx);
    }

    let (mains, rest_len, rest_yhi) = {
        let mut ybuf = Vec::new();
        extract_top_y(pts, ctx.cap, &mut ybuf)
    };
    let rest = &mut pts[..rest_len];

    // The paper divides the remainder into B groups; when n ≪ B³ that
    // over-fragments the leaves (tiny leaves under B-ary fanout), so we
    // split into just enough near-B²-sized groups, still at most B of
    // them — every invariant and bound is preserved, leaves stay packed.
    let target = rest_len.div_ceil(ctx.cap).clamp(2, ctx.geo.b);
    let ranges = near_equal_ranges(rest_len, target);
    let mut first_keys: Vec<Key> = ranges.iter().map(|&(s, _)| rest[s].xkey()).collect();
    first_keys[0] = lo;

    let mut tasks = Vec::with_capacity(ranges.len());
    let mut remainder: &mut [Point] = rest;
    for (i, &(s, e)) in ranges.iter().enumerate() {
        let (head, tail) = remainder.split_at_mut(e - s);
        remainder = tail;
        let slab_lo = first_keys[i];
        let slab_hi = first_keys.get(i + 1).copied().unwrap_or(hi);
        tasks.push(move |inner: usize| plan_slab(head, slab_lo, slab_hi, ctx, inner));
    }
    let child_budget = if rest_len >= PAR_THRESHOLD { budget } else { 1 };
    let children = run_parallel(tasks, child_budget);
    finish_plan(mains, children, lo, hi, rest_yhi, ctx)
}

fn finish_plan(
    mains_x: Vec<Point>,
    children: Vec<SlabPlan>,
    slab_lo: Key,
    slab_hi: Key,
    sub_yhi: Option<Key>,
    ctx: &PlanCtx,
) -> SlabPlan {
    let mut mains_y = mains_x.clone();
    ccix_extmem::sort_by_y_desc(&mut mains_y);
    let mains_x = SortedRun::from_sorted(mains_x);
    // A PST pays off once the mains span multiple blocks; a single block
    // is answered by scanning it.
    let pst = (mains_x.len() > ctx.geo.b)
        .then(|| PstPlan::plan(ctx.geo, SortedRun::from_sorted(mains_x.to_vec())));
    // The children PST over every child's mains (≤ B³). Children slabs are
    // x-disjoint and in slab order, so concatenating their sorted mains is
    // already sorted — no re-sort before planning.
    let children_pst = (!children.is_empty()).then(|| {
        let all: Vec<Point> = children
            .iter()
            .flat_map(|c| c.mains_x.iter().copied())
            .collect();
        PstPlan::plan(ctx.geo, SortedRun::from_sorted(all))
    });
    SlabPlan {
        mains_x,
        mains_y,
        pst,
        children_pst,
        children,
        slab_lo,
        slab_hi,
        sub_yhi,
    }
}

impl ThreeSidedTree {
    /// Build a tree over `points` (anywhere in the plane; unique ids) with
    /// the measured default [`crate::Tuning`].
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        Self::build_tuned(geo, counter, points, crate::Tuning::default())
    }

    /// As [`ThreeSidedTree::build`], with explicit tuning.
    pub fn build_tuned(
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        tuning: crate::Tuning,
    ) -> Self {
        Self::build_tuned_on(
            &ccix_extmem::BackendSpec::Model,
            geo,
            counter,
            points,
            tuning,
        )
    }

    /// [`ThreeSidedTree::build_tuned`] on an explicit page backend (see
    /// [`ThreeSidedTree::new_tuned_on`]).
    ///
    /// # Panics
    /// Panics if ids repeat.
    pub fn build_tuned_on(
        spec: &ccix_extmem::BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        points: Vec<Point>,
        tuning: crate::Tuning,
    ) -> Self {
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut tree = Self::new_tuned_on(spec, geo, counter, tuning);
        tree.len = points.len();
        tree.shrink_base = points.len();
        if points.is_empty() {
            return tree;
        }
        let (root, _, _) =
            tree.build_slab(SortedRun::from_unsorted(points), FULL_RANGE.0, FULL_RANGE.1);
        tree.root = Some(root);
        tree
    }

    /// Build the subtree over an x-sorted run responsible for `[lo, hi)`.
    /// Returns (root, root's mains y-descending, max ykey strictly below
    /// the root).
    pub(crate) fn build_slab(
        &mut self,
        pts: SortedRun,
        lo: Key,
        hi: Key,
    ) -> (MbId, Vec<Point>, Option<Key>) {
        let ctx = PlanCtx {
            geo: self.geo,
            cap: self.cap(),
        };
        let budget = self.tuning.effective_build_threads();
        let mut arena = pts.into_inner();
        let plan = plan_slab(&mut arena, lo, hi, &ctx, budget);
        drop(arena);
        self.materialise_slab(plan)
    }

    /// Allocate pages and control blocks for a planned subtree, on the
    /// calling thread.
    fn materialise_slab(&mut self, plan: SlabPlan) -> (MbId, Vec<Point>, Option<Key>) {
        let SlabPlan {
            mains_x,
            mains_y,
            pst,
            children_pst,
            children,
            sub_yhi,
            ..
        } = plan;
        let internal = !children.is_empty();
        let mut entries: Vec<ChildEntry> = Vec::with_capacity(children.len());
        let mut snapshots: Vec<Vec<Point>> = Vec::with_capacity(children.len());
        for child in children {
            let (slab_lo, slab_hi) = (child.slab_lo, child.slab_hi);
            let (mb, child_y, child_sub) = self.materialise_slab(child);
            entries.push(ChildEntry {
                mb,
                slab_lo,
                slab_hi,
                main_bbox: BBox::of_points(&child_y),
                upd_ymax: None,
                sub_yhi: child_sub,
                packed: PackedInfo::default(),
            });
            snapshots.push(child_y);
        }
        let meta = self.build_organizations_planned(&mains_x, &mains_y, pst, entries, internal);
        let id = self.alloc_meta(meta);
        if internal {
            self.sync_packed_children(id);
            self.install_sibling_snapshots(id, snapshots, children_pst);
        }
        (id, mains_y, sub_yhi)
    }

    /// Allocate a metablock with all §4 per-node structures.
    pub(crate) fn make_metablock(
        &mut self,
        mains: &SortedRun,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> MbId {
        let meta = self.build_organizations(mains, children, internal);
        self.alloc_meta(meta)
    }

    /// Construct the per-metablock organisations; the [`SortedRun`] makes
    /// the x-sortedness of the mains a typed invariant (callers sort only
    /// what needs it).
    pub(crate) fn build_organizations(
        &mut self,
        mains: &SortedRun,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> TsMeta {
        let mut by_y = mains.to_vec();
        ccix_extmem::sort_by_y_desc(&mut by_y);
        let pst = (mains.len() > self.geo.b)
            .then(|| PstPlan::plan(self.geo, SortedRun::from_sorted(mains.to_vec())));
        self.build_organizations_planned(mains, &by_y, pst, children, internal)
    }

    /// As [`ThreeSidedTree::build_organizations`], with the y-order and the
    /// PST plan already computed.
    pub(crate) fn build_organizations_planned(
        &mut self,
        by_x: &SortedRun,
        by_y: &[Point],
        pst: Option<PstPlan>,
        children: Vec<ChildEntry>,
        internal: bool,
    ) -> TsMeta {
        debug_assert!(by_y.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
        let vkeys: Vec<Key> = by_x.chunks(self.geo.b).map(|c| c[0].xkey()).collect();
        let vertical = self.store.alloc_run(by_x);
        let hkeys: Vec<Key> = by_y.chunks(self.geo.b).map(|c| c[0].ykey()).collect();
        let h_live: Vec<u32> = by_y.chunks(self.geo.b).map(|c| c.len() as u32).collect();
        let horizontal = self.store.alloc_run(by_y);
        let pst = pst.map(|plan| {
            ExternalPst::from_plan_on(&self.backend, self.geo, self.counter.clone(), plan)
        });
        TsMeta {
            vertical,
            vkeys,
            horizontal,
            hkeys,
            h_live,
            n_main: by_x.len(),
            y_lo_main: by_y.last().map(Point::ykey),
            main_bbox: BBox::of_points(by_x),
            pst,
            update: Vec::new(),
            n_upd: 0,
            tomb: Vec::new(),
            n_tomb: 0,
            tomb_buf: Vec::new(),
            tsl: None,
            tsr: None,
            children_pst: None,
            td: internal.then(TsTd::default),
            children,
        }
    }

    /// Install, for every child, the TSL and TSR snapshots and, on the
    /// parent, the children PST — from per-child snapshots that arrive
    /// **y-descending already** (planned y-orders on the static path,
    /// horizontal-run + sorted-delta merges from the TS reorganisation).
    /// The capped prefix/suffix top lists are maintained by merging; the
    /// children PST comes from `children_pst` when the planning phase
    /// already built it, and otherwise reuses the previous PST's node
    /// layout via [`ExternalPst::rebuild_from_sorted`].
    pub(crate) fn install_sibling_snapshots(
        &mut self,
        parent: MbId,
        snapshots: Vec<Vec<Point>>,
        children_pst_plan: Option<PstPlan>,
    ) {
        let cap = self.ts_cap_points();
        let child_ids: Vec<MbId> = self.metas[parent]
            .as_ref()
            .expect("live parent")
            .children
            .iter()
            .map(|c| c.mb)
            .collect();
        debug_assert_eq!(child_ids.len(), snapshots.len());
        debug_assert!(snapshots
            .iter()
            .all(|s| s.windows(2).all(|w| w[0].ykey() > w[1].ykey())));
        let len = child_ids.len();
        let sorted = snapshots;

        // Prefix (left-sibling) snapshots.
        let mut tsl: Vec<Option<(Vec<Point>, bool)>> = vec![None; len];
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for i in 0..len {
            if i > 0 {
                tsl[i] = Some((top.clone(), total > top.len()));
            }
            total += sorted[i].len();
            top = merge_y_desc_capped(std::mem::take(&mut top), sorted[i].clone(), cap);
        }

        // Suffix (right-sibling) snapshots.
        let mut tsr: Vec<Option<(Vec<Point>, bool)>> = vec![None; len];
        let mut top: Vec<Point> = Vec::new();
        let mut total = 0usize;
        for i in (0..len).rev() {
            if i + 1 < len {
                tsr[i] = Some((top.clone(), total > top.len()));
            }
            total += sorted[i].len();
            top = merge_y_desc_capped(std::mem::take(&mut top), sorted[i].clone(), cap);
        }

        let mut mirrors: Vec<(
            Vec<ccix_extmem::PageId>,
            bool,
            Vec<ccix_extmem::PageId>,
            bool,
        )> = Vec::with_capacity(len);
        for (i, &child) in child_ids.iter().enumerate() {
            let mut meta = self.take_meta(child);
            if let Some(old) = meta.tsl.take() {
                self.store.free_run(&old.pages);
            }
            if let Some(old) = meta.tsr.take() {
                self.store.free_run(&old.pages);
            }
            if let Some((pts, truncated)) = tsl[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsl = Some(TsInfo {
                    pages,
                    n: pts.len(),
                    truncated,
                });
            }
            if let Some((pts, truncated)) = tsr[i].take() {
                let pages = self.store.alloc_run(&pts);
                meta.tsr = Some(TsInfo {
                    pages,
                    n: pts.len(),
                    truncated,
                });
            }
            mirrors.push((
                meta.tsl
                    .as_ref()
                    .map(|t| t.pages.clone())
                    .unwrap_or_default(),
                meta.tsl.as_ref().is_some_and(|t| t.truncated),
                meta.tsr
                    .as_ref()
                    .map(|t| t.pages.clone())
                    .unwrap_or_default(),
                meta.tsr.as_ref().is_some_and(|t| t.truncated),
            ));
            self.put_meta(child, meta);
        }
        // Mirror both snapshot runs into the parent's packed entries (the
        // parent is held in memory by this operation).
        if self.pack_h() > 0 {
            let pm = self.metas[parent].as_mut().expect("live parent");
            for (e, (tsl_pages, tsl_tr, tsr_pages, tsr_tr)) in pm.children.iter_mut().zip(mirrors) {
                e.packed.ts_pages = tsl_pages;
                e.packed.ts_truncated = tsl_tr;
                e.packed.tsr_pages = tsr_pages;
                e.packed.tsr_truncated = tsr_tr;
            }
        }

        // The children PST over every child's snapshot points (≤ B³). This
        // one is deliberately uncapped: the fork-node route answers from it
        // alone, so it must cover every sibling point.
        let mut pm = self.take_meta(parent);
        match children_pst_plan {
            Some(plan) => {
                debug_assert!(pm.children_pst.is_none(), "planned PST over a live one");
                pm.children_pst = Some(ExternalPst::from_plan_on(
                    &self.backend,
                    self.geo,
                    self.counter.clone(),
                    plan,
                ));
            }
            None => {
                // Children snapshots live in x-disjoint slabs: sorting each
                // child separately and k-way merging (gallop fast path over
                // the disjoint ranges) beats one big re-sort of up to B³
                // points.
                let all = SortedRun::merge_many(
                    sorted.into_iter().map(SortedRun::from_unsorted).collect(),
                );
                match pm.children_pst.as_mut() {
                    Some(pst) => pst.rebuild_from_sorted(self.geo, all),
                    None => {
                        pm.children_pst = Some(ExternalPst::build_from_sorted_on(
                            &self.backend,
                            self.geo,
                            self.counter.clone(),
                            all,
                        ))
                    }
                }
            }
        }
        self.put_meta(parent, pm);
    }
}
