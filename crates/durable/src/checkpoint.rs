//! Checkpoints: durable snapshots of the index's **logical** content.
//!
//! A checkpoint is not a page dump. The in-memory stores are a cost-model
//! simulator whose physical layout (metablock graph, corner structures,
//! tombstone mirrors) is an artifact of the exact operation history; what
//! recovery must reproduce is the *content* — the live set of intervals —
//! plus the construction parameters that make a rebuild deterministic. So
//! a checkpoint serialises:
//!
//! * [`Meta`] — the block geometry and the full [`IntervalOptions`]
//!   (endpoint mode, every `Tuning` knob, B+-tree leaf fill), so the
//!   recovered index is built with the same layout and write-path
//!   behaviour as the one that crashed;
//! * the **shard split points** of the x-range routing directory (empty
//!   for an unsharded engine), so recovery re-partitions the content into
//!   the same shards;
//! * `ops_applied` — the cumulative operation count at the snapshot, the
//!   watermark WAL replay filters against;
//! * the live intervals, as fixed-width records via the
//!   [`ccix_extmem::ser`] encoding hooks.
//!
//! ## On-disk format
//!
//! ```text
//! [magic 8B = "CCIXCKP\x02"][len u64][crc u32][body len bytes]
//! body = meta || k u64 || k × split i64 || ops_applied u64
//!             || n u64 || n × Point-encoded interval
//! ```
//!
//! ## Atomic publication
//!
//! [`write_checkpoint`] writes to a sidecar `checkpoint.tmp`, fsyncs it,
//! renames over `checkpoint`, then fsyncs the directory. A crash at any
//! point leaves either the old checkpoint or the new one — never a blend —
//! and a torn tmp file is invisible to recovery (and overwritten by the
//! next attempt).

use std::io;
use std::path::Path;
use std::sync::Arc;

use ccix_extmem::ser::{decode_records, encode_records};
use ccix_extmem::{Geometry, Point};
use ccix_interval::{EndpointMode, Interval, IntervalOptions};

use crate::crc32;
use crate::fs::{read_exact_at, retry_interrupted, write_all_at, Fs};

/// File magic: identifies a checkpoint and pins its format version
/// (`\x02` added the shard split points).
pub const CKPT_MAGIC: [u8; 8] = *b"CCIXCKP\x02";

/// Sentinel for `None` in `Option<usize>` fields (no real knob is ever
/// `u64::MAX` pages).
const NONE_SENTINEL: u64 = u64::MAX;

/// Construction parameters a recovery rebuild needs to reproduce the
/// crashed index's layout exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Block geometry (records per page).
    pub geometry: Geometry,
    /// Full layout/tuning options, including every [`ccix_core::Tuning`]
    /// knob.
    pub options: IntervalOptions,
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_opt(out: &mut Vec<u8>, v: Option<usize>) {
    push_u64(out, v.map_or(NONE_SENTINEL, |x| x as u64));
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u64(&mut self) -> Option<u64> {
        let (head, rest) = self.0.split_at_checked(8)?;
        self.0 = rest;
        Some(u64::from_le_bytes(head.try_into().ok()?))
    }

    fn u8(&mut self) -> Option<u8> {
        let (head, rest) = self.0.split_at_checked(1)?;
        self.0 = rest;
        Some(head[0])
    }

    fn usize(&mut self) -> Option<usize> {
        Some(self.u64()? as usize)
    }

    fn opt(&mut self) -> Option<Option<usize>> {
        let v = self.u64()?;
        Some((v != NONE_SENTINEL).then_some(v as usize))
    }
}

impl Meta {
    /// Capture the meta of a live configuration.
    pub fn new(geometry: Geometry, options: IntervalOptions) -> Self {
        Self { geometry, options }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let t = self.options.tuning;
        push_u64(out, self.geometry.b as u64);
        out.push(match self.options.endpoints {
            EndpointMode::Slab => 0,
            EndpointMode::BTree => 1,
        });
        push_opt(out, self.options.btree_leaf_fill);
        push_u64(out, t.update_batch_pages as u64);
        push_u64(out, t.td_batch_pages as u64);
        push_u64(out, t.tomb_batch_pages as u64);
        push_u64(out, t.shrink_deletes_pct as u64);
        push_opt(out, t.ts_snapshot_pages);
        push_u64(out, t.corner_alpha as u64);
        push_u64(out, t.pack_h_pages as u64);
        out.push(t.resident_root as u8);
        push_u64(out, t.reorg_pages_per_op as u64);
        push_u64(out, t.build_threads as u64);
        push_u64(out, t.shard_threads as u64);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        let b = r.usize()?;
        let endpoints = match r.u8()? {
            0 => EndpointMode::Slab,
            1 => EndpointMode::BTree,
            _ => return None,
        };
        let btree_leaf_fill = r.opt()?;
        // Struct-literal fields evaluate in source order, matching the
        // encoder's write order exactly.
        let tuning = ccix_core::Tuning {
            update_batch_pages: r.usize()?,
            td_batch_pages: r.usize()?,
            tomb_batch_pages: r.usize()?,
            shrink_deletes_pct: r.usize()?,
            ts_snapshot_pages: r.opt()?,
            corner_alpha: r.usize()?,
            pack_h_pages: r.usize()?,
            resident_root: r.u8()? != 0,
            reorg_pages_per_op: r.usize()?,
            build_threads: r.usize()?,
            shard_threads: r.usize()?,
        };
        Some(Meta {
            geometry: Geometry::new(b),
            options: IntervalOptions {
                endpoints,
                tuning,
                btree_leaf_fill,
            },
        })
    }
}

/// A decoded checkpoint: construction meta, the operation watermark, and
/// the live interval set at that watermark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Construction parameters for the deterministic rebuild.
    pub meta: Meta,
    /// Split points of the x-range routing directory (ascending; empty
    /// for a single-shard/unsharded engine), so recovery rebuilds the
    /// same sharding.
    pub shard_splits: Vec<i64>,
    /// Cumulative operation count at the snapshot; WAL records with
    /// `ops_after` at or below this are stale.
    pub ops_applied: u64,
    /// Live intervals at the snapshot (order irrelevant — ids are unique).
    pub intervals: Vec<Interval>,
}

fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut body = Vec::with_capacity(128 + ckpt.intervals.len() * 24);
    ckpt.meta.encode_into(&mut body);
    push_u64(&mut body, ckpt.shard_splits.len() as u64);
    for &s in &ckpt.shard_splits {
        push_u64(&mut body, s as u64);
    }
    push_u64(&mut body, ckpt.ops_applied);
    push_u64(&mut body, ckpt.intervals.len() as u64);
    let points: Vec<Point> = ckpt
        .intervals
        .iter()
        .map(|iv| Point::new(iv.lo, iv.hi, iv.id))
        .collect();
    encode_records(&points, &mut body);
    let mut out = Vec::with_capacity(20 + body.len());
    out.extend_from_slice(&CKPT_MAGIC);
    push_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_checkpoint(body: &[u8]) -> Option<Checkpoint> {
    let mut r = Reader(body);
    let meta = Meta::decode(&mut r)?;
    let k = r.u64()? as usize;
    // A directory can't have more splits than the body has bytes — reject
    // absurd counts before allocating.
    if k > body.len() / 8 {
        return None;
    }
    let mut shard_splits = Vec::with_capacity(k);
    for _ in 0..k {
        shard_splits.push(r.u64()? as i64);
    }
    if !shard_splits.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    let ops_applied = r.u64()?;
    let n = r.u64()? as usize;
    let points = decode_records::<Point>(r.0)?;
    if points.len() != n {
        return None;
    }
    let intervals = points
        .into_iter()
        .map(|p| (p.y >= p.x).then(|| Interval::new(p.x, p.y, p.id)))
        .collect::<Option<Vec<_>>>()?;
    Some(Checkpoint {
        meta,
        shard_splits,
        ops_applied,
        intervals,
    })
}

/// Serialise `ckpt` and publish it atomically at `path` (tmp + fsync +
/// rename + directory fsync).
pub fn write_checkpoint(fs: &Arc<dyn Fs>, path: &Path, ckpt: &Checkpoint) -> io::Result<()> {
    let bytes = encode_checkpoint(ckpt);
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs.open(&tmp, true)?;
        retry_interrupted(|| file.set_len(0))?;
        write_all_at(file.as_mut(), 0, &bytes)?;
        retry_interrupted(|| file.sync())?;
    }
    retry_interrupted(|| fs.rename(&tmp, path))?;
    let dir = path.parent().unwrap_or(Path::new("."));
    retry_interrupted(|| fs.sync_dir(dir))
}

/// Load the checkpoint at `path`. Returns `Ok(None)` when no checkpoint
/// exists yet; a present-but-corrupt checkpoint is an error (the atomic
/// publication protocol never leaves one, so corruption here is real
/// damage, not a crash artifact).
pub fn read_checkpoint(fs: &Arc<dyn Fs>, path: &Path) -> io::Result<Option<Checkpoint>> {
    if !fs.exists(path) {
        return Ok(None);
    }
    let file = fs.open(path, false)?;
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint {}: {what}", path.display()),
        )
    };
    let len = file.len()?;
    if len < 20 {
        return Err(corrupt("too short"));
    }
    let mut head = [0u8; 20];
    read_exact_at(file.as_ref(), 0, &mut head)?;
    if head[0..8] != CKPT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let body_len = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(head[16..20].try_into().expect("4 bytes"));
    if 20 + body_len != len {
        return Err(corrupt("length mismatch"));
    }
    let mut body = vec![0u8; body_len as usize];
    read_exact_at(file.as_ref(), 20, &mut body)?;
    if crc32(&body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    decode_checkpoint(&body)
        .map(Some)
        .ok_or_else(|| corrupt("undecodable body"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TempDir;
    use crate::fs::RealFs;
    use ccix_core::Tuning;

    fn sample() -> Checkpoint {
        let options = IntervalOptions {
            endpoints: EndpointMode::BTree,
            tuning: Tuning {
                update_batch_pages: 3,
                td_batch_pages: 5,
                tomb_batch_pages: 2,
                shrink_deletes_pct: 40,
                ts_snapshot_pages: None,
                corner_alpha: 4,
                pack_h_pages: 2,
                resident_root: true,
                reorg_pages_per_op: 4,
                build_threads: 1,
                shard_threads: 2,
            },
            btree_leaf_fill: Some(70),
        };
        Checkpoint {
            meta: Meta::new(Geometry::new(16), options),
            shard_splits: vec![-100, 0, 250],
            ops_applied: 12345,
            intervals: vec![
                Interval::new(-5, 5, 1),
                Interval::new(i64::MIN, i64::MAX, 2),
                Interval::new(7, 7, 3),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_meta_and_content() {
        let tmp = TempDir::new("ckpt-roundtrip");
        let path = tmp.path().join("checkpoint");
        let fs = RealFs::shared();
        let ckpt = sample();
        write_checkpoint(&fs, &path, &ckpt).expect("write");
        let back = read_checkpoint(&fs, &path).expect("read").expect("present");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let tmp = TempDir::new("ckpt-missing");
        let fs = RealFs::shared();
        assert!(read_checkpoint(&fs, &tmp.path().join("checkpoint"))
            .expect("read")
            .is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_an_error() {
        let tmp = TempDir::new("ckpt-corrupt");
        let path = tmp.path().join("checkpoint");
        let fs = RealFs::shared();
        write_checkpoint(&fs, &path, &sample()).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        let err = read_checkpoint(&fs, &path).expect_err("corrupt");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let tmp = TempDir::new("ckpt-rewrite");
        let path = tmp.path().join("checkpoint");
        let fs = RealFs::shared();
        let mut ckpt = sample();
        write_checkpoint(&fs, &path, &ckpt).expect("write 1");
        ckpt.ops_applied = 99999;
        ckpt.intervals.push(Interval::new(0, 1, 4));
        write_checkpoint(&fs, &path, &ckpt).expect("write 2");
        let back = read_checkpoint(&fs, &path).expect("read").expect("present");
        assert_eq!(back.ops_applied, 99999);
        assert_eq!(back.intervals.len(), 4);
        assert!(!fs.exists(&path.with_extension("tmp")));
    }
}
