//! The logical write-ahead log.
//!
//! The WAL records **committed submissions** — whole batches of interval
//! operations, exactly as the serving engine's writer applies them — not
//! physical page images. Replay is deterministic: the same batches through
//! [`ccix_interval::IntervalIndex::apply_batch`] reproduce the same index
//! content, so logical logging is sufficient for the recovery invariant
//! (*acknowledged ⇒ replayed*).
//!
//! ## On-disk format
//!
//! ```text
//! header   : [magic  8B = "CCIXWAL\x01"]
//! record   : [len u32][crc u32][payload len bytes]      (little-endian)
//! payload  : [kind u8 = 2][ops_after u64][n u32][n × (tag u8, lo i64, hi i64, id u64)]
//! ```
//!
//! `crc` covers the payload only; `len` is the payload length. `ops_after`
//! is the cumulative operation count *after* this batch, which makes
//! replay-after-checkpoint a pure filter (`ops_after > ckpt.ops_applied`)
//! and stale tails harmless.
//!
//! ## Torn tails
//!
//! [`Wal::open`] scans from the header and stops at the first record whose
//! length or CRC does not check out — a crash mid-append leaves exactly
//! that state — then truncates the file back to the last valid boundary.
//! A torn tail is **never** an error: the lost suffix was by construction
//! never acknowledged (acks wait for the covering fsync).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccix_interval::{Interval, IntervalOp};

use crate::crc32;
use crate::fs::{read_exact_at, retry_interrupted, write_all_at, Fs, RawFile};

/// File magic: identifies a WAL and pins its format version.
pub const WAL_MAGIC: [u8; 8] = *b"CCIXWAL\x01";

/// Record kind: a committed batch of interval operations.
const KIND_COMMIT: u8 = 2;

/// Operation tags inside a commit payload.
const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;

/// Per-record framing overhead (`len` + `crc`).
const FRAME: u64 = 8;

/// Hard cap on one record's payload, against garbage length fields. A
/// batch of a million ops is ~25 MB; anything past this is corruption.
const MAX_RECORD: u32 = 64 << 20;

/// One committed batch as read back from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Cumulative operation count after applying this batch.
    pub ops_after: u64,
    /// The batch, in application order.
    pub ops: Vec<IntervalOp>,
}

/// What [`Wal::open`] found.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Every valid commit record, in log order.
    pub records: Vec<CommitRecord>,
    /// Bytes discarded from a torn or corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// An append-only, CRC-framed log of committed batches.
pub struct Wal {
    file: Box<dyn RawFile>,
    path: PathBuf,
    /// Next append offset (end of the last valid record).
    end: u64,
    /// Bytes appended since the last [`Wal::sync`].
    unsynced: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("end", &self.end)
            .field("unsynced", &self.unsynced)
            .finish()
    }
}

fn encode_commit(ops_after: u64, ops: &[IntervalOp], out: &mut Vec<u8>) {
    out.push(KIND_COMMIT);
    out.extend_from_slice(&ops_after.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        let (tag, iv) = match op {
            IntervalOp::Insert(iv) => (TAG_INSERT, iv),
            IntervalOp::Delete(iv) => (TAG_DELETE, iv),
        };
        out.push(tag);
        out.extend_from_slice(&iv.lo.to_le_bytes());
        out.extend_from_slice(&iv.hi.to_le_bytes());
        out.extend_from_slice(&iv.id.to_le_bytes());
    }
}

fn decode_commit(payload: &[u8]) -> Option<CommitRecord> {
    if payload.len() < 13 || payload[0] != KIND_COMMIT {
        return None;
    }
    let ops_after = u64::from_le_bytes(payload[1..9].try_into().ok()?);
    let n = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    let body = &payload[13..];
    if body.len() != n * 25 {
        return None;
    }
    let mut ops = Vec::with_capacity(n);
    for rec in body.chunks_exact(25) {
        let lo = i64::from_le_bytes(rec[1..9].try_into().ok()?);
        let hi = i64::from_le_bytes(rec[9..17].try_into().ok()?);
        let id = u64::from_le_bytes(rec[17..25].try_into().ok()?);
        if hi < lo {
            return None;
        }
        let iv = Interval::new(lo, hi, id);
        ops.push(match rec[0] {
            TAG_INSERT => IntervalOp::Insert(iv),
            TAG_DELETE => IntervalOp::Delete(iv),
            _ => return None,
        });
    }
    Some(CommitRecord { ops_after, ops })
}

impl Wal {
    /// Create a fresh, empty log at `path` (truncating any existing file)
    /// and make the empty state durable.
    pub fn create(fs: &Arc<dyn Fs>, path: &Path) -> io::Result<Wal> {
        let mut file = fs.open(path, true)?;
        retry_interrupted(|| file.set_len(0))?;
        write_all_at(file.as_mut(), 0, &WAL_MAGIC)?;
        retry_interrupted(|| file.sync())?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            end: WAL_MAGIC.len() as u64,
            unsynced: 0,
        })
    }

    /// Open an existing log, replay-scanning every valid record and
    /// truncating any torn or corrupt tail back to the last valid record
    /// boundary. A file shorter than the header is a crash inside
    /// [`Wal::create`] (the magic is synced before `create` returns, and
    /// nothing can be acknowledged before that): the empty log is rebuilt
    /// in place. A full-length header that is not the magic is a foreign
    /// file, and *that* is an error.
    pub fn open(fs: &Arc<dyn Fs>, path: &Path) -> io::Result<WalOpen> {
        let mut file = fs.open(path, false)?;
        let len = file.len()?;
        if len < WAL_MAGIC.len() as u64 {
            let truncated_bytes = len;
            retry_interrupted(|| file.set_len(0))?;
            write_all_at(file.as_mut(), 0, &WAL_MAGIC)?;
            retry_interrupted(|| file.sync())?;
            return Ok(WalOpen {
                wal: Wal {
                    file,
                    path: path.to_path_buf(),
                    end: WAL_MAGIC.len() as u64,
                    unsynced: 0,
                },
                records: Vec::new(),
                truncated_bytes,
            });
        }
        let mut magic = [0u8; 8];
        read_exact_at(file.as_ref(), 0, &mut magic)?;
        if magic != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a WAL (bad magic)", path.display()),
            ));
        }
        let mut records = Vec::new();
        let mut off = WAL_MAGIC.len() as u64;
        loop {
            // Stop — cleanly — at the first frame that does not check out.
            let mut frame = [0u8; 8];
            if off + FRAME > len {
                break;
            }
            read_exact_at(file.as_ref(), off, &mut frame)?;
            let plen = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
            if plen > MAX_RECORD || off + FRAME + plen as u64 > len {
                break;
            }
            let mut payload = vec![0u8; plen as usize];
            read_exact_at(file.as_ref(), off + FRAME, &mut payload)?;
            if crc32(&payload) != crc {
                break;
            }
            let Some(rec) = decode_commit(&payload) else {
                break;
            };
            records.push(rec);
            off += FRAME + plen as u64;
        }
        let truncated_bytes = len - off;
        if truncated_bytes > 0 {
            retry_interrupted(|| file.set_len(off))?;
            retry_interrupted(|| file.sync())?;
        }
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                end: off,
                unsynced: 0,
            },
            records,
            truncated_bytes,
        })
    }

    /// Append one committed batch. The record is **not** durable until the
    /// next [`Wal::sync`]; callers must not acknowledge before then.
    pub fn append_commit(&mut self, ops_after: u64, ops: &[IntervalOp]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(13 + ops.len() * 25);
        encode_commit(ops_after, ops, &mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        write_all_at(self.file.as_mut(), self.end, &frame)?;
        self.end += frame.len() as u64;
        self.unsynced += frame.len() as u64;
        Ok(())
    }

    /// Flush appended records to stable storage. Acknowledgements may be
    /// released for every record appended before this call returns.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        retry_interrupted(|| self.file.sync())?;
        self.unsynced = 0;
        Ok(())
    }

    /// Whether appends are waiting on a [`Wal::sync`].
    pub fn has_unsynced(&self) -> bool {
        self.unsynced > 0
    }

    /// Truncate the log to empty (after a checkpoint has made its contents
    /// redundant) and make the truncation durable.
    pub fn reset(&mut self) -> io::Result<()> {
        retry_interrupted(|| self.file.set_len(WAL_MAGIC.len() as u64))?;
        retry_interrupted(|| self.file.sync())?;
        self.end = WAL_MAGIC.len() as u64;
        self.unsynced = 0;
        Ok(())
    }

    /// Current log length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TempDir;
    use crate::fs::RealFs;

    fn iv(lo: i64, hi: i64, id: u64) -> Interval {
        Interval::new(lo, hi, id)
    }

    fn sample_batches() -> Vec<(u64, Vec<IntervalOp>)> {
        vec![
            (
                2,
                vec![
                    IntervalOp::Insert(iv(1, 5, 10)),
                    IntervalOp::Insert(iv(-3, 2, 11)),
                ],
            ),
            (3, vec![IntervalOp::Delete(iv(1, 5, 10))]),
            (
                5,
                vec![
                    IntervalOp::Insert(iv(i64::MIN, i64::MAX, 12)),
                    IntervalOp::Insert(iv(0, 0, 13)),
                ],
            ),
        ]
    }

    #[test]
    fn append_sync_reopen_roundtrip() {
        let tmp = TempDir::new("wal-roundtrip");
        let path = tmp.path().join("wal");
        let fs = RealFs::shared();
        let mut wal = Wal::create(&fs, &path).expect("create");
        for (ops_after, ops) in sample_batches() {
            wal.append_commit(ops_after, &ops).expect("append");
        }
        assert!(wal.has_unsynced());
        wal.sync().expect("sync");
        assert!(!wal.has_unsynced());
        drop(wal);

        let opened = Wal::open(&fs, &path).expect("open");
        assert_eq!(opened.truncated_bytes, 0);
        assert_eq!(opened.records.len(), 3);
        for (rec, (ops_after, ops)) in opened.records.iter().zip(sample_batches()) {
            assert_eq!(rec.ops_after, ops_after);
            assert_eq!(rec.ops, ops);
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_an_error() {
        let tmp = TempDir::new("wal-torn");
        let path = tmp.path().join("wal");
        let fs = RealFs::shared();
        let mut wal = Wal::create(&fs, &path).expect("create");
        for (ops_after, ops) in sample_batches() {
            wal.append_commit(ops_after, &ops).expect("append");
        }
        wal.sync().expect("sync");
        drop(wal);

        // Tear the file mid-record, at every byte boundary inside the last
        // record: recovery must always surface exactly the intact prefix.
        let full = std::fs::read(&path).expect("read");
        let clean2 = {
            // Length of the first two records: reopen and measure.
            let mut w = Wal::create(&fs, &tmp.path().join("wal2")).expect("create");
            for (ops_after, ops) in sample_batches().iter().take(2) {
                w.append_commit(*ops_after, ops).expect("append");
            }
            w.len_bytes()
        };
        for cut in clean2 + 1..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).expect("tear");
            let opened = Wal::open(&fs, &path).expect("open torn");
            assert_eq!(opened.records.len(), 2, "cut at {cut}");
            assert_eq!(opened.truncated_bytes, cut - clean2);
            assert_eq!(opened.wal.len_bytes(), clean2);
            // Restore for the next cut.
            std::fs::write(&path, &full).expect("restore");
        }
    }

    #[test]
    fn garbage_tail_stops_at_bad_crc() {
        let tmp = TempDir::new("wal-garbage");
        let path = tmp.path().join("wal");
        let fs = RealFs::shared();
        let mut wal = Wal::create(&fs, &path).expect("create");
        wal.append_commit(1, &[IntervalOp::Insert(iv(0, 9, 1))])
            .expect("append");
        wal.sync().expect("sync");
        let clean = wal.len_bytes();
        drop(wal);

        // Append a frame with a plausible length but wrong CRC, then junk.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&20u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 20]);
        bytes.extend_from_slice(&[0xFF; 7]);
        std::fs::write(&path, &bytes).expect("write");

        let opened = Wal::open(&fs, &path).expect("open");
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.wal.len_bytes(), clean);
        // And after truncation a clean reopen sees no tail at all.
        let again = Wal::open(&fs, &path).expect("reopen");
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.records.len(), 1);
    }

    #[test]
    fn reset_empties_the_log() {
        let tmp = TempDir::new("wal-reset");
        let path = tmp.path().join("wal");
        let fs = RealFs::shared();
        let mut wal = Wal::create(&fs, &path).expect("create");
        wal.append_commit(1, &[IntervalOp::Insert(iv(0, 1, 1))])
            .expect("append");
        wal.sync().expect("sync");
        wal.reset().expect("reset");
        drop(wal);
        let opened = Wal::open(&fs, &path).expect("open");
        assert!(opened.records.is_empty());
        assert_eq!(opened.truncated_bytes, 0);
    }

    #[test]
    fn torn_header_recovers_to_an_empty_log() {
        let tmp = TempDir::new("wal-torn-header");
        let path = tmp.path().join("wal");
        let fs = RealFs::shared();
        // A crash inside create leaves a prefix of the magic — any length
        // short of the full header must reopen as a fresh empty log.
        for cut in 0..WAL_MAGIC.len() {
            std::fs::write(&path, &WAL_MAGIC[..cut]).expect("tear header");
            let opened = Wal::open(&fs, &path).expect("open torn header");
            assert!(opened.records.is_empty(), "cut at {cut}");
            assert_eq!(opened.truncated_bytes, cut as u64);
            assert_eq!(opened.wal.len_bytes(), WAL_MAGIC.len() as u64);
            // The rebuilt header is durable and appendable.
            let again = Wal::open(&fs, &path).expect("reopen");
            assert_eq!(again.truncated_bytes, 0);
        }
    }

    #[test]
    fn non_wal_file_is_rejected() {
        let tmp = TempDir::new("wal-magic");
        let path = tmp.path().join("wal");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        let fs = RealFs::shared();
        let err = Wal::open(&fs, &path).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
