//! # `ccix-durable` — durability for the serving engine
//!
//! The index stack (`ccix-core`, `ccix-interval`) is an in-memory
//! simulator of the paper's external-memory structures; the serving layer
//! (`ccix-serve`) runs real concurrent traffic over it. This crate closes
//! the remaining gap to a storage engine: **acknowledged writes survive a
//! crash**.
//!
//! The design is logical, not physical:
//!
//! * a [`wal::Wal`] records every committed batch (length-prefixed,
//!   CRC-framed, group-fsynced) *before* it is acknowledged;
//! * a [`checkpoint::Checkpoint`] periodically snapshots the index's live
//!   content plus its construction [`checkpoint::Meta`], then truncates
//!   the log;
//! * recovery ([`DurableStore::open`]) loads the newest valid checkpoint,
//!   rebuilds the index deterministically, and replays the WAL suffix
//!   through `apply_batch`, tolerating a torn or garbage tail (a crash
//!   artifact, never an error).
//!
//! The recovery invariant — **acknowledged ⇒ replayed; torn tail ⇒
//! truncated** — is enforced, not assumed: the [`fault::FailFs`]
//! power-loss simulator drives a differential suite (in `ccix-serve`)
//! that kills the engine at hundreds of deterministic points mid-flood
//! and asserts exact agreement with an oracle replay of the acknowledged
//! prefix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fault;
pub mod fs;
pub mod wal;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ccix_extmem::{BackendSpec, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalIndex, IntervalOp, ShardedIntervalIndex};

pub use checkpoint::{Checkpoint, Meta};
pub use fault::{FailFs, FaultPlan, TempDir};
pub use fs::{Fs, RawFile, RealFs};
pub use wal::{CommitRecord, Wal};

/// CRC-32 (IEEE 802.3, reflected) — the checksum framing every WAL record
/// and checkpoint body. Table-driven; the table is built at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// When the WAL is fsynced relative to commit acknowledgement.
///
/// Every policy preserves the invariant (no ack before the covering
/// fsync); they trade latency against fsync amortisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every `n` appended commits (n ≥ 1). `EveryCommits(1)`
    /// is classic synchronous commit.
    EveryCommits(u32),
    /// Group commit: fsync when the submission queue drains or
    /// `max_delay_ms` has elapsed since the oldest unacknowledged append,
    /// whichever comes first. Amortises one fsync over a whole burst.
    Group {
        /// Upper bound on how long an append may wait for its fsync.
        max_delay_ms: u64,
    },
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Group { max_delay_ms: 10 }
    }
}

/// Configuration for a durable directory.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Directory holding the `wal` and `checkpoint` files (created if
    /// missing).
    pub dir: PathBuf,
    /// Fsync batching policy.
    pub fsync: FsyncPolicy,
    /// Write a checkpoint (and truncate the WAL) once this many
    /// operations have been logged since the last one. `0` disables
    /// count-triggered checkpoints (they still happen at flush/shutdown).
    pub checkpoint_every_ops: u64,
    /// The filesystem to write through — [`RealFs`] in production, a
    /// [`FailFs`] in crash tests.
    pub fs: Arc<dyn Fs>,
}

impl std::fmt::Debug for DurabilityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityConfig")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("checkpoint_every_ops", &self.checkpoint_every_ops)
            .finish_non_exhaustive()
    }
}

impl DurabilityConfig {
    /// Durability in `dir` with default policies on the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every_ops: 50_000,
            fs: RealFs::shared(),
        }
    }
}

/// What [`DurableStore::open`] recovered, before any rebuild.
#[derive(Debug)]
pub struct Recovered {
    /// The newest checkpoint, if one was ever written.
    pub checkpoint: Option<Checkpoint>,
    /// WAL records strictly newer than the checkpoint watermark, in
    /// commit order.
    pub replay: Vec<CommitRecord>,
    /// Diagnostics for logs and tests.
    pub report: RecoveryReport,
}

/// Diagnostics from a recovery pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Operation watermark of the loaded checkpoint (0 if none).
    pub checkpoint_ops: u64,
    /// Intervals restored from the checkpoint.
    pub checkpoint_intervals: usize,
    /// WAL commit records replayed.
    pub replayed_commits: usize,
    /// Operations contained in the replayed records.
    pub replayed_ops: u64,
    /// Bytes discarded from a torn or corrupt WAL tail.
    pub torn_tail_bytes: u64,
    /// Stale WAL records skipped (already covered by the checkpoint).
    pub stale_commits: usize,
}

impl Recovered {
    /// Cumulative operation count after full replay.
    pub fn ops_applied(&self) -> u64 {
        self.replay
            .last()
            .map(|r| r.ops_after)
            .unwrap_or(self.report.checkpoint_ops)
    }

    /// Deterministically rebuild the index this state describes: bulk-load
    /// the checkpoint content with the checkpointed [`Meta`] (or
    /// `fallback` for a pre-checkpoint directory), then replay the WAL
    /// suffix batch by batch through `apply_batch`.
    pub fn rebuild(&self, counter: IoCounter, fallback: Meta) -> IntervalIndex {
        self.rebuild_on(&BackendSpec::Model, counter, fallback)
    }

    /// As [`Recovered::rebuild`], on an explicit page backend. Recovery is
    /// *logical* — the checkpoint + WAL replay reproduce the index's
    /// contents, not its page file — so a file-backed rebuild writes a
    /// fresh page file under the spec's directory rather than reopening an
    /// old one; the old file (if any) is garbage a caller may unlink.
    pub fn rebuild_on(
        &self,
        spec: &BackendSpec,
        counter: IoCounter,
        fallback: Meta,
    ) -> IntervalIndex {
        let (meta, base): (Meta, &[Interval]) = match &self.checkpoint {
            Some(c) => (c.meta, &c.intervals),
            None => (fallback, &[]),
        };
        let mut index = IndexBuilder::new(meta.geometry)
            .options(meta.options)
            .backend(spec.clone())
            .bulk(counter, base);
        for rec in &self.replay {
            index.apply_batch(&rec.ops);
        }
        index
    }

    /// As [`Recovered::rebuild`], but restore the x-range sharding the
    /// checkpoint recorded: the content is re-partitioned at the
    /// checkpointed split points (or `fallback_splits` for a
    /// pre-checkpoint directory), the shards bulk-load in parallel under
    /// the recovered [`ccix_core::Tuning::shard_threads`] budget, and the
    /// WAL suffix replays through the routing directory. With no splits
    /// this is the unsharded rebuild behind a single-shard directory.
    pub fn rebuild_sharded(&self, fallback: Meta, fallback_splits: &[i64]) -> ShardedIntervalIndex {
        self.rebuild_sharded_on(&BackendSpec::Model, fallback, fallback_splits)
    }

    /// As [`Recovered::rebuild_sharded`], on an explicit page backend (see
    /// [`Recovered::rebuild_on`] — every shard's stores land as fresh page
    /// files under the spec's directory).
    pub fn rebuild_sharded_on(
        &self,
        spec: &BackendSpec,
        fallback: Meta,
        fallback_splits: &[i64],
    ) -> ShardedIntervalIndex {
        let (meta, splits, base): (Meta, &[i64], &[Interval]) = match &self.checkpoint {
            Some(c) => (c.meta, &c.shard_splits, &c.intervals),
            None => (fallback, fallback_splits, &[]),
        };
        let mut index = IndexBuilder::new(meta.geometry)
            .options(meta.options)
            .backend(spec.clone())
            .sharded()
            .splits(splits.to_vec())
            .bulk(base);
        for rec in &self.replay {
            index.apply_batch(&rec.ops);
        }
        index
    }
}

/// The durable side of an engine: one WAL plus one checkpoint file in a
/// directory, with the commit/checkpoint protocol between them.
pub struct DurableStore {
    fs: Arc<dyn Fs>,
    dir: PathBuf,
    wal: Wal,
    /// Cumulative operations logged (checkpoint watermark + WAL suffix).
    ops_logged: u64,
    /// Watermark of the newest checkpoint.
    checkpoint_ops: u64,
    checkpoint_every_ops: u64,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("ops_logged", &self.ops_logged)
            .field("checkpoint_ops", &self.checkpoint_ops)
            .finish()
    }
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal")
}

fn ckpt_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint")
}

impl DurableStore {
    /// Initialise a fresh durable directory: an empty WAL and a genesis
    /// checkpoint carrying `meta`, the routing directory's `shard_splits`
    /// (empty when unsharded) plus the starting content (`intervals` —
    /// empty for a fresh index, the bulk-loaded set when an engine starts
    /// from one), so the directory is self-describing from the first byte.
    /// Fails if a WAL already exists — recovery ([`DurableStore::open`])
    /// is the only correct way in.
    pub fn create(
        config: &DurabilityConfig,
        meta: Meta,
        shard_splits: &[i64],
        intervals: &[Interval],
    ) -> io::Result<DurableStore> {
        let fs = Arc::clone(&config.fs);
        fs.create_dir_all(&config.dir)?;
        if fs.exists(&wal_path(&config.dir)) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a WAL; open it with recovery instead",
                    config.dir.display()
                ),
            ));
        }
        checkpoint::write_checkpoint(
            &fs,
            &ckpt_path(&config.dir),
            &Checkpoint {
                meta,
                shard_splits: shard_splits.to_vec(),
                ops_applied: 0,
                intervals: intervals.to_vec(),
            },
        )?;
        let wal = Wal::create(&fs, &wal_path(&config.dir))?;
        Ok(DurableStore {
            fs,
            dir: config.dir.clone(),
            wal,
            ops_logged: 0,
            checkpoint_ops: 0,
            checkpoint_every_ops: config.checkpoint_every_ops,
        })
    }

    /// Recover if the directory holds a WAL, resume from a checkpoint-only
    /// directory (a crash landed between checkpoint publication and WAL
    /// creation — nothing was ever acknowledged from the missing log), or
    /// initialise a fresh one with `fallback` meta and empty content. The
    /// one call an engine needs to come up in any directory state.
    pub fn open_or_create(
        config: &DurabilityConfig,
        fallback: Meta,
    ) -> io::Result<(DurableStore, Recovered)> {
        if config.fs.exists(&wal_path(&config.dir)) {
            return Self::open(config);
        }
        let fs = Arc::clone(&config.fs);
        fs.create_dir_all(&config.dir)?;
        let checkpoint = checkpoint::read_checkpoint(&fs, &ckpt_path(&config.dir))?;
        match checkpoint {
            None => {
                let store = Self::create(config, fallback, &[], &[])?;
                Ok((
                    store,
                    Recovered {
                        checkpoint: None,
                        replay: Vec::new(),
                        report: RecoveryReport::default(),
                    },
                ))
            }
            Some(ckpt) => {
                let wal = Wal::create(&fs, &wal_path(&config.dir))?;
                let report = RecoveryReport {
                    checkpoint_ops: ckpt.ops_applied,
                    checkpoint_intervals: ckpt.intervals.len(),
                    ..RecoveryReport::default()
                };
                let ops = ckpt.ops_applied;
                Ok((
                    DurableStore {
                        fs,
                        dir: config.dir.clone(),
                        wal,
                        ops_logged: ops,
                        checkpoint_ops: ops,
                        checkpoint_every_ops: config.checkpoint_every_ops,
                    },
                    Recovered {
                        checkpoint: Some(ckpt),
                        replay: Vec::new(),
                        report,
                    },
                ))
            }
        }
    }

    /// Open an existing durable directory: load the newest checkpoint,
    /// scan the WAL (truncating any torn tail), and return the store plus
    /// everything needed to rebuild the index. Records already covered by
    /// the checkpoint watermark are skipped as stale — a crash between
    /// checkpoint publication and WAL truncation leaves exactly that
    /// state, and it is harmless.
    pub fn open(config: &DurabilityConfig) -> io::Result<(DurableStore, Recovered)> {
        let fs = Arc::clone(&config.fs);
        let checkpoint = checkpoint::read_checkpoint(&fs, &ckpt_path(&config.dir))?;
        let checkpoint_ops = checkpoint.as_ref().map_or(0, |c| c.ops_applied);
        let opened = Wal::open(&fs, &wal_path(&config.dir))?;
        let total = opened.records.len();
        let replay: Vec<CommitRecord> = opened
            .records
            .into_iter()
            .filter(|r| r.ops_after > checkpoint_ops)
            .collect();
        let report = RecoveryReport {
            checkpoint_ops,
            checkpoint_intervals: checkpoint.as_ref().map_or(0, |c| c.intervals.len()),
            replayed_commits: replay.len(),
            replayed_ops: replay.iter().map(|r| r.ops.len() as u64).sum(),
            torn_tail_bytes: opened.truncated_bytes,
            stale_commits: total - replay.len(),
        };
        let ops_logged = replay.last().map_or(checkpoint_ops, |r| r.ops_after);
        Ok((
            DurableStore {
                fs,
                dir: config.dir.clone(),
                wal: opened.wal,
                ops_logged,
                checkpoint_ops,
                checkpoint_every_ops: config.checkpoint_every_ops,
            },
            Recovered {
                checkpoint,
                replay,
                report,
            },
        ))
    }

    /// Append one committed batch to the WAL. Returns the cumulative
    /// operation count after the batch. **Not durable** until
    /// [`DurableStore::sync`]; the caller must withhold acknowledgement
    /// until then.
    pub fn append_commit(&mut self, ops: &[IntervalOp]) -> io::Result<u64> {
        let ops_after = self.ops_logged + ops.len() as u64;
        self.wal.append_commit(ops_after, ops)?;
        self.ops_logged = ops_after;
        Ok(ops_after)
    }

    /// Fsync the WAL; afterwards every appended commit may be
    /// acknowledged.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Whether appended commits are waiting on a sync.
    pub fn has_unsynced(&self) -> bool {
        self.wal.has_unsynced()
    }

    /// Whether the count-triggered checkpoint threshold has been reached.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint_every_ops > 0
            && self.ops_logged - self.checkpoint_ops >= self.checkpoint_every_ops
    }

    /// Publish a checkpoint of the current logical state and truncate the
    /// WAL. `intervals` must be the live content after every logged
    /// operation (callers checkpoint from a quiesced or snapshotted
    /// index) and `shard_splits` the routing directory's split points
    /// (empty when unsharded). Crash-ordering: the checkpoint is durable
    /// (tmp + rename + dir sync) *before* the WAL is reset, so every
    /// moment in between recovers correctly — the stale WAL records are
    /// filtered by the watermark.
    pub fn checkpoint(
        &mut self,
        meta: Meta,
        shard_splits: &[i64],
        intervals: &[Interval],
    ) -> io::Result<()> {
        self.wal.sync()?;
        checkpoint::write_checkpoint(
            &self.fs,
            &ckpt_path(&self.dir),
            &Checkpoint {
                meta,
                shard_splits: shard_splits.to_vec(),
                ops_applied: self.ops_logged,
                intervals: intervals.to_vec(),
            },
        )?;
        self.checkpoint_ops = self.ops_logged;
        self.wal.reset()
    }

    /// Cumulative operations logged since the directory was created.
    pub fn ops_logged(&self) -> u64 {
        self.ops_logged
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::Geometry;
    use ccix_interval::IntervalOptions;

    fn meta() -> Meta {
        Meta::new(Geometry::new(8), IntervalOptions::default())
    }

    fn config(dir: &Path) -> DurabilityConfig {
        DurabilityConfig {
            checkpoint_every_ops: 0,
            ..DurabilityConfig::new(dir)
        }
    }

    fn iv(lo: i64, hi: i64, id: u64) -> Interval {
        Interval::new(lo, hi, id)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn create_log_reopen_rebuild() {
        let tmp = TempDir::new("store-rebuild");
        let cfg = config(tmp.path());
        let mut store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        store
            .append_commit(&[
                IntervalOp::Insert(iv(1, 10, 1)),
                IntervalOp::Insert(iv(5, 20, 2)),
            ])
            .expect("append");
        store
            .append_commit(&[IntervalOp::Delete(iv(1, 10, 1))])
            .expect("append");
        store.sync().expect("sync");
        drop(store);

        let (store, rec) = DurableStore::open(&cfg).expect("open");
        assert_eq!(rec.report.replayed_commits, 2);
        assert_eq!(rec.report.replayed_ops, 3);
        assert_eq!(rec.report.torn_tail_bytes, 0);
        assert_eq!(rec.ops_applied(), 3);
        assert_eq!(store.ops_logged(), 3);
        let index = rec.rebuild(IoCounter::new(), meta());
        assert_eq!(index.len(), 1);
        assert_eq!(index.stabbing(10), vec![2]);
    }

    #[test]
    fn checkpoint_truncates_wal_and_filters_stale_records() {
        let tmp = TempDir::new("store-ckpt");
        let cfg = config(tmp.path());
        let mut store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        store
            .append_commit(&[IntervalOp::Insert(iv(0, 4, 1))])
            .expect("append");
        store
            .append_commit(&[IntervalOp::Insert(iv(2, 8, 2))])
            .expect("append");
        store
            .checkpoint(meta(), &[], &[iv(0, 4, 1), iv(2, 8, 2)])
            .expect("checkpoint");
        assert_eq!(store.wal_bytes(), wal::WAL_MAGIC.len() as u64);
        store
            .append_commit(&[IntervalOp::Delete(iv(0, 4, 1))])
            .expect("append");
        store.sync().expect("sync");
        drop(store);

        let (_store, rec) = DurableStore::open(&cfg).expect("open");
        assert_eq!(rec.report.checkpoint_ops, 2);
        assert_eq!(rec.report.checkpoint_intervals, 2);
        assert_eq!(rec.report.replayed_commits, 1);
        assert_eq!(rec.report.stale_commits, 0);
        assert_eq!(rec.ops_applied(), 3);
        let index = rec.rebuild(IoCounter::new(), meta());
        assert_eq!(index.len(), 1);
        assert_eq!(index.stabbing(3), vec![2]);
    }

    #[test]
    fn stale_wal_after_unreset_checkpoint_is_skipped() {
        // Simulate a crash between checkpoint publication and WAL reset:
        // write the checkpoint through the public API but restore the WAL
        // bytes afterwards.
        let tmp = TempDir::new("store-stale");
        let cfg = config(tmp.path());
        let mut store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        store
            .append_commit(&[IntervalOp::Insert(iv(0, 4, 1))])
            .expect("append");
        store.sync().expect("sync");
        let wal_bytes = std::fs::read(tmp.path().join("wal")).expect("read wal");
        store
            .checkpoint(meta(), &[], &[iv(0, 4, 1)])
            .expect("checkpoint");
        drop(store);
        // The crash: WAL still holds the pre-checkpoint records.
        std::fs::write(tmp.path().join("wal"), &wal_bytes).expect("restore wal");

        let (_store, rec) = DurableStore::open(&cfg).expect("open");
        assert_eq!(rec.report.stale_commits, 1);
        assert_eq!(rec.report.replayed_commits, 0);
        assert_eq!(rec.ops_applied(), 1);
        let index = rec.rebuild(IoCounter::new(), meta());
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn create_refuses_existing_directory() {
        let tmp = TempDir::new("store-exists");
        let cfg = config(tmp.path());
        let store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        drop(store);
        let err = DurableStore::create(&cfg, meta(), &[], &[]).expect_err("refuse");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn wants_checkpoint_follows_threshold() {
        let tmp = TempDir::new("store-thresh");
        let cfg = DurabilityConfig {
            checkpoint_every_ops: 3,
            ..DurabilityConfig::new(tmp.path())
        };
        let mut store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        store
            .append_commit(&[IntervalOp::Insert(iv(0, 1, 1))])
            .expect("append");
        assert!(!store.wants_checkpoint());
        store
            .append_commit(&[
                IntervalOp::Insert(iv(0, 1, 2)),
                IntervalOp::Insert(iv(0, 1, 3)),
            ])
            .expect("append");
        assert!(store.wants_checkpoint());
        store
            .checkpoint(meta(), &[], &[iv(0, 1, 1), iv(0, 1, 2), iv(0, 1, 3)])
            .expect("checkpoint");
        assert!(!store.wants_checkpoint());
    }

    #[test]
    fn recovery_through_failfs_crash_matches_synced_prefix() {
        // End-to-end with the fault layer: run a commit stream through a
        // FailFs that crashes, then recover with the real filesystem and
        // check the recovered ops are exactly a prefix ≥ the synced count.
        let tmp = TempDir::new("store-failfs");
        let real = RealFs::shared();
        let fail = FailFs::new(
            Arc::clone(&real),
            0xC0FFEE,
            FaultPlan {
                crash_after_ops: Some(40),
                short_write: 0.2,
                eintr: 0.1,
            },
        );
        let cfg = DurabilityConfig {
            dir: tmp.path().to_path_buf(),
            fsync: FsyncPolicy::EveryCommits(1),
            checkpoint_every_ops: 0,
            fs: Arc::new(fail),
        };
        let mut store = DurableStore::create(&cfg, meta(), &[], &[]).expect("create");
        let mut synced = 0u64;
        for i in 0..1000u64 {
            let ops = [IntervalOp::Insert(iv(i as i64, i as i64 + 5, i))];
            let Ok(_) = store.append_commit(&ops) else {
                break;
            };
            if store.sync().is_err() {
                break;
            }
            synced = i + 1;
        }
        drop(store);

        let real_cfg = DurabilityConfig {
            fs: real,
            ..DurabilityConfig::new(tmp.path())
        };
        let (_store, rec) = DurableStore::open(&real_cfg).expect("recover");
        let recovered = rec.ops_applied();
        assert!(
            recovered >= synced,
            "synced commit lost: synced {synced}, recovered {recovered}"
        );
        let index = rec.rebuild(IoCounter::new(), meta());
        assert_eq!(index.len() as u64, recovered);
        // Content check: ids are exactly 0..recovered.
        let mut got = index.intersecting(i64::MIN, i64::MAX);
        got.sort_unstable();
        let want: Vec<u64> = (0..recovered).collect();
        assert_eq!(got, want);
    }
}
