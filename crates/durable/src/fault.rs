//! Deterministic fault injection: a power-loss simulator behind the
//! [`Fs`] seam.
//!
//! [`FailFs`] wraps another filesystem (normally [`crate::fs::RealFs`] on
//! a temp directory) and models the failure behaviours a real disk stack
//! exhibits, all driven by a seeded splitmix64 stream so every trial
//! replays exactly from its seed:
//!
//! * **Buffered writes.** Writes land in an in-memory shadow of each file
//!   (the "page cache"); only [`RawFile::sync`] flushes them to the inner
//!   filesystem. A crash loses an arbitrary *suffix* of the unsynced
//!   writes — and may tear the newest surviving write in half — exactly
//!   the state a machine reboot leaves behind. Code that acknowledges a
//!   commit before its covering fsync therefore fails the differential
//!   crash suite, rather than passing by accident because the simulator
//!   was too kind.
//! * **Short writes.** With probability `short_write`, a `write_at`
//!   transfers only a strict prefix and reports the short count, so the
//!   caller's retry loop (not wishful thinking) completes the transfer.
//! * **Transient errors.** With probability `eintr`, an operation fails
//!   with `ErrorKind::Interrupted` before doing anything.
//! * **Crash points.** The `crash_after_ops` budget counts every mutating
//!   operation (writes, syncs, truncates, renames); when it runs out the
//!   filesystem performs its lossy crash flush and then fails everything,
//!   forever — the moment the process "dies".
//!
//! The injected rng stream is splitmix64 with the same constants as
//! `ccix_testkit::DetRng`, duplicated here (rather than imported) to keep
//! this crate free of a test-kit dependency cycle.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::fs::{read_exact_at, write_all_at, Fs, RawFile};

/// What to inject, and when. All probabilities are per-operation.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Crash (lossy flush + permanent failure) once this many mutating
    /// operations have run. `None` never crashes.
    pub crash_after_ops: Option<u64>,
    /// Probability a write transfers only a strict prefix.
    pub short_write: f64,
    /// Probability an operation fails with `ErrorKind::Interrupted`.
    pub eintr: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            crash_after_ops: None,
            short_write: 0.1,
            eintr: 0.05,
        }
    }
}

/// splitmix64 — the `ccix_testkit::DetRng` stream, duplicated to avoid a
/// dependency cycle (pinned against the same constants).
#[derive(Debug)]
struct Splitmix(u64);

impl Splitmix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

#[derive(Debug)]
struct FaultState {
    rng: Splitmix,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

impl FaultState {
    fn crash_error() -> io::Error {
        io::Error::other("injected crash: filesystem is dead")
    }

    /// Gate one mutating operation: transient error, crash, or proceed.
    /// Returns `Ok(true)` when this very operation is the crash point (the
    /// caller must do its lossy flush and then fail).
    fn mutating_op(&mut self) -> io::Result<bool> {
        if self.crashed {
            return Err(Self::crash_error());
        }
        if self.rng.next_f64() < self.plan.eintr {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        self.ops += 1;
        if let Some(limit) = self.plan.crash_after_ops {
            if self.ops >= limit {
                self.crashed = true;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(Self::crash_error())
        } else {
            Ok(())
        }
    }
}

/// The fault-injecting filesystem. Cloneable; all clones share one fault
/// state, so a crash on any handle kills every handle.
#[derive(Clone)]
pub struct FailFs {
    inner: Arc<dyn Fs>,
    state: Arc<Mutex<FaultState>>,
}

impl std::fmt::Debug for FailFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("fault state");
        f.debug_struct("FailFs")
            .field("ops", &st.ops)
            .field("crashed", &st.crashed)
            .field("plan", &st.plan)
            .finish()
    }
}

impl FailFs {
    /// Wrap `inner` with the given plan; `seed` pins the injection stream.
    pub fn new(inner: Arc<dyn Fs>, seed: u64, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                rng: Splitmix(seed),
                plan,
                ops: 0,
                crashed: false,
            })),
        }
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state").crashed
    }

    /// Mutating operations performed so far (for sizing crash points).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state").ops
    }
}

/// One pending (unsynced) write in a file's shadow buffer.
#[derive(Debug)]
struct DirtyWrite {
    off: u64,
    data: Vec<u8>,
}

/// A file whose writes are buffered until `sync`, with lossy crash flush.
struct FailFile {
    inner: Box<dyn RawFile>,
    /// The process's view of the file (synced content + pending writes).
    mem: Vec<u8>,
    /// Writes since the last successful sync, in order.
    dirty: Vec<DirtyWrite>,
    state: Arc<Mutex<FaultState>>,
}

impl FailFile {
    /// Apply one write to the in-memory shadow.
    fn apply_to_mem(mem: &mut Vec<u8>, off: u64, data: &[u8]) {
        let end = off as usize + data.len();
        if mem.len() < end {
            mem.resize(end, 0);
        }
        mem[off as usize..end].copy_from_slice(data);
    }

    /// The crash flush: persist a random prefix of the dirty list (the
    /// newest surviving write possibly torn), leaving the rest lost — then
    /// the filesystem is dead. Errors during the flush are swallowed: a
    /// dying machine does not report them either.
    fn crash_flush(&mut self, rng_cut: usize, torn_len: usize) {
        let mut synced = self.synced_image();
        for (i, w) in self.dirty.iter().enumerate() {
            if i < rng_cut {
                Self::apply_to_mem(&mut synced, w.off, &w.data);
            } else if i == rng_cut && torn_len > 0 {
                Self::apply_to_mem(&mut synced, w.off, &w.data[..torn_len.min(w.data.len())]);
            }
        }
        let _ = self.inner.set_len(synced.len() as u64);
        let _ = write_all_at(self.inner.as_mut(), 0, &synced);
        let _ = self.inner.sync();
    }

    /// Reconstruct the last-synced content of the inner file.
    fn synced_image(&self) -> Vec<u8> {
        let len = self.inner.len().unwrap_or(0) as usize;
        let mut buf = vec![0u8; len];
        if read_exact_at(self.inner.as_ref(), 0, &mut buf).is_err() {
            buf.clear();
        }
        buf
    }
}

impl RawFile for FailFile {
    fn len(&self) -> io::Result<u64> {
        self.state.lock().expect("fault state").check_alive()?;
        Ok(self.mem.len() as u64)
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.state.lock().expect("fault state").check_alive()?;
        let off = off as usize;
        if off >= self.mem.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.mem.len() - off);
        buf[..n].copy_from_slice(&self.mem[off..off + n]);
        Ok(n)
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize> {
        let (crash, cut, torn, n) = {
            let mut st = self.state.lock().expect("fault state");
            let crash = st.mutating_op()?;
            if crash {
                let cut = st.rng.below(self.dirty.len() + 1);
                let torn = st.rng.below(buf.len() + 1);
                (true, cut, torn, 0)
            } else {
                let n = if buf.len() > 1 && st.rng.next_f64() < st.plan.short_write {
                    1 + st.rng.below(buf.len() - 1)
                } else {
                    buf.len()
                };
                (false, 0, 0, n)
            }
        };
        if crash {
            // The crashing write itself joins the dirty list so it can be
            // the torn survivor.
            self.dirty.push(DirtyWrite {
                off,
                data: buf.to_vec(),
            });
            self.crash_flush(cut.min(self.dirty.len() - 1), torn);
            return Err(FaultState::crash_error());
        }
        Self::apply_to_mem(&mut self.mem, off, &buf[..n]);
        self.dirty.push(DirtyWrite {
            off,
            data: buf[..n].to_vec(),
        });
        Ok(n)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let crash = {
            let mut st = self.state.lock().expect("fault state");
            let crash = st.mutating_op()?;
            if crash {
                let cut = st.rng.below(self.dirty.len() + 1);
                (true, cut)
            } else {
                (false, 0)
            }
        };
        if crash.0 {
            self.crash_flush(crash.1, 0);
            return Err(FaultState::crash_error());
        }
        self.mem.resize(len as usize, 0);
        // The truncation is metadata the next sync makes durable; dirty
        // writes are clipped to the new length so a later crash flush
        // cannot resurrect bytes past it.
        for w in &mut self.dirty {
            let end = (len.saturating_sub(w.off)) as usize;
            w.data.truncate(end.min(w.data.len()));
        }
        self.dirty.retain(|w| !w.data.is_empty());
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let crash = {
            let mut st = self.state.lock().expect("fault state");
            let crash = st.mutating_op()?;
            if crash {
                let cut = st.rng.below(self.dirty.len() + 1);
                let torn = self
                    .dirty
                    .get(cut)
                    .map(|w| st.rng.below(w.data.len() + 1))
                    .unwrap_or(0);
                (true, cut, torn)
            } else {
                (false, 0, 0)
            }
        };
        if crash.0 {
            self.crash_flush(crash.1, crash.2);
            return Err(FaultState::crash_error());
        }
        // A real sync: the whole shadow becomes the durable image.
        self.inner.set_len(self.mem.len() as u64)?;
        write_all_at(self.inner.as_mut(), 0, &self.mem)?;
        self.inner.sync()?;
        self.dirty.clear();
        Ok(())
    }
}

impl Fs for FailFs {
    fn open(&self, path: &Path, create: bool) -> io::Result<Box<dyn RawFile>> {
        self.state.lock().expect("fault state").check_alive()?;
        let inner = self.inner.open(path, create)?;
        let len = inner.len()? as usize;
        let mut mem = vec![0u8; len];
        read_exact_at(inner.as_ref(), 0, &mut mem)?;
        Ok(Box::new(FailFile {
            inner,
            mem,
            dirty: Vec::new(),
            state: Arc::clone(&self.state),
        }))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.lock().expect("fault state").check_alive()?;
        self.inner.create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let crash = self.state.lock().expect("fault state").mutating_op()?;
        if crash {
            // Crash at the rename point: the rename never happened.
            return Err(FaultState::crash_error());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let crash = self.state.lock().expect("fault state").mutating_op()?;
        if crash {
            return Err(FaultState::crash_error());
        }
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let crash = self.state.lock().expect("fault state").mutating_op()?;
        if crash {
            return Err(FaultState::crash_error());
        }
        self.inner.sync_dir(path)
    }
}

/// A unique temp directory removed on drop — the sandbox each fault trial
/// runs in.
#[derive(Debug)]
pub struct TempDir(PathBuf);

impl TempDir {
    /// Create a fresh directory under the system temp root.
    pub fn new(label: &str) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ccix-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::RealFs;

    #[test]
    fn unsynced_writes_can_be_lost_at_crash() {
        let tmp = TempDir::new("fault-lossy");
        let path = tmp.path().join("f");
        // Crash on the 3rd mutating op; no other noise.
        let fs = FailFs::new(
            RealFs::shared(),
            7,
            FaultPlan {
                crash_after_ops: Some(3),
                short_write: 0.0,
                eintr: 0.0,
            },
        );
        let mut f = fs.open(&path, true).expect("open");
        write_all_at(f.as_mut(), 0, b"aaaa").expect("w1"); // op 1
        write_all_at(f.as_mut(), 4, b"bbbb").expect("w2"); // op 2
        let err = f.write_at(8, b"cccc").expect_err("op 3 crashes");
        assert!(err.to_string().contains("injected crash"));
        assert!(fs.crashed());
        // Everything afterwards fails.
        assert!(f.sync().is_err());
        assert!(fs.open(&path, false).is_err());
        // The real file holds a prefix of the write sequence: its length
        // is whatever survived the lossy flush, never more than was
        // written, and whatever bytes exist match the write order.
        let real = std::fs::read(&path).expect("read real file");
        assert!(real.len() <= 12);
        let full = b"aaaabbbbcccc";
        assert_eq!(&real[..], &full[..real.len()]);
    }

    #[test]
    fn sync_makes_writes_durable_before_crash() {
        let tmp = TempDir::new("fault-sync");
        let path = tmp.path().join("f");
        let fs = FailFs::new(
            RealFs::shared(),
            99,
            FaultPlan {
                crash_after_ops: Some(4),
                short_write: 0.0,
                eintr: 0.0,
            },
        );
        let mut f = fs.open(&path, true).expect("open");
        write_all_at(f.as_mut(), 0, b"keep").expect("w"); // op 1
        f.sync().expect("sync"); // op 2
        write_all_at(f.as_mut(), 4, b"lose").expect("w"); // op 3
        let _ = f.sync().expect_err("op 4 crashes");
        let real = std::fs::read(&path).expect("read real file");
        // The synced prefix always survives a crash.
        assert!(real.len() >= 4, "synced bytes lost: {real:?}");
        assert_eq!(&real[..4], b"keep");
    }

    #[test]
    fn short_writes_and_eintr_are_survivable() {
        let tmp = TempDir::new("fault-transient");
        let path = tmp.path().join("f");
        let fs = FailFs::new(
            RealFs::shared(),
            1234,
            FaultPlan {
                crash_after_ops: None,
                short_write: 0.5,
                eintr: 0.3,
            },
        );
        let mut f = fs.open(&path, true).expect("open");
        let payload: Vec<u8> = (0..=255u8).collect();
        write_all_at(f.as_mut(), 0, &payload).expect("write through noise");
        crate::fs::retry_interrupted(|| f.sync()).expect("sync through noise");
        let real = std::fs::read(&path).expect("read");
        assert_eq!(real, payload);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let tmp = TempDir::new("fault-det");
            let path = tmp.path().join("f");
            let fs = FailFs::new(
                RealFs::shared(),
                seed,
                FaultPlan {
                    crash_after_ops: Some(9),
                    short_write: 0.4,
                    eintr: 0.2,
                },
            );
            let mut f = fs.open(&path, true).expect("open");
            let mut log = Vec::new();
            for i in 0..40u8 {
                match f.write_at(i as u64, &[i; 3]) {
                    Ok(n) => log.push(n as i64),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => log.push(-1),
                    Err(_) => {
                        log.push(-2);
                        break;
                    }
                }
            }
            log
        };
        assert_eq!(run(42), run(42), "same seed, same fault schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
    }
}
