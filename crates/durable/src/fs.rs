//! The filesystem seam the durability layer writes through.
//!
//! The [`Fs`] / [`RawFile`] trait pair now lives in
//! [`ccix_extmem::fs`] so the file-backed page stores
//! (`ccix_extmem::BackendSpec::File`) share the same seam — and the same
//! fault injector ([`crate::fault::FailFs`]) — as the WAL and checkpoint
//! code. This module re-exports everything under its historical path.

pub use ccix_extmem::fs::{read_exact_at, retry_interrupted, write_all_at, Fs, RawFile, RealFs};
