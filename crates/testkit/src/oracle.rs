//! Naive reference answers ("agree with the scan" oracles).
//!
//! Deliberately the most obvious possible implementations: every structure's
//! answer is compared against a linear scan of the same input. These cover
//! the four query shapes the paper's reductions produce, plus the
//! class-extent range query of Example 2.4.

use ccix_class::{ClassId, Hierarchy, Object};
use ccix_extmem::Point;
use ccix_interval::Interval;

/// Ids of intervals containing `q` (stabbing query).
pub fn stabbing_ids(intervals: &[Interval], q: i64) -> Vec<u64> {
    intervals
        .iter()
        .filter(|iv| iv.lo <= q && q <= iv.hi)
        .map(|iv| iv.id)
        .collect()
}

/// Ids of intervals intersecting `[q1, q2]`.
pub fn intersecting_ids(intervals: &[Interval], q1: i64, q2: i64) -> Vec<u64> {
    assert!(q1 <= q2, "query interval endpoints out of order");
    intervals
        .iter()
        .filter(|iv| iv.lo <= q2 && q1 <= iv.hi)
        .map(|iv| iv.id)
        .collect()
}

/// Points with `x ≤ q ≤ y` (diagonal-corner query anchored at `(q, q)`).
pub fn diagonal_corner(points: &[Point], q: i64) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| p.x <= q && p.y >= q)
        .collect()
}

/// Points with `x1 ≤ x ≤ x2` (one-dimensional x-range reporting, the
/// left-endpoint half of an intersection query).
pub fn x_range(points: &[Point], x1: i64, x2: i64) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| p.x >= x1 && p.x <= x2)
        .collect()
}

/// Points with `x1 ≤ x ≤ x2` and `y ≥ y0` (3-sided query).
pub fn three_sided(points: &[Point], x1: i64, x2: i64, y0: i64) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y0)
        .collect()
}

/// Ids of objects in the **full extent** of `class` (the class and all its
/// descendants) with attribute in `[a1, a2]` — the flat-scan baseline for
/// every class-indexing strategy.
pub fn class_range_ids(
    h: &Hierarchy,
    objects: &[Object],
    class: ClassId,
    a1: i64,
    a2: i64,
) -> Vec<u64> {
    objects
        .iter()
        .filter(|o| h.is_ancestor_or_self(class, o.class))
        .filter(|o| o.attr >= a1 && o.attr <= a2)
        .map(|o| o.id)
        .collect()
}

// ---- delete-aware oracle maintenance ---------------------------------------
//
// The oracle for a mixed insert/delete workload is the same linear scan —
// over the *live* multiset. These helpers maintain that multiset so suites
// can interleave deletes and still compare with the scans above; they panic
// on a delete of an absent id, which is the structures' contract too.

/// Remove and return the live interval with `id`.
///
/// # Panics
/// Panics if no live interval has `id` (a delete-contract violation).
pub fn remove_interval(live: &mut Vec<Interval>, id: u64) -> Interval {
    let pos = live
        .iter()
        .position(|iv| iv.id == id)
        .unwrap_or_else(|| panic!("delete of absent interval id {id}"));
    live.swap_remove(pos)
}

/// Remove and return the live point with `id`.
///
/// # Panics
/// Panics if no live point has `id`.
pub fn remove_point(live: &mut Vec<Point>, id: u64) -> Point {
    let pos = live
        .iter()
        .position(|p| p.id == id)
        .unwrap_or_else(|| panic!("delete of absent point id {id}"));
    live.swap_remove(pos)
}

/// Remove and return the live object with `id`.
///
/// # Panics
/// Panics if no live object has `id`.
pub fn remove_object(live: &mut Vec<Object>, id: u64) -> Object {
    let pos = live
        .iter()
        .position(|o| o.id == id)
        .unwrap_or_else(|| panic!("delete of absent object id {id}"));
    live.swap_remove(pos)
}

/// Assert two id sets are equal and duplicate-free, with a readable diff.
///
/// # Panics
/// Panics when `got` contains duplicates or differs from `want` as a set.
pub fn assert_same_ids(mut got: Vec<u64>, mut want: Vec<u64>, context: &str) {
    got.sort_unstable();
    want.sort_unstable();
    if let Some(w) = got.windows(2).find(|w| w[0] == w[1]) {
        panic!("{context}: duplicate id {} in reported answer", w[0]);
    }
    if got != want {
        let missing: Vec<u64> = want.iter().filter(|v| !got.contains(v)).copied().collect();
        let spurious: Vec<u64> = got.iter().filter(|v| !want.contains(v)).copied().collect();
        panic!(
            "{context}: answers differ (got {}, want {}; missing={missing:?}, spurious={spurious:?})",
            got.len(),
            want.len()
        );
    }
}

/// Assert two point answers are equal as sets (and free of duplicate ids).
///
/// # Panics
/// Panics with a readable diff when the sets differ.
pub fn assert_same_points(mut got: Vec<Point>, mut want: Vec<Point>, context: &str) {
    got.sort_unstable_by_key(|p| p.id);
    want.sort_unstable_by_key(|p| p.id);
    if let Some(w) = got.windows(2).find(|w| w[0].id == w[1].id) {
        panic!("{context}: duplicate id {:?} in reported answer", w[0]);
    }
    assert_eq!(
        got.len(),
        want.len(),
        "{context}: got {} points, want {} (got={got:?}, want={want:?})",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{context}: answers differ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn stabbing_and_intersecting_agree_on_degenerate_query() {
        let ivs = workloads::uniform_intervals(50, 1, 40, 6);
        for q in -1..42 {
            assert_eq!(stabbing_ids(&ivs, q), intersecting_ids(&ivs, q, q));
        }
    }

    #[test]
    fn stabbing_matches_diagonal_corner_under_the_fig3_mapping() {
        let ivs = workloads::uniform_intervals(80, 2, 40, 8);
        let pts = workloads::interval_points(&ivs);
        for q in -1..42 {
            let via_corner: Vec<u64> = diagonal_corner(&pts, q).iter().map(|p| p.id).collect();
            assert_same_ids(stabbing_ids(&ivs, q), via_corner, "fig3");
        }
    }

    #[test]
    fn class_range_respects_ancestry() {
        let (h, [person, professor, student, asst_prof]) = Hierarchy::example_people();
        let objs = vec![
            Object::new(person, 10, 1),
            Object::new(professor, 20, 2),
            Object::new(student, 30, 3),
            Object::new(asst_prof, 40, 4),
        ];
        assert_same_ids(
            class_range_ids(&h, &objs, professor, 0, 100),
            vec![2, 4],
            "professors",
        );
        assert_same_ids(
            class_range_ids(&h, &objs, person, 15, 35),
            vec![2, 3],
            "people by range",
        );
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn duplicate_ids_detected() {
        assert_same_ids(vec![1, 1], vec![1], "dup");
    }

    #[test]
    #[should_panic(expected = "missing=[3]")]
    fn diff_is_readable() {
        assert_same_ids(vec![1, 2], vec![1, 2, 3], "diff");
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn duplicate_points_detected() {
        let p = Point::new(0, 0, 7);
        assert_same_points(vec![p, p], vec![p], "dup points");
    }
}
