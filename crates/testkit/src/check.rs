//! A minimal many-seed trial loop.
//!
//! The proptest-style suites in this workspace are plain loops over derived
//! seeds: `trials(N, BASE_SEED, |rng| …)` runs the closure on `N`
//! independent generators. When a trial panics, the failing seed is printed
//! *before* the panic propagates, so the exact input reproduces with
//! `DetRng::new(seed)` — no shrinking machinery, but perfect replay.

use crate::rng::DetRng;

/// Prints the failing seed if dropped while panicking.
struct SeedReporter {
    label: &'static str,
    trial: usize,
    seed: u64,
}

impl Drop for SeedReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[testkit] {} failed at trial {} — reproduce with DetRng::new({:#x})",
                self.label, self.trial, self.seed
            );
        }
    }
}

/// Run `f` on `n` independently seeded generators derived from `base_seed`.
///
/// Each trial's seed is derived by one splitmix64 step, so trials are
/// decorrelated but the whole run is a pure function of `base_seed`.
pub fn trials(label: &'static str, n: usize, base_seed: u64, mut f: impl FnMut(&mut DetRng)) {
    let mut seeder = DetRng::new(base_seed);
    for trial in 0..n {
        let seed = seeder.next_u64();
        let reporter = SeedReporter { label, trial, seed };
        let mut rng = DetRng::new(seed);
        f(&mut rng);
        std::mem::forget(reporter);
    }
}

/// Run `f` once for a single named seed (for pinning a regression).
pub fn replay(label: &'static str, seed: u64, mut f: impl FnMut(&mut DetRng)) {
    let reporter = SeedReporter {
        label,
        trial: 0,
        seed,
    };
    let mut rng = DetRng::new(seed);
    f(&mut rng);
    std::mem::forget(reporter);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_run_the_requested_count() {
        let mut count = 0;
        trials("count", 17, 0, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn trials_are_decorrelated() {
        let mut firsts = Vec::new();
        trials("firsts", 8, 1, |rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8);
    }

    #[test]
    fn replay_reproduces_a_trial() {
        let mut seen = Vec::new();
        trials("record", 3, 99, |rng| seen.push(rng.next_u64()));
        let mut seeder = DetRng::new(99);
        seeder.next_u64();
        let second = seeder.next_u64();
        let mut replayed = 0;
        replay("replay", second, |rng| replayed = rng.next_u64());
        assert_eq!(replayed, seen[1]);
    }
}
