//! # `ccix-testkit` — the shared differential-testing kit
//!
//! Every structure in this workspace is verified by the same discipline:
//! **agree with the naive answer on randomized workloads, under exact I/O
//! accounting**. This crate packages that discipline so each crate's tests
//! (and the bench harness) share one vocabulary:
//!
//! * [`DetRng`] — a tiny, dependency-free, splitmix64-based deterministic
//!   RNG. Every workload is a pure function of a `u64` seed, so failures
//!   reproduce exactly from the seed printed by [`check::trials`].
//! * [`workloads`] — generators for the paper's input families: uniform /
//!   skewed / adversarial intervals, 3-sided point sets, and hierarchy
//!   shapes (balanced, path, star, random attachment).
//! * [`oracle`] — linear-scan reference answers for the four query shapes
//!   (stabbing, interval intersection, diagonal-corner, 3-sided, and
//!   class-extent range), plus set-equality assertions with readable diffs
//!   and duplicate detection.
//! * [`iocheck`] — probes that assert an operation was actually *charged*
//!   to the shared [`IoCounter`](ccix_extmem::IoCounter) (no counter
//!   bypass) and stayed within a claimed bound.
//! * [`check`] — a minimal many-seed trial loop that prints the failing
//!   seed before propagating a panic.
//!
//! The differential suites themselves live in this crate's `tests/`
//! directory: `IntervalIndex` vs the naive heap file, `RakeClassIndex` vs
//! `RangeTreeClassIndex` vs a flat scan, and metablock trees vs priority
//! search trees on identical point sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod iocheck;
pub mod oracle;
pub mod rng;
pub mod workloads;

pub use rng::DetRng;
