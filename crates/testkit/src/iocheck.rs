//! I/O-accounting probes.
//!
//! The cost model only means something if every measured operation is
//! actually charged to the shared counter. [`IoProbe`] brackets an
//! operation: it snapshots the counter at start and, on `finish_*`, asserts
//! the operation transferred at least one page (no counter bypass) and —
//! optionally — no more than a claimed bound.

use ccix_extmem::{IoCounter, IoSnapshot};

/// A bracketing probe over one operation on a counted structure.
#[must_use = "a probe measures nothing until finished"]
pub struct IoProbe<'a> {
    counter: &'a IoCounter,
    start: IoSnapshot,
    started_at: std::time::Instant,
    label: String,
}

impl<'a> IoProbe<'a> {
    /// Start measuring. `label` names the operation in assertion messages.
    pub fn start(counter: &'a IoCounter, label: impl Into<String>) -> Self {
        Self {
            start: counter.snapshot(),
            started_at: std::time::Instant::now(),
            counter,
            label: label.into(),
        }
    }

    /// Transfers since the probe started, without asserting anything.
    pub fn delta(&self) -> IoSnapshot {
        self.counter.since(self.start)
    }

    /// Finish and return the delta with no assertion.
    pub fn finish(self) -> IoSnapshot {
        self.delta()
    }

    /// Finish and return the I/O delta **and the wall-clock span** since the
    /// probe started, with no assertion. One probe captures both costs of an
    /// operation, so suites and benches that report I/O next to time cannot
    /// accidentally bracket different spans.
    pub fn finish_timed(self) -> (IoSnapshot, std::time::Duration) {
        (self.delta(), self.started_at.elapsed())
    }

    /// Finish, asserting the operation was charged at least one I/O.
    ///
    /// This is the no-bypass check: an operation that touches a structure's
    /// pages but reports zero transfers is reading around the cost model
    /// (e.g. via an `*_unbilled` accessor on a measured path).
    ///
    /// # Panics
    /// Panics if no page transfer was recorded.
    pub fn finish_charged(self) -> IoSnapshot {
        let d = self.delta();
        assert!(
            d.total() > 0,
            "{}: operation bypassed the I/O counter (0 transfers recorded)",
            self.label
        );
        d
    }

    /// Finish a *query* probe, asserting the cost model was not bypassed:
    /// at least one page transfer unless the answer is empty.
    ///
    /// With `ccix_core::Tuning::resident_root` a tree's root control
    /// block is memory-resident, so a query that dies at the root (nothing
    /// can qualify) legitimately costs zero I/Os — but any *reported*
    /// record lives on a charged data page, so a nonempty answer with zero
    /// transfers is still a counter bypass.
    ///
    /// # Panics
    /// Panics if `answers > 0` and no page transfer was recorded.
    pub fn finish_query(self, answers: usize) -> IoSnapshot {
        let d = self.delta();
        assert!(
            d.total() > 0 || answers == 0,
            "{}: {answers} answers reported with 0 transfers (counter bypass)",
            self.label
        );
        d
    }

    /// Finish, asserting ≥ 1 transfer and at most `bound` total transfers.
    ///
    /// # Panics
    /// Panics on zero transfers or on exceeding the bound.
    pub fn finish_within(self, bound: u64) -> IoSnapshot {
        let label = self.label.clone();
        let d = self.finish_charged();
        assert!(
            d.total() <= bound,
            "{label}: used {} I/Os, bound is {bound} (reads={}, writes={})",
            d.total(),
            d.reads,
            d.writes
        );
        d
    }
}

/// Assert a read-only operation performed no writes.
///
/// # Panics
/// Panics when the delta contains writes.
pub fn assert_read_only(delta: IoSnapshot, label: &str) {
    assert_eq!(
        delta.writes, 0,
        "{label}: read-only operation performed {} writes",
        delta.writes
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::{IoCounter, TypedStore};

    #[test]
    fn probe_measures_delta() {
        let c = IoCounter::new();
        let mut s: TypedStore<u32> = TypedStore::new(4, c.clone());
        let probe = IoProbe::start(&c, "alloc+read");
        let id = s.alloc(vec![1, 2]);
        let _ = s.read(id);
        let d = probe.finish_within(2);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    #[should_panic(expected = "bypassed the I/O counter")]
    fn bypass_detected() {
        let c = IoCounter::new();
        let mut s: TypedStore<u32> = TypedStore::new(4, c.clone());
        let id = s.alloc(vec![1]);
        let probe = IoProbe::start(&c, "unbilled read");
        let _ = s.read_unbilled(id);
        probe.finish_charged();
    }

    #[test]
    #[should_panic(expected = "bound is 1")]
    fn bound_enforced() {
        let c = IoCounter::new();
        let mut s: TypedStore<u32> = TypedStore::new(4, c.clone());
        let probe = IoProbe::start(&c, "two allocs");
        s.alloc(vec![1]);
        s.alloc(vec![2]);
        probe.finish_within(1);
    }

    #[test]
    fn read_only_assertion() {
        let c = IoCounter::new();
        let mut s: TypedStore<u32> = TypedStore::new(4, c.clone());
        let id = s.alloc(vec![1]);
        let probe = IoProbe::start(&c, "query");
        let _ = s.read(id);
        let d = probe.finish_charged();
        assert_read_only(d, "query");
    }
}
