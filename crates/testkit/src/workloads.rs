//! Deterministic workload generators shared by tests, differential suites
//! and the bench harness.
//!
//! Three regimes per input family, mirroring the evaluation style of the
//! paper's experiments: **uniform** (the average case the theorems price),
//! **skewed** (hot spots — most mass near a few centres), and
//! **adversarial** (the structures' worst shapes: deep nesting for stabbing
//! queries, the Proposition 3.3 staircase for diagonal-corner queries).

use ccix_class::{Hierarchy, Object};
use ccix_extmem::Point;
use ccix_interval::Interval;

use crate::rng::DetRng;

// ---------------------------------------------------------------- intervals

/// Uniform random intervals: left endpoints over `[0, range)`, lengths over
/// `[0, max_len)`.
pub fn uniform_intervals(n: usize, seed: u64, range: i64, max_len: i64) -> Vec<Interval> {
    let mut r = DetRng::new(seed);
    (0..n)
        .map(|i| {
            let lo = r.gen_range(0..range);
            let len = r.gen_range(0..max_len);
            Interval::new(lo, lo + len, i as u64)
        })
        .collect()
}

/// Skewed intervals: endpoints cluster geometrically around a few hot
/// centres, so some stabbing points see a large fraction of the input.
pub fn skewed_intervals(n: usize, seed: u64, range: i64, centres: usize) -> Vec<Interval> {
    assert!(centres > 0, "need at least one hot centre");
    let mut r = DetRng::new(seed);
    let hot: Vec<i64> = (0..centres).map(|_| r.gen_range(0..range)).collect();
    (0..n)
        .map(|i| {
            let c = *r.choose(&hot).expect("nonempty");
            // Geometric spread: most intervals are tight around the centre.
            let mut spread = 1i64;
            while spread < range && r.gen_bool(0.5) {
                spread *= 2;
            }
            let lo = (c - r.gen_range(0..spread + 1)).max(0);
            let hi = (c + r.gen_range(0..spread + 1)).min(range.max(1));
            Interval::new(lo, hi.max(lo), i as u64)
        })
        .collect()
}

/// Nested intervals around a common centre — every stabbing query near the
/// centre returns a long prefix (the high-overlap adversarial regime).
pub fn nested_intervals(n: usize, centre: i64) -> Vec<Interval> {
    (0..n)
        .map(|i| Interval::new(centre - i as i64, centre + i as i64, i as u64))
        .collect()
}

/// Adversarial mix: half deeply nested around `range/2`, half staircase
/// `[x, x+1]` — simultaneously the worst stabbing output and the shape that
/// witnesses the Proposition 3.3 lower bound.
pub fn adversarial_intervals(n: usize, range: i64) -> Vec<Interval> {
    let half = n / 2;
    let mut out = nested_intervals(half, range / 2);
    out.extend((half..n).map(|i| {
        let x = (i - half) as i64 % range.max(1);
        Interval::new(x, x + 1, i as u64)
    }));
    out
}

/// Intervals as diagonal points `(lo, hi)` (Fig. 3's mapping).
pub fn interval_points(intervals: &[Interval]) -> Vec<Point> {
    intervals
        .iter()
        .map(|iv| Point::new(iv.lo, iv.hi, iv.id))
        .collect()
}

// ------------------------------------------------------------ query floods
//
// Stabbing-query batches for the batched read engines (`query_batch` /
// `stab_batch`): the north-star workload is millions of users issuing
// query floods, so suites and benches share these three regimes. The
// engines sort internally — the generators deliberately deliver points in
// cache-hostile order so nothing depends on accidental input order.

/// Uniform flood: `batch` independent stabbing points over `[0, range)` —
/// the scattered regime, where batching can only share the descent's top.
pub fn uniform_flood(batch: usize, seed: u64, range: i64) -> Vec<i64> {
    let mut r = DetRng::new(seed);
    (0..batch).map(|_| r.gen_range(0..range)).collect()
}

/// Skewed flood: stabbing points cluster geometrically around a few hot
/// spots (most users query the same hot keys).
pub fn skewed_flood(batch: usize, seed: u64, range: i64, centres: usize) -> Vec<i64> {
    assert!(centres > 0, "need at least one hot centre");
    let mut r = DetRng::new(seed);
    let hot: Vec<i64> = (0..centres).map(|_| r.gen_range(0..range)).collect();
    (0..batch)
        .map(|_| {
            let c = *r.choose(&hot).expect("nonempty");
            let mut spread = 1i64;
            while spread < range && r.gen_bool(0.5) {
                spread *= 2;
            }
            (c + r.gen_range(-spread..spread + 1)).clamp(0, range.max(1) - 1)
        })
        .collect()
}

/// Adversarial-correlated flood: every stabbing point falls inside one
/// tight window, but the batch is delivered in a maximally un-sorted
/// (ends-inward interleaved) order — the shape a batched engine must sort
/// to exploit, and the worst case for any engine that processes the batch
/// in arrival order with a small cache.
pub fn correlated_flood(batch: usize, seed: u64, range: i64, window: i64) -> Vec<i64> {
    let mut r = DetRng::new(seed);
    let lo = r.gen_range(0..(range - window).max(1));
    let mut sorted: Vec<i64> = (0..batch)
        .map(|_| lo + r.gen_range(0..window.max(1)))
        .collect();
    sorted.sort_unstable();
    // Ends-inward interleave: max, min, 2nd max, 2nd min, …
    let mut out = Vec::with_capacity(batch);
    let (mut i, mut j) = (0usize, batch);
    while i < j {
        j -= 1;
        out.push(sorted[j]);
        if i < j {
            out.push(sorted[i]);
            i += 1;
        }
    }
    out
}

// ------------------------------------------------------ shard-skew families
//
// Workloads for the x-range sharded index: traffic whose *shard* targeting
// is skewed, independently of how keys are distributed within a shard.
// Shared by the `sharded` differential suite and the ES bench — a sharded
// engine that only ever sees uniform-over-shards floods never exercises
// its worst case (all parallelism collapsing onto one hot shard).

/// Sample one shard id under a Zipf law over `shards` ranks: rank `r` has
/// weight `1/(r+1)^skew`, and `ranking` maps rank → shard id (so the hot
/// shard need not be the leftmost). `skew = 0.0` is uniform.
fn zipf_shard(r: &mut DetRng, ranking: &[usize], skew: f64) -> usize {
    let weights: Vec<f64> = (0..ranking.len())
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = r.next_f64() * total;
    for (rank, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return ranking[rank];
        }
    }
    ranking[ranking.len() - 1]
}

/// The x-range boundaries `splits` induce over `[0, range)`: shard `s`
/// owns `[bounds[s], bounds[s + 1])`.
fn shard_bounds(splits: &[i64], range: i64) -> Vec<(i64, i64)> {
    let mut lo = 0i64;
    let mut out = Vec::with_capacity(splits.len() + 1);
    for &s in splits {
        out.push((lo, s.max(lo + 1)));
        lo = s.max(lo + 1);
    }
    out.push((lo, range.max(lo + 1)));
    out
}

/// Zipf-over-shards insert flood: each interval's **shard** is drawn from a
/// Zipf law over the `splits.len() + 1` x-range shards (hot-shard identity
/// shuffled by `seed`), while its left endpoint is uniform *within* the
/// chosen shard's x-range and its length uniform in `[0, max_len)` —
/// lengths may cross split points to the right, which is exactly the
/// routing-overhead case the directory's `max_hi` bound has to absorb.
/// `skew = 0.0` degenerates to uniform-over-shards; ~1.0 is classic web
/// skew; larger concentrates the flood on one shard.
pub fn zipf_shard_intervals(
    n: usize,
    seed: u64,
    splits: &[i64],
    range: i64,
    max_len: i64,
    skew: f64,
) -> Vec<Interval> {
    let mut r = DetRng::new(seed);
    let bounds = shard_bounds(splits, range);
    let mut ranking: Vec<usize> = (0..bounds.len()).collect();
    r.shuffle(&mut ranking);
    (0..n)
        .map(|i| {
            let (lo_b, hi_b) = bounds[zipf_shard(&mut r, &ranking, skew)];
            let lo = r.gen_range(lo_b..hi_b);
            let len = r.gen_range(0..max_len.max(1));
            Interval::new(lo, lo + len, i as u64)
        })
        .collect()
}

/// Zipf-over-shards stabbing flood: query points whose shard targeting
/// follows the same Zipf law as [`zipf_shard_intervals`] (and the same
/// `seed` ⇒ the same hot shard), uniform within the chosen shard.
pub fn zipf_shard_flood(
    batch: usize,
    seed: u64,
    splits: &[i64],
    range: i64,
    skew: f64,
) -> Vec<i64> {
    let mut r = DetRng::new(seed);
    let bounds = shard_bounds(splits, range);
    let mut ranking: Vec<usize> = (0..bounds.len()).collect();
    r.shuffle(&mut ranking);
    (0..batch)
        .map(|_| {
            let (lo_b, hi_b) = bounds[zipf_shard(&mut r, &ranking, skew)];
            r.gen_range(lo_b..hi_b)
        })
        .collect()
}

/// Hot-shard adversarial split points: `shards - 1` splits over
/// `[0, range)` such that shard `hot` owns essentially the whole x-range
/// and every other shard a width-1 sliver. Routed traffic over `[0,
/// range)` then lands almost entirely on one shard — the degenerate
/// partition where fan-out parallelism collapses and untouched shards'
/// counters must stay silent.
///
/// # Panics
/// Panics unless `hot < shards` and `range` leaves every sliver one unit.
pub fn hot_shard_splits(shards: usize, range: i64, hot: usize) -> Vec<i64> {
    assert!(shards > 0 && hot < shards, "hot shard out of range");
    assert!(range > shards as i64, "range too small for width-1 slivers");
    let mut splits = Vec::with_capacity(shards - 1);
    // Width-1 slivers left of the hot shard…
    for i in 0..hot {
        splits.push(i as i64 + 1);
    }
    // …then the hot shard spans to the right slivers at the top end.
    for i in 0..(shards - 1 - hot) {
        splits.push(range - (shards - 1 - hot) as i64 + i as i64);
    }
    splits
}

// ------------------------------------------------------------- mixed floods
//
// Mixed insert/delete/query workloads (the ED flood family): the paper's §5
// leaves deletion open, so these generators are what exercises the
// tombstone machinery that closes it. Each generator tracks its own live
// set so every emitted delete targets a currently stored id — the
// structures' delete contract — and ids are never reused.

/// One operation of a mixed interval workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalOp {
    /// Insert this interval (fresh id).
    Insert(Interval),
    /// Delete this previously inserted, still-live interval.
    Delete(Interval),
    /// Stabbing query at this point.
    Stab(i64),
}

/// Mixed interval flood: `insert : delete : stab` in roughly
/// `(100 − del_pct − stab_pct) : del_pct : stab_pct` proportions, deletes
/// drawn uniformly from the live set (forced to inserts while nothing is
/// live). Deterministic in `seed`.
pub fn mixed_interval_flood(
    n_ops: usize,
    seed: u64,
    range: i64,
    max_len: i64,
    del_pct: u32,
    stab_pct: u32,
) -> Vec<IntervalOp> {
    assert!(del_pct + stab_pct <= 100, "op percentages exceed 100");
    let mut r = DetRng::new(seed);
    let mut live: Vec<Interval> = Vec::new();
    let mut next_id = 0u64;
    (0..n_ops)
        .map(|_| {
            let roll = r.gen_range(0..100u32);
            if roll < del_pct && !live.is_empty() {
                let iv = live.swap_remove(r.gen_range(0..live.len()));
                IntervalOp::Delete(iv)
            } else if roll < del_pct + stab_pct {
                IntervalOp::Stab(r.gen_range(-1..range + 1))
            } else {
                let lo = r.gen_range(0..range);
                let iv = Interval::new(lo, lo + r.gen_range(0..max_len.max(1)), next_id);
                next_id += 1;
                live.push(iv);
                IntervalOp::Insert(iv)
            }
        })
        .collect()
}

/// One operation of a mixed planar-point workload (for the 3-sided tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointOp {
    /// Insert this point (fresh id).
    Insert(Point),
    /// Delete this previously inserted, still-live point.
    Delete(Point),
    /// 3-sided query `(x1, x2, y0)`.
    Query(i64, i64, i64),
}

/// Mixed point flood over `[0, range)²`, same proportions and liveness
/// discipline as [`mixed_interval_flood`].
pub fn mixed_point_flood(
    n_ops: usize,
    seed: u64,
    range: i64,
    del_pct: u32,
    query_pct: u32,
) -> Vec<PointOp> {
    assert!(del_pct + query_pct <= 100, "op percentages exceed 100");
    let mut r = DetRng::new(seed);
    let mut live: Vec<Point> = Vec::new();
    let mut next_id = 0u64;
    (0..n_ops)
        .map(|_| {
            let roll = r.gen_range(0..100u32);
            if roll < del_pct && !live.is_empty() {
                PointOp::Delete(live.swap_remove(r.gen_range(0..live.len())))
            } else if roll < del_pct + query_pct {
                let x1 = r.gen_range(-1..range);
                let x2 = x1 + r.gen_range(0..range / 2 + 1);
                PointOp::Query(x1, x2, r.gen_range(-1..range + 1))
            } else {
                let p = Point::new(r.gen_range(0..range), r.gen_range(0..range), next_id);
                next_id += 1;
                live.push(p);
                PointOp::Insert(p)
            }
        })
        .collect()
}

/// One operation of a mixed class-hierarchy workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectOp {
    /// Insert this object (fresh id).
    Insert(Object),
    /// Delete this previously inserted, still-live object.
    Delete(Object),
    /// Full-extent attribute-range query `(class, a1, a2)`.
    Query(usize, i64, i64),
}

/// Mixed object flood over `h`, same proportions and liveness discipline
/// as [`mixed_interval_flood`].
pub fn mixed_object_flood(
    h: &Hierarchy,
    n_ops: usize,
    seed: u64,
    attr_range: i64,
    del_pct: u32,
    query_pct: u32,
) -> Vec<ObjectOp> {
    assert!(del_pct + query_pct <= 100, "op percentages exceed 100");
    let mut r = DetRng::new(seed);
    let mut live: Vec<Object> = Vec::new();
    let mut next_id = 0u64;
    (0..n_ops)
        .map(|_| {
            let roll = r.gen_range(0..100u32);
            if roll < del_pct && !live.is_empty() {
                ObjectOp::Delete(live.swap_remove(r.gen_range(0..live.len())))
            } else if roll < del_pct + query_pct {
                let a1 = r.gen_range(-1..attr_range);
                ObjectOp::Query(
                    r.gen_range(0..h.len()),
                    a1,
                    a1 + r.gen_range(0..attr_range / 2 + 1),
                )
            } else {
                let o = Object::new(r.gen_range(0..h.len()), r.gen_range(0..attr_range), next_id);
                next_id += 1;
                live.push(o);
                ObjectOp::Insert(o)
            }
        })
        .collect()
}

// ------------------------------------------------------------ commit plans
//
// The serving-engine differential suites (concurrency stress, crash
// recovery) all rely on the same trick: the engine applies submissions
// whole and in order, so any snapshot — or recovered index — reporting
// `ops_applied` identifies exactly which prefix of the batch stream it
// contains, and the oracle state for every prefix can be precomputed
// before the engine starts.

/// Shape parameters for [`commit_plan`].
#[derive(Clone, Copy, Debug)]
pub struct CommitPlanSpec {
    /// Intervals bulk-loaded before the flood starts.
    pub initial: usize,
    /// Number of submitted batches.
    pub batches: usize,
    /// Operations per batch (fixed, so `ops_applied / batch_ops` names a
    /// prefix).
    pub batch_ops: usize,
    /// Probability an op is a delete (when anything is live to delete).
    pub delete_prob: f64,
    /// Left endpoints drawn from `[0, lo_range)`.
    pub lo_range: i64,
    /// Lengths drawn from `[0, max_len)`.
    pub max_len: i64,
}

/// Fixed-size batches of independent interval ops plus the oracle live set
/// after each prefix.
#[derive(Clone, Debug)]
pub struct CommitPlan {
    /// Bulk-loaded starting content.
    pub initial: Vec<Interval>,
    /// Batches in submission order. Ops within one batch are independent
    /// (the `apply_batch` contract): deletes pick distinct already-live
    /// intervals and never target the same batch's inserts.
    pub batches: Vec<Vec<ccix_interval::IntervalOp>>,
    /// `states[k]` = live set once `k` batches have been applied (so
    /// `states[0] == initial` and `states[batches]` is the final state).
    pub states: Vec<Vec<Interval>>,
}

/// Generate a [`CommitPlan`]. Deterministic in the `rng` stream; ids are
/// never reused.
pub fn commit_plan(rng: &mut DetRng, spec: CommitPlanSpec) -> CommitPlan {
    let mut next_id = 0u64;
    let mut fresh = |rng: &mut DetRng| {
        let lo = rng.gen_range(0..spec.lo_range.max(1));
        let iv = Interval::new(lo, lo + rng.gen_range(0..spec.max_len.max(1)), next_id);
        next_id += 1;
        iv
    };
    let initial: Vec<Interval> = (0..spec.initial).map(|_| fresh(rng)).collect();
    let mut live = initial.clone();
    let mut states = vec![live.clone()];
    let mut batches = Vec::with_capacity(spec.batches);
    for _ in 0..spec.batches {
        let mut batch = Vec::with_capacity(spec.batch_ops);
        let mut deletable = live.clone();
        for _ in 0..spec.batch_ops {
            if !deletable.is_empty() && rng.gen_bool(spec.delete_prob) {
                let at = rng.gen_range(0..deletable.len());
                let victim = deletable.swap_remove(at);
                live.retain(|iv| iv.id != victim.id);
                batch.push(ccix_interval::IntervalOp::Delete(victim));
            } else {
                let iv = fresh(rng);
                live.push(iv);
                batch.push(ccix_interval::IntervalOp::Insert(iv));
            }
        }
        states.push(live.clone());
        batches.push(batch);
    }
    CommitPlan {
        initial,
        batches,
        states,
    }
}

// ------------------------------------------------------------------ points

/// The Proposition 3.3 staircase: `(x, x+1)` for `x ∈ [0, n)`.
pub fn staircase_points(n: usize) -> Vec<Point> {
    (0..n as i64)
        .map(|x| Point::new(x, x + 1, x as u64))
        .collect()
}

/// Uniform random points in `[0, range)²`.
pub fn uniform_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
    let mut r = DetRng::new(seed);
    (0..n)
        .map(|i| Point::new(r.gen_range(0..range), r.gen_range(0..range), i as u64))
        .collect()
}

/// Clustered points for 3-sided queries: `clusters` columns of equal `x`
/// with uniform `y` — stresses tie-breaking in the x-partitioning orders.
pub fn clustered_points(n: usize, seed: u64, range: i64, clusters: usize) -> Vec<Point> {
    assert!(clusters > 0, "need at least one cluster");
    let mut r = DetRng::new(seed);
    let xs: Vec<i64> = (0..clusters).map(|_| r.gen_range(0..range)).collect();
    (0..n)
        .map(|i| {
            let x = *r.choose(&xs).expect("nonempty");
            Point::new(x, r.gen_range(0..range), i as u64)
        })
        .collect()
}

// ------------------------------------------------------------- hierarchies

/// Hierarchy shapes used by the class tests and experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyShape {
    /// Complete binary tree.
    Balanced,
    /// A single chain (the degenerate case of Lemma 4.3).
    Path,
    /// One root, `c − 1` leaf children (the Theorem 2.8 shape).
    Star,
    /// Random attachment (each class picks a uniform earlier parent).
    Random,
}

impl HierarchyShape {
    /// All shapes, for exhaustive sweeps.
    pub const ALL: [HierarchyShape; 4] = [
        HierarchyShape::Balanced,
        HierarchyShape::Path,
        HierarchyShape::Star,
        HierarchyShape::Random,
    ];
}

/// Build a hierarchy of `c` classes with the given shape.
pub fn hierarchy(shape: HierarchyShape, c: usize, seed: u64) -> Hierarchy {
    let mut r = DetRng::new(seed);
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(match shape {
                    HierarchyShape::Balanced => (i - 1) / 2,
                    HierarchyShape::Path => i - 1,
                    HierarchyShape::Star => 0,
                    HierarchyShape::Random => r.gen_range(0..i),
                })
            }
        })
        .collect();
    Hierarchy::from_parents(&parents)
}

/// A random forest's parent array: class 0 is a root, later classes attach
/// to a uniform earlier class or (with probability 1/10) start a new tree.
pub fn random_forest(rng: &mut DetRng, max_c: usize) -> Vec<Option<usize>> {
    let c = rng.gen_range(1..max_c + 1);
    (0..c)
        .map(|i| {
            if i == 0 || rng.gen_bool(0.1) {
                None
            } else {
                Some(rng.gen_range(0..i))
            }
        })
        .collect()
}

/// Uniform objects over a hierarchy: random class, attribute in
/// `[0, attr_range)`.
pub fn uniform_objects(h: &Hierarchy, n: usize, seed: u64, attr_range: i64) -> Vec<Object> {
    let mut r = DetRng::new(seed);
    (0..n)
        .map(|i| {
            Object::new(
                r.gen_range(0..h.len()),
                r.gen_range(0..attr_range),
                i as u64,
            )
        })
        .collect()
}

/// Skewed objects: most objects land in one hot class (deep in the
/// hierarchy when possible), stressing full-extent compaction.
pub fn skewed_objects(h: &Hierarchy, n: usize, seed: u64, attr_range: i64) -> Vec<Object> {
    let mut r = DetRng::new(seed);
    let hot = (0..h.len())
        .max_by_key(|&c| h.depth(c))
        .expect("nonempty hierarchy");
    (0..n)
        .map(|i| {
            let class = if r.gen_bool(0.8) {
                hot
            } else {
                r.gen_range(0..h.len())
            };
            Object::new(class, r.gen_range(0..attr_range), i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            uniform_intervals(10, 7, 100, 10),
            uniform_intervals(10, 7, 100, 10)
        );
        assert_eq!(uniform_points(5, 1, 50), uniform_points(5, 1, 50));
        assert_eq!(
            skewed_intervals(20, 3, 100, 4),
            skewed_intervals(20, 3, 100, 4)
        );
        assert_eq!(
            clustered_points(20, 5, 100, 3),
            clustered_points(20, 5, 100, 3)
        );
    }

    #[test]
    fn intervals_are_well_formed() {
        for iv in skewed_intervals(500, 9, 1000, 5)
            .into_iter()
            .chain(adversarial_intervals(500, 100))
        {
            assert!(iv.lo <= iv.hi);
        }
    }

    #[test]
    fn floods_are_deterministic_and_in_range() {
        assert_eq!(uniform_flood(16, 3, 100), uniform_flood(16, 3, 100));
        assert_eq!(skewed_flood(16, 5, 1000, 3), skewed_flood(16, 5, 1000, 3));
        assert_eq!(
            correlated_flood(17, 7, 10_000, 50),
            correlated_flood(17, 7, 10_000, 50)
        );
        for q in uniform_flood(50, 1, 100)
            .into_iter()
            .chain(skewed_flood(50, 2, 100, 4))
        {
            assert!((0..100).contains(&q));
        }
    }

    #[test]
    fn correlated_flood_is_tight_but_unsorted() {
        let batch = 64;
        let window = 100;
        let qs = correlated_flood(batch, 9, 100_000, window);
        assert_eq!(qs.len(), batch);
        let (lo, hi) = (*qs.iter().min().unwrap(), *qs.iter().max().unwrap());
        assert!(hi - lo < window, "flood wider than its window");
        // Ends-inward interleave: adjacent deliveries jump across the
        // window instead of creeping through it.
        assert!(qs.windows(2).any(|w| w[0] > w[1]) && qs.windows(2).any(|w| w[0] < w[1]));
    }

    #[test]
    fn mixed_floods_are_deterministic_and_live() {
        assert_eq!(
            mixed_interval_flood(300, 7, 500, 40, 30, 20),
            mixed_interval_flood(300, 7, 500, 40, 30, 20)
        );
        // Every delete targets a currently live id; ids never repeat.
        let mut live = std::collections::BTreeSet::new();
        let mut seen = std::collections::BTreeSet::new();
        for op in mixed_interval_flood(1_000, 11, 400, 30, 40, 10) {
            match op {
                IntervalOp::Insert(iv) => {
                    assert!(seen.insert(iv.id), "id {} reused", iv.id);
                    live.insert(iv.id);
                }
                IntervalOp::Delete(iv) => assert!(live.remove(&iv.id), "dead delete"),
                IntervalOp::Stab(_) => {}
            }
        }
        let mut live_p = std::collections::BTreeSet::new();
        for op in mixed_point_flood(800, 3, 300, 35, 15) {
            match op {
                PointOp::Insert(p) => assert!(live_p.insert(p.id)),
                PointOp::Delete(p) => assert!(live_p.remove(&p.id)),
                PointOp::Query(x1, x2, _) => assert!(x1 <= x2),
            }
        }
        let h = hierarchy(HierarchyShape::Balanced, 15, 0);
        let mut live_o = std::collections::BTreeSet::new();
        for op in mixed_object_flood(&h, 500, 5, 200, 30, 20) {
            match op {
                ObjectOp::Insert(o) => assert!(live_o.insert(o.id)),
                ObjectOp::Delete(o) => assert!(live_o.remove(&o.id)),
                ObjectOp::Query(c, a1, a2) => {
                    assert!(c < h.len() && a1 <= a2);
                }
            }
        }
    }

    #[test]
    fn commit_plans_replay_to_their_states() {
        let spec = CommitPlanSpec {
            initial: 40,
            batches: 12,
            batch_ops: 8,
            delete_prob: 0.4,
            lo_range: 500,
            max_len: 60,
        };
        let plan = commit_plan(&mut DetRng::new(77), spec);
        assert_eq!(plan.batches.len(), 12);
        assert_eq!(plan.states.len(), 13);
        assert_eq!(plan.states[0], plan.initial);
        // Replaying each batch over the previous state yields the next:
        // the states really are the oracle for every prefix.
        let mut live = plan.initial.clone();
        for (k, batch) in plan.batches.iter().enumerate() {
            assert_eq!(batch.len(), 8, "fixed batch size");
            let mut in_batch = std::collections::BTreeSet::new();
            for op in batch {
                match op {
                    ccix_interval::IntervalOp::Insert(iv) => {
                        assert!(in_batch.insert(iv.id), "dependent ops in batch");
                        live.push(*iv);
                    }
                    ccix_interval::IntervalOp::Delete(iv) => {
                        assert!(in_batch.insert(iv.id), "dependent ops in batch");
                        let before = live.len();
                        live.retain(|l| l.id != iv.id);
                        assert_eq!(live.len(), before - 1, "dead delete");
                    }
                }
            }
            assert_eq!(live, plan.states[k + 1]);
        }
        // Determinism: same stream, same plan.
        let again = commit_plan(&mut DetRng::new(77), spec);
        assert_eq!(again.states, plan.states);
    }

    #[test]
    fn staircase_shape() {
        let pts = staircase_points(4);
        assert_eq!(pts[3], Point::new(3, 4, 3));
    }

    #[test]
    fn clustered_points_use_few_columns() {
        let pts = clustered_points(200, 2, 1000, 3);
        let mut xs: Vec<i64> = pts.iter().map(|p| p.x).collect();
        xs.sort_unstable();
        xs.dedup();
        assert!(xs.len() <= 3);
    }

    #[test]
    fn hierarchy_shapes() {
        let p = hierarchy(HierarchyShape::Path, 5, 0);
        assert_eq!(p.max_depth(), 5);
        let s = hierarchy(HierarchyShape::Star, 5, 0);
        assert_eq!(s.max_depth(), 2);
        let b = hierarchy(HierarchyShape::Balanced, 7, 0);
        assert_eq!(b.max_depth(), 3);
        let r = hierarchy(HierarchyShape::Random, 30, 1);
        assert_eq!(r.len(), 30);
    }

    #[test]
    fn random_forest_is_valid() {
        let mut rng = DetRng::new(4);
        for _ in 0..50 {
            let parents = random_forest(&mut rng, 40);
            let h = Hierarchy::from_parents(&parents);
            assert!(!h.is_empty());
        }
    }

    #[test]
    fn skewed_objects_concentrate() {
        let h = hierarchy(HierarchyShape::Balanced, 15, 0);
        let objs = skewed_objects(&h, 200, 6, 50);
        assert_eq!(objs.len(), 200);
        // The generator routes 80% of objects to the deepest class (same
        // selection rule as the generator), so well over half must land
        // there — a uniform regression would spread them ~1/15 each.
        let hot_class = (0..h.len())
            .max_by_key(|&c| h.depth(c))
            .expect("nonempty hierarchy");
        let hot = objs.iter().filter(|o| o.class == hot_class).count();
        assert!(
            hot > objs.len() / 2,
            "only {hot}/200 objects in the hot class — skew lost"
        );
    }
}
