//! A deterministic, dependency-free random number generator.
//!
//! The workspace builds with no external crates, so tests and benches use
//! this splitmix64 generator instead of `rand`. It is not cryptographic and
//! does not need to be: what matters is that every workload is a pure
//! function of its seed, identical across platforms and releases, so any
//! failing trial reproduces from the printed seed.

use std::ops::Range;

/// A splitmix64 generator (Steele, Lea & Flood; the `java.util` seeder).
///
/// Passes BigCrush on its own and has a full 2^64 period over seeds, which
/// is far more than a test kit needs.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard uniform double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An independent generator split off this one (for nested workloads
    /// that must not perturb the parent stream).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// A value uniform over a non-empty half-open integer range.
    ///
    /// # Panics
    /// Panics if `range` is empty.
    #[inline]
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }
}

/// Integer types [`DetRng::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// A value uniform in `[lo, hi)`.
    fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self;
}

/// Map a raw draw onto `[0, span)` by the widening-multiply method
/// (Lemire's multiply-shift; bias is at most `span / 2^64`).
#[inline]
fn bounded(rng: &mut DetRng, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range over empty range {lo}..{hi}");
                lo + bounded(rng, (hi - lo) as u64) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample(rng: &mut DetRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range over empty range {lo}..{hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // The generator is part of the reproducibility contract: changing
        // it invalidates every recorded failing seed, so the first outputs
        // of seed 0 are pinned here (reference splitmix64 values).
        let mut r = DetRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = DetRng::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(0).gen_range(5i64..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "50 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = DetRng::new(9);
        let mut f = r.fork();
        assert_ne!(r.next_u64(), f.next_u64());
    }
}
