//! The backend differential suite: everything the file backend claims —
//! byte-identical pages, unchanged billed I/O, durable persist/reopen,
//! bounded caches — is checked here against the in-memory model store,
//! which stays the source of truth for every exact-I/O gate.
//!
//! Four legs:
//!
//! * **Mixed floods** — identical deterministic insert/delete/stab floods
//!   (random geometry, random tuning, reorg budgets `k ∈ {0, 1, 4}`) run on
//!   a model-backed and a file-backed [`IntervalIndex`] built from one
//!   cloned [`IndexBuilder`]. Every stab must agree with the linear-scan
//!   oracle on both, the billed I/O counters must match *exactly* (the
//!   file backend must not perturb the cost model), and at the end the
//!   encoded page images must be byte-identical across backends — and the
//!   file's on-disk bytes byte-identical to its own model pages.
//! * **Sharded flood** — the same contract through
//!   [`ShardedIntervalIndex`], whose parallel shard builds must not
//!   collide on page-file names.
//! * **Persist/reopen** — [`TypedStore::persist`] + `open_from_file`
//!   round-trips content, capacity and the free list, so freed slots keep
//!   recycling exactly where the persisted store would recycle them.
//! * **Kill points** — the store-level crash contract under [`FailFs`]
//!   (seeded short writes and EINTR throughout): a flood of
//!   alloc/append/write/free/persist ops is killed at hundreds of
//!   deterministic filesystem-op budgets; reopening on the real filesystem
//!   must then reproduce the last acknowledged persist — exact live set
//!   and lengths from the atomic meta, exact bytes for every page not
//!   touched after that persist — compared against a model replay of the
//!   same script.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use ccix_core::Tuning;
use ccix_durable::{FailFs, FaultPlan, RealFs, TempDir};
use ccix_extmem::{
    BackendSpec, BufferPool, Disk, FileConfig, Geometry, IoCounter, PageId, PathPin, TypedStore,
};
use ccix_interval::{IndexBuilder, IntervalIndex, IntervalOptions};
use ccix_testkit::check;
use ccix_testkit::oracle;
use ccix_testkit::rng::DetRng;
use ccix_testkit::workloads::{self, IntervalOp};

#[cfg(debug_assertions)]
const FLOOD_TRIALS: usize = 4;
#[cfg(not(debug_assertions))]
const FLOOD_TRIALS: usize = 10;

#[cfg(debug_assertions)]
const FLOOD_OPS: usize = 150;
#[cfg(not(debug_assertions))]
const FLOOD_OPS: usize = 400;

/// Random tuning in the same spirit as the incremental-reorg suite: every
/// knob that changes page traffic gets exercised, with the reorg budget
/// drawn from the issue's `k ∈ {0, 1, 4}`.
fn random_options(rng: &mut DetRng) -> IntervalOptions {
    IntervalOptions {
        tuning: Tuning {
            reorg_pages_per_op: *rng.choose(&[0, 1, 4]).unwrap(),
            update_batch_pages: *rng.choose(&[1, 2, 4]).unwrap(),
            shrink_deletes_pct: *rng.choose(&[10, 35, 60]).unwrap(),
            ..Tuning::default()
        },
        ..IntervalOptions::default()
    }
}

fn sorted_images(mut imgs: Vec<(u32, u32, Vec<u8>)>) -> Vec<(u32, u32, Vec<u8>)> {
    imgs.sort();
    imgs
}

/// Shift every flood id by `base` so they stay disjoint from a separately
/// generated initial set.
fn shift_ids(flood: Vec<IntervalOp>, base: u64) -> Vec<IntervalOp> {
    flood
        .into_iter()
        .map(|op| match op {
            IntervalOp::Insert(iv) => {
                IntervalOp::Insert(ccix_interval::Interval::new(iv.lo, iv.hi, iv.id + base))
            }
            IntervalOp::Delete(iv) => {
                IntervalOp::Delete(ccix_interval::Interval::new(iv.lo, iv.hi, iv.id + base))
            }
            IntervalOp::Stab(q) => IntervalOp::Stab(q),
        })
        .collect()
}

/// Drive one op into both indexes (identical call sequences keep the
/// billed I/O comparable), checking stabs against the oracle.
fn apply_both(
    op: IntervalOp,
    model: &mut IntervalIndex,
    file: &mut IntervalIndex,
    live: &mut Vec<ccix_interval::Interval>,
) {
    match op {
        IntervalOp::Insert(iv) => {
            model.insert(iv.lo, iv.hi, iv.id);
            file.insert(iv.lo, iv.hi, iv.id);
            live.push(iv);
        }
        IntervalOp::Delete(iv) => {
            model.delete(iv.lo, iv.hi, iv.id);
            file.delete(iv.lo, iv.hi, iv.id);
            oracle::remove_interval(live, iv.id);
        }
        IntervalOp::Stab(q) => {
            let want = oracle::stabbing_ids(live, q);
            oracle::assert_same_ids(model.stabbing(q), want.clone(), "model backend stab");
            oracle::assert_same_ids(file.stabbing(q), want, "file backend stab");
        }
    }
}

#[test]
fn file_backend_agrees_with_model_under_mixed_floods() {
    check::trials("backends::mixed_flood", FLOOD_TRIALS, 0xbac_e0d1, |rng| {
        let b = *rng.choose(&[4usize, 8, 16]).unwrap();
        let tmp = TempDir::new("backends-flood");
        let builder = IndexBuilder::new(Geometry::new(b)).options(random_options(rng));
        let initial = workloads::uniform_intervals(80, rng.next_u64(), 900, 60);

        let mut model = builder.bulk(IoCounter::new(), &initial);
        let mut file = builder
            .clone()
            .file_backed(tmp.path())
            .bulk(IoCounter::new(), &initial);
        assert!(!model.is_file_backed() && file.is_file_backed());
        assert!(model.file_stats().is_none() && file.file_stats().is_some());

        let mut live = initial;
        // The flood numbers its ids from 0; shift them clear of the
        // initial set's.
        let flood = shift_ids(
            workloads::mixed_interval_flood(FLOOD_OPS, rng.next_u64(), 900, 60, 25, 20),
            10_000,
        );
        for (i, op) in flood.into_iter().enumerate() {
            apply_both(op, &mut model, &mut file, &mut live);
            if i % 23 == 0 {
                // Pump both together so the op sequences stay identical.
                model.pump_reorg_step();
                file.pump_reorg_step();
            }
        }
        model.flush_reorgs();
        file.flush_reorgs();

        // Full-content agreement with the oracle on a stab grid.
        for q in (-1..=901).step_by(41) {
            let want = oracle::stabbing_ids(&live, q);
            oracle::assert_same_ids(model.stabbing(q), want.clone(), "final model stab");
            oracle::assert_same_ids(file.stabbing(q), want, "final file stab");
        }

        // The file backend must not perturb the cost model: identical op
        // sequences bill identical I/O.
        assert_eq!(
            (model.counter().reads(), model.counter().writes()),
            (file.counter().reads(), file.counter().writes()),
            "file backend changed billed I/O"
        );

        // Byte-identical page images: model vs file-backed model pages,
        // and the file's on-disk bytes vs its own model pages.
        let model_imgs = sorted_images(model.model_page_images());
        let file_model_imgs = sorted_images(file.model_page_images());
        assert_eq!(
            model_imgs, file_model_imgs,
            "page images diverge across backends"
        );
        let file_disk_imgs = sorted_images(file.file_page_images().expect("file-backed"));
        assert_eq!(
            file_model_imgs, file_disk_imgs,
            "on-disk bytes diverge from the model pages"
        );
        assert!(model.file_page_images().is_none());

        // Cold/warm distinction: a fresh cache makes the next stab read
        // from the file; repeating it hits the in-process page cache.
        file.clear_file_caches();
        let (cold0, warm0) = file.file_stats().unwrap();
        let q = 450;
        let _ = file.stabbing(q);
        let (cold1, warm1) = file.file_stats().unwrap();
        assert!(cold1 > cold0, "cache cleared, stab must read cold");
        let _ = file.stabbing(q);
        let (cold2, warm2) = file.file_stats().unwrap();
        assert_eq!(cold2, cold1, "repeat stab must not read cold");
        assert!(warm2 > warm1.max(warm0), "repeat stab must hit the cache");
    });
}

#[test]
fn sharded_file_backend_agrees_with_model() {
    check::trials("backends::sharded_flood", 4, 0xbac_e0d2, |rng| {
        let tmp = TempDir::new("backends-sharded");
        let builder = IndexBuilder::new(Geometry::new(8)).options(random_options(rng));
        let initial = workloads::uniform_intervals(160, rng.next_u64(), 1_200, 50);
        let splits = vec![300, 600, 900];

        let mut model = builder
            .clone()
            .sharded()
            .splits(splits.clone())
            .bulk(&initial);
        let mut file = builder
            .clone()
            .file_backed(tmp.path())
            .sharded()
            .splits(splits)
            .bulk(&initial);
        assert!(file.is_file_backed() && !model.is_file_backed());

        let mut live = initial;
        let flood: Vec<ccix_interval::IntervalOp> = shift_ids(
            workloads::mixed_interval_flood(120, rng.next_u64(), 1_200, 50, 25, 0),
            10_000,
        )
        .into_iter()
        .filter_map(|op| match op {
            IntervalOp::Insert(iv) => {
                live.push(iv);
                Some(ccix_interval::IntervalOp::Insert(iv))
            }
            IntervalOp::Delete(iv) => {
                oracle::remove_interval(&mut live, iv.id);
                Some(ccix_interval::IntervalOp::Delete(iv))
            }
            IntervalOp::Stab(_) => None,
        })
        .collect();
        model.apply_batch(&flood);
        file.apply_batch(&flood);
        model.flush_reorgs();
        file.flush_reorgs();

        for q in (-1..=1_201).step_by(67) {
            let want = oracle::stabbing_ids(&live, q);
            oracle::assert_same_ids(model.stabbing(q), want.clone(), "sharded model stab");
            oracle::assert_same_ids(file.stabbing(q), want, "sharded file stab");
        }
        let mt = model.io_totals();
        let ft = file.io_totals();
        assert_eq!(
            (mt.reads, mt.writes),
            (ft.reads, ft.writes),
            "sharded file backend changed billed I/O"
        );
        // Parallel shard builds must have landed on distinct page files,
        // and every shard must mirror its model pages byte-exactly.
        for shard in file.shards() {
            let model_imgs = sorted_images(shard.model_page_images());
            let disk_imgs = sorted_images(shard.file_page_images().expect("file-backed shard"));
            assert_eq!(model_imgs, disk_imgs, "shard on-disk bytes diverge");
        }
        let (cold, warm) = file.file_stats().unwrap();
        assert!(cold + warm > 0, "queries never touched the files");
    });
}

#[test]
fn typed_store_persist_reopen_roundtrips_content_and_free_list() {
    check::trials("backends::persist_reopen", 8, 0xbac_e0d3, |rng| {
        let tmp = TempDir::new("backends-persist");
        let cap = *rng.choose(&[4usize, 8, 16]).unwrap();
        let cfg = FileConfig::new(tmp.path());
        let spec = BackendSpec::File(cfg.clone());
        let mut store = TypedStore::<u64>::new_on(&spec, cap, IoCounter::new());

        let mut ids: Vec<PageId> = Vec::new();
        for _ in 0..60 {
            match rng.gen_range(0..4u32) {
                0 | 1 => {
                    let n = rng.gen_range(1..cap + 1);
                    let recs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                    ids.push(store.alloc(recs));
                }
                2 if !ids.is_empty() => {
                    let id = ids[rng.gen_range(0..ids.len())];
                    if store.len_unbilled(id) < cap {
                        store.append(id, rng.next_u64());
                    }
                }
                3 if ids.len() > 1 => {
                    let id = ids.swap_remove(rng.gen_range(0..ids.len()));
                    store.free(id);
                }
                _ => {}
            }
        }
        store.persist();
        let path = store.file_path().unwrap().to_path_buf();

        let reopened = TypedStore::<u64>::open_from_file(&cfg, &path, IoCounter::new());
        assert_eq!(reopened.capacity(), store.capacity());
        assert_eq!(reopened.pages_in_use(), store.pages_in_use());
        assert_eq!(reopened.page_images(), store.page_images());
        assert_eq!(
            reopened.file_page_images().unwrap(),
            store.page_images(),
            "reopened on-disk bytes diverge"
        );

        // The free list survived: both stores must hand out the same ids
        // for the same allocation sequence (freed slots recycle on disk).
        let mut original = store;
        let mut reopened = reopened;
        for _ in 0..8 {
            let recs = vec![rng.next_u64()];
            assert_eq!(
                original.alloc(recs.clone()),
                reopened.alloc(recs),
                "free list did not survive reopen"
            );
        }
    });
}

#[test]
fn buffer_pool_misses_are_the_only_file_reads() {
    // cache_pages(0) disables the mirror's own cache, so every charged
    // read that reaches the disk is a cold pread — which makes "the pool
    // absorbed it" exactly observable.
    let tmp = TempDir::new("backends-pool");
    let spec = BackendSpec::File(FileConfig::new(tmp.path()).cache_pages(0));
    let mut disk = Disk::new_on(&spec, 64, IoCounter::new());
    let pages: Vec<PageId> = (0..3).map(|_| disk.alloc()).collect();
    let mut pool = BufferPool::new(2);
    for (i, &id) in pages.iter().enumerate() {
        pool.write(&mut disk, id, &[i as u8 + 1; 64]);
    }
    let (cold_after_writes, _) = disk.file_stats().unwrap();

    // A, B: two misses. A again: hit (no file read). C: miss, evicts the
    // LRU frame (B). B: miss again.
    for &id in &[pages[0], pages[1], pages[0], pages[2], pages[1]] {
        let _ = pool.read(&disk, id);
    }
    assert_eq!((pool.hits(), pool.misses()), (1, 4));
    let (cold, warm) = disk.file_stats().unwrap();
    assert_eq!(warm, 0, "cache_pages(0) must keep every read cold");
    assert_eq!(
        cold - cold_after_writes,
        4,
        "file reads must equal pool misses"
    );
    // Content still round-trips through eviction.
    assert_eq!(pool.read(&disk, pages[1]), vec![2u8; 64]);
}

#[test]
fn path_pin_bounds_file_reads_to_charged_touches() {
    let tmp = TempDir::new("backends-pin");
    let spec = BackendSpec::File(FileConfig::new(tmp.path()).cache_pages(0));
    let mut store = TypedStore::<u64>::new_on(&spec, 4, IoCounter::new());
    let ids: Vec<PageId> = (0..4).map(|i| store.alloc(vec![i as u64])).collect();

    let counter = store.counter().clone();
    let mut pin = PathPin::new(counter, 2);
    // Touch A, B (two charged misses → two cold reads), then re-touch both
    // while resident (free → no file access), then C evicts and charges.
    for &id in &[ids[0], ids[1], ids[0], ids[1], ids[2]] {
        let _ = store.read_pinned(&mut pin, 0, id);
    }
    let (cold, warm) = store.file_stats().unwrap();
    assert_eq!(warm, 0);
    assert_eq!(
        cold,
        pin.charged(),
        "file reads must happen exactly when the pin charges"
    );
    assert_eq!(pin.charged(), 3);
}

// ---------------------------------------------------------------------------
// Kill points
// ---------------------------------------------------------------------------

/// One op of the store-level crash script. Page ids are pre-resolved by
/// the generating (model) run; the file-backed replay allocates the same
/// ids because the allocator and free list are deterministic.
#[derive(Clone, Debug)]
enum StoreOp {
    Alloc(Vec<u64>),
    Append(PageId, u64),
    Write(PageId, Vec<u64>),
    Free(PageId),
    Read(PageId),
    Persist,
}

type LiveImage = BTreeMap<u32, Vec<u64>>;

/// Generate a script by driving a model store (which doubles as the model
/// replay), recording the live image at every persist point.
fn gen_script(rng: &mut DetRng, cap: usize, n_ops: usize) -> (Vec<StoreOp>, Vec<LiveImage>) {
    let mut store = TypedStore::<u64>::new(cap, IoCounter::new());
    let mut ids: Vec<PageId> = Vec::new();
    let mut script = Vec::new();
    let mut persists = Vec::new();
    for _ in 0..n_ops {
        let roll = rng.gen_range(0..100u32);
        if roll < 30 || ids.is_empty() {
            let n = rng.gen_range(1..cap + 1);
            let recs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            ids.push(store.alloc(recs.clone()));
            script.push(StoreOp::Alloc(recs));
        } else if roll < 55 {
            let id = ids[rng.gen_range(0..ids.len())];
            if store.len_unbilled(id) < cap {
                let v = rng.next_u64();
                store.append(id, v);
                script.push(StoreOp::Append(id, v));
            }
        } else if roll < 70 {
            let id = ids[rng.gen_range(0..ids.len())];
            let n = rng.gen_range(1..cap + 1);
            let recs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            store.write(id, recs.clone());
            script.push(StoreOp::Write(id, recs));
        } else if roll < 82 && ids.len() > 1 {
            let id = ids.swap_remove(rng.gen_range(0..ids.len()));
            store.free(id);
            script.push(StoreOp::Free(id));
        } else if roll < 90 {
            let id = ids[rng.gen_range(0..ids.len())];
            script.push(StoreOp::Read(id));
        } else {
            script.push(StoreOp::Persist);
            persists.push(live_image(&store));
        }
    }
    // Always end acknowledged, so late kill points have durable state.
    script.push(StoreOp::Persist);
    persists.push(live_image(&store));
    (script, persists)
}

fn live_image(store: &TypedStore<u64>) -> LiveImage {
    store
        .live_page_ids()
        .into_iter()
        .map(|id| (id.0, store.read_unbilled(id).to_vec()))
        .collect()
}

/// Replay `script` on a file-backed store over `fs` until it crashes (or
/// completes). Returns the number of acknowledged persists, the set of
/// pages dirtied since the last acknowledged persist, whether the crash
/// hit inside a persist call, and the page-file path (if creation got
/// that far).
fn run_killed(
    script: &[StoreOp],
    cap: usize,
    cfg: &FileConfig,
) -> (usize, BTreeSet<u32>, bool, Option<PathBuf>) {
    let spec = BackendSpec::File(cfg.clone());
    let mut store = match catch_unwind(AssertUnwindSafe(|| {
        TypedStore::<u64>::new_on(&spec, cap, IoCounter::new())
    })) {
        Ok(s) => s,
        Err(_) => return (0, BTreeSet::new(), false, None),
    };
    let path = store.file_path().map(|p| p.to_path_buf());
    let mut acked = 0usize;
    let mut dirty: BTreeSet<u32> = BTreeSet::new();
    for op in script {
        // Pages touched by an op are dirty the moment the attempt starts:
        // a crash mid-write may leave the slot torn. Allocations need no
        // pre-marking — a page allocated after the last persist is not in
        // its meta, and a recycled slot was either free at persist time or
        // already dirtied by its own Free.
        match op {
            StoreOp::Append(id, _) | StoreOp::Write(id, _) | StoreOp::Free(id) => {
                dirty.insert(id.0);
            }
            _ => {}
        }
        let crashed = catch_unwind(AssertUnwindSafe(|| match op {
            StoreOp::Alloc(recs) => {
                let id = store.alloc(recs.clone());
                dirty.insert(id.0);
            }
            StoreOp::Append(id, v) => store.append(*id, *v),
            StoreOp::Write(id, recs) => store.write(*id, recs.clone()),
            StoreOp::Free(id) => store.free(*id),
            StoreOp::Read(id) => {
                let _ = store.read(*id);
            }
            StoreOp::Persist => store.persist(),
        }))
        .is_err();
        if crashed {
            return (acked, dirty, matches!(op, StoreOp::Persist), path);
        }
        if matches!(op, StoreOp::Persist) {
            acked += 1;
            dirty.clear();
        }
    }
    (acked, dirty, false, path)
}

/// Reopen on the real filesystem and compare against the model replay.
fn check_killed_recovery(
    persists: &[LiveImage],
    acked: usize,
    dirty: &BTreeSet<u32>,
    crashed_in_persist: bool,
    path: Option<&PathBuf>,
    dir: &std::path::Path,
    context: &str,
) {
    let real = FileConfig::new(dir);
    let Some(path) = path else {
        assert_eq!(acked, 0, "acked a persist without a page file ({context})");
        return;
    };
    let reopened = catch_unwind(AssertUnwindSafe(|| {
        TypedStore::<u64>::open_from_file(&real, path, IoCounter::new())
    }));
    let store = match reopened {
        Err(_) => {
            // Legal only if no persist was ever acknowledged (no meta yet)
            // or the crash hit inside a persist (the meta swap itself may
            // have been caught mid-publish).
            assert!(
                acked == 0 || crashed_in_persist,
                "recovery failed though persist {acked} was acknowledged ({context})"
            );
            return;
        }
        Ok(s) => s,
    };
    let got = live_image(&store);
    let got_lens: BTreeMap<u32, usize> = got.iter().map(|(id, r)| (*id, r.len())).collect();
    // The atomic meta pins the live set to an acknowledged persist — or,
    // when the crash landed inside persist k+1, possibly to the one it was
    // publishing.
    let matches_persist = |img: &LiveImage| {
        got_lens
            == img
                .iter()
                .map(|(id, r)| (*id, r.len()))
                .collect::<BTreeMap<_, _>>()
    };
    if crashed_in_persist && persists.len() > acked && matches_persist(&persists[acked]) {
        // The interrupted persist won the race: the page file was synced
        // before the meta published, so *all* content must match it.
        assert_eq!(
            got, persists[acked],
            "published persist content diverges ({context})"
        );
        return;
    }
    assert!(acked > 0, "recovered state from nowhere ({context})");
    let durable = &persists[acked - 1];
    assert!(
        matches_persist(durable),
        "live set diverges from persist {acked} ({context}): got {:?}, want {:?}",
        got_lens,
        durable
            .iter()
            .map(|(id, r)| (*id, r.len()))
            .collect::<Vec<_>>()
    );
    for (id, recs) in durable {
        if !dirty.contains(id) {
            assert_eq!(
                got.get(id),
                Some(recs),
                "clean page {id} diverges from persist {acked} ({context})"
            );
        }
    }
}

#[cfg(debug_assertions)]
const KILL_TRIALS: usize = 3;
#[cfg(debug_assertions)]
const KILL_POINTS_PER_TRIAL: usize = 8;
#[cfg(not(debug_assertions))]
const KILL_TRIALS: usize = 5;
/// 5 × 50 = 250 kill points in the release (CI) run.
#[cfg(not(debug_assertions))]
const KILL_POINTS_PER_TRIAL: usize = 50;

/// The kill mechanism is a panic out of the mirror, caught by
/// [`run_killed`] — without this the default hook prints hundreds of
/// expected backtraces. Panics from anywhere else still print.
fn silence_expected_kill_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("file backend:") {
            prev(info);
        }
    }));
}

#[test]
fn kill_points_recover_to_the_last_acknowledged_persist() {
    silence_expected_kill_panics();
    check::trials("backends::kill_points", KILL_TRIALS, 0xbac_e0d4, |rng| {
        let cap = *rng.choose(&[4usize, 8]).unwrap();
        let (script, persists) = gen_script(rng, cap, 90);

        // Probe: one uncrashed run through FailFs (same short-write/EINTR
        // noise, no budget) sizes the op space and checks the noisy
        // crashless path — it must ack every persist and reopen exactly.
        let probe_dir = TempDir::new("backends-kill-probe");
        let probe_fs = FailFs::new(
            RealFs::shared(),
            rng.next_u64(),
            FaultPlan {
                crash_after_ops: None,
                short_write: 0.10,
                eintr: 0.05,
            },
        );
        let cfg = FileConfig::with_fs(probe_dir.path(), Arc::new(probe_fs.clone()));
        let (acked, dirty, in_persist, path) = run_killed(&script, cap, &cfg);
        assert_eq!(acked, persists.len(), "probe must ack every persist");
        assert!(!in_persist);
        check_killed_recovery(
            &persists,
            acked,
            &dirty,
            false,
            path.as_ref(),
            probe_dir.path(),
            "probe",
        );
        let total_ops = probe_fs.ops().max(KILL_POINTS_PER_TRIAL as u64);

        // Kill points strided across the probe's op count with per-point
        // jitter, exactly like the engine-level crash suite.
        for point in 0..KILL_POINTS_PER_TRIAL {
            let stride = total_ops / KILL_POINTS_PER_TRIAL as u64;
            let crash_at = 1 + point as u64 * stride + rng.gen_range(0..stride.max(1));
            let dir = TempDir::new("backends-kill");
            let fail_fs = FailFs::new(
                RealFs::shared(),
                rng.next_u64(),
                FaultPlan {
                    crash_after_ops: Some(crash_at),
                    short_write: 0.10,
                    eintr: 0.05,
                },
            );
            let cfg = FileConfig::with_fs(dir.path(), Arc::new(fail_fs.clone()));
            let (acked, dirty, in_persist, path) = run_killed(&script, cap, &cfg);
            let context = format!(
                "crash_at {crash_at}/{total_ops}, acked {acked}, crashed {}",
                fail_fs.crashed()
            );
            check_killed_recovery(
                &persists,
                acked,
                &dirty,
                in_persist,
                path.as_ref(),
                dir.path(),
                &context,
            );
        }
    });
}
