//! Differential suite for the batched write path.
//!
//! The batched update buffers (`ccix_core::Tuning`) defer level-I
//! reorganisations by several pages of pending inserts, so the properties
//! that need pinning are (a) **mid-batch visibility** — a query issued
//! while buffers are partially full must still agree with the oracle, for
//! every tuning, and (b) the **amortised insert budget** — batching must
//! keep the per-insert I/O under an explicit constant·bound envelope,
//! enforced with an `IoProbe` over windows of `10·B` inserts.

use ccix_core::{MetablockTree, Tuning};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_interval::{EndpointMode, IndexBuilder, IntervalOptions};
use ccix_testkit::iocheck::{assert_read_only, IoProbe};
use ccix_testkit::{check, oracle, workloads, DetRng};

/// A tuning drawn from the corners of the knob space (paper constants,
/// shipped defaults, heavy batching, tight TS budget).
fn random_tuning(rng: &mut DetRng) -> Tuning {
    match rng.gen_range(0..4u32) {
        0 => Tuning::paper(),
        1 => Tuning::default(),
        2 => Tuning {
            update_batch_pages: rng.gen_range(1..9usize),
            td_batch_pages: rng.gen_range(1..5usize),
            tomb_batch_pages: rng.gen_range(1..5usize),
            ts_snapshot_pages: None,
            corner_alpha: rng.gen_range(2..5usize),
            pack_h_pages: rng.gen_range(0..9usize),
            resident_root: rng.gen_bool(0.5),
            build_threads: rng.gen_range(1..5usize),
            ..Tuning::default()
        },
        _ => Tuning {
            update_batch_pages: 8,
            td_batch_pages: 4,
            tomb_batch_pages: rng.gen_range(1..9usize),
            ts_snapshot_pages: Some(rng.gen_range(1..9usize)),
            corner_alpha: 2,
            pack_h_pages: rng.gen_range(0..5usize),
            resident_root: rng.gen_bool(0.5),
            build_threads: 1,
            ..Tuning::default()
        },
    }
}

/// Mid-batch pending-buffer visibility: interleave inserts with stabbing
/// queries so most queries run while update buffers and TD staging areas
/// are partially full, and every answer must match the linear-scan oracle.
#[test]
fn mid_batch_queries_agree_with_oracle() {
    check::trials("batched_insert::mid_batch_visibility", 48, 0xBA7C, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let n = rng.gen_range(1..500usize);
        let range = rng.gen_range(20i64..600);
        let ivs = workloads::uniform_intervals(n, rng.next_u64(), range, range / 2 + 1);

        // A random prefix is bulk-built; the rest arrives incrementally.
        let split = rng.gen_range(0..ivs.len() + 1);
        let counter = IoCounter::new();
        let mut tree = MetablockTree::build_tuned(
            geo,
            counter.clone(),
            workloads::interval_points(&ivs[..split]),
            Default::default(),
            tuning,
        );
        for (i, iv) in ivs[split..].iter().enumerate() {
            tree.insert(Point::new(iv.lo, iv.hi, iv.id));
            // Query *between* inserts — deliberately not aligned to the
            // B-insert batch boundary, so pending pages must be visible.
            if i % 3 == 0 {
                let so_far = &ivs[..split + i + 1];
                let q = rng.gen_range(-5..range + 5);
                let probe = IoProbe::start(&counter, format!("mid-batch stabbing({q})"));
                let got: Vec<u64> = tree.query(q).iter().map(|p| p.id).collect();
                assert_read_only(probe.finish_query(got.len()), "mid-batch stabbing");
                oracle::assert_same_ids(
                    got,
                    oracle::stabbing_ids(so_far, q),
                    &format!("b={b} tuning={tuning:?} q={q}"),
                );
            }
        }
        tree.validate_unbilled();
    });
}

/// As above through the interval index in both endpoint modes, exercising
/// the intersection query's x-range path against pending buffers.
#[test]
fn mid_batch_intersections_agree_with_oracle() {
    check::trials(
        "batched_insert::mid_batch_intersections",
        32,
        0xBA7D,
        |rng| {
            let b = rng.gen_range(2usize..9);
            let geo = Geometry::new(b);
            let options = IntervalOptions {
                endpoints: if rng.gen_range(0..2u32) == 0 {
                    EndpointMode::Slab
                } else {
                    EndpointMode::BTree
                },
                tuning: random_tuning(rng),
                btree_leaf_fill: Some(rng.gen_range(50..101usize)),
            };
            let n = rng.gen_range(1..400usize);
            let range = rng.gen_range(20i64..500);
            let ivs = workloads::uniform_intervals(n, rng.next_u64(), range, range / 3 + 1);
            let mut idx = IndexBuilder::new(geo)
                .options(options)
                .open(IoCounter::new());
            for (i, iv) in ivs.iter().enumerate() {
                idx.insert(iv.lo, iv.hi, iv.id);
                if i % 5 == 0 {
                    let so_far = &ivs[..i + 1];
                    let a = rng.gen_range(-5..range + 5);
                    let w = rng.gen_range(0i64..60);
                    let probe =
                        IoProbe::start(idx.counter(), format!("intersecting({a},{})", a + w));
                    let got = idx.intersecting(a, a + w);
                    assert_read_only(probe.finish_query(got.len()), "mid-batch intersecting");
                    oracle::assert_same_ids(
                        got,
                        oracle::intersecting_ids(so_far, a, a + w),
                        &format!("b={b} options={options:?} q=[{a},{}]", a + w),
                    );
                }
            }
        },
    );
}

/// Amortised-cost envelope: across every window of `10·B` inserts, the
/// batched write path must stay within a constant multiple of the
/// Theorem 3.7 bound. The probe brackets whole windows so reorganisation
/// spikes are averaged exactly as the amortised claim states.
#[test]
fn amortised_insert_cost_within_bound() {
    for &b in &[8usize, 16, 32] {
        let geo = Geometry::new(b);
        let n = 6_000 * b / 8; // scale work with B, keep runtime modest
        let counter = IoCounter::new();
        let mut tree = MetablockTree::new(geo, counter.clone());
        let mut rng = DetRng::new(0xA3_0000 + b as u64);
        let window = 10 * b;
        let logb = geo.log_b(n) as f64;
        // Steady-state cost ≈ path pins + buffer page touches plus the
        // amortised level-I/TS terms: 6× the theorem bound + 12 per insert.
        // A window can additionally contain reorganisations whose cost is
        // amortised over far more inserts than the window holds: a level-II
        // push-down re-routes Θ(B²) points (Θ(B²·log_B n) I/Os, amortised
        // over the B² inserts that filled the metablock) and a branching
        // split statically rebuilds O(n/B) pages — so each window gets a
        // one-spike allowance for both.
        let per_insert_budget = 6.0 * (logb + logb * logb / b as f64) + 12.0;
        let push_down_spike = 4 * b * b * geo.log_b(n);

        let mut inserted = 0usize;
        while inserted < n {
            let spike_allowance = (14 * inserted.max(window)) / b + push_down_spike + 64;
            let window_budget =
                (per_insert_budget * window as f64).ceil() as u64 + spike_allowance as u64;
            let probe = IoProbe::start(&counter, format!("b={b} window at {inserted}"));
            for _ in 0..window {
                let lo = rng.gen_range(0..(4 * n) as i64);
                let len = rng.gen_range(0..1_000i64);
                tree.insert(Point::new(lo, lo + len, inserted as u64));
                inserted += 1;
            }
            probe.finish_within(window_budget);
        }
        tree.validate_unbilled();
    }
}
