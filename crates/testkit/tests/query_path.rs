//! PR 3's read path: x-range edge cases against the oracle, and the
//! batched multi-query engine (agreement + amortisation, enforced by
//! [`IoProbe`]).

use ccix_class::{ClassIndex, RakeClassIndex};
use ccix_core::{MetablockTree, ThreeSidedTree};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_interval::IndexBuilder;
use ccix_testkit::iocheck::{assert_read_only, IoProbe};
use ccix_testkit::{check, oracle, workloads, DetRng};

fn diagonal_points(rng: &mut DetRng, n: usize, range: i64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = rng.gen_range(0..range);
            let b = rng.gen_range(0..range);
            Point::new(a.min(b), a.max(b), i as u64)
        })
        .collect()
}

/// `x_range_into` edge cases: empty and inverted ranges, a single-point
/// range, ranges aligned exactly on vertical-page and slab boundaries, a
/// range inside one slab, and the full key space — all against the oracle.
#[test]
fn x_range_edge_cases_match_oracle() {
    check::trials("query_path::x_range_edges", 40, 0xA3E1, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let n = rng.gen_range(1usize..600);
        let range = rng.gen_range(10i64..1_000);
        let pts = diagonal_points(rng, n, range);
        let tree = MetablockTree::build(geo, IoCounter::new(), pts.clone());

        let mut xs: Vec<i64> = pts.iter().map(|p| p.x).collect();
        xs.sort_unstable();

        let mut cases: Vec<(i64, i64)> = vec![
            (5, 4),                 // inverted: must report nothing
            (range + 1, range + 5), // entirely right of the data
            (-10, -1),              // entirely left of the data
            (xs[0], xs[0]),         // single point at the smallest key
            (xs[0], xs[n - 1]),     // the full data range
            (i64::MIN, i64::MAX),   // the full key space
        ];
        // Ranges starting/ending exactly at vertical-page boundary keys
        // (every B-th x in sorted order), the `vkeys` seams.
        for page_start in (0..n).step_by(b) {
            cases.push((xs[page_start], xs[(page_start + b - 1).min(n - 1)]));
            if page_start > 0 {
                cases.push((xs[page_start - 1], xs[page_start]));
            }
        }
        // A few narrow single-slab ranges and random ranges.
        for _ in 0..6 {
            let a = rng.gen_range(0..range);
            cases.push((a, a + rng.gen_range(0..range / 8 + 1)));
        }

        for (x1, x2) in cases {
            let mut got = Vec::new();
            let probe = IoProbe::start(tree.counter(), format!("x_range [{x1}, {x2}]"));
            tree.x_range_into(x1, x2, &mut got);
            assert_read_only(probe.finish_query(got.len()), "x_range");
            oracle::assert_same_points(
                got,
                oracle::x_range(&pts, x1, x2),
                &format!("b={b} n={n} x_range=[{x1}, {x2}]"),
            );
        }
    });
}

/// The batched stabbing engine agrees with one-at-a-time queries on every
/// flood family, never costs more I/Os than the singles, and on a
/// correlated flood amortises well below the single-query average.
#[test]
fn stab_batch_agrees_and_amortises() {
    let geo = Geometry::new(16);
    let n = 60_000usize;
    let range = 4 * n as i64;
    let ivs = workloads::uniform_intervals(n, 0xBA7E, range, 1_500);
    let counter = IoCounter::new();
    let idx = IndexBuilder::new(geo).bulk(counter.clone(), &ivs);
    let batch = 64usize;

    let floods: Vec<(&str, Vec<i64>)> = vec![
        ("uniform", workloads::uniform_flood(batch, 1, range)),
        ("skewed", workloads::skewed_flood(batch, 2, range, 6)),
        (
            "correlated",
            workloads::correlated_flood(batch, 3, range, 1_500),
        ),
    ];
    for (name, qs) in floods {
        let before = counter.snapshot();
        let singles: Vec<Vec<u64>> = qs.iter().map(|&q| idx.stabbing(q)).collect();
        let single_reads = counter.since(before).reads;

        let probe = IoProbe::start(&counter, format!("stab_batch {name}"));
        let batched = idx.stab_batch(&qs);
        let answers: usize = batched.iter().map(Vec::len).sum();
        let delta = probe.finish_query(answers);
        assert_read_only(delta, "stab_batch");

        // Input-order agreement, per query, against singles and the oracle.
        assert_eq!(batched.len(), qs.len());
        for ((q, got), want) in qs.iter().zip(&batched).zip(&singles) {
            oracle::assert_same_ids(got.clone(), want.clone(), &format!("{name} q={q}"));
            oracle::assert_same_ids(
                got.clone(),
                oracle::stabbing_ids(&ivs, *q),
                &format!("{name} oracle q={q}"),
            );
        }

        // One pinned operation never pays more than the singles did.
        assert!(
            delta.reads <= single_reads,
            "{name}: batch cost {} > singles cost {single_reads}",
            delta.reads
        );
        if name == "correlated" {
            // The shared descent and the heavily overlapping answers must
            // amortise well below the single-query cost (the pin's B-frame
            // budget caps how much overlap small geometries can capture).
            assert!(
                3 * delta.reads <= 2 * single_reads,
                "correlated flood should amortise ≥ 1.5×: batch {} vs singles {single_reads}",
                delta.reads
            );
        }
    }
}

/// Randomized cross-check at property-test scale: batches drawn from all
/// three flood families agree with singles for every geometry and never
/// cost more.
#[test]
fn stab_batch_randomized_agreement() {
    check::trials("query_path::stab_batch", 40, 0xBA7F, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let n = rng.gen_range(1usize..500);
        let range = rng.gen_range(20i64..800);
        let ivs = workloads::uniform_intervals(n, rng.next_u64(), range, range / 3 + 1);
        let counter = IoCounter::new();
        let idx = IndexBuilder::new(geo).bulk(counter.clone(), &ivs);
        let batch = rng.gen_range(1usize..40);
        let qs = match rng.gen_range(0..3u32) {
            0 => workloads::uniform_flood(batch, rng.next_u64(), range),
            1 => workloads::skewed_flood(batch, rng.next_u64(), range, 3),
            _ => workloads::correlated_flood(batch, rng.next_u64(), range, range / 4 + 1),
        };
        let before = counter.snapshot();
        let singles: Vec<Vec<u64>> = qs.iter().map(|&q| idx.stabbing(q)).collect();
        let single_reads = counter.since(before).reads;
        let before = counter.snapshot();
        let batched = idx.stab_batch(&qs);
        let batch_reads = counter.since(before).reads;
        for ((q, got), want) in qs.iter().zip(batched).zip(singles) {
            oracle::assert_same_ids(got, want, &format!("b={b} n={n} q={q}"));
        }
        assert!(
            batch_reads <= single_reads,
            "b={b} n={n}: batch {batch_reads} > singles {single_reads}"
        );
    });
}

/// The 3-sided tree's batched queries agree with singles and with the
/// oracle, PST descent included.
#[test]
fn threesided_batch_agrees() {
    check::trials("query_path::threesided_batch", 30, 0x35B1, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let n = rng.gen_range(1usize..400);
        let range = rng.gen_range(20i64..600);
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(rng.gen_range(0..range), rng.gen_range(0..range), i as u64))
            .collect();
        let counter = IoCounter::new();
        let tree = ThreeSidedTree::build(geo, counter.clone(), pts.clone());
        let queries: Vec<(i64, i64, i64)> = (0..rng.gen_range(1usize..24))
            .map(|_| {
                let x1 = rng.gen_range(-5..range);
                let w = rng.gen_range(0..range / 2 + 1);
                (x1, x1 + w, rng.gen_range(-5..range + 5))
            })
            .collect();
        let before = counter.snapshot();
        let singles: Vec<Vec<Point>> = queries
            .iter()
            .map(|&(x1, x2, y0)| tree.query(x1, x2, y0))
            .collect();
        let single_reads = counter.since(before).reads;
        let before = counter.snapshot();
        let batched = tree.query_batch(&queries);
        let batch_reads = counter.since(before).reads;
        for ((&(x1, x2, y0), got), want) in queries.iter().zip(batched).zip(singles) {
            oracle::assert_same_points(got.clone(), want, &format!("q=({x1},{x2},{y0})"));
            oracle::assert_same_points(
                got,
                oracle::three_sided(&pts, x1, x2, y0),
                &format!("oracle q=({x1},{x2},{y0})"),
            );
        }
        assert!(batch_reads <= single_reads);
    });
}

/// The rake class index's batched floods agree with singles across
/// hierarchy shapes (grouping by heavy-path structure, children-PST
/// descent included) and never cost more.
#[test]
fn class_query_batch_agrees() {
    check::trials("query_path::class_batch", 24, 0xC1A5, |rng| {
        let c = rng.gen_range(2usize..40);
        let shape = *rng
            .choose(&workloads::HierarchyShape::ALL)
            .expect("nonempty");
        let h = workloads::hierarchy(shape, c, rng.next_u64());
        let geo = Geometry::new(rng.gen_range(2usize..6));
        let counter = IoCounter::new();
        let mut idx = RakeClassIndex::new(h.clone(), geo, counter.clone());
        let n = rng.gen_range(1usize..300);
        let objects = workloads::uniform_objects(&h, n, rng.next_u64(), 500);
        for o in &objects {
            idx.insert(*o);
        }
        let queries: Vec<(usize, i64, i64)> = (0..rng.gen_range(1usize..20))
            .map(|_| {
                let a1 = rng.gen_range(-10i64..510);
                (rng.gen_range(0..c), a1, a1 + rng.gen_range(0..200))
            })
            .collect();
        let before = counter.snapshot();
        let singles: Vec<Vec<u64>> = queries
            .iter()
            .map(|&(cl, a1, a2)| idx.query(cl, a1, a2))
            .collect();
        let single_reads = counter.since(before).reads;
        let before = counter.snapshot();
        let batched = idx.query_batch(&queries);
        let batch_reads = counter.since(before).reads;
        for ((&(cl, a1, a2), got), want) in queries.iter().zip(batched).zip(singles) {
            oracle::assert_same_ids(got.clone(), want, &format!("class={cl} [{a1},{a2}]"));
            oracle::assert_same_ids(
                got,
                oracle::class_range_ids(&h, &objects, cl, a1, a2),
                &format!("oracle class={cl} [{a1},{a2}]"),
            );
        }
        assert!(batch_reads <= single_reads, "shape={shape:?} c={c}");
    });
}
