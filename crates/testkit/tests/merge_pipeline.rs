//! Property suite for the merge-based reorganisation pipeline (PR 4).
//!
//! Level-I, TS and level-II reorganisations no longer sort from scratch:
//! they merge the already-sorted runs with sorted deltas
//! (`ccix_extmem::merge`). The invariants that pins down are **mid-flood
//! run discipline** — after every reorganisation trigger the mains must
//! still be strictly x-sorted (vertical) and y-sorted (horizontal), the
//! TS/TSL/TSR snapshots y-sorted with sound `truncated` bits, and every
//! run densely packed — plus **oracle agreement** of full query answers via
//! `assert_same_points`. The run-sortedness and density checks live in
//! both trees' `validate_unbilled`, so a merge regression fails in
//! `validate` (every structural walk), not only here.
//!
//! A reorganisation trigger is detected from the outside: an insert whose
//! I/O delta exceeds the quiet-path bound must have fired at least a
//! level-I; the validator runs right there, mid-flood, while the
//! surrounding buffers are in whatever partial state the trigger left.

use ccix_core::{MetablockTree, ThreeSidedTree, Tuning};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_testkit::iocheck::IoProbe;
use ccix_testkit::{check, oracle, workloads, DetRng};

/// A tuning from the corners of the knob space, including thread budgets
/// (planning threads must never change results — materialisation is
/// sequential).
fn random_tuning(rng: &mut DetRng) -> Tuning {
    let mut t = match rng.gen_range(0..3u32) {
        0 => Tuning::paper(),
        1 => Tuning::default(),
        _ => Tuning {
            update_batch_pages: rng.gen_range(1..9usize),
            td_batch_pages: rng.gen_range(1..5usize),
            tomb_batch_pages: rng.gen_range(1..5usize),
            ts_snapshot_pages: if rng.gen_bool(0.5) {
                None
            } else {
                Some(rng.gen_range(1..9usize))
            },
            corner_alpha: rng.gen_range(2..5usize),
            pack_h_pages: rng.gen_range(0..5usize),
            resident_root: rng.gen_bool(0.5),
            build_threads: 1,
            ..Tuning::default()
        },
    };
    t.build_threads = rng.gen_range(1..5usize);
    t
}

/// An insert that stayed on the quiet path (buffer append, path pins, TD
/// staging) spends at most this many I/Os; anything above it fired a
/// reorganisation.
fn quiet_insert_bound(tree_height_hint: usize, tuning: &Tuning, b: usize) -> u64 {
    let buffers = 2 * (tuning.update_batch_pages + tuning.td_batch_pages + 2);
    (2 * tree_height_hint + buffers + b) as u64
}

/// Diagonal tree: flood inserts over a built prefix; validate (sortedness,
/// density, TS coverage) at every detected reorganisation trigger and
/// check full-answer oracle agreement via `assert_same_points`.
#[test]
fn diag_reorganisations_keep_runs_sorted_and_answers_exact() {
    check::trials("merge_pipeline::diag", 40, 0x4D47, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let n = rng.gen_range(1..400usize);
        let range = rng.gen_range(20i64..600);
        let ivs = workloads::uniform_intervals(n, rng.next_u64(), range, range / 2 + 1);
        let split = rng.gen_range(0..ivs.len() + 1);
        let counter = IoCounter::new();
        let mut tree = MetablockTree::build_tuned(
            geo,
            counter.clone(),
            workloads::interval_points(&ivs[..split]),
            Default::default(),
            tuning,
        );
        tree.validate_unbilled();

        let quiet = quiet_insert_bound(6, &tuning, b);
        let mut triggers = 0usize;
        for (i, iv) in ivs[split..].iter().enumerate() {
            let probe = IoProbe::start(&counter, "diag insert");
            tree.insert(Point::new(iv.lo, iv.hi, iv.id));
            let (delta, _) = probe.finish_timed();
            if delta.total() > quiet {
                // A reorganisation fired: every run must already be back in
                // merge-clean shape, mid-flood.
                triggers += 1;
                tree.validate_unbilled();
            }
            if i % 7 == 0 {
                let so_far = workloads::interval_points(&ivs[..split + i + 1]);
                let q = rng.gen_range(-5..range + 5);
                oracle::assert_same_points(
                    tree.query(q),
                    oracle::diagonal_corner(&so_far, q),
                    &format!("diag b={b} tuning={tuning:?} q={q}"),
                );
            }
        }
        // At least the final state validates even when no trigger fired.
        if triggers == 0 {
            tree.validate_unbilled();
        }
    });
}

/// 3-sided tree: the same discipline over TSL/TSR snapshots and the PST
/// layout-reuse rebuilds.
#[test]
fn threesided_reorganisations_keep_runs_sorted_and_answers_exact() {
    check::trials("merge_pipeline::threesided", 32, 0x35D3, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let n = rng.gen_range(1..350usize);
        let range = rng.gen_range(20i64..600);
        let pts = workloads::uniform_points(n, rng.next_u64(), range);
        let split = rng.gen_range(0..pts.len() + 1);
        let counter = IoCounter::new();
        let mut tree =
            ThreeSidedTree::build_tuned(geo, counter.clone(), pts[..split].to_vec(), tuning);
        tree.validate_unbilled();

        let quiet = quiet_insert_bound(6, &tuning, b);
        for (i, p) in pts[split..].iter().enumerate() {
            let probe = IoProbe::start(&counter, "3sided insert");
            tree.insert(*p);
            let (delta, _) = probe.finish_timed();
            if delta.total() > quiet {
                tree.validate_unbilled();
            }
            if i % 7 == 0 {
                let so_far = &pts[..split + i + 1];
                let x1 = rng.gen_range(-5..range + 5);
                let x2 = x1 + rng.gen_range(0..range / 2 + 1);
                let y0 = rng.gen_range(-5..range + 5);
                oracle::assert_same_points(
                    tree.query(x1, x2, y0),
                    oracle::three_sided(so_far, x1, x2, y0),
                    &format!("3sided b={b} tuning={tuning:?} q=({x1},{x2},{y0})"),
                );
            }
        }
        tree.validate_unbilled();
    });
}

/// The merge pipeline and a from-scratch rebuild must produce identical
/// structures: floods driven through inserts agree — page-for-page counts
/// and stats — with a fresh `build` over the same final point set, for
/// every thread budget.
#[test]
fn flooded_tree_matches_fresh_build_answers() {
    check::trials("merge_pipeline::flood_vs_fresh", 16, 0xF10D, |rng| {
        let b = rng.gen_range(2usize..7);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let n = rng.gen_range(50..500usize);
        let range = 300i64;
        let ivs = workloads::uniform_intervals(n, rng.next_u64(), range, 80);
        let counter = IoCounter::new();
        let mut flooded = MetablockTree::new_tuned(geo, counter, Default::default(), tuning);
        for iv in &ivs {
            flooded.insert(Point::new(iv.lo, iv.hi, iv.id));
        }
        flooded.validate_unbilled();
        let fresh = MetablockTree::build_tuned(
            geo,
            IoCounter::new(),
            workloads::interval_points(&ivs),
            Default::default(),
            tuning,
        );
        for q in (-5..range + 5).step_by(11) {
            oracle::assert_same_points(
                flooded.query(q),
                fresh.query(q),
                &format!("flood-vs-fresh b={b} q={q}"),
            );
        }
    });
}
