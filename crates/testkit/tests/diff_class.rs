//! Differential suite: `RakeClassIndex` vs `RangeTreeClassIndex` vs the
//! flat-scan oracle (and, on a fixed workload, both baselines too), across
//! all hierarchy shapes and object skews, under interleaved insertion.

use ccix_class::{
    ClassIndex, FullExtentBaseline, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex,
    SingleIndexBaseline,
};
use ccix_extmem::{Geometry, IoCounter};
use ccix_testkit::{check, oracle, workloads, DetRng};

fn random_hierarchy(rng: &mut DetRng) -> Hierarchy {
    if rng.gen_bool(0.5) {
        let shape = *rng
            .choose(&workloads::HierarchyShape::ALL)
            .expect("nonempty");
        workloads::hierarchy(shape, rng.gen_range(1..40usize), rng.next_u64())
    } else {
        Hierarchy::from_parents(&workloads::random_forest(rng, 40))
    }
}

fn random_objects(rng: &mut DetRng, h: &Hierarchy, attr_range: i64) -> Vec<Object> {
    let n = rng.gen_range(1..250usize);
    if rng.gen_bool(0.5) {
        workloads::uniform_objects(h, n, rng.next_u64(), attr_range)
    } else {
        workloads::skewed_objects(h, n, rng.next_u64(), attr_range)
    }
}

#[test]
fn rake_rangetree_and_scan_agree() {
    check::trials("diff_class::rake_rangetree_scan", 50, 0xCA1, |rng| {
        let h = random_hierarchy(rng);
        let geo = Geometry::new(rng.gen_range(2usize..8));
        let attr_range = 120i64;
        let objects = random_objects(rng, &h, attr_range);
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut inserted: Vec<Object> = Vec::new();
        for o in &objects {
            rake.insert(*o);
            rtree.insert(*o);
            inserted.push(*o);
            // Query mid-stream every so often: agreement must hold at every
            // prefix, not only after the full load.
            if inserted.len().is_multiple_of(60) {
                let class = rng.gen_range(0..h.len());
                let a = rng.gen_range(0..attr_range);
                let want = oracle::class_range_ids(&h, &inserted, class, a, a + 20);
                oracle::assert_same_ids(rake.query(class, a, a + 20), want.clone(), "rake mid");
                oracle::assert_same_ids(rtree.query(class, a, a + 20), want, "rangetree mid");
            }
        }
        for _ in 0..10 {
            let class = rng.gen_range(0..h.len());
            let a = rng.gen_range(-5i64..attr_range);
            let w = rng.gen_range(0i64..attr_range / 2);
            let want = oracle::class_range_ids(&h, &inserted, class, a, a + w);
            oracle::assert_same_ids(
                rake.query(class, a, a + w),
                want.clone(),
                &format!("rake class={class} [{a},{}]", a + w),
            );
            oracle::assert_same_ids(
                rtree.query(class, a, a + w),
                want,
                &format!("rangetree class={class} [{a},{}]", a + w),
            );
        }
    });
}

#[test]
fn all_four_strategies_agree_on_example_hierarchy() {
    let (h, [person, professor, student, asst_prof]) = Hierarchy::example_people();
    let geo = Geometry::new(4);
    let objects = workloads::uniform_objects(&h, 300, 0xCA2, 100);
    let mut strategies: Vec<Box<dyn ClassIndex>> = vec![
        Box::new(SingleIndexBaseline::new(h.clone(), geo, IoCounter::new())),
        Box::new(FullExtentBaseline::new(h.clone(), geo, IoCounter::new())),
        Box::new(RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new())),
        Box::new(RakeClassIndex::new(h.clone(), geo, IoCounter::new())),
    ];
    for s in strategies.iter_mut() {
        for o in &objects {
            s.insert(*o);
        }
    }
    for class in [person, professor, student, asst_prof] {
        for (a1, a2) in [(0i64, 99i64), (25, 75), (50, 50), (90, 120), (-10, -1)] {
            let want = oracle::class_range_ids(&h, &objects, class, a1, a2);
            for s in &strategies {
                oracle::assert_same_ids(
                    s.query(class, a1, a2),
                    want.clone(),
                    &format!("{} class={class} [{a1},{a2}]", s.name()),
                );
            }
        }
    }
}

#[test]
fn deep_path_hierarchy_stresses_full_extents() {
    // A pure chain is the worst case for full-extent queries: the root's
    // extent is everything, and each step down sheds exactly one class.
    check::trials("diff_class::deep_path", 20, 0xCA3, |rng| {
        let depth = rng.gen_range(2usize..30);
        let h = workloads::hierarchy(workloads::HierarchyShape::Path, depth, 0);
        let geo = Geometry::new(3);
        let objects = workloads::uniform_objects(&h, 150, rng.next_u64(), 60);
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        for o in &objects {
            rake.insert(*o);
            rtree.insert(*o);
        }
        for class in 0..h.len() {
            let want = oracle::class_range_ids(&h, &objects, class, 0, 60);
            oracle::assert_same_ids(rake.query(class, 0, 60), want.clone(), "rake chain");
            oracle::assert_same_ids(rtree.query(class, 0, 60), want, "rangetree chain");
        }
    });
}
