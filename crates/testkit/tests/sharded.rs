//! Differential suite for the x-range sharded interval index.
//!
//! The routing directory must be **transparent**: for every shard count,
//! split choice (quantile, random, hot-shard adversarial) and thread
//! budget, a sharded index must answer exactly like the unsharded index
//! and the linear-scan oracle over the same live set. On top of
//! agreement, the suite pins the properties the fan-out design claims:
//! thread-count invariance of both results *and* aggregate I/O (the
//! budget only moves shard work between threads), bounded aggregate I/O
//! relative to the unsharded baseline (the documented routing overhead),
//! and silence of cold shards under hot-shard traffic (the directory
//! never consults a shard whose x-range cannot contribute).

use ccix_core::Tuning;
use ccix_extmem::Geometry;
use ccix_interval::{split_points_from_sample, IndexBuilder, Interval, IntervalOp};
use ccix_testkit::iocheck::IoProbe;
use ccix_testkit::{check, oracle, workloads, DetRng};

/// A split vector from one of the three regimes the routing directory has
/// to survive: data-quantile splits, arbitrary random splits (possibly
/// badly unbalanced), and the hot-shard adversarial partition.
fn random_splits(rng: &mut DetRng, sample: &[i64], range: i64, shards: usize) -> Vec<i64> {
    match rng.gen_range(0..3u32) {
        0 => split_points_from_sample(sample, shards),
        1 => {
            let mut s: Vec<i64> = (0..shards - 1)
                .map(|_| rng.gen_range(1..range.max(2)))
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        }
        _ => workloads::hot_shard_splits(shards, range.max(shards as i64 + 2), 0),
    }
}

/// Convert a testkit mixed flood into engine ops plus interleaved query
/// points, maintaining the oracle's live set alongside.
fn op_of(op: &workloads::IntervalOp) -> Option<IntervalOp> {
    match *op {
        workloads::IntervalOp::Insert(iv) => Some(IntervalOp::Insert(iv)),
        workloads::IntervalOp::Delete(iv) => Some(IntervalOp::Delete(iv)),
        workloads::IntervalOp::Stab(_) => None,
    }
}

/// Sharded vs unsharded vs oracle over mixed insert/delete floods with
/// interleaved stabbing/intersection/x-range queries, across random shard
/// counts, split regimes and thread budgets.
#[test]
fn sharded_agrees_with_unsharded_and_oracle() {
    check::trials("sharded::agreement", 40, 0x5AAD, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let range = rng.gen_range(40i64..800);
        let shards = rng.gen_range(1usize..6);
        let n0 = rng.gen_range(0..300usize);
        // Base ids live above the flood's 0-based fresh ids.
        let base: Vec<Interval> =
            workloads::uniform_intervals(n0, rng.next_u64(), range, range / 2 + 1)
                .into_iter()
                .map(|iv| Interval::new(iv.lo, iv.hi, 1_000_000 + iv.id))
                .collect();
        let sample: Vec<i64> = base.iter().map(|iv| iv.lo).collect();
        let splits = random_splits(rng, &sample, range, shards);
        let tuning = Tuning {
            shard_threads: rng.gen_range(1usize..5),
            ..Tuning::default()
        };

        let builder = IndexBuilder::new(geo).tuning(tuning);
        let mut sharded = builder.clone().sharded().splits(splits).bulk(&base);
        let mut plain = builder.bulk(ccix_extmem::IoCounter::new(), &base);
        let mut live: Vec<Interval> = base.clone();

        let flood = workloads::mixed_interval_flood(
            rng.gen_range(1..400usize),
            rng.next_u64(),
            range,
            range / 2 + 1,
            25,
            25,
        );
        let mut batch: Vec<IntervalOp> = Vec::new();
        for op in &flood {
            if let Some(eop) = op_of(op) {
                match eop {
                    IntervalOp::Insert(iv) => live.push(iv),
                    IntervalOp::Delete(iv) => {
                        oracle::remove_interval(&mut live, iv.id);
                    }
                }
                batch.push(eop);
                continue;
            }
            // A stab marks a sync point: apply the pending batch to both
            // engines, then cross-check all three query families.
            sharded.apply_batch(&batch);
            plain.apply_batch(&batch);
            batch.clear();
            let workloads::IntervalOp::Stab(q) = *op else {
                unreachable!("non-stab handled above");
            };
            oracle::assert_same_ids(
                sharded.stabbing(q),
                oracle::stabbing_ids(&live, q),
                "sharded stabbing vs oracle",
            );
            oracle::assert_same_ids(sharded.stabbing(q), plain.stabbing(q), "stabbing vs plain");
            let q2 = q + rng.gen_range(0..range / 2 + 1);
            oracle::assert_same_ids(
                sharded.intersecting(q, q2),
                oracle::intersecting_ids(&live, q, q2),
                "sharded intersecting vs oracle",
            );
            let mut got: Vec<u64> = sharded.left_range(q, q2).iter().map(|iv| iv.id).collect();
            let mut want: Vec<u64> = plain.left_range(q, q2).iter().map(|iv| iv.id).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "left_range vs plain");
        }
        sharded.apply_batch(&batch);
        plain.apply_batch(&batch);
        assert_eq!(sharded.len(), plain.len(), "live count");

        // Batched queries against per-query answers, across every shard.
        let qs = workloads::uniform_flood(64, rng.next_u64(), range);
        let batched = sharded.stab_batch(&qs);
        for (q, ids) in qs.iter().zip(batched) {
            oracle::assert_same_ids(ids, oracle::stabbing_ids(&live, *q), "stab_batch vs oracle");
        }
    });
}

/// The thread budget must be invisible: identical results *and* identical
/// aggregate I/O for every shard-thread count, including the sequential
/// fallback.
#[test]
fn thread_budget_never_changes_results_or_io() {
    check::trials("sharded::thread_invariance", 24, 0x5AAD2, |rng| {
        let geo = Geometry::new(rng.gen_range(2usize..9));
        let range = rng.gen_range(60i64..600);
        let shards = rng.gen_range(2usize..6);
        let n = rng.gen_range(50..400usize);
        let base = workloads::uniform_intervals(n, rng.next_u64(), range, range / 3 + 1);
        let sample: Vec<i64> = base.iter().map(|iv| iv.lo).collect();
        let splits = split_points_from_sample(&sample, shards);
        let flood = workloads::zipf_shard_intervals(
            rng.gen_range(1..200usize),
            rng.next_u64(),
            &splits,
            range,
            range / 3 + 1,
            1.2,
        );
        let ops: Vec<IntervalOp> = flood
            .iter()
            .map(|iv| IntervalOp::Insert(Interval::new(iv.lo, iv.hi, n as u64 + iv.id)))
            .collect();
        let qs = workloads::zipf_shard_flood(96, rng.next_u64(), &splits, range, 1.2);

        let run = |threads: usize| {
            let tuning = Tuning {
                shard_threads: threads,
                ..Tuning::default()
            };
            let mut idx = IndexBuilder::new(geo)
                .tuning(tuning)
                .sharded()
                .splits(splits.clone())
                .bulk(&base);
            idx.apply_batch(&ops);
            let answers = idx.stab_batch(&qs);
            (answers, idx.io_totals())
        };
        let (a1, io1) = run(1);
        for threads in [2usize, 4, 7] {
            let (at, iot) = run(threads);
            assert_eq!(a1, at, "results differ at {threads} shard threads");
            assert_eq!(
                (io1.reads, io1.writes),
                (iot.reads, iot.writes),
                "aggregate I/O differs at {threads} shard threads"
            );
        }
    });
}

/// Aggregate sharded I/O stays within a constant envelope of the
/// unsharded index on the same flood — the routing overhead (shorter
/// descents per shard, but one partial descent per overlapping shard)
/// must not grow with n.
#[test]
fn aggregate_io_bounded_vs_unsharded() {
    check::trials("sharded::io_envelope", 12, 0x5AAD3, |rng| {
        let b = rng.gen_range(4usize..9);
        let geo = Geometry::new(b);
        let range = 4_000i64;
        let n = rng.gen_range(500..2_000usize);
        let shards = rng.gen_range(2usize..6);
        let base = workloads::uniform_intervals(n, rng.next_u64(), range, 300);
        let sample: Vec<i64> = base.iter().map(|iv| iv.lo).collect();
        let splits = split_points_from_sample(&sample, shards);
        let tuning = Tuning {
            shard_threads: 1,
            ..Tuning::default()
        };
        let builder = IndexBuilder::new(geo).tuning(tuning);
        let sharded = builder.clone().sharded().splits(splits).bulk(&base);
        let plain_counter = ccix_extmem::IoCounter::new();
        let plain = builder.bulk(plain_counter.clone(), &base);

        let qs = workloads::uniform_flood(256, rng.next_u64(), range);
        let before = sharded.io_totals();
        let probe = IoProbe::start(plain.counter(), "unsharded stab flood");
        let mut want = plain.stab_batch(&qs);
        let plain_io = probe.finish().total();
        let mut got = sharded.stab_batch(&qs);
        let shard_io = before.delta(sharded.io_totals()).total();
        // Answer sets agree; within-query order is shard-gather order vs
        // single-tree traversal order, so compare sorted.
        for v in got.iter_mut().chain(want.iter_mut()) {
            v.sort_unstable();
        }
        assert_eq!(got, want, "flood answers agree");
        // Each query may touch every overlapping shard's top levels, but
        // per-shard trees are shallower; 2× the unsharded flood plus a
        // per-shard descent's worth of slack is a loose constant envelope.
        let slack = (shards as u64) * 8 * qs.len() as u64 / 4;
        assert!(
            shard_io <= 2 * plain_io + slack,
            "sharded flood I/O {shard_io} exceeds envelope (unsharded {plain_io}, slack {slack})"
        );
    });
}

/// Hot-shard adversarial traffic: when every op and query lands in one
/// shard's x-range, the cold shards' counters must stay silent — the
/// directory never fans out to a shard that cannot contribute.
#[test]
fn cold_shards_stay_untouched_under_hot_traffic() {
    check::trials("sharded::cold_silence", 16, 0x5AAD4, |rng| {
        let geo = Geometry::new(rng.gen_range(2usize..9));
        let shards = rng.gen_range(2usize..7);
        let range = 1_000i64;
        let hot = rng.gen_range(0..shards);
        let splits = workloads::hot_shard_splits(shards, range, hot);
        // The hot shard's x-range, shrunk by one so lengths never cross
        // into the right slivers and every op stays hot-shard-local.
        let hot_lo = if hot == 0 { 0 } else { hot as i64 + 1 };
        let hot_hi = if hot == shards - 1 {
            range
        } else {
            range - (shards - 1 - hot) as i64
        };
        let mut idx = IndexBuilder::new(geo)
            .tuning(Tuning {
                shard_threads: rng.gen_range(1usize..4),
                ..Tuning::default()
            })
            .sharded()
            .splits(splits)
            .open();
        let n = rng.gen_range(1..300usize);
        let ops: Vec<IntervalOp> = (0..n)
            .map(|i| {
                let lo = rng.gen_range(hot_lo..hot_hi);
                let hi = rng.gen_range(lo..hot_hi);
                IntervalOp::Insert(Interval::new(lo, hi, i as u64))
            })
            .collect();
        idx.apply_batch(&ops);
        let cold_before: Vec<u64> = idx
            .shards()
            .iter()
            .map(|s| s.counter().snapshot().total())
            .collect();
        // Hot-only stabbing flood, batched and single.
        for _ in 0..32 {
            let q = rng.gen_range(hot_lo..hot_hi);
            std::hint::black_box(idx.stabbing(q));
        }
        let qs: Vec<i64> = (0..64).map(|_| rng.gen_range(hot_lo..hot_hi)).collect();
        std::hint::black_box(idx.stab_batch(&qs));
        for (s, (shard, before)) in idx.shards().iter().zip(&cold_before).enumerate() {
            if s != hot {
                assert_eq!(
                    shard.counter().snapshot().total(),
                    *before,
                    "cold shard {s} of {shards} (hot {hot}) was touched by hot-only queries"
                );
            }
        }
        // And the whole flood really lives in the hot shard.
        assert_eq!(idx.shards()[hot].len(), n, "all ops routed to hot shard");
    });
}
