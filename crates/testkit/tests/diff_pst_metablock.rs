//! Differential suite: metablock trees vs priority search trees on
//! identical point sets.
//!
//! The paper's §5 comparison in test form: a `MetablockTree` and an
//! `ExternalPst` built from the same points must answer every
//! diagonal-corner query identically (the PST via the 3-sided query
//! `x ≤ q ∧ y ≥ q`), and a `ThreeSidedTree`, `ExternalPst` and `InCorePst`
//! must agree on every 3-sided query — all checked against the scan oracle.

use ccix_core::{MetablockTree, ThreeSidedTree};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_pst::{ExternalPst, InCorePst};
use ccix_testkit::iocheck::{assert_read_only, IoProbe};
use ccix_testkit::{check, oracle, workloads, DetRng};

/// Point-set regimes: uniform, staircase (the Prop. 3.3 witness), interval
/// points from the adversarial interval mix, and x-clustered columns.
fn point_set(rng: &mut DetRng) -> Vec<Point> {
    let n = rng.gen_range(1..350usize);
    let range = rng.gen_range(10i64..400);
    match rng.gen_range(0..4u32) {
        0 => workloads::uniform_points(n, rng.next_u64(), range),
        1 => workloads::staircase_points(n),
        2 => workloads::interval_points(&workloads::adversarial_intervals(n, range)),
        _ => workloads::clustered_points(n, rng.next_u64(), range, rng.gen_range(1..8usize)),
    }
}

/// Diagonal point sets (y ≥ x), the shape `MetablockTree` stores.
fn diagonal_point_set(rng: &mut DetRng) -> Vec<Point> {
    let mut pts = point_set(rng);
    for p in &mut pts {
        if p.y < p.x {
            std::mem::swap(&mut p.x, &mut p.y);
        }
    }
    pts
}

#[test]
fn metablock_and_pst_agree_on_diagonal_queries() {
    check::trials("diff_pst_metablock::diagonal", 50, 0xAB1, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let pts = diagonal_point_set(rng);
        let tree = MetablockTree::build(geo, IoCounter::new(), pts.clone());
        let pst = ExternalPst::build(geo, IoCounter::new(), pts.clone());
        for _ in 0..12 {
            let q = rng.gen_range(-5i64..405);
            let want = oracle::diagonal_corner(&pts, q);
            let probe = IoProbe::start(tree.counter(), format!("metablock q={q}"));
            let got_tree = tree.query(q);
            assert_read_only(probe.finish_query(got_tree.len()), "metablock query");
            oracle::assert_same_points(got_tree, want.clone(), &format!("metablock b={b} q={q}"));
            // point_set() always yields ≥ 1 point, so the PST is nonempty
            // and even an empty-answer descent must be charged.
            let mut got_pst = Vec::new();
            let probe = IoProbe::start(pst.counter(), format!("pst q={q}"));
            pst.diagonal_into(q, &mut got_pst);
            assert_read_only(probe.finish_charged(), "pst diagonal");
            oracle::assert_same_points(got_pst, want, &format!("pst b={b} q={q}"));
        }
    });
}

#[test]
fn threesided_tree_and_both_psts_agree() {
    check::trials("diff_pst_metablock::threesided", 50, 0xAB2, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let pts = point_set(rng);
        let tree = ThreeSidedTree::build(geo, IoCounter::new(), pts.clone());
        let ext = ExternalPst::build(geo, IoCounter::new(), pts.clone());
        let incore = InCorePst::build(pts.clone());
        for _ in 0..12 {
            let a = rng.gen_range(-5i64..405);
            let c = rng.gen_range(-5i64..405);
            let (x1, x2) = (a.min(c), a.max(c));
            let y0 = rng.gen_range(-5i64..405);
            let want = oracle::three_sided(&pts, x1, x2, y0);
            let ctx = format!("b={b} q=({x1},{x2},{y0})");
            oracle::assert_same_points(
                tree.query(x1, x2, y0),
                want.clone(),
                &format!("3s-tree {ctx}"),
            );
            oracle::assert_same_points(
                ext.query(x1, x2, y0),
                want.clone(),
                &format!("ext-pst {ctx}"),
            );
            oracle::assert_same_points(
                incore.query(x1, x2, y0),
                want,
                &format!("incore-pst {ctx}"),
            );
        }
    });
}

#[test]
fn agreement_survives_metablock_inserts() {
    // The PST here is static, so rebuild it after the insert phase; the
    // metablock tree must keep agreeing through its reorganisations.
    check::trials("diff_pst_metablock::inserts", 30, 0xAB3, |rng| {
        let b = rng.gen_range(2usize..5);
        let geo = Geometry::new(b);
        let mut pts = diagonal_point_set(rng);
        let split = rng.gen_range(0..pts.len() + 1);
        let mut tree = MetablockTree::build(geo, IoCounter::new(), pts[..split].to_vec());
        for (i, p) in pts[split..].iter().enumerate() {
            let p = Point::new(p.x, p.y, 1_000_000 + i as u64);
            tree.insert(p);
        }
        for (i, p) in pts[split..].iter_mut().enumerate() {
            p.id = 1_000_000 + i as u64;
        }
        let pst = ExternalPst::build(geo, IoCounter::new(), pts.clone());
        for _ in 0..10 {
            let q = rng.gen_range(-5i64..405);
            let got_tree = tree.query(q);
            let mut got_pst = Vec::new();
            pst.diagonal_into(q, &mut got_pst);
            oracle::assert_same_points(got_tree, got_pst, &format!("post-insert b={b} q={q}"));
        }
    });
}
