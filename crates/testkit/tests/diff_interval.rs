//! Differential suite: `IntervalIndex` vs `NaiveIntervalStore` vs the
//! linear-scan oracle, across the uniform / skewed / adversarial workload
//! regimes, under mixed bulk-build + incremental insertion, with I/O probes
//! asserting every query is charged and read-only.

use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalIndex, NaiveIntervalStore};
use ccix_testkit::iocheck::{assert_read_only, IoProbe};
use ccix_testkit::{check, oracle, workloads, DetRng};

/// All three interval workload regimes at a size derived from `rng`.
fn workload(rng: &mut DetRng) -> Vec<Interval> {
    let n = rng.gen_range(1..400usize);
    let range = rng.gen_range(10i64..500);
    match rng.gen_range(0..3u32) {
        0 => workloads::uniform_intervals(n, rng.next_u64(), range, range / 2 + 1),
        1 => workloads::skewed_intervals(n, rng.next_u64(), range, rng.gen_range(1..6usize)),
        _ => workloads::adversarial_intervals(n, range),
    }
}

/// Drive index + naive store to the same contents: a prefix bulk-built,
/// the rest inserted one by one.
fn build_both(
    rng: &mut DetRng,
    geo: Geometry,
    ivs: &[Interval],
) -> (IntervalIndex, NaiveIntervalStore) {
    let split = rng.gen_range(0..ivs.len() + 1);
    let mut idx = IndexBuilder::new(geo).bulk(IoCounter::new(), &ivs[..split]);
    let mut naive = NaiveIntervalStore::new(geo, IoCounter::new());
    for iv in &ivs[..split] {
        naive.insert(iv.lo, iv.hi, iv.id);
    }
    for iv in &ivs[split..] {
        idx.insert(iv.lo, iv.hi, iv.id);
        naive.insert(iv.lo, iv.hi, iv.id);
    }
    (idx, naive)
}

#[test]
fn stabbing_agrees_with_naive_and_oracle() {
    check::trials("diff_interval::stabbing", 60, 0x1F1, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let ivs = workload(rng);
        let (idx, naive) = build_both(rng, geo, &ivs);
        assert_eq!(idx.len(), ivs.len());
        assert_eq!(naive.len(), ivs.len());
        for _ in 0..12 {
            let q = rng.gen_range(-10i64..510);
            let want = oracle::stabbing_ids(&ivs, q);
            let probe = IoProbe::start(idx.counter(), format!("stabbing({q})"));
            let got = idx.stabbing(q);
            assert_read_only(probe.finish_query(got.len()), "index stabbing");
            oracle::assert_same_ids(got, want.clone(), &format!("index b={b} q={q}"));
            // workload() always yields ≥ 1 interval, so the naive store has
            // ≥ 1 page and even an empty-answer scan must be charged.
            let probe = IoProbe::start(naive.counter(), format!("naive stabbing({q})"));
            let got = naive.stabbing(q);
            assert_read_only(probe.finish_charged(), "naive stabbing");
            oracle::assert_same_ids(got, want, &format!("naive b={b} q={q}"));
        }
    });
}

#[test]
fn intersecting_agrees_with_naive_and_oracle() {
    check::trials("diff_interval::intersecting", 60, 0x1F2, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let ivs = workload(rng);
        let (idx, naive) = build_both(rng, geo, &ivs);
        for _ in 0..12 {
            let a = rng.gen_range(-10i64..510);
            let w = rng.gen_range(0i64..80);
            let want = oracle::intersecting_ids(&ivs, a, a + w);
            let probe = IoProbe::start(idx.counter(), format!("intersecting({a},{})", a + w));
            let got = idx.intersecting(a, a + w);
            assert_read_only(probe.finish_query(got.len()), "index intersecting");
            oracle::assert_same_ids(got, want.clone(), &format!("index b={b} q=[{a},{}]", a + w));
            oracle::assert_same_ids(
                naive.intersecting(a, a + w),
                want,
                &format!("naive b={b} q=[{a},{}]", a + w),
            );
        }
    });
}

#[test]
fn index_beats_scan_at_scale() {
    // Not just agreement — the differential pair also witnesses the
    // complexity separation the reduction is for: on a large input the
    // index's stabbing cost is far below the scan's n/B floor.
    let geo = Geometry::new(16);
    let n = 20_000usize;
    let ivs = workloads::uniform_intervals(n, 0x1F3, 4 * n as i64, 500);
    let idx = IndexBuilder::new(geo).bulk(IoCounter::new(), &ivs);
    let mut naive = NaiveIntervalStore::new(geo, IoCounter::new());
    for iv in &ivs {
        naive.insert(iv.lo, iv.hi, iv.id);
    }
    let mut rng = DetRng::new(0x1F4);
    let mut idx_io = 0u64;
    let mut scan_io = 0u64;
    for _ in 0..16 {
        let q = rng.gen_range(0..4 * n as i64);
        let probe = IoProbe::start(idx.counter(), "index");
        let a = idx.stabbing(q);
        idx_io += probe.finish_query(a.len()).reads;
        let probe = IoProbe::start(naive.counter(), "scan");
        let b = naive.stabbing(q);
        scan_io += probe.finish_charged().reads;
        assert_eq!(a.len(), b.len());
    }
    assert!(
        idx_io * 10 < scan_io,
        "index ({idx_io} reads) should be ≥10x below the scan ({scan_io} reads)"
    );
}
