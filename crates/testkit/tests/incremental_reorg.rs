//! Differential suite for the incremental-reorganisation engine
//! (`Tuning::reorg_pages_per_op`) and the mixed batched write path
//! (`apply_batch`).
//!
//! Four properties are pinned:
//!
//! * **oracle agreement mid-dribble** — with a finite per-op budget, a
//!   delete-heavy flood keeps a background shrink job in flight most of
//!   the time; every query issued while the job is mid-collect, mid-merge
//!   or mid-drain must agree with the linear-scan oracle, and the
//!   structural validators must pass at arbitrary job phases;
//! * **bounded per-op transfers** — with budget `k`, no single insert or
//!   delete may exceed an `O(height) + O(k)` envelope: the full-rebuild
//!   spike of the stop-the-world shrink (`O(n/B)` transfers in one op)
//!   must be gone;
//! * **debt conservation** — after `flush_reorgs()` the job is complete,
//!   the debt meter is empty, and the tree validates;
//! * **mixed batches share the descent** — `apply_batch` over a correlated
//!   insert/delete flood costs no more I/Os than applying the same ops
//!   serially, on both trees and through `IntervalIndex` / `ClassIndex`.

use ccix_class::{ClassIndex, ClassOp, RakeClassIndex, RangeTreeClassIndex};
use ccix_core::{MetablockTree, Op, ThreeSidedTree, Tuning};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_interval::{IndexBuilder, IntervalOp, IntervalOptions};
use ccix_testkit::iocheck::IoProbe;
use ccix_testkit::workloads::{IntervalOp as FloodOp, ObjectOp, PointOp};
use ccix_testkit::{check, oracle, workloads, DetRng};

/// A tuning whose incremental budget is always finite, with the shrink
/// trigger low enough that delete floods start background jobs often.
fn dribble_tuning(rng: &mut DetRng) -> Tuning {
    Tuning {
        update_batch_pages: rng.gen_range(1..6usize),
        td_batch_pages: rng.gen_range(1..4usize),
        tomb_batch_pages: rng.gen_range(1..4usize),
        shrink_deletes_pct: rng.gen_range(5..40usize),
        ts_snapshot_pages: if rng.gen_bool(0.5) {
            None
        } else {
            Some(rng.gen_range(1..9usize))
        },
        corner_alpha: 2,
        pack_h_pages: rng.gen_range(0..5usize),
        resident_root: rng.gen_bool(0.5),
        build_threads: 1,
        shard_threads: 1,
        reorg_pages_per_op: *rng.choose(&[1usize, 2, 4, 8]).expect("nonempty"),
    }
}

/// Diagonal tree under a delete-heavy mixed flood with a finite budget:
/// queries and validators must hold at every job phase, and the job must
/// eventually complete with the debt fully bled.
#[test]
fn diag_dribble_agrees_with_oracle_mid_job() {
    check::trials("incremental_reorg::diag_dribble", 32, 0x1AC0, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let tuning = dribble_tuning(rng);
        let range = rng.gen_range(30i64..400);
        let ops = workloads::mixed_interval_flood(
            rng.gen_range(50..700usize),
            rng.next_u64(),
            range,
            range / 2 + 1,
            40,
            12,
        );
        let mut tree = MetablockTree::new_tuned(geo, IoCounter::new(), Default::default(), tuning);
        let mut live: Vec<Point> = Vec::new();
        let mut saw_job = false;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                FloodOp::Insert(iv) => {
                    tree.insert(Point::new(iv.lo, iv.hi, iv.id));
                    live.push(Point::new(iv.lo, iv.hi, iv.id));
                }
                FloodOp::Delete(iv) => {
                    tree.delete(oracle::remove_point(&mut live, iv.id));
                }
                FloodOp::Stab(q) => {
                    oracle::assert_same_points(
                        tree.query(q),
                        oracle::diagonal_corner(&live, q),
                        &format!("b={b} tuning={tuning:?} q={q}"),
                    );
                }
            }
            saw_job |= tree.reorg_in_progress();
            if i % 61 == 0 {
                // The validator must hold mid-collect/merge/drain too.
                tree.validate_unbilled();
            }
        }
        tree.flush_reorgs();
        assert!(!tree.reorg_in_progress(), "flush completes the job");
        assert_eq!(tree.reorg_debt(), 0, "flush bleeds every deferred transfer");
        tree.validate_unbilled();
        assert_eq!(tree.len(), live.len());
        let q = rng.gen_range(-1..range + 1);
        oracle::assert_same_points(
            tree.query(q),
            oracle::diagonal_corner(&live, q),
            &format!("post-flush b={b} q={q} saw_job={saw_job}"),
        );
    });
}

/// 3-sided tree under the same discipline.
#[test]
fn threesided_dribble_agrees_with_oracle_mid_job() {
    check::trials("incremental_reorg::threesided_dribble", 24, 0x1AC1, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let tuning = dribble_tuning(rng);
        let range = rng.gen_range(30i64..400);
        let ops = workloads::mixed_point_flood(
            rng.gen_range(50..600usize),
            rng.next_u64(),
            range,
            40,
            12,
        );
        let mut tree = ThreeSidedTree::new_tuned(geo, IoCounter::new(), tuning);
        let mut live: Vec<Point> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                PointOp::Insert(p) => {
                    tree.insert(p);
                    live.push(p);
                }
                PointOp::Delete(p) => {
                    tree.delete(oracle::remove_point(&mut live, p.id));
                }
                PointOp::Query(x1, x2, y0) => {
                    oracle::assert_same_points(
                        tree.query(x1, x2, y0),
                        oracle::three_sided(&live, x1, x2, y0),
                        &format!("b={b} tuning={tuning:?} q=({x1},{x2},{y0})"),
                    );
                }
            }
            if i % 61 == 0 {
                tree.validate_unbilled();
            }
        }
        tree.flush_reorgs();
        assert_eq!(tree.reorg_debt(), 0);
        tree.validate_unbilled();
        assert_eq!(tree.len(), live.len());
    });
}

/// The tentpole's worst-case claim: with budget `k`, no single write op
/// may exceed an `O(height) + O(k)` transfer envelope — in particular the
/// old stop-the-world shrink spike (`O(n/B)` transfers inside one delete)
/// must be gone. Runs a bulk-built tree through a delete-heavy flood that
/// provably starts shrink jobs, probing **every op individually**.
#[test]
fn per_op_transfers_bounded_by_budget() {
    for &k in &[1usize, 4] {
        let b = 8usize;
        let geo = Geometry::new(b);
        let n = 12_000usize;
        let tuning = Tuning {
            reorg_pages_per_op: k,
            shrink_deletes_pct: 30,
            build_threads: 1,
            ..Tuning::default()
        };
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = ((i * 37) % 20_000) as i64;
                Point::new(x, x + ((i * 13) % 500) as i64, i as u64)
            })
            .collect();
        let counter = IoCounter::new();
        let mut tree = MetablockTree::build_tuned(
            geo,
            counter.clone(),
            pts.clone(),
            Default::default(),
            tuning,
        );
        // Routing costs O(height) control blocks plus a constant number of
        // page appends; the pump adds at most k bled transfers. The old
        // stop-the-world shrink rebuilt ~2n/B ≈ 3000 pages inside one
        // delete, far above this envelope.
        let bound = (6 * (geo.log_b(n) + 3) + 2 * k + 48) as u64;
        let mut rng = DetRng::new(0x1AC2);
        let mut live = pts;
        let mut next_id = n as u64;
        let mut saw_job = false;
        for step in 0..3 * n / 4 {
            let probe = IoProbe::start(&counter, format!("k={k} op {step}"));
            if step % 10 == 9 {
                // A sprinkle of inserts exercises the frozen-tree divert.
                let x = rng.gen_range(0..20_000i64);
                tree.insert(Point::new(x, x + rng.gen_range(0..500i64), next_id));
                next_id += 1;
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                tree.delete(victim);
            }
            probe.finish_within(bound);
            saw_job |= tree.reorg_in_progress();
        }
        assert!(saw_job, "the flood never started a background job (k={k})");
        tree.flush_reorgs();
        assert_eq!(tree.reorg_debt(), 0);
        tree.validate_unbilled();
    }
}

/// As above on the 3-sided tree (small extra headroom for its PST terms).
#[test]
fn per_op_transfers_bounded_by_budget_threesided() {
    let b = 8usize;
    let k = 2usize;
    let geo = Geometry::new(b);
    let n = 9_000usize;
    let tuning = Tuning {
        reorg_pages_per_op: k,
        shrink_deletes_pct: 30,
        build_threads: 1,
        ..Tuning::default()
    };
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            Point::new(
                ((i * 37) % 15_000) as i64,
                ((i * 13) % 4_000) as i64,
                i as u64,
            )
        })
        .collect();
    let counter = IoCounter::new();
    let mut tree = ThreeSidedTree::build_tuned(geo, counter.clone(), pts.clone(), tuning);
    let bound = (6 * (geo.log_b(n) + 3) + 2 * k + 64) as u64;
    let mut rng = DetRng::new(0x1AC3);
    let mut live = pts;
    let mut saw_job = false;
    for step in 0..3 * n / 4 {
        let victim = live.swap_remove(rng.gen_range(0..live.len()));
        let probe = IoProbe::start(&counter, format!("3s op {step}"));
        tree.delete(victim);
        probe.finish_within(bound);
        saw_job |= tree.reorg_in_progress();
    }
    assert!(saw_job, "the flood never started a background job");
    tree.flush_reorgs();
    assert_eq!(tree.reorg_debt(), 0);
    tree.validate_unbilled();
}

/// A correlated mixed flood for the apply-batch cost comparisons: deletes
/// of existing points inside one tight x-window interleaved with fresh
/// inserts into the same window.
fn correlated_mixed_ops(n: usize) -> (Vec<Point>, Vec<Op>) {
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let x = ((i * 37) % 20_000) as i64;
            Point::new(x, x + ((i * 13) % 500) as i64, i as u64)
        })
        .collect();
    let mut ops = Vec::new();
    for (fresh, p) in (n as u64..).zip(pts.iter().filter(|p| p.x < 600)) {
        ops.push(Op::Delete(*p));
        ops.push(Op::Insert(Point::new(p.x + 1, p.x + 300, fresh)));
    }
    assert!(ops.len() > 128, "flood is non-trivial");
    (pts, ops)
}

/// Mixed batches share the descent: on a correlated insert/delete flood,
/// `apply_batch` costs no more I/Os than applying the same ops serially,
/// and both end in the same logical state.
#[test]
fn apply_batch_shares_the_descent() {
    let geo = Geometry::new(16);
    let (pts, ops) = correlated_mixed_ops(8_000);

    let serial_counter = IoCounter::new();
    let mut serial = MetablockTree::build(geo, serial_counter.clone(), pts.clone());
    let before = serial_counter.snapshot();
    for op in &ops {
        match *op {
            Op::Insert(p) => serial.insert(p),
            Op::Delete(p) => serial.delete(p),
        }
    }
    let serial_cost = serial_counter.since(before).total();

    let batch_counter = IoCounter::new();
    let mut batched = MetablockTree::build(geo, batch_counter.clone(), pts);
    let before = batch_counter.snapshot();
    batched.apply_batch(&ops);
    let batch_cost = batch_counter.since(before).total();

    assert!(
        batch_cost <= serial_cost,
        "batched mixed ops cost {batch_cost} I/Os, serial {serial_cost}"
    );
    serial.validate_unbilled();
    batched.validate_unbilled();
    assert_eq!(serial.len(), batched.len());
    for q in [100i64, 300, 5_000] {
        let mut a = serial.query(q);
        let mut c = batched.query(q);
        a.sort_unstable_by_key(|p| p.id);
        c.sort_unstable_by_key(|p| p.id);
        assert_eq!(a, c, "q={q}");
    }
}

/// As above on the 3-sided tree.
#[test]
fn apply_batch_shares_the_descent_threesided() {
    let geo = Geometry::new(16);
    let n = 8_000usize;
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            Point::new(
                ((i * 37) % 20_000) as i64,
                ((i * 13) % 4_000) as i64,
                i as u64,
            )
        })
        .collect();
    let mut ops = Vec::new();
    for (fresh, p) in (n as u64..).zip(pts.iter().filter(|p| p.x < 600)) {
        ops.push(Op::Delete(*p));
        ops.push(Op::Insert(Point::new(p.x + 1, p.y + 1, fresh)));
    }
    assert!(ops.len() > 128, "flood is non-trivial");

    let serial_counter = IoCounter::new();
    let mut serial = ThreeSidedTree::build(geo, serial_counter.clone(), pts.clone());
    let before = serial_counter.snapshot();
    for op in &ops {
        match *op {
            Op::Insert(p) => serial.insert(p),
            Op::Delete(p) => serial.delete(p),
        }
    }
    let serial_cost = serial_counter.since(before).total();

    let batch_counter = IoCounter::new();
    let mut batched = ThreeSidedTree::build(geo, batch_counter.clone(), pts);
    let before = batch_counter.snapshot();
    batched.apply_batch(&ops);
    let batch_cost = batch_counter.since(before).total();

    assert!(
        batch_cost <= serial_cost,
        "batched mixed ops cost {batch_cost} I/Os, serial {serial_cost}"
    );
    serial.validate_unbilled();
    batched.validate_unbilled();
    assert_eq!(serial.len(), batched.len());
    let mut a = serial.query(0, 700, -1);
    let mut c = batched.query(0, 700, -1);
    a.sort_unstable_by_key(|p| p.id);
    c.sort_unstable_by_key(|p| p.id);
    assert_eq!(a, c);
}

/// `IntervalIndex::apply_batch` agrees with the oracle across random
/// chunked mixed floods, under random budgets (including finite ones) and
/// both endpoint modes.
#[test]
fn interval_apply_batch_agrees_with_oracle() {
    check::trials("incremental_reorg::interval_apply", 24, 0x1AC4, |rng| {
        let b = rng.gen_range(2usize..8);
        let geo = Geometry::new(b);
        let mut tuning = dribble_tuning(rng);
        if rng.gen_bool(0.3) {
            tuning.reorg_pages_per_op = 0; // the all-at-once corner
        }
        let options = IntervalOptions {
            endpoints: if rng.gen_bool(0.5) {
                ccix_interval::EndpointMode::Slab
            } else {
                ccix_interval::EndpointMode::BTree
            },
            tuning,
            btree_leaf_fill: None,
        };
        let range = rng.gen_range(30i64..300);
        let flood = workloads::mixed_interval_flood(
            rng.gen_range(40..400usize),
            rng.next_u64(),
            range,
            range / 2 + 1,
            35,
            0,
        );
        let mut idx = IndexBuilder::new(geo)
            .options(options)
            .open(IoCounter::new());
        let mut live: Vec<ccix_interval::Interval> = Vec::new();
        let mut pending: Vec<IntervalOp> = Vec::new();
        let chunk = rng.gen_range(1..40usize);
        for op in flood {
            match op {
                FloodOp::Insert(iv) => {
                    pending.push(IntervalOp::Insert(iv));
                    live.push(iv);
                }
                FloodOp::Delete(iv) => {
                    // Ops in one batch must be independent: flush the
                    // pending batch if it inserts this victim.
                    let gone = oracle::remove_interval(&mut live, iv.id);
                    let clashes = pending.iter().any(|p| match p {
                        IntervalOp::Insert(x) => x.id == iv.id,
                        IntervalOp::Delete(_) => false,
                    });
                    if clashes {
                        idx.apply_batch(&pending);
                        pending.clear();
                    }
                    pending.push(IntervalOp::Delete(gone));
                }
                FloodOp::Stab(_) => {}
            }
            if pending.len() >= chunk {
                idx.apply_batch(&pending);
                pending.clear();
                let q = rng.gen_range(-1..range + 1);
                let w = rng.gen_range(0..40i64);
                oracle::assert_same_ids(
                    idx.intersecting(q, q + w),
                    oracle::intersecting_ids(&live, q, q + w),
                    &format!("b={b} tuning={tuning:?} q=[{q},{}]", q + w),
                );
            }
        }
        idx.apply_batch(&pending);
        assert_eq!(idx.len(), live.len());
        let q = rng.gen_range(-1..range + 1);
        oracle::assert_same_ids(
            idx.stabbing(q),
            oracle::stabbing_ids(&live, q),
            &format!("final b={b} q={q}"),
        );
    });
}

/// `RakeClassIndex::apply_batch` (grouped per heavy-path structure)
/// agrees with the range-tree strategy running the default one-at-a-time
/// implementation, and with the oracle.
#[test]
fn class_apply_batch_agrees_with_oracle() {
    check::trials("incremental_reorg::class_apply", 16, 0x1AC5, |rng| {
        let c = rng.gen_range(2..40usize);
        let parents = workloads::random_forest(rng, c);
        let h = ccix_class::Hierarchy::from_parents(&parents);
        let geo = Geometry::new(rng.gen_range(2usize..6));
        let attr_range = rng.gen_range(20i64..200);
        let flood = workloads::mixed_object_flood(
            &h,
            rng.gen_range(30..250usize),
            rng.next_u64(),
            attr_range,
            30,
            0,
        );
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rt = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut live: Vec<ccix_class::Object> = Vec::new();
        let mut pending: Vec<ClassOp> = Vec::new();
        let chunk = rng.gen_range(1..24usize);
        for op in flood {
            match op {
                ObjectOp::Insert(o) => {
                    pending.push(ClassOp::Insert(o));
                    live.push(o);
                }
                ObjectOp::Delete(o) => {
                    let gone = oracle::remove_object(&mut live, o.id);
                    let clashes = pending.iter().any(|p| match p {
                        ClassOp::Insert(x) => x.id == o.id,
                        ClassOp::Delete(_) => false,
                    });
                    if clashes {
                        rake.apply_batch(&pending);
                        rt.apply_batch(&pending);
                        pending.clear();
                    }
                    pending.push(ClassOp::Delete(gone));
                }
                ObjectOp::Query(_, _, _) => {}
            }
            if pending.len() >= chunk {
                rake.apply_batch(&pending);
                rt.apply_batch(&pending);
                pending.clear();
                let class = rng.gen_range(0..h.len());
                let a1 = rng.gen_range(-1..attr_range);
                let a2 = a1 + rng.gen_range(0..attr_range / 2 + 1);
                let want = oracle::class_range_ids(&h, &live, class, a1, a2);
                oracle::assert_same_ids(
                    rake.query(class, a1, a2),
                    want.clone(),
                    &format!("rake class={class} q=[{a1},{a2}]"),
                );
                oracle::assert_same_ids(
                    rt.query(class, a1, a2),
                    want,
                    &format!("rangetree class={class} q=[{a1},{a2}]"),
                );
            }
        }
        rake.apply_batch(&pending);
        rt.apply_batch(&pending);
        assert_eq!(rake.len(), live.len());
    });
}
