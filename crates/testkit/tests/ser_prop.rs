//! Property suite for the [`FixedBytes`] encodings — every record type
//! that ever hits a page on the file backend must round-trip exactly, and
//! reject byte strings a torn write could plausibly produce (truncation,
//! garbage tails, invalid bit patterns).

use ccix_extmem::ser::{decode_records, encode_records};
use ccix_extmem::{FixedBytes, Point};
use ccix_interval::Interval;
use ccix_testkit::check;
use ccix_testkit::rng::DetRng;

const TRIALS: usize = 64;

/// Round-trip one record and the framing invariants shared by every type:
/// exact width, `decode(encode(r)) == r`, and length-checked decode.
fn roundtrip<T: FixedBytes + PartialEq + std::fmt::Debug + Clone>(r: T) {
    let mut buf = Vec::new();
    r.encode_into(&mut buf);
    assert_eq!(buf.len(), T::SIZE, "encode must emit exactly SIZE bytes");
    assert_eq!(T::decode(&buf).as_ref(), Some(&r), "decode(encode(r)) != r");
    // Truncations: every strict prefix must be rejected.
    for cut in 0..T::SIZE {
        assert!(
            T::decode(&buf[..cut]).is_none(),
            "decoded a {cut}-byte truncation of a {}-byte record",
            T::SIZE
        );
    }
    // Garbage tail: extra bytes must be rejected by the single-record
    // decode, whatever their value.
    let mut long = buf.clone();
    long.push(0xA5);
    assert!(T::decode(&long).is_none(), "decoded a record with a tail");
}

/// Frame-level invariants of `encode_records`/`decode_records`: exact
/// frame width, round-trip, and rejection of any length that is not a
/// whole number of records (the torn-tail detector).
fn frame_roundtrip<T: FixedBytes + PartialEq + std::fmt::Debug + Clone>(records: &[T]) {
    let mut frame = Vec::new();
    encode_records(records, &mut frame);
    assert_eq!(frame.len(), records.len() * T::SIZE);
    assert_eq!(
        decode_records::<T>(&frame).as_deref(),
        Some(records),
        "frame round-trip failed"
    );
    if T::SIZE > 1 {
        // Chop mid-record: length arithmetic alone must reject it.
        let torn = &frame[..frame.len().saturating_sub(1)];
        if !records.is_empty() {
            assert!(
                decode_records::<T>(torn).is_none(),
                "decoded a torn frame of {} bytes",
                torn.len()
            );
        }
        let mut tailed = frame.clone();
        tailed.extend_from_slice(&[0xEE; 3][..(T::SIZE - 1).min(3)]);
        assert!(
            decode_records::<T>(&tailed).is_none(),
            "decoded a frame with a garbage tail"
        );
    }
}

fn random_point(rng: &mut DetRng) -> Point {
    Point::new(rng.next_u64() as i64, rng.next_u64() as i64, rng.next_u64())
}

fn random_interval(rng: &mut DetRng) -> Interval {
    let lo = (rng.next_u64() % 2_000_000) as i64 - 1_000_000;
    let len = (rng.next_u64() % 100_000) as i64;
    Interval::new(lo, lo + len, rng.next_u64())
}

#[test]
fn points_roundtrip_and_reject_torn_bytes() {
    check::trials("ser_prop::point", TRIALS, 0x5e7_0001, |rng| {
        let p = random_point(rng);
        roundtrip(p);
        let run: Vec<Point> = (0..rng.gen_range(0..20usize))
            .map(|_| random_point(rng))
            .collect();
        frame_roundtrip(&run);
    });
}

#[test]
fn integers_roundtrip_and_reject_torn_bytes() {
    check::trials("ser_prop::ints", TRIALS, 0x5e7_0002, |rng| {
        roundtrip(rng.next_u64());
        roundtrip(rng.next_u64() as u32);
        roundtrip(rng.next_u64() as u8);
        let n = rng.gen_range(0..30usize);
        frame_roundtrip(&(0..n).map(|_| rng.next_u64()).collect::<Vec<_>>());
        frame_roundtrip(&(0..n).map(|_| rng.next_u64() as u32).collect::<Vec<_>>());
        // u8 frames: bytes are their own encoding, so any length decodes —
        // that is exactly what lets `Disk` ride the same mirror.
        let raw: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        frame_roundtrip(&raw);
        assert_eq!(decode_records::<u8>(&raw).as_deref(), Some(raw.as_slice()));
    });
}

#[test]
fn intervals_roundtrip_and_reject_invalid_encodings() {
    check::trials("ser_prop::interval", TRIALS, 0x5e7_0003, |rng| {
        let iv = random_interval(rng);
        roundtrip(iv);
        let run: Vec<Interval> = (0..rng.gen_range(0..20usize))
            .map(|_| random_interval(rng))
            .collect();
        frame_roundtrip(&run);

        // An interval with hi < lo is not a value `Interval::new` can
        // produce, so its encoding must be rejected, not smuggled in.
        let mut bad = Vec::new();
        iv.encode_into(&mut bad);
        bad[0..8].copy_from_slice(&(iv.hi + 1).to_le_bytes()); // lo := hi + 1
        assert!(
            Interval::decode(&bad).is_none(),
            "decoded an interval with hi < lo"
        );
    });
}

#[test]
fn interval_wire_layout_matches_its_point_mapping() {
    // The index stores an interval (lo, hi, id) as the point (lo, hi, id);
    // the two encodings are deliberately identical so the stab-store pages
    // of a persisted index are readable either way.
    check::trials("ser_prop::interval_point", TRIALS, 0x5e7_0004, |rng| {
        let iv = random_interval(rng);
        let p = Point::new(iv.lo, iv.hi, iv.id);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        iv.encode_into(&mut a);
        p.encode_into(&mut b);
        assert_eq!(a, b, "Interval and Point wire layouts diverged");
        assert_eq!(Interval::SIZE, Point::SIZE);
    });
}
