//! Differential suite for the delete path (the paper's §5 open problem,
//! closed with tombstones).
//!
//! Four properties are pinned, across random geometries and tunings:
//!
//! * **oracle agreement under interleaving** — random insert/delete/query
//!   interleavings (`workloads::mixed_*_flood`) must agree with the
//!   delete-aware linear-scan oracle at every query, including queries
//!   issued while tombstone buffers and TD delete sides are partially
//!   full, and the structural validators must pass mid-flood;
//! * **the whole stack deletes** — `IntervalIndex` (both endpoint modes),
//!   `ThreeSidedTree` and every `ClassIndex` strategy agree with their
//!   oracles under the same interleavings;
//! * **amortised delete budget** — across windows of `10·B` deletes, an
//!   `IoProbe` keeps the delete flood within the same envelope the insert
//!   suite enforces (deletes ride the insert machinery, so their budget is
//!   the insert budget);
//! * **space stays bounded** — draining a tree to a fraction of its size
//!   triggers the occupancy shrink and space returns to `O(live/B)`.

use ccix_class::{
    ClassIndex, FullExtentBaseline, RakeClassIndex, RangeTreeClassIndex, SingleIndexBaseline,
};
use ccix_core::{MetablockTree, ThreeSidedTree, Tuning};
use ccix_extmem::{Geometry, IoCounter, Point};
use ccix_interval::{EndpointMode, IndexBuilder, IntervalOptions};
use ccix_testkit::iocheck::IoProbe;
use ccix_testkit::workloads::{IntervalOp, ObjectOp, PointOp};
use ccix_testkit::{check, oracle, workloads, DetRng};

/// A tuning drawn from the corners of the knob space, including the
/// delete-side knobs (tombstone batching, shrink trigger).
fn random_tuning(rng: &mut DetRng) -> Tuning {
    match rng.gen_range(0..4u32) {
        0 => Tuning::paper(),
        1 => Tuning::default(),
        2 => Tuning {
            update_batch_pages: rng.gen_range(1..9usize),
            td_batch_pages: rng.gen_range(1..5usize),
            tomb_batch_pages: rng.gen_range(1..5usize),
            shrink_deletes_pct: *rng.choose(&[0usize, 25, 50, 100]).expect("nonempty"),
            ts_snapshot_pages: None,
            corner_alpha: rng.gen_range(2..5usize),
            pack_h_pages: rng.gen_range(0..9usize),
            resident_root: rng.gen_bool(0.5),
            build_threads: 1,
            shard_threads: 1,
            reorg_pages_per_op: *rng.choose(&[0usize, 0, 1, 4]).expect("nonempty"),
        },
        _ => Tuning {
            update_batch_pages: 8,
            td_batch_pages: 4,
            tomb_batch_pages: rng.gen_range(1..9usize),
            shrink_deletes_pct: *rng.choose(&[0usize, 50]).expect("nonempty"),
            ts_snapshot_pages: Some(rng.gen_range(1..9usize)),
            corner_alpha: 2,
            pack_h_pages: rng.gen_range(0..5usize),
            resident_root: rng.gen_bool(0.5),
            build_threads: 1,
            shard_threads: 1,
            reorg_pages_per_op: *rng.choose(&[0usize, 0, 2]).expect("nonempty"),
        },
    }
}

/// Interval index vs the delete-aware oracle under random interleavings,
/// both endpoint modes, random tunings, queries mid-buffer.
#[test]
fn interval_index_mixed_flood_agrees_with_oracle() {
    check::trials("deletions::interval_mixed", 40, 0xDE1E, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let options = IntervalOptions {
            endpoints: if rng.gen_bool(0.5) {
                EndpointMode::Slab
            } else {
                EndpointMode::BTree
            },
            tuning: random_tuning(rng),
            btree_leaf_fill: None,
        };
        let range = rng.gen_range(30i64..500);
        let n_ops = rng.gen_range(10..700usize);
        let del_pct = rng.gen_range(10..45u32);
        let ops = workloads::mixed_interval_flood(
            n_ops,
            rng.next_u64(),
            range,
            range / 3 + 1,
            del_pct,
            15,
        );
        let mut idx = IndexBuilder::new(geo)
            .options(options)
            .open(IoCounter::new());
        let mut live = Vec::new();
        for op in ops {
            match op {
                IntervalOp::Insert(iv) => {
                    idx.insert(iv.lo, iv.hi, iv.id);
                    live.push(iv);
                }
                IntervalOp::Delete(iv) => {
                    let gone = oracle::remove_interval(&mut live, iv.id);
                    idx.delete(gone.lo, gone.hi, gone.id);
                }
                IntervalOp::Stab(q) => {
                    oracle::assert_same_ids(
                        idx.stabbing(q),
                        oracle::stabbing_ids(&live, q),
                        &format!("b={b} options={options:?} stab({q})"),
                    );
                    let w = rng.gen_range(0i64..40);
                    oracle::assert_same_ids(
                        idx.intersecting(q, q + w),
                        oracle::intersecting_ids(&live, q, q + w),
                        &format!("b={b} options={options:?} intersect({q},{})", q + w),
                    );
                }
            }
            assert_eq!(idx.len(), live.len());
        }
        // Batched deletes of whatever remains, chunked, vs batched reads.
        while !live.is_empty() {
            let take = rng.gen_range(1..live.len() + 1).min(live.len());
            let chunk: Vec<(i64, i64, u64)> =
                live.drain(..take).map(|iv| (iv.lo, iv.hi, iv.id)).collect();
            idx.delete_batch(&chunk);
            let qs = workloads::uniform_flood(8, rng.next_u64(), range);
            for (q, got) in qs.iter().zip(idx.stab_batch(&qs)) {
                oracle::assert_same_ids(
                    got,
                    oracle::stabbing_ids(&live, *q),
                    &format!("b={b} drained stab_batch({q})"),
                );
            }
        }
        assert!(idx.is_empty());
    });
}

/// Diagonal metablock tree under mixed floods: oracle agreement plus the
/// full structural validator at every delete-heavy checkpoint.
#[test]
fn metablock_tree_mixed_flood_validates() {
    check::trials("deletions::diag_mixed", 32, 0xDE1F, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let range = rng.gen_range(30i64..400);
        let ops = workloads::mixed_interval_flood(
            rng.gen_range(10..600usize),
            rng.next_u64(),
            range,
            range / 2 + 1,
            rng.gen_range(15..50u32),
            10,
        );
        let mut tree = MetablockTree::new_tuned(geo, IoCounter::new(), Default::default(), tuning);
        let mut live: Vec<Point> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                IntervalOp::Insert(iv) => {
                    tree.insert(Point::new(iv.lo, iv.hi, iv.id));
                    live.push(Point::new(iv.lo, iv.hi, iv.id));
                }
                IntervalOp::Delete(iv) => {
                    let gone = oracle::remove_point(&mut live, iv.id);
                    tree.delete(gone);
                }
                IntervalOp::Stab(q) => {
                    oracle::assert_same_points(
                        tree.query(q),
                        oracle::diagonal_corner(&live, q),
                        &format!("b={b} tuning={tuning:?} q={q}"),
                    );
                }
            }
            if i % 97 == 0 {
                tree.validate_unbilled();
            }
        }
        tree.validate_unbilled();
        assert_eq!(tree.len(), live.len());
    });
}

/// 3-sided tree under mixed point floods: oracle agreement, validator,
/// batch-vs-serial delete equivalence.
#[test]
fn threesided_tree_mixed_flood_validates() {
    check::trials("deletions::threesided_mixed", 32, 0xDE20, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let tuning = random_tuning(rng);
        let range = rng.gen_range(30i64..400);
        let ops = workloads::mixed_point_flood(
            rng.gen_range(10..600usize),
            rng.next_u64(),
            range,
            rng.gen_range(15..50u32),
            10,
        );
        let mut tree = ThreeSidedTree::new_tuned(geo, IoCounter::new(), tuning);
        let mut live: Vec<Point> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                PointOp::Insert(p) => {
                    tree.insert(p);
                    live.push(p);
                }
                PointOp::Delete(p) => {
                    tree.delete(oracle::remove_point(&mut live, p.id));
                }
                PointOp::Query(x1, x2, y0) => {
                    oracle::assert_same_points(
                        tree.query(x1, x2, y0),
                        oracle::three_sided(&live, x1, x2, y0),
                        &format!("b={b} tuning={tuning:?} q=({x1},{x2},{y0})"),
                    );
                }
            }
            if i % 97 == 0 {
                tree.validate_unbilled();
            }
        }
        // Drain by batch, then the tree must be logically empty.
        tree.delete_batch(&live);
        tree.validate_unbilled();
        assert_eq!(tree.len(), 0);
        assert!(tree.query(i64::MIN, i64::MAX, i64::MIN).is_empty());
    });
}

/// Every class-index strategy honours deletes and keeps agreeing with the
/// delete-aware full-extent oracle (and with each other).
#[test]
fn class_strategies_mixed_flood_agree() {
    check::trials("deletions::class_mixed", 24, 0xDE21, |rng| {
        let b = rng.gen_range(2usize..9);
        let geo = Geometry::new(b);
        let parents = workloads::random_forest(rng, 20);
        let h = ccix_class::Hierarchy::from_parents(&parents);
        let ops = workloads::mixed_object_flood(
            &h,
            rng.gen_range(10..400usize),
            rng.next_u64(),
            rng.gen_range(20i64..300),
            rng.gen_range(15..45u32),
            15,
        );
        let mut strategies: Vec<Box<dyn ClassIndex>> = vec![
            Box::new(SingleIndexBaseline::new(h.clone(), geo, IoCounter::new())),
            Box::new(FullExtentBaseline::new(h.clone(), geo, IoCounter::new())),
            Box::new(RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new())),
            Box::new(RakeClassIndex::new(h.clone(), geo, IoCounter::new())),
        ];
        let mut live = Vec::new();
        for op in ops {
            match op {
                ObjectOp::Insert(o) => {
                    for s in &mut strategies {
                        s.insert(o);
                    }
                    live.push(o);
                }
                ObjectOp::Delete(o) => {
                    let gone = oracle::remove_object(&mut live, o.id);
                    for s in &mut strategies {
                        s.delete(gone);
                    }
                }
                ObjectOp::Query(class, a1, a2) => {
                    let want = oracle::class_range_ids(&h, &live, class, a1, a2);
                    for s in &strategies {
                        oracle::assert_same_ids(
                            s.query(class, a1, a2),
                            want.clone(),
                            &format!("b={b} {} query({class},{a1},{a2})", s.name()),
                        );
                    }
                }
            }
        }
        // Batched drain through the trait, then everything must be empty.
        for s in &mut strategies {
            s.delete_batch(&live);
            for class in 0..h.len() {
                assert!(
                    s.query(class, i64::MIN, i64::MAX).is_empty(),
                    "{} still answers after drain",
                    s.name()
                );
            }
        }
    });
}

/// Amortised delete budget: across every window of `10·B` deletes, a
/// delete flood stays within the same envelope the insert suite enforces
/// (`batched_insert::amortised_insert_cost_within_bound`) — deletes ride
/// the insert machinery, so their budget is the insert budget. The shrink
/// rebuild (`O(n/B)` once per `Θ(n)` deletes) gets the same one-spike
/// allowance the insert windows give reorganisation cascades.
#[test]
fn amortised_delete_cost_within_insert_budget() {
    for &b in &[8usize, 16, 32] {
        let geo = Geometry::new(b);
        let n = 6_000 * b / 8;
        let counter = IoCounter::new();
        let mut tree = MetablockTree::new(geo, counter.clone());
        let mut rng = DetRng::new(0xDE_0000 + b as u64);
        let mut live: Vec<Point> = Vec::new();
        for i in 0..n {
            let lo = rng.gen_range(0..(4 * n) as i64);
            let p = Point::new(lo, lo + rng.gen_range(0..1_000i64), i as u64);
            tree.insert(p);
            live.push(p);
        }
        let window = 10 * b;
        let logb = geo.log_b(n) as f64;
        let per_delete_budget = 6.0 * (logb + logb * logb / b as f64) + 12.0;
        // One spike allowance per window: a TS reorganisation re-snapshots
        // a whole level (Θ(B²) I/Os, amortised over Θ(B²) updates) and the
        // occupancy shrink statically rebuilds O(n/B) pages once per
        // Θ(n) deletes.
        let spike = 4 * b * b * geo.log_b(n) + 14 * n / b + 64;
        let mut deleted = 0usize;
        while deleted + window <= live.len() {
            let window_budget = (per_delete_budget * window as f64).ceil() as u64 + spike as u64;
            let probe = IoProbe::start(&counter, format!("b={b} delete window at {deleted}"));
            for _ in 0..window {
                let idx = rng.gen_range(0..live.len());
                let victim = live.swap_remove(idx);
                tree.delete(victim);
                deleted += 1;
            }
            probe.finish_within(window_budget);
        }
        tree.validate_unbilled();
        assert_eq!(tree.len(), live.len());
    }
}

/// Batched deletes agree with serial deletes and share the descent: on a
/// correlated flood, the batch costs no more I/Os than deleting one at a
/// time (it shares every pinned prefix the serial path re-reads).
#[test]
fn delete_batch_shares_the_descent() {
    let b = 16usize;
    let geo = Geometry::new(b);
    let n = 8_000usize;
    let mk = |counter: &IoCounter| {
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let x = ((i * 37) % 20_000) as i64;
                Point::new(x, x + ((i * 13) % 500) as i64, i as u64)
            })
            .collect();
        MetablockTree::build(geo, counter.clone(), pts)
    };
    // A correlated victim flood: one tight x-window.
    let victims: Vec<Point> = (0..n)
        .filter(|i| ((i * 37) % 20_000) < 600)
        .map(|i| {
            let x = ((i * 37) % 20_000) as i64;
            Point::new(x, x + ((i * 13) % 500) as i64, i as u64)
        })
        .collect();
    assert!(victims.len() > 64, "flood is non-trivial");

    let serial_counter = IoCounter::new();
    let mut serial = mk(&serial_counter);
    let before = serial_counter.snapshot();
    for p in &victims {
        serial.delete(*p);
    }
    let serial_cost = serial_counter.since(before).total();

    let batch_counter = IoCounter::new();
    let mut batched = mk(&batch_counter);
    let before = batch_counter.snapshot();
    batched.delete_batch(&victims);
    let batch_cost = batch_counter.since(before).total();

    assert!(
        batch_cost <= serial_cost,
        "batched deletes cost {batch_cost} I/Os, serial {serial_cost}"
    );
    // Both end in the same logical state.
    serial.validate_unbilled();
    batched.validate_unbilled();
    assert_eq!(serial.len(), batched.len());
    let mut a = serial.query(300);
    let mut c = batched.query(300);
    a.sort_unstable_by_key(|p| p.id);
    c.sort_unstable_by_key(|p| p.id);
    assert_eq!(a, c);
}

/// Space under delete floods: draining a bulk-built tree to 10% occupancy
/// must shrink it back to `O(live/B)` pages (the occupancy-triggered
/// merge-based rebuild), on both trees.
#[test]
fn shrink_bounds_space_under_delete_floods() {
    let geo = Geometry::new(16);
    let n = 30_000usize;

    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let x = ((i * 37) % 9_000) as i64;
            Point::new(x, x + ((i * 13) % 700) as i64, i as u64)
        })
        .collect();
    let mut diag = MetablockTree::build(geo, IoCounter::new(), pts.clone());
    let full = diag.space_pages();
    diag.delete_batch(&pts[..9 * n / 10]);
    diag.validate_unbilled();
    let drained = diag.space_pages();
    assert!(
        drained * 4 < full,
        "diag shrink failed: {full} -> {drained} pages at 10% occupancy"
    );

    let pts3: Vec<Point> = (0..n)
        .map(|i| Point::new(((i * 37) % 9_000) as i64, ((i * 13) % 700) as i64, i as u64))
        .collect();
    let mut ts = ThreeSidedTree::build(geo, IoCounter::new(), pts3.clone());
    let full = ts.space_pages();
    ts.delete_batch(&pts3[..9 * n / 10]);
    ts.validate_unbilled();
    let drained = ts.space_pages();
    assert!(
        drained * 4 < full,
        "3-sided shrink failed: {full} -> {drained} pages at 10% occupancy"
    );
}
