//! # `ccix-pst` — priority search trees
//!
//! Two structures for **3-sided range reporting** — given points in the
//! plane, report every point with `x1 ≤ x ≤ x2` and `y ≥ y0`:
//!
//! * [`InCorePst`] — McCreight's priority search tree \[25\], the in-core
//!   yardstick the paper cites: `O(n)` space, `O(log2 n + t)` query.
//! * [`ExternalPst`] — the external static structure of Lemma 4.1 (after
//!   Icking, Klein and Ottmann \[17\]): a binary tree whose every node packs
//!   `B` points into one disk page; `O(n/B)` pages, `O(log2 n + t/B)` I/Os
//!   per query.
//!
//! The external PST is the workhorse of §4: the 3-sided metablock tree
//! builds one per metablock (`B²` points), one per interior node's children
//! (`B³` points), and uses them as its "TD" insert buffers. On `B³`-sized
//! inputs its query cost is the `O(log2 B)` additive term in Theorem 4.7.
//!
//! ```
//! use ccix_extmem::{Geometry, IoCounter, Point};
//! use ccix_pst::ExternalPst;
//!
//! let pts: Vec<Point> = (0..100).map(|i| Point::new(i, i % 10, i as u64)).collect();
//! let pst = ExternalPst::build(Geometry::new(4), IoCounter::new(), pts);
//! let mut out = Vec::new();
//! pst.query_into(20, 40, 8, &mut out);
//! assert!(out.iter().all(|p| p.x >= 20 && p.x <= 40 && p.y >= 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod external;
mod incore;
pub mod oracle;

pub use external::{ExternalPst, PstPlan};
pub use incore::InCorePst;
