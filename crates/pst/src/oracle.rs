//! Naive reference answers for the query shapes used across the workspace.
//!
//! Tests in every crate compare structure output against these linear scans;
//! they are deliberately the most obvious possible implementations.

use ccix_extmem::Point;

/// Points with `x1 ≤ x ≤ x2` and `y ≥ y0` (3-sided query).
pub fn three_sided(points: &[Point], x1: i64, x2: i64, y0: i64) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| p.x >= x1 && p.x <= x2 && p.y >= y0)
        .collect()
}

/// Points with `x ≤ q ≤ y` (diagonal-corner query anchored at `(q, q)`).
pub fn diagonal_corner(points: &[Point], q: i64) -> Vec<Point> {
    points
        .iter()
        .copied()
        .filter(|p| p.x <= q && p.y >= q)
        .collect()
}

/// Canonical sort for set comparison: by id.
pub fn sort_for_compare(points: &mut [Point]) {
    points.sort_unstable_by_key(|p| p.id);
}

/// Assert two answers are equal as sets (and free of duplicates).
///
/// # Panics
/// Panics with a readable diff when the sets differ.
pub fn assert_same_points(mut got: Vec<Point>, mut want: Vec<Point>, context: &str) {
    sort_for_compare(&mut got);
    sort_for_compare(&mut want);
    let dup = got.windows(2).find(|w| w[0].id == w[1].id);
    assert!(
        dup.is_none(),
        "{context}: duplicate id {:?} in reported answer",
        dup.unwrap()[0]
    );
    assert_eq!(
        got.len(),
        want.len(),
        "{context}: got {} points, want {} (got={got:?}, want={want:?})",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{context}: answers differ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_sided_filters() {
        let pts = vec![
            Point::new(0, 10, 1),
            Point::new(5, 3, 2),
            Point::new(9, 9, 3),
        ];
        let got = three_sided(&pts, 0, 5, 4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1);
    }

    #[test]
    fn diagonal_is_two_sided_on_the_line() {
        let pts = vec![
            Point::new(1, 4, 1),
            Point::new(3, 3, 2),
            Point::new(4, 9, 3),
        ];
        let got = diagonal_corner(&pts, 3);
        assert_eq!(got.iter().map(|p| p.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn duplicate_detection() {
        let p = Point::new(0, 0, 7);
        assert_same_points(vec![p, p], vec![p], "dup test");
    }
}
