//! The external static priority search tree of Lemma 4.1 (\[17\]).
//!
//! "The data structure is essentially a priority search tree where each node
//! contains B points." Every node occupies exactly one disk page holding its
//! control record plus up to `B − 1` points — the `B − 1` largest-`y` points
//! of its subtree, with the remainder split at the median `x` between two
//! children. Hence:
//!
//! * space `O(n/B)` pages,
//! * 3-sided query `O(log2 n + t/B)` I/Os,
//! * bulk build `O((n/B) log_B n)` I/Os (one write per page emitted).
//!
//! Construction is split into a **pure planning phase** ([`PstPlan`]) that
//! computes every node's contents from the x-sorted input without touching
//! a store — so hosts can run it on worker threads during their parallel
//! build phases — and a sequential **materialisation** that allocates one
//! page per planned node on the calling thread. The tree retains its plan
//! as an in-memory layout mirror, which is what lets
//! [`ExternalPst::rebuild_from_sorted`] reuse the node layout across the
//! amortised reorganisations of §3.2/§4: a node whose planned population is
//! unchanged keeps its page untouched, so rebuild-heavy insert floods stop
//! re-materialising identical nodes.

use ccix_extmem::{
    BackendSpec, FixedBytes, Geometry, IoCounter, PageId, PathPin, Point, SortedRun, TypedStore,
};

/// One record on a PST page: the leading control record or a data point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PstRec {
    /// First record of each page: split key and child pointers.
    Meta {
        /// x-split: points with `xkey ≤ split` are in the left subtree.
        split: (i64, u64),
        /// Left child page.
        left: Option<PageId>,
        /// Right child page.
        right: Option<PageId>,
    },
    /// A data point; stored sorted by `y` descending after the meta record.
    Pt(Point),
}

/// Fixed-width encoding so PST pages can live on the file backend: a tag
/// byte, then the wider variant's fields (`Meta`: 16-byte split + two
/// 5-byte optional page ids = 27 bytes total; `Pt`: 24-byte point + 2 zero
/// padding bytes). Decode validates the tag, the option flags and the
/// padding, so garbage never decodes silently.
impl FixedBytes for PstRec {
    const SIZE: usize = 27;

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            PstRec::Meta { split, left, right } => {
                out.push(0);
                out.extend_from_slice(&split.0.to_le_bytes());
                out.extend_from_slice(&split.1.to_le_bytes());
                for child in [left, right] {
                    match child {
                        Some(PageId(p)) => {
                            out.push(1);
                            out.extend_from_slice(&p.to_le_bytes());
                        }
                        None => out.extend_from_slice(&[0u8; 5]),
                    }
                }
            }
            PstRec::Pt(p) => {
                out.push(1);
                p.encode_into(out);
                out.extend_from_slice(&[0u8; 2]);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        let decode_child = |b: &[u8]| -> Option<Option<PageId>> {
            let id = u32::from_le_bytes(b[1..5].try_into().ok()?);
            match b[0] {
                0 if id == 0 => Some(None),
                1 => Some(Some(PageId(id))),
                _ => None,
            }
        };
        match bytes[0] {
            0 => {
                let lo = i64::from_le_bytes(bytes[1..9].try_into().ok()?);
                let hi = u64::from_le_bytes(bytes[9..17].try_into().ok()?);
                Some(PstRec::Meta {
                    split: (lo, hi),
                    left: decode_child(&bytes[17..22])?,
                    right: decode_child(&bytes[22..27])?,
                })
            }
            1 => {
                if bytes[25..27] != [0, 0] {
                    return None;
                }
                Some(PstRec::Pt(Point::decode(&bytes[1..25])?))
            }
            _ => None,
        }
    }
}

/// One planned PST node: the page contents decided, no page allocated yet.
#[derive(Debug, PartialEq, Eq)]
struct PlanNode {
    /// x-split between the children.
    split: (i64, u64),
    /// The node's points, y-descending (the `B − 1` largest of its subtree).
    top: Vec<Point>,
    left: Option<Box<PlanNode>>,
    right: Option<Box<PlanNode>>,
}

/// A CPU-only construction plan for an [`ExternalPst`]: every node's
/// population, split key and shape, computed from x-sorted input with no
/// store access and no I/O. Planning is a pure function, so hosts
/// parallelise it freely (the metablock trees plan the PSTs of independent
/// slabs on scoped worker threads); materialisation
/// ([`ExternalPst::from_plan`]) then allocates pages sequentially on the
/// calling thread, keeping the I/O accounting single-threaded.
#[derive(Debug)]
pub struct PstPlan {
    root: Option<Box<PlanNode>>,
    height: usize,
    len: usize,
}

impl PstPlan {
    /// Plan a tree over an x-sorted run.
    pub fn plan(geo: Geometry, sorted: SortedRun) -> Self {
        assert!(geo.b >= 2, "external PST needs B ≥ 2");
        let mut points = sorted.into_inner();
        let len = points.len();
        let (root, height) = Self::plan_rec(geo, &mut points);
        Self { root, height, len }
    }

    /// Plan over an x-sorted vector; returns (root node, height).
    fn plan_rec(geo: Geometry, points: &mut Vec<Point>) -> (Option<Box<PlanNode>>, usize) {
        if points.is_empty() {
            return (None, 0);
        }
        let k = ExternalPst::node_cap(geo).min(points.len());
        // Select the k largest ykeys, removing them while preserving x
        // order. `select_nth` finds the threshold in `O(n)` — a full sort
        // here made every plan level pay `O(n log n)`, the dominant CPU
        // cost of the B³-point children-PST rebuilds.
        let mut ys: Vec<(i64, u64)> = points.iter().map(Point::ykey).collect();
        let threshold = if k == ys.len() {
            *ys.iter().min().expect("nonempty")
        } else {
            ys.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
            ys[k - 1]
        };
        let mut top: Vec<Point> = Vec::with_capacity(k);
        points.retain(|p| {
            if p.ykey() >= threshold {
                top.push(*p);
                false
            } else {
                true
            }
        });
        debug_assert_eq!(top.len(), k);
        ccix_extmem::sort_by_y_desc(&mut top);

        let (split, left, right, depth) = if points.is_empty() {
            ((i64::MIN, 0), None, None, 1)
        } else {
            let mid = (points.len() - 1) / 2;
            let split = points[mid].xkey();
            let mut right_part = points.split_off(mid + 1);
            let (left, lh) = Self::plan_rec(geo, points);
            let (right, rh) = Self::plan_rec(geo, &mut right_part);
            (split, left, right, 1 + lh.max(rh))
        };
        (
            Some(Box::new(PlanNode {
                split,
                top,
                left,
                right,
            })),
            depth,
        )
    }
}

/// A materialised plan node: the layout mirror the tree retains so the next
/// rebuild can tell which node populations changed without re-reading them.
#[derive(Debug)]
struct LayoutNode {
    page: PageId,
    split: (i64, u64),
    top: Vec<Point>,
    left: Option<Box<LayoutNode>>,
    right: Option<Box<LayoutNode>>,
}

/// External static priority search tree (Lemma 4.1).
///
/// Answers `x1 ≤ x ≤ x2 ∧ y ≥ y0` in `O(log2 n + t/B)` I/Os on the shared
/// counter. Static at query time; contents change through whole-structure
/// rebuilds ([`ExternalPst::rebuild_from_sorted`]), which the §3–4
/// structures drive from their amortised reorganisations and which reuse
/// the layout of nodes whose population is unchanged.
#[derive(Debug)]
pub struct ExternalPst {
    store: TypedStore<PstRec>,
    root: Option<PageId>,
    len: usize,
    height: usize,
    layout: Option<Box<LayoutNode>>,
}

impl ExternalPst {
    /// Points stored per node page (`B − 1`; one record is the meta).
    fn node_cap(geo: Geometry) -> usize {
        geo.b - 1
    }

    /// Build from `points` (any order; ids must be unique).
    pub fn build(geo: Geometry, counter: IoCounter, points: Vec<Point>) -> Self {
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        Self::build_from_sorted(geo, counter, SortedRun::from_unsorted(points))
    }

    /// Fork a copy-on-write read snapshot of this PST, charging its I/O to
    /// `counter`.
    ///
    /// The fork shares every node page with the original (see
    /// [`ccix_extmem::TypedStore::fork`]) and drops the in-memory layout
    /// mirror, which only rebuilds consult: a fork answers queries exactly
    /// but is a read handle for the epoch-snapshot machinery, not a rebuild
    /// target.
    pub fn fork(&self, counter: IoCounter) -> Self {
        Self {
            store: self.store.fork(counter),
            root: self.root,
            len: self.len,
            height: self.height,
            layout: None,
        }
    }

    /// Build from an already x-sorted run, skipping the sort (and the
    /// duplicate-id scan — the run's strict order is the caller's proof).
    pub fn build_from_sorted(geo: Geometry, counter: IoCounter, sorted: SortedRun) -> Self {
        Self::from_plan(geo, counter, PstPlan::plan(geo, sorted))
    }

    /// [`ExternalPst::build_from_sorted`] on an explicit backend.
    pub fn build_from_sorted_on(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        sorted: SortedRun,
    ) -> Self {
        Self::from_plan_on(spec, geo, counter, PstPlan::plan(geo, sorted))
    }

    /// Materialise a plan: one page allocated (one write I/O) per node, on
    /// the calling thread.
    pub fn from_plan(geo: Geometry, counter: IoCounter, plan: PstPlan) -> Self {
        Self::from_plan_on(&BackendSpec::Model, geo, counter, plan)
    }

    /// [`ExternalPst::from_plan`] on an explicit backend: the node store is
    /// opened model- or file-backed per `spec`.
    pub fn from_plan_on(
        spec: &BackendSpec,
        geo: Geometry,
        counter: IoCounter,
        plan: PstPlan,
    ) -> Self {
        assert!(geo.b >= 2, "external PST needs B ≥ 2");
        let mut store = TypedStore::new_on(spec, geo.b, counter);
        let layout = plan.root.map(|n| Self::alloc_rec(&mut store, *n));
        Self {
            root: layout.as_ref().map(|l| l.page),
            store,
            len: plan.len,
            height: plan.height,
            layout,
        }
    }

    /// Allocate pages for a planned subtree, post-order (children first, so
    /// the node's meta record can carry their page ids).
    fn alloc_rec(store: &mut TypedStore<PstRec>, node: PlanNode) -> Box<LayoutNode> {
        let left = node.left.map(|n| Self::alloc_rec(store, *n));
        let right = node.right.map(|n| Self::alloc_rec(store, *n));
        let page = store.alloc(Self::node_recs(&node.split, &node.top, &left, &right));
        Box::new(LayoutNode {
            page,
            split: node.split,
            top: node.top,
            left,
            right,
        })
    }

    /// The page records of a node: meta first, then the points y-descending.
    fn node_recs(
        split: &(i64, u64),
        top: &[Point],
        left: &Option<Box<LayoutNode>>,
        right: &Option<Box<LayoutNode>>,
    ) -> Vec<PstRec> {
        let mut recs = Vec::with_capacity(top.len() + 1);
        recs.push(PstRec::Meta {
            split: *split,
            left: left.as_ref().map(|l| l.page),
            right: right.as_ref().map(|r| r.page),
        });
        recs.extend(top.iter().copied().map(PstRec::Pt));
        recs
    }

    /// Rebuild over a new x-sorted point set, **reusing the node layout**
    /// wherever a node's population is unchanged: a node whose split key,
    /// point set and child shape all match the previous layout keeps its
    /// page untouched (its on-disk content is already exact, so no transfer
    /// is charged — the retained layout mirror plays the role of the
    /// page-version metadata any real storage engine keeps); a changed node
    /// is overwritten in place (one write); growth allocates and shrinkage
    /// frees. Rebuild-heavy insert floods thus stop re-materialising the
    /// nodes their deltas never touched, and page slots are recycled
    /// through the store's free list instead of a fresh store.
    pub fn rebuild_from_sorted(&mut self, geo: Geometry, sorted: SortedRun) {
        let plan = PstPlan::plan(geo, sorted);
        self.len = plan.len;
        self.height = plan.height;
        let old = self.layout.take();
        self.layout = match (old, plan.root) {
            (old, None) => {
                if let Some(o) = old {
                    Self::free_rec(&mut self.store, *o);
                }
                None
            }
            (None, Some(n)) => Some(Self::alloc_rec(&mut self.store, *n)),
            (Some(o), Some(n)) => Some(self.reuse_rec(*o, *n)),
        };
        self.root = self.layout.as_ref().map(|l| l.page);
    }

    /// Free a layout subtree's pages.
    fn free_rec(store: &mut TypedStore<PstRec>, node: LayoutNode) {
        store.free(node.page);
        if let Some(l) = node.left {
            Self::free_rec(store, *l);
        }
        if let Some(r) = node.right {
            Self::free_rec(store, *r);
        }
    }

    /// Materialise a planned subtree on top of an old layout subtree,
    /// page-for-page: unchanged nodes are kept without a transfer, changed
    /// nodes are overwritten in place (their page id — and therefore their
    /// parent's meta record — survives), shape differences alloc/free.
    fn reuse_rec(&mut self, old: LayoutNode, new: PlanNode) -> Box<LayoutNode> {
        let old_left_page = old.left.as_ref().map(|l| l.page);
        let old_right_page = old.right.as_ref().map(|r| r.page);
        let left = match (old.left, new.left) {
            (Some(o), Some(n)) => Some(self.reuse_rec(*o, *n)),
            (Some(o), None) => {
                Self::free_rec(&mut self.store, *o);
                None
            }
            (None, Some(n)) => Some(Self::alloc_rec(&mut self.store, *n)),
            (None, None) => None,
        };
        let right = match (old.right, new.right) {
            (Some(o), Some(n)) => Some(self.reuse_rec(*o, *n)),
            (Some(o), None) => {
                Self::free_rec(&mut self.store, *o);
                None
            }
            (None, Some(n)) => Some(Self::alloc_rec(&mut self.store, *n)),
            (None, None) => None,
        };
        // The node's page content is a pure function of (split, top, child
        // pages); children reused in place keep their ids, so equality of
        // the in-memory mirrors means the on-disk page is already exact.
        let unchanged = old.split == new.split
            && old.top == new.top
            && left.as_ref().map(|l| l.page) == old_left_page
            && right.as_ref().map(|r| r.page) == old_right_page;
        if !unchanged {
            self.store.write(
                old.page,
                Self::node_recs(&new.split, &new.top, &left, &right),
            );
        }
        Box::new(LayoutNode {
            page: old.page,
            split: new.split,
            top: new.top,
            left,
            right,
        })
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in nodes (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Disk blocks occupied.
    pub fn space_pages(&self) -> usize {
        self.store.pages_in_use()
    }

    /// The I/O counter shared by this structure.
    pub fn counter(&self) -> &IoCounter {
        self.store.counter()
    }

    /// Report every point with `x1 ≤ x ≤ x2` and `y ≥ y0`.
    pub fn query(&self, x1: i64, x2: i64, y0: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y0, &mut out);
        out
    }

    /// As [`ExternalPst::query`], appending into `out`.
    pub fn query_into(&self, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.visit(root, x1, x2, y0, out);
        }
    }

    /// Diagonal-corner query `x ≤ q ≤ y` (a special case of 3-sided); used
    /// by experiment E12 to compare against the metablock tree.
    pub fn diagonal_into(&self, q: i64, out: &mut Vec<Point>) {
        self.query_into(i64::MIN, q, q, out);
    }

    /// As [`ExternalPst::query_into`] within a pinned operation: node pages
    /// are billed through `pin` under key-space `space`, so a batch of
    /// queries sharing the pin pays for each visited node once per
    /// residency instead of once per query.
    pub fn query_pinned(
        &self,
        pin: &mut PathPin,
        space: u32,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.visit_pinned(pin, space, root, x1, x2, y0, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_pinned(
        &self,
        pin: &mut PathPin,
        space: u32,
        page: PageId,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let recs = self.store.read_pinned(pin, space, page);
        let PstRec::Meta { split, left, right } = recs[0] else {
            unreachable!("first record of a PST page is always the meta");
        };
        let mut all_above = true;
        for rec in &recs[1..] {
            let PstRec::Pt(p) = rec else {
                unreachable!("data records follow the meta record")
            };
            if p.y < y0 {
                all_above = false;
                break;
            }
            if p.x >= x1 && p.x <= x2 {
                out.push(*p);
            }
        }
        if !all_above {
            return;
        }
        if let Some(l) = left {
            if (x1, u64::MIN) <= split {
                self.visit_pinned(pin, space, l, x1, x2, y0, out);
            }
        }
        if let Some(r) = right {
            if (x2, u64::MAX) > split {
                self.visit_pinned(pin, space, r, x1, x2, y0, out);
            }
        }
    }

    /// Read back every stored point (one I/O per page); used when a dynamic
    /// wrapper rebuilds a PST with newly staged points.
    pub fn collect_points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<PageId> = self.root.into_iter().collect();
        while let Some(page) = stack.pop() {
            let recs = self.store.read(page);
            let PstRec::Meta { left, right, .. } = recs[0] else {
                unreachable!("first record of a PST page is always the meta");
            };
            for rec in &recs[1..] {
                let PstRec::Pt(p) = rec else {
                    unreachable!("data records follow the meta record")
                };
                out.push(*p);
            }
            stack.extend(left);
            stack.extend(right);
        }
        out
    }

    /// As [`ExternalPst::collect_points`] without charging I/Os (validation
    /// only).
    pub fn collect_points_unbilled(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<PageId> = self.root.into_iter().collect();
        while let Some(page) = stack.pop() {
            let recs = self.store.read_unbilled(page);
            let PstRec::Meta { left, right, .. } = recs[0] else {
                unreachable!("first record of a PST page is always the meta");
            };
            for rec in &recs[1..] {
                let PstRec::Pt(p) = rec else {
                    unreachable!("data records follow the meta record")
                };
                out.push(*p);
            }
            stack.extend(left);
            stack.extend(right);
        }
        out
    }

    fn visit(&self, page: PageId, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let recs = self.store.read(page); // one I/O per visited node
        let PstRec::Meta { split, left, right } = recs[0] else {
            unreachable!("first record of a PST page is always the meta");
        };
        // Points are y-descending: stop at the first below y0. If any stored
        // point is below y0, the subtree below is exhausted (heap property).
        let mut all_above = true;
        for rec in &recs[1..] {
            let PstRec::Pt(p) = rec else {
                unreachable!("data records follow the meta record")
            };
            if p.y < y0 {
                all_above = false;
                break;
            }
            if p.x >= x1 && p.x <= x2 {
                out.push(*p);
            }
        }
        if !all_above {
            return;
        }
        if let Some(l) = left {
            if (x1, u64::MIN) <= split {
                self.visit(l, x1, x2, y0, out);
            }
        }
        if let Some(r) = right {
            if (x2, u64::MAX) > split {
                self.visit(r, x1, x2, y0, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn build(b: usize, pts: &[Point]) -> ExternalPst {
        ExternalPst::build(Geometry::new(b), IoCounter::new(), pts.to_vec())
    }

    fn random_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..n)
            .map(|i| {
                Point::new(
                    (next() % range as u64) as i64,
                    (next() % range as u64) as i64,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn empty_build() {
        let pst = build(4, &[]);
        assert!(pst.is_empty());
        assert_eq!(pst.height(), 0);
        assert!(pst.query(i64::MIN, i64::MAX, i64::MIN).is_empty());
    }

    #[test]
    fn inverted_range_is_empty() {
        let pst = build(4, &[Point::new(0, 0, 1)]);
        assert!(pst.query(5, 3, 0).is_empty());
    }

    #[test]
    fn queries_match_oracle_on_random_sets() {
        for &(n, b) in &[(1usize, 2usize), (7, 2), (100, 4), (1000, 8), (3000, 16)] {
            let pts = random_points(n, 0xC0FFEE + n as u64, 500);
            let pst = build(b, &pts);
            for &(x1, x2, y0) in &[
                (0i64, 499i64, 0i64),
                (100, 300, 250),
                (250, 250, 0),
                (0, 499, 499),
                (400, 499, 400),
            ] {
                let got = pst.query(x1, x2, y0);
                let want = oracle::three_sided(&pts, x1, x2, y0);
                oracle::assert_same_points(got, want, &format!("n={n} b={b} q=({x1},{x2},{y0})"));
            }
        }
    }

    #[test]
    fn space_is_linear_in_n_over_b() {
        let geo = Geometry::new(16);
        let pts = random_points(5000, 7, 10_000);
        let pst = ExternalPst::build(geo, IoCounter::new(), pts);
        let pages = pst.space_pages();
        // Each page holds B−1 = 15 points; allow the tree's slack.
        assert!(pages >= 5000 / 16);
        assert!(pages <= 3 * (5000 / 15) + 3, "pages = {pages}");
    }

    /// Lemma 4.1: query cost `O(log2 n + t/B)`.
    #[test]
    fn query_io_bound() {
        let b = 16;
        let geo = Geometry::new(b);
        let n = 20_000;
        let pts = random_points(n, 99, 100_000);
        let counter = IoCounter::new();
        let pst = ExternalPst::build(geo, counter.clone(), pts.clone());
        for &(x1, x2, y0) in &[
            (0i64, 99_999i64, 0i64),
            (0, 99_999, 95_000),
            (20_000, 30_000, 50_000),
            (50_000, 50_100, 0),
        ] {
            let before = counter.snapshot();
            let got = pst.query(x1, x2, y0);
            let cost = counter.since(before);
            let t = got.len();
            let bound = 4 * (Geometry::log2(n) + geo.out_blocks(t)) + 4;
            assert!(
                cost.reads <= bound as u64,
                "q=({x1},{x2},{y0}): {} reads > bound {bound} (t={t})",
                cost.reads
            );
            assert_eq!(cost.writes, 0);
        }
    }

    #[test]
    fn all_duplicate_coordinates() {
        let pts: Vec<Point> = (0..200).map(|i| Point::new(5, 5, i)).collect();
        let pst = build(4, &pts);
        assert_eq!(pst.query(5, 5, 5).len(), 200);
        assert!(pst.query(5, 5, 6).is_empty());
        assert!(pst.query(6, 7, 0).is_empty());
    }

    #[test]
    fn rebuild_matches_fresh_build_and_reuses_unchanged_layout() {
        let geo = Geometry::new(8);
        let counter = IoCounter::new();
        let base = random_points(800, 0x5EED, 2_000);
        let mut pst = ExternalPst::build(geo, counter.clone(), base.clone());
        let pages_before = pst.space_pages();

        // Identical population: the whole layout is reused, zero transfers.
        let before = counter.snapshot();
        pst.rebuild_from_sorted(geo, SortedRun::from_unsorted(base.clone()));
        assert_eq!(
            counter.since(before).total(),
            0,
            "identical rebuild is free"
        );
        assert_eq!(pst.space_pages(), pages_before);

        // A small delta: far fewer writes than a full re-materialisation,
        // and the result answers exactly like a fresh build.
        let mut grown = base.clone();
        grown.extend((0..40).map(|i| Point::new(1_000 + i, 3_000 + i, 10_000 + i as u64)));
        let before = counter.snapshot();
        pst.rebuild_from_sorted(geo, SortedRun::from_unsorted(grown.clone()));
        let delta = counter.since(before);
        assert!(
            delta.writes < pst.space_pages() as u64,
            "rebuild rewrote every node ({} writes, {} pages)",
            delta.writes,
            pst.space_pages()
        );
        let fresh = ExternalPst::build(geo, IoCounter::new(), grown.clone());
        assert_eq!(pst.len(), fresh.len());
        assert_eq!(pst.height(), fresh.height());
        assert_eq!(pst.space_pages(), fresh.space_pages());
        for &(x1, x2, y0) in &[
            (0i64, 2_000i64, 0i64),
            (100, 900, 1_500),
            (1_000, 1_040, 3_000),
            (0, 2_000, 1_999),
        ] {
            oracle::assert_same_points(
                pst.query(x1, x2, y0),
                fresh.query(x1, x2, y0),
                &format!("rebuild vs fresh q=({x1},{x2},{y0})"),
            );
            oracle::assert_same_points(
                pst.query(x1, x2, y0),
                oracle::three_sided(&grown, x1, x2, y0),
                &format!("rebuild vs oracle q=({x1},{x2},{y0})"),
            );
        }

        // Shrinking far enough frees pages back to the store.
        pst.rebuild_from_sorted(geo, SortedRun::from_unsorted(base[..50].to_vec()));
        assert!(pst.space_pages() < pages_before);
        oracle::assert_same_points(
            pst.query(i64::MIN, i64::MAX, i64::MIN),
            base[..50].to_vec(),
            "shrunk rebuild",
        );
    }

    #[test]
    fn build_from_sorted_matches_build() {
        let geo = Geometry::new(4);
        let pts = random_points(300, 0xABCD, 700);
        let a = ExternalPst::build(geo, IoCounter::new(), pts.clone());
        let b = ExternalPst::build_from_sorted(
            geo,
            IoCounter::new(),
            SortedRun::from_unsorted(pts.clone()),
        );
        assert_eq!(a.space_pages(), b.space_pages());
        assert_eq!(a.height(), b.height());
        for q in [(0i64, 700i64, 0i64), (10, 20, 300), (350, 350, 0)] {
            oracle::assert_same_points(
                a.query(q.0, q.1, q.2),
                b.query(q.0, q.1, q.2),
                &format!("{q:?}"),
            );
        }
    }

    #[test]
    fn diagonal_equals_three_sided_special_case() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new(i, i + (i % 37), i as u64))
            .collect();
        let pst = build(8, &pts);
        for q in [0i64, 100, 250, 499, 600] {
            let mut got = Vec::new();
            pst.diagonal_into(q, &mut got);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("diag q={q}"));
        }
    }
}

/// Property tests for the [`PstRec`] encoding: it is the one record type
/// whose pages reach the file backend but whose type is private to this
/// crate, so the testkit's serialization suite cannot cover it.
#[cfg(test)]
mod ser_tests {
    use super::*;

    fn roundtrip(rec: PstRec) {
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        assert_eq!(buf.len(), PstRec::SIZE);
        assert_eq!(PstRec::decode(&buf), Some(rec));
        for cut in 0..PstRec::SIZE {
            assert!(
                PstRec::decode(&buf[..cut]).is_none(),
                "decoded a {cut}-byte truncation"
            );
        }
        let mut long = buf.clone();
        long.push(0x5A);
        assert!(PstRec::decode(&long).is_none(), "decoded with a tail");
    }

    #[test]
    fn meta_and_point_records_roundtrip() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..256 {
            let split = (next() as i64, next());
            let child = |v: u64| (!v.is_multiple_of(3)).then_some(PageId((v >> 8) as u32));
            roundtrip(PstRec::Meta {
                split,
                left: child(next()),
                right: child(next()),
            });
            roundtrip(PstRec::Pt(Point::new(next() as i64, next() as i64, next())));
        }
    }

    #[test]
    fn garbage_bytes_never_decode_silently() {
        // Bad tag byte.
        let mut buf = vec![2u8; PstRec::SIZE];
        assert!(PstRec::decode(&buf).is_none());
        // Meta with a bad child flag.
        buf = Vec::new();
        PstRec::Meta {
            split: (7, 7),
            left: None,
            right: None,
        }
        .encode_into(&mut buf);
        buf[17] = 9; // child flag must be 0 or 1
        assert!(PstRec::decode(&buf).is_none());
        // "None" child with a nonzero page id is torn, not a value.
        buf[17] = 0;
        buf[18] = 1;
        assert!(PstRec::decode(&buf).is_none());
        // Point record with nonzero padding.
        buf = Vec::new();
        PstRec::Pt(Point::new(1, 2, 3)).encode_into(&mut buf);
        buf[26] = 1;
        assert!(PstRec::decode(&buf).is_none());
    }
}
